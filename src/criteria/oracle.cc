#include "criteria/oracle.h"

#include <map>

#include "core/indexing.h"
#include "criteria/conflict_consistency.h"
#include "graph/cycle_finder.h"

namespace comptx::criteria {

namespace {

/// Demand accumulator: per meet transaction (by node id) and one extra
/// bucket for the root level.
struct Demands {
  std::map<NodeId, Relation> per_transaction;
  Relation root_level;
};

/// Walks the ordering requirement a-before-b up the parent chains and
/// records the surviving demand at the meet.  `can_die` enables the
/// forgetting rule for common-schedule commuting pairs.
///
/// The check runs on every iteration, including the first: a schedule
/// exports an order upward only between pairs that *effectively*
/// conflict on it, and for an input-order requirement the decision
/// point is the pair's own host schedule (the caller that imposed the
/// order).  Walks that start from a conflicting operation pair are
/// unaffected — their first hop is the schedule recording the conflict,
/// where EffectiveConflict is true by the caller's filter.
void WalkUp(const CompositeSystem& cs, NodeId a, NodeId b, bool can_die,
            Demands& demands) {
  while (true) {
    if (a == b) return;  // requirement internal to one node; vacuous.
    const Node& na = cs.node(a);
    const Node& nb = cs.node(b);
    const bool a_root = !na.parent.valid();
    const bool b_root = !nb.parent.valid();
    if (a_root && b_root) {
      demands.root_level.Add(a, b);
      return;
    }
    if (can_die) {
      ScheduleId ha = cs.HostScheduleOf(a);
      ScheduleId hb = cs.HostScheduleOf(b);
      if (ha.valid() && ha == hb && !cs.EffectiveConflict(ha, a, b)) {
        // One common schedule vouches that a and b commute: the order is
        // irrelevant above this point (forgetting).
        return;
      }
    }
    NodeId pa = a_root ? a : na.parent;
    NodeId pb = b_root ? b : nb.parent;
    if (pa == pb) {
      demands.per_transaction[pa].Add(a, b);
      return;
    }
    a = pa;
    b = pb;
  }
}

}  // namespace

StatusOr<bool> HierarchicalSerializabilityOracle(const CompositeSystem& cs) {
  COMPTX_RETURN_IF_ERROR(cs.Validate());

  // Local consistency first: every component schedule must be conflict
  // consistent on its own (Def 13 applies to every front, so a
  // serialization-vs-input cycle at one schedule is fatal no matter what
  // upper levels declare commutative).
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    if (!IsScheduleConflictConsistent(cs, ScheduleId(s))) return false;
  }

  Demands demands;

  for (uint32_t si = 0; si < cs.ScheduleCount(); ++si) {
    const ScheduleId sid(si);
    const Schedule& s = cs.schedule(sid);
    const std::vector<NodeId> ops = cs.OperationsOf(sid);
    Relation weak_out = ClosureWithin(s.weak_output, ops);
    Relation strong_out = ClosureWithin(s.strong_output, ops);

    // Conflicting pairs demand their recorded direction (forgettable).
    // Spec-proven commuting pairs demand nothing: their recorded order is
    // an artifact, exactly like an undeclared conflict bit.
    s.conflicts.ForEach([&](NodeId o1, NodeId o2) {
      if (cs.SemanticallyCommutes(o1, o2)) return;
      if (weak_out.Contains(o1, o2)) WalkUp(cs, o1, o2, true, demands);
      if (weak_out.Contains(o2, o1)) WalkUp(cs, o2, o1, true, demands);
    });

    // Strong output orders are absolute temporal facts (never forgotten).
    strong_out.ForEach(
        [&](NodeId a, NodeId b) { WalkUp(cs, a, b, false, demands); });

    // Strong input orders: the callers demanded strict sequencing.
    ClosureWithin(s.strong_input, s.transactions)
        .ForEach([&](NodeId a, NodeId b) { WalkUp(cs, a, b, false, demands); });

    // Weak input orders: net-effect order requirements; demanded at the
    // meet (see the exactness caveat in the header).
    ClosureWithin(s.weak_input, s.transactions)
        .ForEach([&](NodeId a, NodeId b) { WalkUp(cs, a, b, true, demands); });
  }

  // Intra-transaction requirements and per-meet demands must be jointly
  // satisfiable at each transaction.
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    if (!n.IsTransaction() || n.children.size() < 2) continue;
    Relation combined = n.weak_intra;
    auto it = demands.per_transaction.find(NodeId(v));
    if (it != demands.per_transaction.end()) combined.UnionWith(it->second);
    NodeIndexMap index(n.children);
    if (!graph::IsAcyclic(RelationToDigraph(combined, index))) return false;
  }

  // Root-level demands must admit a total root order.
  NodeIndexMap roots(cs.Roots());
  if (!graph::IsAcyclic(RelationToDigraph(demands.root_level, roots))) {
    return false;
  }
  return true;
}

}  // namespace comptx::criteria
