#ifndef COMPTX_CRITERIA_SCC_H_
#define COMPTX_CRITERIA_SCC_H_

#include "core/composite_system.h"
#include "util/status_or.h"

namespace comptx::criteria {

/// True iff `cs` is a stack architecture (Def 21): the invocation graph is
/// a single path, every non-bottom schedule's operations are exactly the
/// next schedule's transactions, and (per Def 21's order conditions, which
/// Validate() enforces as containment) orders flow from each schedule into
/// the next.
bool IsStackSystem(const CompositeSystem& cs);

/// Stack conflict consistency (Def 22): every individual schedule of the
/// stack is conflict consistent.  Fails with FailedPrecondition when `cs`
/// is not a stack.  By Theorem 2, the verdict coincides with Comp-C.
StatusOr<bool> IsStackConflictConsistent(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_SCC_H_
