#ifndef COMPTX_CRITERIA_COMPARE_H_
#define COMPTX_CRITERIA_COMPARE_H_

#include <optional>
#include <string>

#include "core/composite_system.h"
#include "util/status_or.h"

namespace comptx::criteria {

/// One execution judged by every criterion the library implements.
/// Criteria that only apply to special configurations are nullopt when the
/// system does not have that shape.
struct CriteriaVerdicts {
  bool comp_c = false;
  bool llsr = false;
  bool opsr = false;
  bool flat_csr = false;
  std::optional<bool> scc;   // stacks only (Def 22)
  std::optional<bool> fcc;   // forks only (Def 24)
  std::optional<bool> jcc;   // joins only (Def 27)

  /// One-line "criterion=verdict" rendering for reports.
  std::string ToString() const;
};

/// Runs every applicable criterion on `cs`.  Status errors indicate a
/// malformed system.
StatusOr<CriteriaVerdicts> EvaluateAllCriteria(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_COMPARE_H_
