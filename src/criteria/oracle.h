#ifndef COMPTX_CRITERIA_ORACLE_H_
#define COMPTX_CRITERIA_ORACLE_H_

#include "core/composite_system.h"
#include "util/status_or.h"

namespace comptx::criteria {

/// Independent ground-truth checker for composite correctness, implemented
/// with a completely different algorithm than the paper's front reduction:
/// hierarchical demand analysis.
///
/// A composite execution is correct iff there exists a *serial forest
/// execution* — the roots in some total order, each transaction's subtree
/// executed contiguously and depth-first — that is equivalent to the
/// recorded one.  Because serial executions are fully hierarchical, every
/// ordering requirement between two nodes surfaces as a demanded order
/// between two children of their meet (their lowest common ancestor
/// transaction, or the root level).  The checker therefore:
///
///   1. walks every ordering requirement up the two parent chains:
///      * conflicting operation pairs, in their schedule's weak output
///        direction — the walk *dies* if an intermediate ancestor pair
///        lies in one common schedule that declares it non-conflicting
///        (the paper's forgetting, Def 10.3);
///      * strong constraints (strong input, intra, output orders) — these
///        are absolute temporal facts and never die;
///   2. records the surviving demand at the meet;
///   3. accepts iff at every transaction the demands joined with its weak
///      intra order are acyclic, and at the root level the demands joined
///      with the root schedules' weak input orders are acyclic.
///
/// Relationship to Comp-C (measured in tests/test_oracle.cc and
/// bench_forgetting): Comp-C implies oracle-correctness — the reduction is
/// sound.  The converse holds on the single-meet configurations (stack,
/// fork, join) but not on general DAGs: Def 11.2 *pessimistically* treats
/// cross-schedule observed pairs as conflicts, so the level-by-level
/// reduction may reject an execution whose pulled-up order a schedule
/// further up would have declared irrelevant.  The oracle, which walks
/// each requirement to its meet before deciding, accepts those.
StatusOr<bool> HierarchicalSerializabilityOracle(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_ORACLE_H_
