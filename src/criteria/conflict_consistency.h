#ifndef COMPTX_CRITERIA_CONFLICT_CONSISTENCY_H_
#define COMPTX_CRITERIA_CONFLICT_CONSISTENCY_H_

#include <optional>

#include "core/composite_system.h"
#include "core/front.h"
#include "core/relation.h"

namespace comptx::criteria {

/// The serialization order of one schedule: t <_ser t' iff some operation
/// of t conflicts with some operation of t' and precedes it in the
/// schedule's (closed) weak output order.  This is the classical
/// serialization-graph edge relation, per component.
Relation ScheduleSerializationOrder(const CompositeSystem& cs, ScheduleId sid);

/// Conflict consistency of one schedule, per [ABFS97] (the paper's Def 13
/// restricted to one scheduler): the union of the serialization order and
/// the (closed) weak input order over T_S must be acyclic.  Returns the
/// witness cycle (over transactions of S) when violated.
std::optional<CycleWitness> FindScheduleCCViolation(const CompositeSystem& cs,
                                                    ScheduleId sid);

/// Convenience predicate for FindScheduleCCViolation.
bool IsScheduleConflictConsistent(const CompositeSystem& cs, ScheduleId sid);

/// Classical conflict serializability of one schedule in isolation: the
/// serialization order alone must be acyclic (input orders ignored).
bool IsScheduleConflictSerializable(const CompositeSystem& cs, ScheduleId sid);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_CONFLICT_CONSISTENCY_H_
