#include "criteria/scc.h"

#include <algorithm>

#include "core/invocation_graph.h"
#include "criteria/conflict_consistency.h"

namespace comptx::criteria {

bool IsStackSystem(const CompositeSystem& cs) {
  auto ig = BuildInvocationGraph(cs);
  if (!ig.ok()) return false;
  const size_t n = cs.ScheduleCount();
  if (n == 0) return false;
  // Levels must be a permutation of 1..n (a path), with each schedule
  // invoking only the schedule one level below.
  std::vector<uint32_t> seen(n + 1, 0);
  for (uint32_t level : ig->schedule_level) {
    if (level > n) return false;
    seen[level]++;
  }
  for (uint32_t level = 1; level <= n; ++level) {
    if (seen[level] != 1) return false;
  }
  // Every operation of a level-l schedule (l > 1) must be a transaction of
  // the level-(l-1) schedule, and level-1 operations must all be leaves.
  for (uint32_t s = 0; s < n; ++s) {
    const uint32_t level = ig->schedule_level[s];
    for (NodeId op : cs.OperationsOf(ScheduleId(s))) {
      const Node& node = cs.node(op);
      if (level == 1) {
        if (!node.IsLeaf()) return false;
      } else {
        if (!node.IsTransaction()) return false;
        if (ig->schedule_level[node.owner_schedule.index()] != level - 1) {
          return false;
        }
      }
    }
  }
  return true;
}

StatusOr<bool> IsStackConflictConsistent(const CompositeSystem& cs) {
  if (!IsStackSystem(cs)) {
    return Status::FailedPrecondition("not a stack architecture (Def 21)");
  }
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    if (!IsScheduleConflictConsistent(cs, ScheduleId(s))) return false;
  }
  return true;
}

}  // namespace comptx::criteria
