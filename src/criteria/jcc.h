#ifndef COMPTX_CRITERIA_JCC_H_
#define COMPTX_CRITERIA_JCC_H_

#include "core/composite_system.h"
#include "core/relation.h"
#include "util/status_or.h"

namespace comptx::criteria {

/// True iff `cs` is a join architecture (Def 25): n top schedules
/// S_1..S_n (level 2) whose operations are all transactions of one shared
/// bottom schedule S_J (level 1).
bool IsJoinSystem(const CompositeSystem& cs);

/// The ghost graph of a join (Def 26): for transactions T, T' of
/// *different* top schedules, T ~G~> T' iff some child of T precedes some
/// child of T' in the bottom schedule's serialization order.  This is how
/// transactions that share no schedule become comparable — the join's
/// instance of the paper's observed order.
Relation JoinGhostGraph(const CompositeSystem& cs);

/// Join conflict consistency (Def 27): the bottom schedule is conflict
/// consistent, and the union of the ghost graph with every top schedule's
/// serialization and input orders is acyclic.  Fails with
/// FailedPrecondition when `cs` is not a join.  By Theorem 4 the verdict
/// coincides with Comp-C.
StatusOr<bool> IsJoinConflictConsistent(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_JCC_H_
