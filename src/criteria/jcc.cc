#include "criteria/jcc.h"

#include "core/indexing.h"
#include "core/invocation_graph.h"
#include "criteria/conflict_consistency.h"
#include "graph/cycle_finder.h"

namespace comptx::criteria {

namespace {

/// The unique non-empty level-1 schedule of a join, or invalid if not a
/// join shape.  Schedules without transactions are inert (a generator may
/// emit branches no root happened to use) and are ignored.
ScheduleId BottomScheduleOf(const CompositeSystem& cs,
                            const InvocationGraphResult& ig) {
  ScheduleId bottom;
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    if (cs.schedule(ScheduleId(s)).transactions.empty()) continue;
    if (ig.schedule_level[s] == 1) {
      if (bottom.valid()) return ScheduleId();  // more than one bottom.
      bottom = ScheduleId(s);
    }
  }
  return bottom;
}

}  // namespace

bool IsJoinSystem(const CompositeSystem& cs) {
  auto ig = BuildInvocationGraph(cs);
  if (!ig.ok()) return false;
  if (cs.ScheduleCount() < 2 || ig->order != 2) return false;
  ScheduleId bottom = BottomScheduleOf(cs, *ig);
  if (!bottom.valid()) return false;
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    if (cs.schedule(ScheduleId(s)).transactions.empty()) continue;
    if (ig->schedule_level[s] == 1) continue;
    if (ig->schedule_level[s] != 2) return false;
    // Every operation of a top schedule is a transaction of the bottom.
    for (NodeId op : cs.OperationsOf(ScheduleId(s))) {
      const Node& node = cs.node(op);
      if (!node.IsTransaction() || node.owner_schedule != bottom) return false;
    }
  }
  return true;
}

Relation JoinGhostGraph(const CompositeSystem& cs) {
  auto ig = BuildInvocationGraph(cs);
  COMPTX_CHECK(ig.ok()) << ig.status().ToString();
  ScheduleId bottom = BottomScheduleOf(cs, *ig);
  COMPTX_CHECK(bottom.valid()) << "not a join system";

  Relation ghost;
  // The bottom schedule's serialization order relates its transactions
  // (children of top-level transactions); project each edge onto the
  // parents when they belong to different top schedules (Def 26's i != j).
  ScheduleSerializationOrder(cs, bottom).ForEach([&](NodeId t, NodeId tp) {
    NodeId parent_a = cs.node(t).parent;
    NodeId parent_b = cs.node(tp).parent;
    if (!parent_a.valid() || !parent_b.valid() || parent_a == parent_b) return;
    if (cs.node(parent_a).owner_schedule ==
        cs.node(parent_b).owner_schedule) {
      return;
    }
    ghost.Add(parent_a, parent_b);
  });
  return ghost;
}

StatusOr<bool> IsJoinConflictConsistent(const CompositeSystem& cs) {
  if (!IsJoinSystem(cs)) {
    return Status::FailedPrecondition("not a join architecture (Def 25)");
  }
  auto ig = BuildInvocationGraph(cs);
  COMPTX_RETURN_IF_ERROR(ig.status());
  ScheduleId bottom = BottomScheduleOf(cs, *ig);

  if (!IsScheduleConflictConsistent(cs, bottom)) return false;

  // Union over all top-level transactions: ghost graph + each top
  // schedule's serialization and weak input orders.
  std::vector<NodeId> top_transactions;
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    if (ig->schedule_level[s] != 2) continue;
    const Schedule& sched = cs.schedule(ScheduleId(s));
    top_transactions.insert(top_transactions.end(),
                            sched.transactions.begin(),
                            sched.transactions.end());
  }
  NodeIndexMap index(top_transactions);
  graph::Digraph g = RelationToDigraph(JoinGhostGraph(cs), index);
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    if (ig->schedule_level[s] != 2) continue;
    g.UnionWith(
        RelationToDigraph(ScheduleSerializationOrder(cs, ScheduleId(s)),
                          index));
    g.UnionWith(
        RelationToDigraph(cs.schedule(ScheduleId(s)).weak_input, index));
  }
  return graph::IsAcyclic(g);
}

}  // namespace comptx::criteria
