#ifndef COMPTX_CRITERIA_LLSR_H_
#define COMPTX_CRITERIA_LLSR_H_

#include "core/composite_system.h"
#include "core/relation.h"
#include "graph/digraph.h"

namespace comptx::criteria {

/// Lifts every pair of `base` to all ancestor levels: for (a, b) in `base`,
/// adds (a, b), (parent(a), parent(b)), (parent²(a), parent²(b)), ...,
/// stopping when the endpoints coincide or both are roots.  Returns the
/// resulting digraph over *all* nodes of the system (dense node indices).
///
/// This is the "pull conflicts up unconditionally" semantics shared by the
/// LLSR and OPSR baselines — precisely what the paper's forgetting rule
/// (Def 10.3) improves on.
graph::Digraph PulledUpOrderGraph(const CompositeSystem& cs,
                                  const Relation& base);

/// Level-by-level serializability [Wei91], the multilevel-transaction
/// baseline: every schedule's serialization order is pulled up through all
/// ancestor levels, unioned with every schedule's weak input order, and
/// the execution is accepted iff the resulting graph is acyclic.  Under
/// LLSR's own model assumption (a conflict at one level implies conflicts
/// at all lower levels) this coincides with multilevel serializability;
/// the paper shows it is a proper subset of SCC and hence of Comp-C.
bool IsLevelByLevelSerializable(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_LLSR_H_
