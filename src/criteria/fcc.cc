#include "criteria/fcc.h"

#include "core/invocation_graph.h"
#include "criteria/conflict_consistency.h"

namespace comptx::criteria {

bool IsForkSystem(const CompositeSystem& cs) {
  auto ig = BuildInvocationGraph(cs);
  if (!ig.ok()) return false;
  if (cs.ScheduleCount() < 2 || ig->order != 2) return false;
  // Exactly one level-2 schedule (the fork point); all others level 1.
  uint32_t top_count = 0;
  for (uint32_t level : ig->schedule_level) {
    if (level == 2) {
      ++top_count;
    } else if (level != 1) {
      return false;
    }
  }
  if (top_count != 1) return false;
  // The top schedule's operations must all be transactions (of the leaf
  // schedules); leaf schedules' operations must all be leaves (level 1).
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const bool is_top = ig->schedule_level[s] == 2;
    for (NodeId op : cs.OperationsOf(ScheduleId(s))) {
      if (is_top != cs.node(op).IsTransaction()) return false;
    }
  }
  return true;
}

StatusOr<bool> IsForkConflictConsistent(const CompositeSystem& cs) {
  if (!IsForkSystem(cs)) {
    return Status::FailedPrecondition("not a fork architecture (Def 23)");
  }
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    if (!IsScheduleConflictConsistent(cs, ScheduleId(s))) return false;
  }
  return true;
}

}  // namespace comptx::criteria
