#include "criteria/llsr.h"

#include "core/indexing.h"
#include "criteria/conflict_consistency.h"
#include "graph/cycle_finder.h"

namespace comptx::criteria {

graph::Digraph PulledUpOrderGraph(const CompositeSystem& cs,
                                  const Relation& base) {
  graph::Digraph g(cs.NodeCount());
  base.ForEach([&](NodeId a, NodeId b) {
    NodeId x = a;
    NodeId y = b;
    while (x != y) {
      g.AddEdge(x.index(), y.index());
      NodeId px = cs.node(x).parent;
      NodeId py = cs.node(y).parent;
      if (!px.valid() && !py.valid()) break;  // both roots.
      x = px.valid() ? px : x;
      y = py.valid() ? py : y;
    }
  });
  return g;
}

bool IsLevelByLevelSerializable(const CompositeSystem& cs) {
  Relation base;
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    base.UnionWith(ScheduleSerializationOrder(cs, ScheduleId(s)));
    base.UnionWith(cs.schedule(ScheduleId(s)).weak_input);
  }
  // Multilevel transactions respect program order: each transaction's
  // intra orders are requirements every level must honor.
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    if (n.IsTransaction()) base.UnionWith(n.weak_intra);
  }
  return graph::IsAcyclic(PulledUpOrderGraph(cs, base));
}

}  // namespace comptx::criteria
