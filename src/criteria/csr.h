#ifndef COMPTX_CRITERIA_CSR_H_
#define COMPTX_CRITERIA_CSR_H_

#include "core/composite_system.h"

namespace comptx::criteria {

/// Flat (classical) conflict serializability of the whole composite
/// execution, as a scheduler with no knowledge of the component hierarchy
/// would judge it: every leaf-level conflict induces a serialization edge
/// between the *root* transactions involved, and the execution is accepted
/// iff that root-level graph, together with the root schedules' weak input
/// orders, is acyclic.
///
/// This is the baseline the paper's introduction argues against: it cannot
/// exploit semantic commutativity declared at inner schedules, so it
/// rejects executions that Comp-C accepts (experiment E4).
bool IsFlatConflictSerializable(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_CSR_H_
