#ifndef COMPTX_CRITERIA_FCC_H_
#define COMPTX_CRITERIA_FCC_H_

#include "core/composite_system.h"
#include "util/status_or.h"

namespace comptx::criteria {

/// True iff `cs` is a fork architecture (Def 23): one top schedule S_F
/// whose operations are the transactions of n disjoint leaf schedules
/// S_1..S_n; operations at different S_i never conflict (guaranteed by the
/// model: conflicts are declared per schedule).
bool IsForkSystem(const CompositeSystem& cs);

/// Fork conflict consistency (Def 24): S_F is conflict consistent and each
/// leaf schedule's serialization ∪ input order union is acyclic (i.e.,
/// each S_i is conflict consistent; the branches share no transactions, so
/// the union across branches is acyclic iff each branch is).  Fails with
/// FailedPrecondition when `cs` is not a fork.  By Theorem 3, the verdict
/// coincides with Comp-C.
StatusOr<bool> IsForkConflictConsistent(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_FCC_H_
