#include "criteria/csr.h"

#include "core/indexing.h"
#include "graph/cycle_finder.h"

namespace comptx::criteria {

bool IsFlatConflictSerializable(const CompositeSystem& cs) {
  NodeIndexMap roots(cs.Roots());
  graph::Digraph g(roots.size());
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    Relation closed_output =
        ClosureWithin(sched.weak_output, cs.OperationsOf(ScheduleId(s)));
    sched.conflicts.ForEach([&](NodeId o1, NodeId o2) {
      if (!cs.node(o1).IsLeaf() || !cs.node(o2).IsLeaf()) return;
      if (cs.SemanticallyCommutes(o1, o2)) return;
      NodeId r1 = cs.RootOf(o1);
      NodeId r2 = cs.RootOf(o2);
      if (r1 == r2) return;
      if (closed_output.Contains(o1, o2)) {
        g.AddEdge(roots.LocalOf(r1), roots.LocalOf(r2));
      }
      if (closed_output.Contains(o2, o1)) {
        g.AddEdge(roots.LocalOf(r2), roots.LocalOf(r1));
      }
    });
    // Weak input orders between root transactions are temporal/ordering
    // requirements the flat scheduler must also honor.
    sched.weak_input.ForEach([&](NodeId t1, NodeId t2) {
      if (cs.node(t1).IsRoot() && cs.node(t2).IsRoot()) {
        g.AddEdge(roots.LocalOf(t1), roots.LocalOf(t2));
      }
    });
  }
  return graph::IsAcyclic(g);
}

}  // namespace comptx::criteria
