#ifndef COMPTX_CRITERIA_OPSR_H_
#define COMPTX_CRITERIA_OPSR_H_

#include "core/composite_system.h"

namespace comptx::criteria {

/// Order-preserving serializability [BBG89] as a checker over composite
/// executions: like LLSR, but the *entire* weak output order of every
/// schedule (projected onto distinct parent transactions) is pulled up
/// through all ancestor levels — not only the conflicting pairs.  An
/// order-preserving scheduler must keep the produced order of its
/// operations even when they commute, which is exactly the extra
/// restriction [ABFS97] shows makes OPSR a proper subset of SCC.
bool IsOrderPreservingSerializable(const CompositeSystem& cs);

}  // namespace comptx::criteria

#endif  // COMPTX_CRITERIA_OPSR_H_
