#include "criteria/compare.h"

#include "core/correctness.h"
#include "criteria/csr.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/llsr.h"
#include "criteria/opsr.h"
#include "criteria/scc.h"
#include "util/string_util.h"

namespace comptx::criteria {

std::string CriteriaVerdicts::ToString() const {
  auto yn = [](bool b) { return b ? "yes" : "no"; };
  std::string out = StrCat("comp_c=", yn(comp_c), " llsr=", yn(llsr),
                           " opsr=", yn(opsr), " flat_csr=", yn(flat_csr));
  if (scc) out += StrCat(" scc=", yn(*scc));
  if (fcc) out += StrCat(" fcc=", yn(*fcc));
  if (jcc) out += StrCat(" jcc=", yn(*jcc));
  return out;
}

StatusOr<CriteriaVerdicts> EvaluateAllCriteria(const CompositeSystem& cs) {
  COMPTX_RETURN_IF_ERROR(cs.Validate());
  CriteriaVerdicts v;
  ReductionOptions options;
  options.validate = false;  // already validated above.
  options.keep_fronts = false;
  COMPTX_ASSIGN_OR_RETURN(CompCResult comp_c, CheckCompC(cs, options));
  v.comp_c = comp_c.correct;
  v.llsr = IsLevelByLevelSerializable(cs);
  v.opsr = IsOrderPreservingSerializable(cs);
  v.flat_csr = IsFlatConflictSerializable(cs);
  if (IsStackSystem(cs)) {
    COMPTX_ASSIGN_OR_RETURN(bool scc, IsStackConflictConsistent(cs));
    v.scc = scc;
  }
  if (IsForkSystem(cs)) {
    COMPTX_ASSIGN_OR_RETURN(bool fcc, IsForkConflictConsistent(cs));
    v.fcc = fcc;
  }
  if (IsJoinSystem(cs)) {
    COMPTX_ASSIGN_OR_RETURN(bool jcc, IsJoinConflictConsistent(cs));
    v.jcc = jcc;
  }
  return v;
}

}  // namespace comptx::criteria
