#include "criteria/opsr.h"

#include "core/indexing.h"
#include "criteria/llsr.h"
#include "graph/cycle_finder.h"

namespace comptx::criteria {

bool IsOrderPreservingSerializable(const CompositeSystem& cs) {
  Relation base;
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    Relation closed_output =
        ClosureWithin(sched.weak_output, cs.OperationsOf(ScheduleId(s)));
    // Every produced order is preserved, conflicting or not — including
    // orders between operations of one transaction (program order).  The
    // pull-up walks from the operations themselves to their ancestors.
    closed_output.ForEach([&](NodeId o1, NodeId o2) { base.Add(o1, o2); });
    base.UnionWith(sched.weak_input);
  }
  return graph::IsAcyclic(PulledUpOrderGraph(cs, base));
}

}  // namespace comptx::criteria
