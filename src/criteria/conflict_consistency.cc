#include "criteria/conflict_consistency.h"

#include "core/indexing.h"
#include "graph/cycle_finder.h"
#include "util/string_util.h"

namespace comptx::criteria {

Relation ScheduleSerializationOrder(const CompositeSystem& cs,
                                    ScheduleId sid) {
  const Schedule& s = cs.schedule(sid);
  Relation closed_output = ClosureWithin(s.weak_output, cs.OperationsOf(sid));
  Relation ser;
  s.conflicts.ForEach([&](NodeId o1, NodeId o2) {
    if (cs.SemanticallyCommutes(o1, o2)) return;
    NodeId t1 = cs.node(o1).parent;
    NodeId t2 = cs.node(o2).parent;
    if (t1 == t2) return;
    if (closed_output.Contains(o1, o2)) ser.Add(t1, t2);
    if (closed_output.Contains(o2, o1)) ser.Add(t2, t1);
  });
  return ser;
}

std::optional<CycleWitness> FindScheduleCCViolation(const CompositeSystem& cs,
                                                    ScheduleId sid) {
  const Schedule& s = cs.schedule(sid);
  NodeIndexMap index(s.transactions);
  graph::Digraph g = RelationToDigraph(ScheduleSerializationOrder(cs, sid),
                                       index);
  g.UnionWith(RelationToDigraph(s.weak_input, index));
  auto cycle = graph::FindCycle(g);
  if (!cycle) return std::nullopt;
  CycleWitness witness;
  for (uint32_t local : *cycle) witness.nodes.push_back(index.GlobalOf(local));
  witness.description =
      StrCat("schedule ", s.name, " is not conflict consistent: ",
             cycle->size(), "-transaction cycle in serialization ∪ input");
  return witness;
}

bool IsScheduleConflictConsistent(const CompositeSystem& cs, ScheduleId sid) {
  return !FindScheduleCCViolation(cs, sid).has_value();
}

bool IsScheduleConflictSerializable(const CompositeSystem& cs,
                                    ScheduleId sid) {
  const Schedule& s = cs.schedule(sid);
  NodeIndexMap index(s.transactions);
  graph::Digraph g = RelationToDigraph(ScheduleSerializationOrder(cs, sid),
                                       index);
  return graph::IsAcyclic(g);
}

}  // namespace comptx::criteria
