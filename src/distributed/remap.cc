#include "distributed/remap.h"

#include "core/ids.h"
#include "service/protocol.h"
#include "util/string_util.h"

namespace comptx::distributed {

using workload::TraceEvent;
using workload::TraceEventKind;

void AppendDeltaEntry(std::string& delta, DeltaKind kind, uint32_t remote,
                      uint32_t local) {
  delta.push_back(static_cast<char>(kind));
  service::AppendVarint(delta, remote);
  service::AppendVarint(delta, local);
}

StatusOr<std::vector<DeltaEntry>> ParseDelta(const std::string& delta) {
  std::vector<DeltaEntry> entries;
  size_t pos = 0;
  while (pos < delta.size()) {
    DeltaEntry entry;
    const uint8_t kind = static_cast<uint8_t>(delta[pos++]);
    if (kind > static_cast<uint8_t>(DeltaKind::kRoot)) {
      return Status::InvalidArgument(
          StrCat("unknown mapping delta kind ", kind));
    }
    entry.kind = static_cast<DeltaKind>(kind);
    uint64_t value = 0;
    COMPTX_RETURN_IF_ERROR(service::ReadVarint(delta, pos, value));
    entry.remote = static_cast<uint32_t>(value);
    COMPTX_RETURN_IF_ERROR(service::ReadVarint(delta, pos, value));
    entry.local = static_cast<uint32_t>(value);
    entries.push_back(entry);
  }
  return entries;
}

uint32_t SessionRemapper::Lookup(const std::vector<uint32_t>& map,
                                 uint32_t remote) {
  return remote < map.size() ? map[remote] : kInvalidIndex;
}

SessionRemapper::BatchResult SessionRemapper::RemapBatch(
    uint64_t edge, const std::vector<TraceEvent>& events) {
  BatchResult result;
  EdgeTables& tables = TablesFor(edge);
  for (const TraceEvent& event : events) {
    Remapped remapped = RemapOne(tables, result.delta, event);
    switch (remapped.disposition) {
      case Disposition::kForward:
        result.events.push_back(std::move(remapped.event));
        break;
      case Disposition::kDedup:
        ++result.deduped;
        break;
      case Disposition::kReject:
        ++result.rejected;
        break;
    }
  }
  return result;
}

SessionRemapper::Remapped SessionRemapper::RemapOne(EdgeTables& tables,
                                                    std::string& delta,
                                                    const TraceEvent& event) {
  Remapped out;
  out.event = event;
  TraceEvent& e = out.event;

  // One creation event = one new remote index on this edge, whether the
  // entity is new locally (forward) or already known (dedup) — either
  // way the table entry (and its delta record) must exist so later
  // references resolve.  A shadow-rejected creation maps to
  // kInvalidIndex, poisoning only references to that entity.
  const auto reject = [&out] {
    out.disposition = Disposition::kReject;
    return out;
  };
  const auto dedup = [&out] {
    out.disposition = Disposition::kDedup;
    return out;
  };

  switch (event.kind) {
    case TraceEventKind::kSchedule: {
      const uint32_t remote = static_cast<uint32_t>(tables.schedules.size());
      auto it = sched_by_name_.find(event.name);
      if (it != sched_by_name_.end()) {
        tables.schedules.push_back(it->second);
        AppendDeltaEntry(delta, DeltaKind::kSchedule, remote, it->second);
        return dedup();
      }
      const uint32_t local = static_cast<uint32_t>(shadow_.ScheduleCount());
      shadow_.AddSchedule(event.name);
      sched_by_name_.emplace(event.name, local);
      tables.schedules.push_back(local);
      AppendDeltaEntry(delta, DeltaKind::kSchedule, remote, local);
      return out;
    }

    case TraceEventKind::kRoot: {
      const uint32_t remote_node = static_cast<uint32_t>(tables.nodes.size());
      const uint32_t remote_root = static_cast<uint32_t>(tables.roots.size());
      auto it = node_by_name_.find(event.name);
      if (it != node_by_name_.end()) {
        // A refetch of the crash window, or a root broadcast by two
        // children.  Map both the node index and the root ordinal.
        const auto ord = root_ord_by_node_.find(it->second);
        const uint32_t local_ord = ord != root_ord_by_node_.end()
                                       ? ord->second
                                       : kInvalidIndex;
        tables.nodes.push_back(it->second);
        tables.roots.push_back(local_ord);
        AppendDeltaEntry(delta, DeltaKind::kNode, remote_node, it->second);
        AppendDeltaEntry(delta, DeltaKind::kRoot, remote_root, local_ord);
        return dedup();
      }
      e.schedule = Lookup(tables.schedules, event.schedule);
      const uint32_t local = static_cast<uint32_t>(shadow_.NodeCount());
      uint32_t local_ord = kInvalidIndex;
      if (e.schedule == kInvalidIndex ||
          !workload::ApplyTraceEvent(shadow_, e).ok()) {
        tables.nodes.push_back(kInvalidIndex);
        tables.roots.push_back(kInvalidIndex);
        AppendDeltaEntry(delta, DeltaKind::kNode, remote_node, kInvalidIndex);
        AppendDeltaEntry(delta, DeltaKind::kRoot, remote_root, kInvalidIndex);
        return reject();
      }
      local_ord = static_cast<uint32_t>(local_root_ords_.size());
      local_root_ords_.push_back(local);
      root_ord_by_node_.emplace(local, local_ord);
      node_by_name_.emplace(event.name, local);
      tables.nodes.push_back(local);
      tables.roots.push_back(local_ord);
      AppendDeltaEntry(delta, DeltaKind::kNode, remote_node, local);
      AppendDeltaEntry(delta, DeltaKind::kRoot, remote_root, local_ord);
      return out;
    }

    case TraceEventKind::kSub:
    case TraceEventKind::kLeaf: {
      const uint32_t remote_node = static_cast<uint32_t>(tables.nodes.size());
      auto it = node_by_name_.find(event.name);
      if (it != node_by_name_.end()) {
        tables.nodes.push_back(it->second);
        AppendDeltaEntry(delta, DeltaKind::kNode, remote_node, it->second);
        return dedup();
      }
      e.parent = Lookup(tables.nodes, event.parent);
      if (event.kind == TraceEventKind::kSub) {
        e.schedule = Lookup(tables.schedules, event.schedule);
      }
      const uint32_t local = static_cast<uint32_t>(shadow_.NodeCount());
      if (e.parent == kInvalidIndex ||
          (event.kind == TraceEventKind::kSub &&
           e.schedule == kInvalidIndex) ||
          !workload::ApplyTraceEvent(shadow_, e).ok()) {
        tables.nodes.push_back(kInvalidIndex);
        AppendDeltaEntry(delta, DeltaKind::kNode, remote_node, kInvalidIndex);
        return reject();
      }
      node_by_name_.emplace(event.name, local);
      tables.nodes.push_back(local);
      AppendDeltaEntry(delta, DeltaKind::kNode, remote_node, local);
      return out;
    }

    case TraceEventKind::kConflict:
    case TraceEventKind::kWeakOutput:
    case TraceEventKind::kStrongOutput: {
      e.a = Lookup(tables.nodes, event.a);
      e.b = Lookup(tables.nodes, event.b);
      if (e.a == kInvalidIndex || e.b == kInvalidIndex ||
          !workload::ApplyTraceEvent(shadow_, e).ok()) {
        return reject();
      }
      return out;
    }

    case TraceEventKind::kWeakInput:
    case TraceEventKind::kStrongInput: {
      e.schedule = Lookup(tables.schedules, event.schedule);
      e.a = Lookup(tables.nodes, event.a);
      e.b = Lookup(tables.nodes, event.b);
      if (e.schedule == kInvalidIndex || e.a == kInvalidIndex ||
          e.b == kInvalidIndex ||
          !workload::ApplyTraceEvent(shadow_, e).ok()) {
        return reject();
      }
      return out;
    }

    case TraceEventKind::kIntraWeak:
    case TraceEventKind::kIntraStrong: {
      e.parent = Lookup(tables.nodes, event.parent);
      e.a = Lookup(tables.nodes, event.a);
      e.b = Lookup(tables.nodes, event.b);
      if (e.parent == kInvalidIndex || e.a == kInvalidIndex ||
          e.b == kInvalidIndex ||
          !workload::ApplyTraceEvent(shadow_, e).ok()) {
        return reject();
      }
      return out;
    }

    case TraceEventKind::kAdtDecl: {
      const uint32_t remote = static_cast<uint32_t>(tables.adts.size());
      if (shadow_.HasSpec()) {
        const uint32_t existing = shadow_.spec()->FindAdt(event.name);
        if (existing != kInvalidIndex) {
          tables.adts.push_back(existing);
          AppendDeltaEntry(delta, DeltaKind::kAdt, remote, existing);
          return dedup();
        }
      }
      auto declared = shadow_.DeclareAdt(event.name);
      if (!declared.ok()) {
        tables.adts.push_back(kInvalidIndex);
        AppendDeltaEntry(delta, DeltaKind::kAdt, remote, kInvalidIndex);
        return reject();
      }
      tables.adts.push_back(*declared);
      AppendDeltaEntry(delta, DeltaKind::kAdt, remote, *declared);
      return out;
    }

    case TraceEventKind::kAdtOp: {
      const uint32_t remote = static_cast<uint32_t>(tables.classes.size());
      e.a = Lookup(tables.adts, event.a);
      if (e.a != kInvalidIndex && shadow_.HasSpec()) {
        const uint32_t existing = shadow_.spec()->FindClass(e.a, event.name);
        if (existing != kInvalidIndex) {
          tables.classes.push_back(existing);
          AppendDeltaEntry(delta, DeltaKind::kClass, remote, existing);
          return dedup();
        }
      }
      if (e.a == kInvalidIndex) {
        tables.classes.push_back(kInvalidIndex);
        AppendDeltaEntry(delta, DeltaKind::kClass, remote, kInvalidIndex);
        return reject();
      }
      auto declared = shadow_.DeclareAdtOp(e.a, event.name);
      if (!declared.ok()) {
        tables.classes.push_back(kInvalidIndex);
        AppendDeltaEntry(delta, DeltaKind::kClass, remote, kInvalidIndex);
        return reject();
      }
      tables.classes.push_back(*declared);
      AppendDeltaEntry(delta, DeltaKind::kClass, remote, *declared);
      return out;
    }

    case TraceEventKind::kCommute:
    case TraceEventKind::kClash: {
      e.a = Lookup(tables.classes, event.a);
      e.b = Lookup(tables.classes, event.b);
      if (e.a == kInvalidIndex || e.b == kInvalidIndex) return reject();
      const CommuteEntry want = event.kind == TraceEventKind::kCommute
                                    ? CommuteEntry::kCommutes
                                    : CommuteEntry::kConflicts;
      if (shadow_.HasSpec() && shadow_.spec()->Lookup(e.a, e.b) == want) {
        return dedup();  // a broadcast copy of an entry we already hold
      }
      const Status declared = event.kind == TraceEventKind::kCommute
                                  ? shadow_.DeclareCommute(e.a, e.b)
                                  : shadow_.DeclareClash(e.a, e.b);
      if (!declared.ok()) return reject();
      return out;
    }

    case TraceEventKind::kTag: {
      e.parent = Lookup(tables.nodes, event.parent);
      e.a = Lookup(tables.classes, event.a);
      // ADT instance ids (e.b) are global in the source trace, so they
      // pass through untranslated — two children tagging operations with
      // the same instance id really do share that instance, which is how
      // cross-child semantic conflicts stay visible at the parent.
      if (e.parent == kInvalidIndex || e.a == kInvalidIndex ||
          !workload::ApplyTraceEvent(shadow_, e).ok()) {
        return reject();
      }
      return out;
    }

    case TraceEventKind::kCommit:
    case TraceEventKind::kCommitThrough:
      // Never published on ORDER_STREAM (commits travel through the 2PC
      // path); tolerate and drop.
      return dedup();
  }
  return reject();
}

Status SessionRemapper::ApplyLocal(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kCommit:
    case TraceEventKind::kCommitThrough:
      return Status::OK();
    case TraceEventKind::kSchedule: {
      const uint32_t local = static_cast<uint32_t>(shadow_.ScheduleCount());
      shadow_.AddSchedule(event.name);
      sched_by_name_.emplace(event.name, local);
      return Status::OK();
    }
    case TraceEventKind::kRoot: {
      const uint32_t local = static_cast<uint32_t>(shadow_.NodeCount());
      COMPTX_RETURN_IF_ERROR(workload::ApplyTraceEvent(shadow_, event));
      const uint32_t ord = static_cast<uint32_t>(local_root_ords_.size());
      local_root_ords_.push_back(local);
      root_ord_by_node_.emplace(local, ord);
      node_by_name_.emplace(event.name, local);
      return Status::OK();
    }
    case TraceEventKind::kSub:
    case TraceEventKind::kLeaf: {
      const uint32_t local = static_cast<uint32_t>(shadow_.NodeCount());
      COMPTX_RETURN_IF_ERROR(workload::ApplyTraceEvent(shadow_, event));
      node_by_name_.emplace(event.name, local);
      return Status::OK();
    }
    default:
      return workload::ApplyTraceEvent(shadow_, event);
  }
}

Status SessionRemapper::FoldDelta(uint64_t edge, const std::string& delta) {
  COMPTX_ASSIGN_OR_RETURN(std::vector<DeltaEntry> entries, ParseDelta(delta));
  EdgeTables& tables = TablesFor(edge);
  for (const DeltaEntry& entry : entries) {
    std::vector<uint32_t>* map = nullptr;
    switch (entry.kind) {
      case DeltaKind::kNode:
        map = &tables.nodes;
        break;
      case DeltaKind::kSchedule:
        map = &tables.schedules;
        break;
      case DeltaKind::kAdt:
        map = &tables.adts;
        break;
      case DeltaKind::kClass:
        map = &tables.classes;
        break;
      case DeltaKind::kRoot:
        map = &tables.roots;
        break;
    }
    if (entry.remote != map->size()) {
      return Status::Internal(
          StrCat("mapping delta for edge ", edge, " is out of order: kind ",
                 static_cast<int>(entry.kind), " remote ", entry.remote,
                 " but table holds ", map->size()));
    }
    map->push_back(entry.local);
  }
  return Status::OK();
}

uint64_t SessionRemapper::ChildWatermark(uint64_t edge, uint64_t k) const {
  auto it = edges_.find(edge);
  if (it == edges_.end()) return 0;
  uint64_t count = 0;
  for (const uint32_t ord : it->second.roots) {
    if (ord != kInvalidIndex && ord < k) ++count;
  }
  return count;
}

}  // namespace comptx::distributed
