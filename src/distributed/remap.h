#ifndef COMPTX_DISTRIBUTED_REMAP_H_
#define COMPTX_DISTRIBUTED_REMAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/composite_system.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::distributed {

/// Index translation for one upstream edge of a distributed composite
/// topology (DESIGN.md §15).
///
/// Every comptx_serve process certifies its partition of the composite
/// trace under its own dense creation-order index space.  When a parent
/// subscribes to a child's ORDER_STREAM, the events arrive with the
/// *child's* indices; before they can be fed to the parent's certifier
/// "as if local" they must be rewritten into the parent session's index
/// space.  The SessionRemapper owns the parent-side state of that
/// rewrite:
///
///   - a *shadow* CompositeSystem mirroring the parent certifier's
///     accumulated system, used to allocate the next local index for each
///     creation event and to pre-validate relation events (an event the
///     shadow rejects would also be rejected by the certifier, so it is
///     dropped before it can poison the session);
///   - session-global name→index maps, so an entity broadcast by several
///     children (schedule declarations, ADT specs) merges into one local
///     entity instead of colliding — this is what turns N per-child
///     schedules of the same name into one shared "meet" schedule at the
///     parent, exactly the configuration the paper's pull-up rules are
///     about;
///   - per-edge index maps (EdgeTables) giving each remote index its
///     local meaning, plus the remote-root-ordinal → local-root-ordinal
///     map the two-phase commit uses to translate a parent commit
///     watermark k into each child's watermark (child roots arrive in
///     child ordinal order, so their local ordinals are monotone in the
///     child's and a parent prefix maps to a child prefix).
///
/// Durability: every table entry added while remapping a batch is also
/// serialized into a MappingDelta blob, which the session WAL persists in
/// the batch's kStreamCursor record (durability/wal.h).  Recovery replays
/// the WAL events through ApplyLocal (rebuilding the shadow and the name
/// maps) and folds each cursor record's delta back into its edge's tables
/// (FoldDelta), so a restarted parent resumes every edge from its durable
/// cursor with byte-identical translation state.
class SessionRemapper {
 public:
  /// What became of one remapped event.
  enum class Disposition : uint8_t {
    kForward,  // remapped in place; feed it to the certifier
    kDedup,    // an entity this session already has (broadcast copy or
               // crash-window refetch); tables updated, event dropped
    kReject,   // the shadow refused it; event dropped and counted
  };

  struct Remapped {
    Disposition disposition = Disposition::kForward;
    workload::TraceEvent event;  // valid when disposition == kForward
  };

  struct BatchResult {
    std::vector<workload::TraceEvent> events;  // forwarded, in order
    uint64_t deduped = 0;
    uint64_t rejected = 0;
    std::string delta;  // serialized MappingDelta for the cursor record
  };

  SessionRemapper() = default;

  SessionRemapper(const SessionRemapper&) = delete;
  SessionRemapper& operator=(const SessionRemapper&) = delete;

  /// Remaps one batch arriving on `edge` into the local index space,
  /// recording every new table entry in the returned delta.  Events the
  /// shadow rejects are dropped (counted in `rejected`), not fatal: one
  /// malformed child event must not wedge the edge.
  BatchResult RemapBatch(uint64_t edge,
                         const std::vector<workload::TraceEvent>& events);

  /// Recovery: applies one locally-logged (already remapped) event to the
  /// shadow and the name maps, mirroring what RemapBatch did before the
  /// restart.  Also used for events appended locally (commit watermarks
  /// are ignored — they do not change the system).
  Status ApplyLocal(const workload::TraceEvent& event);

  /// Recovery: folds a persisted MappingDelta back into `edge`'s tables.
  Status FoldDelta(uint64_t edge, const std::string& delta);

  /// Local root-transaction count (the parent's commit_through domain).
  uint64_t LocalRootCount() const { return local_root_ords_.size(); }

  /// The child-side commit watermark for `edge` implied by local
  /// watermark k: the number of `edge` roots whose local ordinal is < k.
  /// Child roots arrive in child ordinal order, so this counts a child
  /// prefix (DESIGN.md §15.3).
  uint64_t ChildWatermark(uint64_t edge, uint64_t k) const;

  const CompositeSystem& shadow() const { return shadow_; }

 private:
  struct EdgeTables {
    std::vector<uint32_t> nodes;      // remote node idx -> local
    std::vector<uint32_t> schedules;  // remote schedule idx -> local
    std::vector<uint32_t> adts;       // remote ADT idx -> local
    std::vector<uint32_t> classes;    // remote class idx -> local
    std::vector<uint32_t> roots;      // remote root ordinal -> local ordinal
  };

  /// Remaps one event under `tables`, appending any new entries to both
  /// the tables and `delta`.
  Remapped RemapOne(EdgeTables& tables, std::string& delta,
                    const workload::TraceEvent& event);

  /// Looks up remote index `remote` in `map`; kInvalidIndex when the
  /// remote referenced something it never created on this edge.
  static uint32_t Lookup(const std::vector<uint32_t>& map, uint32_t remote);

  EdgeTables& TablesFor(uint64_t edge) { return edges_[edge]; }

  CompositeSystem shadow_;
  std::unordered_map<uint64_t, EdgeTables> edges_;
  std::unordered_map<std::string, uint32_t> node_by_name_;
  std::unordered_map<std::string, uint32_t> sched_by_name_;
  // Local node index -> local root ordinal, and the creation-order list
  // of local root ordinals (its size is the local root count).
  std::unordered_map<uint32_t, uint32_t> root_ord_by_node_;
  std::vector<uint32_t> local_root_ords_;
};

// ---- MappingDelta codec ------------------------------------------------
//
// The opaque blob a kStreamCursor WAL record carries: a sequence of
// [u8 kind][varint remote][varint local] entries, one per table entry the
// batch added.  Kinds follow EdgeTables member order.

enum class DeltaKind : uint8_t {
  kNode = 0,
  kSchedule = 1,
  kAdt = 2,
  kClass = 3,
  kRoot = 4,
};

void AppendDeltaEntry(std::string& delta, DeltaKind kind, uint32_t remote,
                      uint32_t local);

struct DeltaEntry {
  DeltaKind kind = DeltaKind::kNode;
  uint32_t remote = 0;
  uint32_t local = 0;
};

/// Decodes a MappingDelta blob; fails on truncation or an unknown kind.
StatusOr<std::vector<DeltaEntry>> ParseDelta(const std::string& delta);

}  // namespace comptx::distributed

#endif  // COMPTX_DISTRIBUTED_REMAP_H_
