#include "distributed/controller.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "durability/recovery.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::distributed {

using service::CommandKind;
using service::ErrorResponse;
using service::OkResponse;
using service::Request;
using service::Response;
using workload::TraceEvent;
using workload::TraceEventKind;

namespace {

/// "key=value ..." into a map; values may be arbitrary non-space text
/// (host names), so unlike the server's numeric stream options this
/// parser defers typing to the caller.
StatusOr<std::unordered_map<std::string, std::string>> ParseOptions(
    const std::string& text) {
  std::unordered_map<std::string, std::string> options;
  for (const std::string& token : StrSplit(text, ' ')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          StrCat("option '", token, "' is not key=value"));
    }
    options[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return options;
}

StatusOr<uint64_t> RequireUint(
    const std::unordered_map<std::string, std::string>& options,
    const std::string& key) {
  auto it = options.find(key);
  if (it == options.end()) {
    return Status::InvalidArgument(StrCat("missing required option ", key));
  }
  const std::string& value = it->second;
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(
        StrCat(key, "=", value, " is not an unsigned integer"));
  }
  uint64_t parsed = 0;
  for (const char c : value) {
    if (parsed > (~0ull - (c - '0')) / 10) {
      return Status::InvalidArgument(StrCat(key, "=", value, " overflows"));
    }
    parsed = parsed * 10 + (c - '0');
  }
  return parsed;
}

Response StatusResponse(const Status& status) {
  return ErrorResponse(
      status.code() == StatusCode::kNotFound ? "not_found" : "bad_request",
      status.message());
}

}  // namespace

NodeController::NodeController(service::CertificationServer* server,
                               ControllerOptions options)
    : server_(server), options_(std::move(options)) {}

NodeController::~NodeController() {
  // Extract every ingestor under the lock, stop them outside it: Stop()
  // joins a thread that may be blocked in ApplyBatch wanting mu_.
  std::vector<std::unique_ptr<UpstreamIngestor>> ingestors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : sessions_) {
      for (auto& [edge, e] : state.edges) {
        if (e.ingestor != nullptr) ingestors.push_back(std::move(e.ingestor));
      }
    }
  }
  for (auto& ingestor : ingestors) ingestor->Stop();
}

Response NodeController::Handle(const Request& request) {
  switch (request.kind) {
    case CommandKind::kAttach:
      return HandleAttach(request.session, request.options);
    case CommandKind::kDetach:
      return HandleDetach(request.session, request.options);
    case CommandKind::kPrepare:
      return HandlePrepare(request.session, request.options);
    case CommandKind::kDecide:
      return HandleDecide(request.session, request.options);
    default:
      return ErrorResponse("bad_request", "not a distributed command");
  }
}

Status NodeController::RecoverSessionLocked(uint64_t session,
                                            SessionState& state) {
  state.recovered = true;
  if (options_.data_dir.empty()) return Status::OK();
  auto durable =
      durability::ReadSessionDurableState(options_.data_dir, session);
  if (!durable.ok()) {
    // Nothing on disk: a fresh session.
    if (durable.status().code() == StatusCode::kNotFound) return Status::OK();
    return durable.status();
  }
  if (durable->has_snapshot) {
    // Stream sessions are snapshot-exempt, so a snapshot means the
    // session was not opened stream=1 — its WAL is compacted and the
    // remap history is incomplete.
    return Status::FailedPrecondition(
        StrCat("session ", session,
               " has a snapshot; remap state is only recoverable from "
               "stream=1 sessions"));
  }
  for (const durability::WalRecord& record : durable->wal_records) {
    switch (record.type) {
      case durability::WalRecordType::kAppend:
        for (const TraceEvent& event : record.events) {
          COMPTX_RETURN_IF_ERROR(state.remapper.ApplyLocal(event));
        }
        break;
      case durability::WalRecordType::kStreamCursor:
        COMPTX_RETURN_IF_ERROR(
            state.remapper.FoldDelta(record.edge, record.mapping));
        state.recovered_cursors[record.edge] = record.cursor_seq;
        break;
      default:
        break;  // lifecycle markers and commit watermarks carry no
                // translation state
    }
  }
  if (!state.recovered_cursors.empty()) {
    COMPTX_LOG(Info) << "session " << session << " recovered "
                     << state.recovered_cursors.size()
                     << " edge cursor(s) from the WAL";
  }
  return Status::OK();
}

Response NodeController::HandleAttach(uint64_t session,
                                      const std::string& options_text) {
  auto options = ParseOptions(options_text);
  if (!options.ok()) return StatusResponse(options.status());
  auto edge = RequireUint(*options, "edge");
  auto port = RequireUint(*options, "port");
  auto remote = RequireUint(*options, "remote");
  if (!edge.ok()) return StatusResponse(edge.status());
  if (!port.ok()) return StatusResponse(port.status());
  if (!remote.ok()) return StatusResponse(remote.status());
  auto host = options->find("host");
  if (host == options->end()) {
    return ErrorResponse("bad_request", "missing required option host");
  }
  auto local = server_->FindSession(session);
  if (!local.ok()) return StatusResponse(local.status());
  if (!(*local)->stream_enabled()) {
    // The local WAL doubles as the replication log for recovery and as
    // the merged-trace source; both need the full, uncompacted history
    // only stream sessions guarantee.
    return ErrorResponse("bad_request",
                         "ATTACH requires a stream=1 session");
  }

  std::unique_lock<std::mutex> lock(mu_);
  SessionState& state = StateFor(session);
  if (!state.recovered) {
    const Status recovered = RecoverSessionLocked(session, state);
    if (!recovered.ok()) return StatusResponse(recovered);
  }
  auto owner = edge_owner_.find(*edge);
  if (owner != edge_owner_.end()) {
    return ErrorResponse("bad_request",
                         StrCat("edge ", *edge, " already attached to session ",
                                owner->second));
  }
  Edge& e = state.edges[*edge];
  e.config.edge = *edge;
  e.config.local_session = session;
  e.config.remote_session = *remote;
  e.config.host = host->second;
  e.config.port = static_cast<uint16_t>(*port);
  e.config.batch_max = options_.batch_max;
  e.config.poll_wait_ms = options_.poll_wait_ms;
  e.config.backoff_ms = options_.backoff_ms;
  e.config.down_after = options_.down_after;
  auto cursor = state.recovered_cursors.find(*edge);
  e.cursor = cursor != state.recovered_cursors.end() ? cursor->second : 0;
  edge_owner_[*edge] = session;
  e.ingestor = std::make_unique<UpstreamIngestor>(e.config, this,
                                                  &server_->metrics());
  e.ingestor->Start();

  Response response = OkResponse();
  response.fields.emplace_back("edge", StrCat(*edge));
  response.fields.emplace_back("cursor", StrCat(e.cursor));
  return response;
}

Response NodeController::HandleDetach(uint64_t session,
                                      const std::string& options_text) {
  auto options = ParseOptions(options_text);
  if (!options.ok()) return StatusResponse(options.status());
  auto edge = RequireUint(*options, "edge");
  if (!edge.ok()) return StatusResponse(edge.status());

  std::unique_ptr<UpstreamIngestor> ingestor;
  uint64_t cursor = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto state = sessions_.find(session);
    if (state == sessions_.end()) {
      return ErrorResponse("not_found", StrCat("session ", session,
                                               " has no attached edges"));
    }
    auto it = state->second.edges.find(*edge);
    if (it == state->second.edges.end()) {
      return ErrorResponse("not_found", StrCat("edge ", *edge,
                                               " is not attached"));
    }
    ingestor = std::move(it->second.ingestor);
    cursor = it->second.cursor;
    // Remember the cursor: a re-ATTACH of the same edge resumes from it.
    state->second.recovered_cursors[*edge] = cursor;
    state->second.edges.erase(it);
    edge_owner_.erase(*edge);
    cursor_cv_.notify_all();
  }
  if (ingestor != nullptr) ingestor->Stop();
  Response response = OkResponse();
  response.fields.emplace_back("edge", StrCat(*edge));
  response.fields.emplace_back("cursor", StrCat(cursor));
  return response;
}

StatusOr<uint64_t> NodeController::ApplyBatch(
    uint64_t edge, uint64_t from, const std::vector<TraceEvent>& events) {
  std::unique_lock<std::mutex> lock(mu_);
  auto owner = edge_owner_.find(edge);
  if (owner == edge_owner_.end()) {
    return Status::NotFound(StrCat("edge ", edge, " detached"));
  }
  const uint64_t session = owner->second;
  SessionState& state = sessions_[session];
  Edge& e = state.edges[edge];
  if (from != e.cursor + 1) {
    return Status::Internal(StrCat("edge ", edge, " batch from=", from,
                                   " but durable cursor is ", e.cursor));
  }
  // Remap and ingest under one mu_ hold: the WAL interleaves every
  // session's batches with their cursor records in ingest order, and
  // recovery refolds them in that same order — two edges racing between
  // remap and log would break that equivalence.
  SessionRemapper::BatchResult batch = state.remapper.RemapBatch(edge, events);
  const uint64_t new_cursor = from + events.size() - 1;
  COMPTX_RETURN_IF_ERROR(server_->IngestRemote(
      session, std::move(batch.events), edge, new_cursor, batch.delta));
  e.cursor = new_cursor;
  if (batch.deduped > 0) {
    server_->metrics().remote_events_deduped.Add(batch.deduped);
  }
  if (batch.rejected > 0) {
    server_->metrics().remote_remap_drops.Add(batch.rejected);
  }
  cursor_cv_.notify_all();
  return new_cursor;
}

uint64_t NodeController::DurableCursor(uint64_t edge) {
  std::lock_guard<std::mutex> lock(mu_);
  auto owner = edge_owner_.find(edge);
  if (owner == edge_owner_.end()) return 0;
  return sessions_[owner->second].edges[edge].cursor;
}

void NodeController::OnEdgeState(uint64_t edge, bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  auto owner = edge_owner_.find(edge);
  if (owner != edge_owner_.end()) {
    sessions_[owner->second].edges[edge].up = up;
  }
  COMPTX_LOG(Info) << "edge " << edge << (up ? " up" : " down");
  cursor_cv_.notify_all();
}

Response NodeController::HandlePrepare(uint64_t session,
                                       const std::string& options_text) {
  auto options = ParseOptions(options_text);
  if (!options.ok()) return StatusResponse(options.status());
  auto k = RequireUint(*options, "k");
  if (!k.ok()) return StatusResponse(k.status());

  struct ChildPrepare {
    uint64_t edge = 0;
    uint64_t remote_session = 0;
    std::string host;
    uint16_t port = 0;
    uint64_t child_k = 0;
    uint64_t sealed = 0;  // filled by the child's PREPARE reply
  };
  std::vector<ChildPrepare> children;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto state = sessions_.find(session);
    if (state != sessions_.end()) {
      for (const auto& [edge, e] : state->second.edges) {
        ChildPrepare child;
        child.edge = edge;
        child.remote_session = e.config.remote_session;
        child.host = e.config.host;
        child.port = e.config.port;
        child.child_k = state->second.remapper.ChildWatermark(edge, *k);
        if (child.child_k > 0) children.push_back(std::move(child));
      }
    }
  }

  // Phase 1a, top-down: seal each child's subtree through its translated
  // watermark.  Network I/O happens outside mu_ so the edges' ingestors
  // keep draining the very events we are about to wait for.
  for (ChildPrepare& child : children) {
    service::Endpoint endpoint;
    endpoint.host = child.host;
    endpoint.port = child.port;
    auto client =
        service::ServiceClient::Dial(endpoint, service::WireProtocol::kV2);
    if (!client.ok()) {
      return ErrorResponse("prepare_failed",
                           StrCat("edge ", child.edge, ": ",
                                  client.status().message()));
    }
    auto reply = client->Command(CommandKind::kPrepare, child.remote_session,
                                 StrCat("k=", child.child_k));
    if (!reply.ok()) {
      return ErrorResponse("prepare_failed",
                           StrCat("edge ", child.edge, ": ",
                                  reply.status().message()));
    }
    if (!reply->ok) {
      return ErrorResponse("prepare_failed",
                           StrCat("edge ", child.edge, ": ",
                                  (*reply).error_code, ": ",
                                  (*reply).error_message));
    }
    child.sealed = reply->FieldInt("sealed");
  }

  // Phase 1b: wait until each edge has ingested past its child's seal.
  // The child rejects post-seal events touching sealed roots, so cursor
  // >= sealed means every event the child will ever accept for the roots
  // we are about to commit is already in our certifier's queue.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.prepare_timeout_ms);
  for (const ChildPrepare& child : children) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto caught_up = [&]() -> bool {
      auto owner = edge_owner_.find(child.edge);
      if (owner == edge_owner_.end()) return true;  // detached mid-round
      return sessions_[owner->second].edges[child.edge].cursor >=
             child.sealed;
    };
    if (!cursor_cv_.wait_until(lock, deadline, caught_up)) {
      return ErrorResponse(
          "prepare_failed",
          StrCat("edge ", child.edge, " did not reach sealed seq ",
                 child.sealed, " within ", options_.prepare_timeout_ms,
                 "ms (child down?)"));
    }
  }

  // Local seal: commit_through k through the normal append path (one
  // kCommitWatermark WAL record — the durable prepare decision), then a
  // drain barrier so the watermark is applied before we ack.
  TraceEvent commit;
  commit.kind = TraceEventKind::kCommitThrough;
  commit.a = static_cast<uint32_t>(*k);
  const Status appended = server_->Append(session, {commit});
  if (!appended.ok()) {
    return ErrorResponse("prepare_failed", appended.message());
  }
  auto drained = server_->Query(session);
  if (!drained.ok()) {
    return ErrorResponse("prepare_failed", drained.status().message());
  }

  server_->metrics().prepares.Increment();
  uint64_t sealed = 0;
  if (auto local = server_->FindSession(session); local.ok()) {
    sealed = (*local)->StreamWatermark();
  }
  Response response = OkResponse();
  response.fields.emplace_back("k", StrCat(*k));
  response.fields.emplace_back("sealed", StrCat(sealed));
  return response;
}

Response NodeController::HandleDecide(uint64_t session,
                                      const std::string& options_text) {
  auto options = ParseOptions(options_text);
  if (!options.ok()) return StatusResponse(options.status());
  auto k = RequireUint(*options, "k");
  if (!k.ok()) return StatusResponse(k.status());

  struct ChildDecide {
    uint64_t remote_session = 0;
    std::string host;
    uint16_t port = 0;
    uint64_t child_k = 0;
  };
  std::vector<ChildDecide> children;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto state = sessions_.find(session);
    if (state != sessions_.end()) {
      for (const auto& [edge, e] : state->second.edges) {
        const uint64_t child_k =
            state->second.remapper.ChildWatermark(edge, *k);
        if (child_k > 0) {
          children.push_back({e.config.remote_session, e.config.host,
                              e.config.port, child_k});
        }
      }
    }
  }
  // Best-effort fan-out: the decision is already durable everywhere
  // (PREPARE logged it), so a failed DECIDE costs observability, not
  // correctness.
  for (const ChildDecide& child : children) {
    service::Endpoint endpoint;
    endpoint.host = child.host;
    endpoint.port = child.port;
    auto client =
        service::ServiceClient::Dial(endpoint, service::WireProtocol::kV2);
    if (!client.ok()) continue;
    (void)client->Command(CommandKind::kDecide, child.remote_session,
                          StrCat("k=", child.child_k));
  }
  server_->metrics().decides.Increment();
  Response response = OkResponse();
  response.fields.emplace_back("k", StrCat(*k));
  return response;
}

}  // namespace comptx::distributed
