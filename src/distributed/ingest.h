#ifndef COMPTX_DISTRIBUTED_INGEST_H_
#define COMPTX_DISTRIBUTED_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/metrics.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::distributed {

/// Configuration of one upstream edge: which child process/session to
/// pull from, and into which local session the remapped events flow.
struct EdgeConfig {
  uint64_t edge = 0;            // globally unique edge id (the `sub` id)
  uint64_t local_session = 0;   // downstream session fed by this edge
  uint64_t remote_session = 0;  // child's stream session
  std::string host;
  uint16_t port = 0;

  uint64_t batch_max = 256;     // events per STREAM fetch
  uint64_t poll_wait_ms = 500;  // long-poll window; doubles as heartbeat
  uint64_t backoff_ms = 100;    // initial reconnect backoff (doubles to 2s)
  uint32_t down_after = 5;      // consecutive failures before "down"
};

/// The consumer side of one ORDER_STREAM edge: a thread that long-polls
/// the child's STREAM endpoint and hands each fetched batch to its
/// delegate (the NodeController), which remaps and ingests it and owns
/// the durable cursor.
///
/// Delivery protocol (DESIGN.md §15.2): every fetch asks for
/// `from = cursor + 1` and carries `ack = cursor`, so the child can trim
/// its in-memory log to what the parent has durably applied — the
/// parent-side buffering is bounded by one batch, and the child-side
/// buffering by the unacked window.  A reply whose `from` field does not
/// match the request is a gap: the ingestor drops the connection and
/// resubscribes from the durable cursor (counted in edge_resubscribes).
/// The long poll doubles as the heartbeat: any reply — even an empty
/// one — proves the child is alive, and `down_after` consecutive
/// failures mark the edge down until a fetch succeeds again.
class UpstreamIngestor {
 public:
  class Delegate {
   public:
    virtual ~Delegate() = default;

    /// Applies one fetched batch: remap, ingest, advance the durable
    /// cursor to `from + events.size() - 1`.  Returns the new cursor.
    virtual StatusOr<uint64_t> ApplyBatch(
        uint64_t edge, uint64_t from,
        const std::vector<workload::TraceEvent>& events) = 0;

    /// The edge's durable cursor (highest upstream seq applied and
    /// logged); fetches resume from the value + 1.
    virtual uint64_t DurableCursor(uint64_t edge) = 0;

    /// Liveness transitions, for logging and PREPARE fail-fast.
    virtual void OnEdgeState(uint64_t edge, bool up) = 0;
  };

  UpstreamIngestor(EdgeConfig config, Delegate* delegate,
                   service::ServiceMetrics* metrics);
  ~UpstreamIngestor();

  UpstreamIngestor(const UpstreamIngestor&) = delete;
  UpstreamIngestor& operator=(const UpstreamIngestor&) = delete;

  void Start();

  /// Signals the loop and joins the thread.  Bounded by one poll window
  /// plus one backoff sleep.
  void Stop();

  bool up() const { return up_.load(std::memory_order_relaxed); }
  const EdgeConfig& config() const { return config_; }

 private:
  void Loop();

  /// Dials the child and validates the cursor with SUBSCRIBE.
  StatusOr<service::ServiceClient> Connect(uint64_t cursor);

  /// Interruptible sleep; returns false when stopping.
  bool SleepFor(uint64_t ms);

  void SetUp(bool up);

  const EdgeConfig config_;
  Delegate* const delegate_;
  service::ServiceMetrics* const metrics_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> up_{false};
  uint32_t failures_ = 0;  // loop-thread only

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

}  // namespace comptx::distributed

#endif  // COMPTX_DISTRIBUTED_INGEST_H_
