#ifndef COMPTX_DISTRIBUTED_CONTROLLER_H_
#define COMPTX_DISTRIBUTED_CONTROLLER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "distributed/ingest.h"
#include "distributed/remap.h"
#include "service/server.h"

namespace comptx::distributed {

/// Knobs of one node's distributed controller.
struct ControllerOptions {
  /// The server's durability directory.  When non-empty, the first ATTACH
  /// touching a session folds its WAL (events + kStreamCursor records)
  /// back into the remapper, so a restarted node resumes every edge from
  /// its durable cursor with the exact pre-crash translation tables.
  std::string data_dir;

  uint64_t batch_max = 256;
  uint64_t poll_wait_ms = 500;
  uint64_t backoff_ms = 100;
  uint32_t down_after = 5;

  /// PREPARE gives each child this long to seal and the matching edge
  /// cursor this long to catch up before failing the round.
  uint64_t prepare_timeout_ms = 30000;
};

/// The per-process brain of a distributed composite topology node
/// (DESIGN.md §15): owns the upstream edges of every local session,
/// remaps and ingests their streams, and runs the cross-node two-phase
/// commit.  comptx_serve constructs one and injects its Handle() into the
/// server (CertificationServer::SetDistributedHandler), which keeps the
/// service library free of an upward dependency on this one.
///
/// Commands (all carry "key=value ..." options):
///   ATTACH  <session>  edge=<id> host=<h> port=<p> remote=<session>
///           Wires a child's stream session into a local stream session
///           and starts the edge's ingestor.  Edge ids are globally
///           unique across the topology (they double as subscriber ids
///           at the child).  Replies edge=<id> cursor=<durable cursor>.
///   DETACH  <session>  edge=<id>
///   PREPARE <session>  k=<local commit watermark>
///           Multi-shot commit, phase 1 (Chockler & Gotsman style): for
///           every edge, translate k into the child's root-ordinal space
///           and recursively PREPARE the child; wait until the edge
///           cursor passes the child's sealed stream watermark (so every
///           event the child will ever accept for the sealed roots is
///           ingested here); then apply commit_through k locally and
///           drain.  Replies k=<k> sealed=<local stream watermark>.
///   DECIDE  <session>  k=<watermark>
///           Phase 2, informational: fans the decision out to the
///           children so their controllers can log/observe it.  The
///           commit itself became durable at each node during PREPARE
///           (the kCommitWatermark WAL record), so DECIDE carries no
///           recovery obligation.
class NodeController : public UpstreamIngestor::Delegate {
 public:
  NodeController(service::CertificationServer* server,
                 ControllerOptions options);
  ~NodeController() override;

  NodeController(const NodeController&) = delete;
  NodeController& operator=(const NodeController&) = delete;

  /// The server's distributed-command handler (ATTACH/DETACH/PREPARE/
  /// DECIDE); inject via server->SetDistributedHandler.
  service::Response Handle(const service::Request& request);

  // ---- UpstreamIngestor::Delegate ----------------------------------
  StatusOr<uint64_t> ApplyBatch(
      uint64_t edge, uint64_t from,
      const std::vector<workload::TraceEvent>& events) override;
  uint64_t DurableCursor(uint64_t edge) override;
  void OnEdgeState(uint64_t edge, bool up) override;

 private:
  struct Edge {
    EdgeConfig config;
    std::unique_ptr<UpstreamIngestor> ingestor;
    uint64_t cursor = 0;  // durably applied upstream seq
    bool up = false;
  };

  struct SessionState {
    SessionRemapper remapper;
    std::unordered_map<uint64_t, Edge> edges;
    std::unordered_map<uint64_t, uint64_t> recovered_cursors;  // by edge
    bool recovered = false;
  };

  service::Response HandleAttach(uint64_t session, const std::string& options);
  service::Response HandleDetach(uint64_t session, const std::string& options);
  service::Response HandlePrepare(uint64_t session, const std::string& options);
  service::Response HandleDecide(uint64_t session, const std::string& options);

  /// Folds the session's durable WAL into a fresh remapper (events via
  /// ApplyLocal, kStreamCursor records via FoldDelta) and records each
  /// edge's recovered cursor.  Caller holds mu_; runs once per session.
  Status RecoverSessionLocked(uint64_t session, SessionState& state);

  SessionState& StateFor(uint64_t session) { return sessions_[session]; }

  service::CertificationServer* const server_;
  const ControllerOptions options_;

  std::mutex mu_;  // sessions_, edge_owner_, all remap/cursor state
  std::condition_variable cursor_cv_;  // PREPARE waits for cursor advance
  std::unordered_map<uint64_t, SessionState> sessions_;
  std::unordered_map<uint64_t, uint64_t> edge_owner_;  // edge -> session
};

}  // namespace comptx::distributed

#endif  // COMPTX_DISTRIBUTED_CONTROLLER_H_
