#include "distributed/ingest.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "service/protocol.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::distributed {

namespace {
constexpr uint64_t kMaxBackoffMs = 2000;
}  // namespace

UpstreamIngestor::UpstreamIngestor(EdgeConfig config, Delegate* delegate,
                                   service::ServiceMetrics* metrics)
    : config_(std::move(config)), delegate_(delegate), metrics_(metrics) {}

UpstreamIngestor::~UpstreamIngestor() { Stop(); }

void UpstreamIngestor::Start() {
  thread_ = std::thread([this] { Loop(); });
}

void UpstreamIngestor::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

bool UpstreamIngestor::SleepFor(uint64_t ms) {
  std::unique_lock<std::mutex> lock(sleep_mu_);
  sleep_cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
    return stop_.load(std::memory_order_relaxed);
  });
  return !stop_.load(std::memory_order_relaxed);
}

void UpstreamIngestor::SetUp(bool up) {
  if (up_.exchange(up, std::memory_order_relaxed) != up) {
    delegate_->OnEdgeState(config_.edge, up);
  }
}

StatusOr<service::ServiceClient> UpstreamIngestor::Connect(uint64_t cursor) {
  service::Endpoint endpoint;
  endpoint.host = config_.host;
  endpoint.port = config_.port;
  COMPTX_ASSIGN_OR_RETURN(
      service::ServiceClient client,
      service::ServiceClient::Dial(endpoint, service::WireProtocol::kV2));
  COMPTX_ASSIGN_OR_RETURN(
      service::Response reply,
      client.Command(service::CommandKind::kSubscribe, config_.remote_session,
                     StrCat("from=", cursor + 1, " sub=", config_.edge)));
  if (!reply.ok) {
    return Status::FailedPrecondition(
        StrCat("SUBSCRIBE edge ", config_.edge, " from ", cursor + 1,
               " refused: ", reply.error_code, ": ", reply.error_message));
  }
  return client;
}

void UpstreamIngestor::Loop() {
  uint64_t cursor = delegate_->DurableCursor(config_.edge);
  uint64_t backoff = config_.backoff_ms;
  std::optional<service::ServiceClient> client;
  bool resubscribing = false;

  const auto fail = [&](const Status& status, const char* what) {
    COMPTX_LOG(Warn) << "edge " << config_.edge << " " << what << ": "
                     << status;
    client.reset();
    if (++failures_ >= config_.down_after) SetUp(false);
    backoff = std::min(backoff * 2, kMaxBackoffMs);
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    if (!client.has_value()) {
      if (failures_ > 0 && !SleepFor(backoff)) break;
      // The durable cursor may have been advanced by a batch whose apply
      // succeeded right before a connection loss; always resubscribe from
      // the delegate's truth, never from our stale local copy.
      cursor = delegate_->DurableCursor(config_.edge);
      auto connected = Connect(cursor);
      if (!connected.ok()) {
        fail(connected.status(), "connect failed");
        continue;
      }
      client.emplace(std::move(*connected));
      if (resubscribing) {
        metrics_->edge_resubscribes.Increment();
        resubscribing = false;
      }
    }

    auto reply = client->Command(
        service::CommandKind::kStream, config_.remote_session,
        StrCat("from=", cursor + 1, " max=", config_.batch_max,
               " wait_ms=", config_.poll_wait_ms, " ack=", cursor,
               " sub=", config_.edge));
    if (!reply.ok()) {
      resubscribing = true;
      fail(reply.status(), "fetch failed");
      continue;
    }
    if (!reply->ok) {
      // "gap" means the child trimmed past our cursor — impossible while
      // trims follow our own acks, so it (like any other refusal) signals
      // a child that lost state.  Drop the connection and revalidate via
      // SUBSCRIBE; that surfaces the definitive diagnosis.
      resubscribing = true;
      fail(Status::FailedPrecondition(
               StrCat(reply->error_code, ": ", reply->error_message)),
           "fetch refused");
      continue;
    }

    const uint64_t from = reply->FieldInt("from");
    if (from != cursor + 1) {
      resubscribing = true;
      fail(Status::Internal(StrCat("reply from=", from, ", expected ",
                                   cursor + 1)),
           "ordered delivery violated");
      continue;
    }

    std::vector<workload::TraceEvent> events;
    bool parse_ok = true;
    size_t start = 0;
    const std::string& body = reply->body;
    while (start < body.size()) {
      size_t end = body.find('\n', start);
      if (end == std::string::npos) end = body.size();
      auto event = workload::ParseTraceEventLine(body.substr(start, end - start));
      if (!event.ok()) {
        resubscribing = true;
        fail(event.status(), "undecodable stream event");
        parse_ok = false;
        break;
      }
      events.push_back(std::move(*event));
      start = end + 1;
    }
    if (!parse_ok) continue;

    if (!events.empty()) {
      auto applied = delegate_->ApplyBatch(config_.edge, from, events);
      if (!applied.ok()) {
        resubscribing = true;
        fail(applied.status(), "apply failed");
        continue;
      }
      cursor = *applied;
    }
    // Any reply — even an empty heartbeat — proves the child alive.
    failures_ = 0;
    backoff = config_.backoff_ms;
    SetUp(true);
  }
}

}  // namespace comptx::distributed
