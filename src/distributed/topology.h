#ifndef COMPTX_DISTRIBUTED_TOPOLOGY_H_
#define COMPTX_DISTRIBUTED_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "core/ids.h"
#include "service/client.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::distributed {

// ---- topology specs ----------------------------------------------------

/// A process topology: which comptx_serve instances exist and who pulls
/// from whom.  Parsed from the "# comptx-topology v1" text format:
///
///   # comptx-topology v1
///   node root
///   node left
///   node right
///   edge root left
///   edge root right
///
/// `edge P C` means P subscribes to C's ORDER_STREAM (data flows C → P).
/// The spec must be an in-tree: exactly one root (a node that is nobody's
/// child), every other node the child of exactly one parent, no cycles.
/// The tree restriction is what makes the merged event count at the root
/// deterministic — every non-broadcast event travels exactly one path up,
/// so the driver can barrier on an exact stream watermark instead of
/// quiescence heuristics (DESIGN.md §15.4).
struct TopologySpec {
  std::vector<std::string> nodes;
  std::vector<std::pair<uint32_t, uint32_t>> edges;  // (parent, child)

  uint32_t root = 0;
  std::vector<uint32_t> leaves;                // nodes with no children
  std::vector<std::vector<uint32_t>> children; // per node, spec order
  std::vector<uint32_t> parent_of;             // kInvalidIndex at the root

  /// Node index by name; kInvalidIndex when absent.
  uint32_t Find(const std::string& name) const;
};

StatusOr<TopologySpec> ParseTopologySpec(const std::string& text);
StatusOr<TopologySpec> LoadTopologySpec(const std::string& path);

// ---- trace partitioning ------------------------------------------------

/// A full composite trace split across the leaves of a topology
/// (DESIGN.md §15.4).  Execution trees related by any cross-tree event
/// (conflicts, outputs, inputs — or operations tagged with the same ADT
/// instance, which the semantic conflict mask turns into conflicts) are
/// grouped into components with a union-find and each component is
/// assigned whole to one leaf — trees are never split or duplicated,
/// which is what keeps the per-edge root-ordinal prefix property the
/// two-phase commit relies on.  Schedule declarations and the semantic
/// (ADT) events are broadcast to every leaf; the parent-side remapper
/// dedups the copies back into one entity.  kCommit/kCommitThrough
/// events are dropped: in a distributed run the cross-node two-phase
/// commit is the only commit path.
///
/// The partition also *reorders* the trace — broadcasts first, then one
/// component at a time — and slices it into phases only at component
/// boundaries.  That alignment is what makes the multi-shot commit
/// sound: commit_through k after a phase seals exactly the roots of the
/// finished components, and no later phase carries an event that touches
/// a sealed root.  All per-phase counters are cumulative.
struct TracePartition {
  /// leaf_phases[leaf][phase] = that leaf's slice of the phase, with node
  /// indices renumbered into the leaf's dense creation-order space.
  /// (Schedule/ADT/class indices survive unchanged: broadcasts preserve
  /// the full trace's creation order at every leaf.)
  std::vector<std::vector<std::vector<workload::TraceEvent>>> leaf_phases;

  /// Cumulative expected root stream watermark per phase: every
  /// non-broadcast forwarded event once plus every broadcast event once
  /// (the root dedups the other copies).
  std::vector<uint64_t> expected_root_events;

  /// Cumulative kRoot count per phase — the commit watermark the driver
  /// PREPAREs after the phase's barrier.
  std::vector<uint64_t> roots_through;

  uint64_t components = 0;       // union-find components over the trees
  uint64_t broadcast_events = 0; // unique broadcast events in the trace
  uint64_t dropped_commits = 0;  // kCommit/kCommitThrough events dropped
};

/// Partitions `trace` across `leaf_count` leaves into at most `phases`
/// component-aligned phases (fewer when the trace has fewer components).
/// Fails on malformed traces (references to nodes that were never
/// created).
StatusOr<TracePartition> PartitionTrace(
    const std::vector<workload::TraceEvent>& trace, size_t leaf_count,
    size_t phases);

/// Single-phase convenience overload.
StatusOr<TracePartition> PartitionTrace(
    const std::vector<workload::TraceEvent>& trace, size_t leaf_count);

/// Generates `roots` root transactions as ~`group_size`-root independent
/// composite groups — distinct schedules, prefixed names, offset indices
/// — and concatenates their traces.  Within a group everything may
/// conflict; across groups nothing does, so PartitionTrace finds one
/// component per group and can spread them over the leaves and commit
/// them in phases (a single connected system would degenerate to one
/// phase on one leaf).  `disorder` 0 generates order-preserving
/// (certifiable) executions; >0 injects serialization anomalies with
/// that probability.  Shared by comptx_topology, bench_distributed and
/// the distributed tests so they all drive the same workload shape.
StatusOr<std::vector<workload::TraceEvent>> GenerateGroupedTrace(
    uint32_t roots, uint64_t seed, double disorder, uint32_t group_size = 3);

// ---- multi-process runner ----------------------------------------------

struct RunnerOptions {
  std::string serve_binary;  // path to the comptx_serve executable
  std::string data_root;     // per-node dirs are created underneath

  size_t phases = 4;
  uint64_t barrier_timeout_ms = 60000;
  uint64_t spawn_timeout_ms = 15000;

  /// Extra OPEN options appended after "stream=1" (certifier knobs).
  std::string open_options;

  /// Forwarded to every comptx_serve: --fsync (always, so an acked append
  /// survives SIGKILL — the recovery drill depends on it).
  std::string fsync = "always";

  bool verbose = false;  // narrate spawn/attach/barrier steps to stderr
};

struct PhaseVerdict {
  uint64_t k = 0;            // commit watermark sealed after this phase
  uint64_t root_events = 0;  // root stream watermark at the barrier
  bool certifiable = false;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t commit_watermark = 0;
  std::string failure;  // root certifier's failure detail, if any
};

/// Kill drill: SIGKILL `node` right after the phase `after_phase` slice
/// has been appended and drained at the leaves (so the parent holds a
/// partially consumed stream suffix), then respawn it on the same port
/// and data dir.  Recovery rebuilds its sessions and stream logs; the
/// parent's ingestor reconnects and resumes from its durable cursor.
struct DrillConfig {
  std::string node;
  size_t after_phase = 0;
};

struct TopologyReport {
  std::vector<PhaseVerdict> phases;
  /// The root session's full event stream in root index space — the
  /// merged trace, ready for ApplyTraceEvent + the batch oracle.
  std::vector<workload::TraceEvent> merged;
  uint64_t expected_root_events = 0;
  uint64_t total_roots = 0;
  uint64_t resubscribes = 0;  // summed over all nodes' STATS
};

/// Spawns one comptx_serve process per topology node, opens a stream
/// session on each, wires the edges with ATTACH, and drives a partitioned
/// trace through the leaves in phases — barrier on the root's exact
/// stream watermark, then two-phase commit (PREPARE/DECIDE) per phase.
/// Owns the child processes; the destructor SIGKILLs whatever Shutdown
/// did not reap.
class TopologyRunner {
 public:
  TopologyRunner(TopologySpec spec, RunnerOptions options);
  ~TopologyRunner();

  TopologyRunner(const TopologyRunner&) = delete;
  TopologyRunner& operator=(const TopologyRunner&) = delete;

  /// Spawn + open + attach.  After Start() the topology is live.
  Status Start();

  /// Drives `trace` through the topology and reports the per-phase
  /// verdict sequence plus the merged root trace.  `drill`, when given,
  /// runs the SIGKILL/respawn drill at the configured phase.
  StatusOr<TopologyReport> Drive(const std::vector<workload::TraceEvent>& trace,
                                 const DrillConfig* drill = nullptr);

  /// SIGKILL a node's process (no drain; the point is the crash).
  Status Kill(const std::string& node);

  /// Respawn a killed node on its old port and data dir, then re-ATTACH
  /// its outgoing edges (controller state is in-memory; the cursors come
  /// back from the WAL).  Parents reconnect on their own.
  Status Respawn(const std::string& node);

  /// Graceful stop: SHUTDOWN every live node, reap them all.
  Status Shutdown();

  int PortOf(const std::string& node) const;
  uint64_t SessionOf(const std::string& node) const;
  const TopologySpec& spec() const { return spec_; }

 private:
  struct Proc {
    pid_t pid = -1;
    int port = 0;
    uint64_t session = 0;
    std::string dir;        // the node's scratch dir (data/, port, log)
    bool running = false;
  };

  Status Spawn(uint32_t node, int fixed_port);
  StatusOr<int> AwaitPortFile(const std::string& path) const;
  StatusOr<service::ServiceClient> DialNode(uint32_t node) const;
  /// ATTACHes `node`'s outgoing edges at `node` (used by Start and
  /// Respawn; edge ids are stable across respawns).
  Status AttachEdges(uint32_t node);
  Status BarrierOnRoot(uint64_t expected);
  StatusOr<PhaseVerdict> CommitPhase(uint64_t k);
  StatusOr<std::vector<workload::TraceEvent>> FetchMerged(uint64_t expected);
  StatusOr<uint64_t> SumResubscribes();
  void Reap(uint32_t node, bool kill);

  TopologySpec spec_;
  RunnerOptions options_;
  std::vector<Proc> procs_;
  std::vector<uint64_t> edge_ids_;  // parallel to spec_.edges
};

}  // namespace comptx::distributed

#endif  // COMPTX_DISTRIBUTED_TOPOLOGY_H_
