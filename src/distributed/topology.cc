#include "distributed/topology.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <thread>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>

#include "util/string_util.h"
#include "workload/workload_spec.h"

namespace comptx::distributed {

namespace {

using workload::TraceEvent;
using workload::TraceEventKind;

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

bool IsBroadcast(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSchedule:
    case TraceEventKind::kAdtDecl:
    case TraceEventKind::kAdtOp:
    case TraceEventKind::kCommute:
    case TraceEventKind::kClash:
      return true;
    default:
      return false;
  }
}

bool IsCommit(TraceEventKind kind) {
  return kind == TraceEventKind::kCommit ||
         kind == TraceEventKind::kCommitThrough;
}

/// Union-find over full-trace node indices; trees that share any
/// cross-tree event end up in one component.
class UnionFind {
 public:
  uint32_t Add() {
    parent_.push_back(static_cast<uint32_t>(parent_.size()));
    return parent_.back();
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

// ---- topology specs ----------------------------------------------------

uint32_t TopologySpec::Find(const std::string& name) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == name) return static_cast<uint32_t>(i);
  }
  return kInvalidIndex;
}

StatusOr<TopologySpec> ParseTopologySpec(const std::string& text) {
  TopologySpec spec;
  std::unordered_map<std::string, uint32_t> by_name;
  size_t lineno = 0;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0][0] == '#') {
      if (line.find("comptx-topology") != std::string::npos) saw_header = true;
      continue;
    }
    const auto fail = [&](const std::string& why) {
      return Status::InvalidArgument(StrCat("line ", lineno, ": ", why));
    };
    if (tokens[0] == "node") {
      if (tokens.size() != 2) return fail("expected: node <name>");
      if (by_name.count(tokens[1]) > 0) {
        return fail(StrCat("duplicate node '", tokens[1], "'"));
      }
      by_name.emplace(tokens[1], static_cast<uint32_t>(spec.nodes.size()));
      spec.nodes.push_back(tokens[1]);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 3) return fail("expected: edge <parent> <child>");
      const auto parent = by_name.find(tokens[1]);
      const auto child = by_name.find(tokens[2]);
      if (parent == by_name.end()) {
        return fail(StrCat("unknown node '", tokens[1], "'"));
      }
      if (child == by_name.end()) {
        return fail(StrCat("unknown node '", tokens[2], "'"));
      }
      if (parent->second == child->second) {
        return fail(StrCat("self edge on '", tokens[1], "'"));
      }
      spec.edges.emplace_back(parent->second, child->second);
    } else {
      return fail(StrCat("unknown directive '", tokens[0], "'"));
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("missing '# comptx-topology v1' header");
  }
  if (spec.nodes.empty()) {
    return Status::InvalidArgument("topology declares no nodes");
  }

  const size_t n = spec.nodes.size();
  spec.children.assign(n, {});
  spec.parent_of.assign(n, kInvalidIndex);
  for (const auto& [parent, child] : spec.edges) {
    if (spec.parent_of[child] != kInvalidIndex) {
      return Status::InvalidArgument(
          StrCat("node '", spec.nodes[child],
                 "' has two parents; the topology must be an in-tree"));
    }
    spec.parent_of[child] = parent;
    spec.children[parent].push_back(child);
  }
  uint32_t root = kInvalidIndex;
  for (uint32_t i = 0; i < n; ++i) {
    if (spec.parent_of[i] != kInvalidIndex) continue;
    if (root != kInvalidIndex) {
      return Status::InvalidArgument(
          StrCat("two roots: '", spec.nodes[root], "' and '", spec.nodes[i],
                 "'"));
    }
    root = i;
  }
  if (root == kInvalidIndex) {
    return Status::InvalidArgument("no root: the edges form a cycle");
  }
  spec.root = root;
  // Reachability from the root doubles as the cycle check: with n-1 tree
  // edges and one root, an unreachable node implies a cycle elsewhere.
  std::vector<bool> reached(n, false);
  std::vector<uint32_t> stack = {root};
  while (!stack.empty()) {
    const uint32_t at = stack.back();
    stack.pop_back();
    if (reached[at]) continue;
    reached[at] = true;
    for (const uint32_t child : spec.children[at]) stack.push_back(child);
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (!reached[i]) {
      return Status::InvalidArgument(
          StrCat("node '", spec.nodes[i], "' is not reachable from the root"));
    }
    if (spec.children[i].empty()) spec.leaves.push_back(i);
  }
  return spec;
}

StatusOr<TopologySpec> LoadTopologySpec(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTopologySpec(buffer.str());
}

// ---- trace partitioning ------------------------------------------------

StatusOr<TracePartition> PartitionTrace(
    const std::vector<TraceEvent>& trace, size_t leaf_count, size_t phases) {
  if (leaf_count == 0) {
    return Status::InvalidArgument("a topology needs at least one leaf");
  }
  if (phases == 0) phases = 1;

  // Pass 1: build the execution-tree components.  Node-creating events
  // allocate union-find entries; kSub/kLeaf join their parent's tree,
  // every cross-node event unions the trees it touches, and operations
  // tagged with the same ADT instance are unioned too — the semantic
  // conflict mask derives conflicts from shared instances, so splitting
  // them across leaves would hide a conflict from the merged system.
  UnionFind uf;
  const auto check = [&](size_t pos, const char* what,
                         uint32_t idx) -> Status {
    if (idx >= uf.size()) {
      return Status::InvalidArgument(StrCat("event ", pos + 1, ": ", what,
                                            " ", idx, " was never created"));
    }
    return Status::OK();
  };
  // Full-trace node index created by each creation event (by position).
  std::vector<uint32_t> node_of_pos(trace.size(), kInvalidIndex);
  std::unordered_map<uint32_t, uint32_t> instance_owner;  // instance -> node
  for (size_t pos = 0; pos < trace.size(); ++pos) {
    const TraceEvent& event = trace[pos];
    switch (event.kind) {
      case TraceEventKind::kRoot:
        node_of_pos[pos] = uf.Add();
        break;
      case TraceEventKind::kSub:
      case TraceEventKind::kLeaf: {
        COMPTX_RETURN_IF_ERROR(check(pos, "parent node", event.parent));
        const uint32_t node = uf.Add();
        node_of_pos[pos] = node;
        uf.Union(node, event.parent);
        break;
      }
      case TraceEventKind::kConflict:
      case TraceEventKind::kWeakOutput:
      case TraceEventKind::kStrongOutput:
      case TraceEventKind::kWeakInput:
      case TraceEventKind::kStrongInput:
        COMPTX_RETURN_IF_ERROR(check(pos, "node", event.a));
        COMPTX_RETURN_IF_ERROR(check(pos, "node", event.b));
        uf.Union(event.a, event.b);
        break;
      case TraceEventKind::kIntraWeak:
      case TraceEventKind::kIntraStrong:
        COMPTX_RETURN_IF_ERROR(check(pos, "transaction", event.parent));
        COMPTX_RETURN_IF_ERROR(check(pos, "node", event.a));
        COMPTX_RETURN_IF_ERROR(check(pos, "node", event.b));
        uf.Union(event.parent, event.a);
        uf.Union(event.parent, event.b);
        break;
      case TraceEventKind::kTag: {
        COMPTX_RETURN_IF_ERROR(check(pos, "node", event.parent));
        const auto [it, inserted] = instance_owner.emplace(event.b,
                                                           event.parent);
        if (!inserted) uf.Union(event.parent, it->second);
        break;
      }
      default:
        break;  // broadcasts and commits touch no nodes
    }
  }

  // Pass 2: components land whole on one leaf, round-robin in order of
  // their first root transaction.  Never splitting or duplicating a
  // component is what keeps each edge's root ordinals a prefix-preserving
  // map (DESIGN.md §15.3).  The same walk orders the components for the
  // reordered emission and sizes them for the phase cuts.
  TracePartition out;
  std::vector<uint32_t> leaf_of_comp(uf.size(), kInvalidIndex);
  std::vector<uint32_t> order_of_comp(uf.size(), kInvalidIndex);
  std::vector<uint32_t> comp_order;  // component reps, first-root order
  {
    uint32_t next_leaf = 0;
    for (size_t pos = 0; pos < trace.size(); ++pos) {
      if (trace[pos].kind != TraceEventKind::kRoot) continue;
      const uint32_t comp = uf.Find(node_of_pos[pos]);
      if (leaf_of_comp[comp] != kInvalidIndex) continue;
      leaf_of_comp[comp] = next_leaf;
      next_leaf = (next_leaf + 1) % static_cast<uint32_t>(leaf_count);
      order_of_comp[comp] = static_cast<uint32_t>(comp_order.size());
      comp_order.push_back(comp);
    }
    out.components = comp_order.size();
  }

  // Group the event positions: broadcasts first (their relative order
  // carries declaration-before-use), then each component's events in
  // original relative order.  Commits are dropped — the cross-node
  // two-phase commit is the only commit path in a distributed run.
  std::vector<size_t> broadcast_pos;
  std::vector<std::vector<size_t>> comp_pos(comp_order.size());
  for (size_t pos = 0; pos < trace.size(); ++pos) {
    const TraceEvent& event = trace[pos];
    if (IsCommit(event.kind)) {
      ++out.dropped_commits;
      continue;
    }
    if (IsBroadcast(event.kind)) {
      broadcast_pos.push_back(pos);
      continue;
    }
    uint32_t node = kInvalidIndex;
    switch (event.kind) {
      case TraceEventKind::kRoot:
      case TraceEventKind::kSub:
      case TraceEventKind::kLeaf:
        node = node_of_pos[pos];
        break;
      case TraceEventKind::kIntraWeak:
      case TraceEventKind::kIntraStrong:
      case TraceEventKind::kTag:
        node = event.parent;
        break;
      default:
        node = event.a;
        break;
    }
    comp_pos[order_of_comp[uf.Find(node)]].push_back(pos);
  }

  // Phase cuts: component boundaries closest to an even split of the
  // non-broadcast volume.  A phase always absorbs at least one pending
  // component, so the driver's commit watermark advances every phase.
  size_t total = 0;
  for (const auto& positions : comp_pos) total += positions.size();
  phases = std::min(phases, std::max<size_t>(1, comp_pos.size()));
  std::vector<std::vector<uint32_t>> comps_by_phase(phases);
  {
    size_t emitted = 0;
    size_t phase = 0;
    for (uint32_t order = 0; order < comp_pos.size(); ++order) {
      comps_by_phase[phase].push_back(order);
      emitted += comp_pos[order].size();
      const size_t remaining_comps = comp_pos.size() - order - 1;
      // Cut when the even-split target is reached — or when the pending
      // components are exactly enough to give every later phase one
      // (the forced cut; without it, equal-sized components can miss
      // every target and collapse into phase 0).
      if (phase + 1 < phases && remaining_comps > 0 &&
          (emitted >= total * (phase + 1) / phases ||
           remaining_comps == phases - phase - 1)) {
        ++phase;
      }
    }
  }

  // Pass 3: emit the per-leaf, per-phase slices.  Node indices are
  // renumbered into each leaf's dense creation order (the order the
  // driver appends, which is the reordered order); schedule, ADT and
  // class indices are untouched (broadcasts reach every leaf in full
  // trace order, so the leaf-local index equals the full-trace index).
  out.leaf_phases.assign(leaf_count,
                         std::vector<std::vector<TraceEvent>>(phases));
  out.expected_root_events.assign(phases, 0);
  out.roots_through.assign(phases, 0);
  std::vector<uint32_t> local_idx(uf.size(), kInvalidIndex);
  std::vector<uint32_t> leaf_node_count(leaf_count, 0);
  uint64_t forwarded = 0;
  uint64_t roots = 0;
  for (const size_t pos : broadcast_pos) {
    for (auto& slices : out.leaf_phases) slices[0].push_back(trace[pos]);
    ++out.broadcast_events;
    ++forwarded;  // the root dedups all copies past the first
  }
  for (size_t phase = 0; phase < phases; ++phase) {
    for (const uint32_t order : comps_by_phase[phase]) {
      const uint32_t leaf = leaf_of_comp[comp_order[order]];
      for (const size_t pos : comp_pos[order]) {
        const TraceEvent& event = trace[pos];
        TraceEvent local = event;
        const auto map_ref = [&](uint32_t& idx) { idx = local_idx[idx]; };
        switch (event.kind) {
          case TraceEventKind::kRoot:
          case TraceEventKind::kSub:
          case TraceEventKind::kLeaf:
            if (event.kind != TraceEventKind::kRoot) map_ref(local.parent);
            local_idx[node_of_pos[pos]] = leaf_node_count[leaf]++;
            if (event.kind == TraceEventKind::kRoot) ++roots;
            break;
          case TraceEventKind::kConflict:
          case TraceEventKind::kWeakOutput:
          case TraceEventKind::kStrongOutput:
          case TraceEventKind::kWeakInput:
          case TraceEventKind::kStrongInput:
            map_ref(local.a);
            map_ref(local.b);
            break;
          case TraceEventKind::kIntraWeak:
          case TraceEventKind::kIntraStrong:
            map_ref(local.parent);
            map_ref(local.a);
            map_ref(local.b);
            break;
          case TraceEventKind::kTag:
            map_ref(local.parent);
            break;
          default:
            return Status::Internal(
                StrCat("event ", pos + 1, ": unclassified kind"));
        }
        out.leaf_phases[leaf][phase].push_back(std::move(local));
        ++forwarded;
      }
    }
    out.expected_root_events[phase] = forwarded;
    out.roots_through[phase] = roots;
  }
  return out;
}

StatusOr<TracePartition> PartitionTrace(const std::vector<TraceEvent>& trace,
                                        size_t leaf_count) {
  return PartitionTrace(trace, leaf_count, /*phases=*/1);
}

StatusOr<std::vector<TraceEvent>> GenerateGroupedTrace(uint32_t roots,
                                                       uint64_t seed,
                                                       double disorder,
                                                       uint32_t group_size) {
  if (group_size == 0) {
    return Status::InvalidArgument("group_size must be positive");
  }
  std::vector<TraceEvent> merged;
  uint32_t node_offset = 0;
  uint32_t sched_offset = 0;
  for (uint32_t group = 0; roots > 0; ++group) {
    const uint32_t take = std::min<uint32_t>(roots, group_size);
    roots -= take;
    workload::WorkloadSpec spec;
    spec.topology.kind = workload::TopologyKind::kStack;
    spec.topology.depth = 3;
    spec.topology.branches = 2;
    spec.topology.roots = take;
    spec.topology.fanout = 2;
    spec.execution.conflict_prob = 0.15;
    spec.execution.intra_weak_prob = 0.2;
    // Order-preserving schedulers compose correctly (the paper's Thm 2
    // case), so the disorder=0 workload is certifiable and the phased
    // commits actually seal; disorder>0 injects serialization anomalies
    // to exercise the rejecting path instead.
    spec.execution.disorder_prob = disorder;
    spec.execution.order_preserving_outputs = disorder == 0.0;
    COMPTX_ASSIGN_OR_RETURN(CompositeSystem cs,
                            workload::GenerateSystem(spec, seed + group));
    COMPTX_ASSIGN_OR_RETURN(std::string text, workload::SaveTrace(cs));
    COMPTX_ASSIGN_OR_RETURN(std::vector<TraceEvent> events,
                            workload::ParseTraceEvents(text));
    uint32_t nodes = 0;
    uint32_t schedules = 0;
    // Prefixed names and offset indices keep the groups disjoint after
    // concatenation — the parent-side remapper dedups entities by name,
    // so identically named entities across groups would wrongly merge.
    for (TraceEvent& event : events) {
      const auto offset_node = [&](uint32_t& idx) { idx += node_offset; };
      switch (event.kind) {
        case TraceEventKind::kSchedule:
          event.name = StrCat("g", group, ".", event.name);
          ++schedules;
          break;
        case TraceEventKind::kRoot:
          event.name = StrCat("g", group, ".", event.name);
          event.schedule += sched_offset;
          ++nodes;
          break;
        case TraceEventKind::kSub:
          event.name = StrCat("g", group, ".", event.name);
          event.schedule += sched_offset;
          offset_node(event.parent);
          ++nodes;
          break;
        case TraceEventKind::kLeaf:
          event.name = StrCat("g", group, ".", event.name);
          offset_node(event.parent);
          ++nodes;
          break;
        case TraceEventKind::kConflict:
        case TraceEventKind::kWeakOutput:
        case TraceEventKind::kStrongOutput:
          offset_node(event.a);
          offset_node(event.b);
          break;
        case TraceEventKind::kWeakInput:
        case TraceEventKind::kStrongInput:
          event.schedule += sched_offset;
          offset_node(event.a);
          offset_node(event.b);
          break;
        case TraceEventKind::kIntraWeak:
        case TraceEventKind::kIntraStrong:
          offset_node(event.parent);
          offset_node(event.a);
          offset_node(event.b);
          break;
        default:
          return Status::Internal(
              "generator produced an unexpected event kind");
      }
      merged.push_back(std::move(event));
    }
    node_offset += nodes;
    sched_offset += schedules;
  }
  return merged;
}

// ---- multi-process runner ----------------------------------------------

namespace fs = std::filesystem;

TopologyRunner::TopologyRunner(TopologySpec spec, RunnerOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

TopologyRunner::~TopologyRunner() {
  for (uint32_t i = 0; i < procs_.size(); ++i) {
    if (procs_[i].running) Reap(i, /*kill=*/true);
  }
}

Status TopologyRunner::Start() {
  if (options_.serve_binary.empty() || options_.data_root.empty()) {
    return Status::InvalidArgument("serve_binary and data_root are required");
  }
  procs_.resize(spec_.nodes.size());
  edge_ids_.resize(spec_.edges.size());
  // Edge ids double as subscriber ids at the child, so they are unique
  // across the whole topology.
  for (size_t i = 0; i < spec_.edges.size(); ++i) edge_ids_[i] = i + 1;

  for (uint32_t node = 0; node < spec_.nodes.size(); ++node) {
    COMPTX_RETURN_IF_ERROR(Spawn(node, /*fixed_port=*/0));
  }
  for (uint32_t node = 0; node < spec_.nodes.size(); ++node) {
    COMPTX_ASSIGN_OR_RETURN(service::ServiceClient client, DialNode(node));
    std::string options = "stream=1";
    if (!options_.open_options.empty()) {
      options = StrCat(options, " ", options_.open_options);
    }
    COMPTX_ASSIGN_OR_RETURN(procs_[node].session, client.Open(options));
    if (options_.verbose) {
      std::cerr << "[topology] " << spec_.nodes[node] << ": pid "
                << procs_[node].pid << " port " << procs_[node].port
                << " session " << procs_[node].session << "\n";
    }
  }
  for (uint32_t node = 0; node < spec_.nodes.size(); ++node) {
    COMPTX_RETURN_IF_ERROR(AttachEdges(node));
  }
  return Status::OK();
}

Status TopologyRunner::Spawn(uint32_t node, int fixed_port) {
  Proc& proc = procs_[node];
  proc.dir = StrCat(options_.data_root, "/", spec_.nodes[node]);
  std::error_code ec;
  fs::create_directories(StrCat(proc.dir, "/data"), ec);
  if (ec) {
    return Status::Internal(
        StrCat("cannot create ", proc.dir, ": ", ec.message()));
  }
  const std::string port_file = StrCat(proc.dir, "/port");
  fs::remove(port_file, ec);

  std::vector<std::string> args = {
      options_.serve_binary,
      "--host", "127.0.0.1",
      "--port", StrCat(fixed_port),
      "--port-file", port_file,
      "--data-dir", StrCat(proc.dir, "/data"),
      "--fsync", options_.fsync,
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const std::string log_path = StrCat(proc.dir, "/log");
  const pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) {
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  proc.pid = pid;
  proc.running = true;
  auto port = AwaitPortFile(port_file);
  if (!port.ok()) {
    Reap(node, /*kill=*/true);
    return Status::Internal(StrCat("node '", spec_.nodes[node],
                                   "' did not come up: ",
                                   port.status().message(), " (see ", log_path,
                                   ")"));
  }
  proc.port = *port;
  return Status::OK();
}

StatusOr<int> TopologyRunner::AwaitPortFile(const std::string& path) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.spawn_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Status::Internal(StrCat("timed out waiting for ", path));
}

StatusOr<service::ServiceClient> TopologyRunner::DialNode(
    uint32_t node) const {
  service::Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = procs_[node].port;
  return service::ServiceClient::Dial(endpoint, service::WireProtocol::kV2);
}

Status TopologyRunner::AttachEdges(uint32_t node) {
  for (size_t i = 0; i < spec_.edges.size(); ++i) {
    const auto& [parent, child] = spec_.edges[i];
    if (parent != node) continue;
    COMPTX_ASSIGN_OR_RETURN(service::ServiceClient client, DialNode(node));
    COMPTX_ASSIGN_OR_RETURN(
        service::Response reply,
        client.Command(service::CommandKind::kAttach, procs_[node].session,
                       StrCat("edge=", edge_ids_[i], " host=127.0.0.1 port=",
                              procs_[child].port,
                              " remote=", procs_[child].session)));
    if (!reply.ok) {
      return Status::FailedPrecondition(
          StrCat("ATTACH edge ", edge_ids_[i], " at '", spec_.nodes[node],
                 "' refused: ", reply.error_code, ": ", reply.error_message));
    }
    if (options_.verbose) {
      std::cerr << "[topology] edge " << edge_ids_[i] << ": "
                << spec_.nodes[child] << " -> " << spec_.nodes[node]
                << " (cursor " << reply.FieldInt("cursor") << ")\n";
    }
  }
  return Status::OK();
}

Status TopologyRunner::Kill(const std::string& node) {
  const uint32_t idx = spec_.Find(node);
  if (idx == kInvalidIndex) {
    return Status::NotFound(StrCat("no node '", node, "'"));
  }
  if (!procs_[idx].running) {
    return Status::FailedPrecondition(StrCat("'", node, "' is not running"));
  }
  if (options_.verbose) {
    std::cerr << "[topology] SIGKILL " << node << " (pid " << procs_[idx].pid
              << ")\n";
  }
  Reap(idx, /*kill=*/true);
  return Status::OK();
}

Status TopologyRunner::Respawn(const std::string& node) {
  const uint32_t idx = spec_.Find(node);
  if (idx == kInvalidIndex) {
    return Status::NotFound(StrCat("no node '", node, "'"));
  }
  if (procs_[idx].running) {
    return Status::FailedPrecondition(StrCat("'", node, "' is still running"));
  }
  // Same port: the parents' ingestors are already retrying this address,
  // so recovery needs no rewiring above us.  Same data dir: startup
  // recovery republishes the session under its old id with its stream
  // log rebuilt from the WAL.
  COMPTX_RETURN_IF_ERROR(Spawn(idx, procs_[idx].port));
  if (options_.verbose) {
    std::cerr << "[topology] respawned " << node << " (pid "
              << procs_[idx].pid << ")\n";
  }
  // The node's own upstream edges lived in its controller's memory; the
  // ATTACHes must be re-issued (cursors come back from the WAL).
  return AttachEdges(idx);
}

Status TopologyRunner::BarrierOnRoot(uint64_t expected) {
  if (expected == 0) return Status::OK();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.barrier_timeout_ms);
  uint64_t watermark = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    // STREAM with max=0 is a pure watermark wait: it blocks (up to
    // wait_ms) until seq `expected` exists, shipping no events.
    auto client = DialNode(spec_.root);
    if (client.ok()) {
      auto reply = client->Command(
          service::CommandKind::kStream, procs_[spec_.root].session,
          StrCat("from=", expected, " max=0 wait_ms=500 sub=0"));
      if (reply.ok() && reply->ok) {
        watermark = static_cast<uint64_t>(reply->FieldInt("watermark"));
        if (watermark == expected) return Status::OK();
        if (watermark > expected) {
          return Status::Internal(
              StrCat("root overshot the barrier: watermark ", watermark,
                     ", expected ", expected,
                     " (broadcast dedup assumption violated)"));
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Status::Internal(StrCat("barrier timeout: root watermark ",
                                 watermark, ", expected ", expected));
}

StatusOr<PhaseVerdict> TopologyRunner::CommitPhase(uint64_t k) {
  COMPTX_ASSIGN_OR_RETURN(service::ServiceClient client,
                          DialNode(spec_.root));
  const uint64_t session = procs_[spec_.root].session;
  if (k > 0) {
    COMPTX_ASSIGN_OR_RETURN(
        service::Response prepared,
        client.Command(service::CommandKind::kPrepare, session,
                       StrCat("k=", k)));
    if (!prepared.ok) {
      return Status::FailedPrecondition(
          StrCat("PREPARE k=", k, " refused: ", prepared.error_code, ": ",
                 prepared.error_message));
    }
    COMPTX_ASSIGN_OR_RETURN(
        service::Response decided,
        client.Command(service::CommandKind::kDecide, session,
                       StrCat("k=", k)));
    if (!decided.ok) {
      return Status::FailedPrecondition(
          StrCat("DECIDE k=", k, " refused: ", decided.error_code, ": ",
                 decided.error_message));
    }
  }
  COMPTX_ASSIGN_OR_RETURN(service::SessionVerdict verdict,
                          client.Query(session));
  PhaseVerdict out;
  out.k = k;
  out.certifiable = verdict.certifiable;
  out.accepted = verdict.events_accepted;
  out.rejected = verdict.events_rejected;
  out.commit_watermark = verdict.commit_watermark;
  out.failure = verdict.failure;
  return out;
}

StatusOr<std::vector<TraceEvent>> TopologyRunner::FetchMerged(
    uint64_t expected) {
  std::vector<TraceEvent> merged;
  COMPTX_ASSIGN_OR_RETURN(service::ServiceClient client,
                          DialNode(spec_.root));
  while (merged.size() < expected) {
    COMPTX_ASSIGN_OR_RETURN(
        service::Response reply,
        client.Command(service::CommandKind::kStream,
                       procs_[spec_.root].session,
                       StrCat("from=", merged.size() + 1,
                              " max=512 wait_ms=0 sub=0")));
    if (!reply.ok) {
      return Status::Internal(StrCat("merged fetch refused: ",
                                     reply.error_code, ": ",
                                     reply.error_message));
    }
    size_t got = 0;
    size_t start = 0;
    const std::string& body = reply.body;
    while (start < body.size()) {
      size_t end = body.find('\n', start);
      if (end == std::string::npos) end = body.size();
      COMPTX_ASSIGN_OR_RETURN(
          TraceEvent event,
          workload::ParseTraceEventLine(body.substr(start, end - start)));
      merged.push_back(std::move(event));
      ++got;
      start = end + 1;
    }
    if (got == 0) {
      return Status::Internal(
          StrCat("merged stream dried up at ", merged.size(), " of ",
                 expected, " events"));
    }
  }
  return merged;
}

StatusOr<uint64_t> TopologyRunner::SumResubscribes() {
  uint64_t total = 0;
  for (uint32_t node = 0; node < spec_.nodes.size(); ++node) {
    if (!procs_[node].running) continue;
    COMPTX_ASSIGN_OR_RETURN(service::ServiceClient client, DialNode(node));
    COMPTX_ASSIGN_OR_RETURN(std::string stats, client.Stats());
    std::istringstream in(stats);
    std::string line;
    while (std::getline(in, line)) {
      const auto tokens = Tokenize(line);
      if (tokens.size() == 2 && tokens[0] == "edge_resubscribes") {
        total += std::strtoull(tokens[1].c_str(), nullptr, 10);
      }
    }
  }
  return total;
}

StatusOr<TopologyReport> TopologyRunner::Drive(
    const std::vector<TraceEvent>& trace, const DrillConfig* drill) {
  COMPTX_ASSIGN_OR_RETURN(
      TracePartition partition,
      PartitionTrace(trace, spec_.leaves.size(), options_.phases));
  const size_t phase_count = partition.expected_root_events.size();

  TopologyReport report;
  report.expected_root_events = partition.expected_root_events.back();
  report.total_roots = partition.roots_through.back();

  for (size_t phase = 0; phase < phase_count; ++phase) {
    for (size_t li = 0; li < spec_.leaves.size(); ++li) {
      const uint32_t leaf = spec_.leaves[li];
      const auto& slice = partition.leaf_phases[li][phase];
      if (slice.empty()) continue;
      COMPTX_ASSIGN_OR_RETURN(service::ServiceClient client, DialNode(leaf));
      // Chunked appends keep individual frames modest.
      for (size_t at = 0; at < slice.size(); at += 512) {
        const size_t take = std::min<size_t>(512, slice.size() - at);
        std::vector<TraceEvent> chunk(slice.begin() + at,
                                      slice.begin() + at + take);
        COMPTX_RETURN_IF_ERROR(
            client.Append(procs_[leaf].session, chunk).status());
      }
    }
    if (drill != nullptr && drill->after_phase == phase) {
      // Drain the leaves so every appended event is in the WAL (APPEND
      // acks enqueue, not durability), then crash the victim while its
      // parent still holds an unconsumed stream suffix.
      for (const uint32_t leaf : spec_.leaves) {
        COMPTX_ASSIGN_OR_RETURN(service::ServiceClient client,
                                DialNode(leaf));
        COMPTX_RETURN_IF_ERROR(
            client.Query(procs_[leaf].session).status());
      }
      COMPTX_RETURN_IF_ERROR(Kill(drill->node));
      COMPTX_RETURN_IF_ERROR(Respawn(drill->node));
    }
    COMPTX_RETURN_IF_ERROR(
        BarrierOnRoot(partition.expected_root_events[phase]));
    COMPTX_ASSIGN_OR_RETURN(PhaseVerdict verdict,
                            CommitPhase(partition.roots_through[phase]));
    verdict.root_events = partition.expected_root_events[phase];
    if (options_.verbose) {
      std::cerr << "[topology] phase " << phase + 1 << "/" << phase_count
                << ": events " << verdict.root_events << " k=" << verdict.k
                << (verdict.certifiable ? " certifiable" : " NOT certifiable")
                << "\n";
    }
    report.phases.push_back(std::move(verdict));
  }

  COMPTX_ASSIGN_OR_RETURN(report.merged,
                          FetchMerged(report.expected_root_events));
  COMPTX_ASSIGN_OR_RETURN(report.resubscribes, SumResubscribes());
  return report;
}

Status TopologyRunner::Shutdown() {
  Status first = Status::OK();
  for (uint32_t node = 0; node < procs_.size(); ++node) {
    if (!procs_[node].running) continue;
    auto client = DialNode(node);
    if (client.ok()) {
      const Status down = client->Shutdown();
      if (!down.ok() && first.ok()) first = down;
    }
    Reap(node, /*kill=*/false);
  }
  return first;
}

void TopologyRunner::Reap(uint32_t node, bool kill) {
  Proc& proc = procs_[node];
  if (!proc.running) return;
  if (kill) ::kill(proc.pid, SIGKILL);
  // Graceful reaps bound the wait, then escalate: a wedged drain must
  // not hang the driver.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    const pid_t done = ::waitpid(proc.pid, nullptr, kill ? 0 : WNOHANG);
    if (done == proc.pid || (done < 0 && errno == ECHILD)) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(proc.pid, SIGKILL);
      ::waitpid(proc.pid, nullptr, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  proc.running = false;
  proc.pid = -1;
}

int TopologyRunner::PortOf(const std::string& node) const {
  const uint32_t idx = spec_.Find(node);
  return idx == kInvalidIndex ? 0 : procs_[idx].port;
}

uint64_t TopologyRunner::SessionOf(const std::string& node) const {
  const uint32_t idx = spec_.Find(node);
  return idx == kInvalidIndex ? 0 : procs_[idx].session;
}

}  // namespace comptx::distributed
