#ifndef COMPTX_RUNTIME_TWO_PHASE_LOCKING_H_
#define COMPTX_RUNTIME_TWO_PHASE_LOCKING_H_

#include "runtime/lock_manager.h"
#include "runtime/scheduler.h"

namespace comptx::runtime {

/// The lock owner a frame uses under `protocol`: the root instance when
/// locks are held to root commit (closed nesting), the frame's own
/// instance under open nesting.  Strictness (no early release) is enforced
/// by the executor releasing only at the respective commit.
LockOwner LockOwnerForFrame(Protocol protocol, LockOwner root_instance,
                            LockOwner frame_instance);

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_TWO_PHASE_LOCKING_H_
