#ifndef COMPTX_RUNTIME_PROGRAM_H_
#define COMPTX_RUNTIME_PROGRAM_H_

#include <cstdint>
#include <vector>

#include "runtime/data_store.h"
#include "util/status.h"

namespace comptx::runtime {

/// One step of a service program: either a local data operation on the
/// executing component's store or a synchronous invocation of a service on
/// another component (which becomes a subtransaction in the recorded
/// composite schedule).
struct ProgramStep {
  enum class Kind : uint8_t { kLocal, kInvoke };

  Kind kind = Kind::kLocal;

  // kLocal:
  OpType op = OpType::kRead;
  uint32_t item = 0;
  int64_t operand = 0;

  // kInvoke:
  uint32_t callee_component = 0;
  uint32_t callee_service = 0;

  static ProgramStep Local(OpType op, uint32_t item, int64_t operand = 1) {
    ProgramStep s;
    s.kind = Kind::kLocal;
    s.op = op;
    s.item = item;
    s.operand = operand;
    return s;
  }

  static ProgramStep Invoke(uint32_t component, uint32_t service) {
    ProgramStep s;
    s.kind = Kind::kInvoke;
    s.callee_component = component;
    s.callee_service = service;
    return s;
  }
};

/// A service program.  Programs are sequential: the executor runs the
/// steps one after another (recorded as a strong intra-transaction chain).
struct Program {
  std::vector<ProgramStep> steps;
};

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_PROGRAM_H_
