#ifndef COMPTX_RUNTIME_COMPONENT_H_
#define COMPTX_RUNTIME_COMPONENT_H_

#include <memory>
#include <string>
#include <vector>

#include "runtime/data_store.h"
#include "runtime/lock_manager.h"
#include "runtime/program.h"
#include "util/status.h"

namespace comptx::runtime {

/// One transactional component: a named scheduler with a local data store,
/// a semantic lock manager, a set of service programs, and a declared
/// service commutativity matrix (the semantic knowledge the paper's
/// schedules exploit — conflicting services are serialized and their order
/// is pulled up; commuting services are not).
class Component {
 public:
  /// `service_conflicts[i][j]` — true iff invocations of services i and j
  /// must be treated as conflicting operations of this component.  Must be
  /// square (services × services) and symmetric.
  Component(uint32_t id, std::string name, size_t item_count,
            std::vector<Program> services,
            std::vector<std::vector<bool>> service_conflicts);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  size_t service_count() const { return services_.size(); }
  const Program& service(uint32_t index) const { return services_[index]; }

  bool ServicesConflict(uint32_t a, uint32_t b) const {
    return service_conflicts_[a][b];
  }

  DataStore& store() { return store_; }
  const DataStore& store() const { return store_; }
  LockManager& locks() { return locks_; }

  /// Resource id used by the lock manager for data item `item`.
  uint32_t ItemResource(uint32_t item) const { return item; }

  /// Pseudo-resource on which service invocations are locked (mode =
  /// service index, compatibility = !ServicesConflict).
  uint32_t ServiceResource() const {
    return static_cast<uint32_t>(store_.item_count());
  }

 private:
  uint32_t id_;
  std::string name_;
  DataStore store_;
  std::vector<Program> services_;
  std::vector<std::vector<bool>> service_conflicts_;
  LockManager locks_;
};

/// A component network plus the client workload driving it.
struct RuntimeSystem {
  std::vector<std::unique_ptr<Component>> components;

  /// Client root requests: (entry component, service).
  struct RootRequest {
    uint32_t component;
    uint32_t service;
  };
  std::vector<RootRequest> roots;
};

/// Checks a network: service/program references in range, and the
/// component invocation graph acyclic (no recursion, mirroring Def 4.6).
Status ValidateNetwork(const RuntimeSystem& system);

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_COMPONENT_H_
