#include "runtime/deadlock.h"

#include "graph/cycle_finder.h"
#include "util/logging.h"

namespace comptx::runtime {

std::optional<uint32_t> FindDeadlockVictim(const graph::Digraph& waits_for,
                                           const std::vector<uint64_t>& ages) {
  COMPTX_CHECK_EQ(ages.size(), waits_for.NodeCount());
  auto cycle = graph::FindCycle(waits_for);
  if (!cycle) return std::nullopt;
  uint32_t victim = cycle->front();
  for (uint32_t member : *cycle) {
    if (ages[member] > ages[victim]) victim = member;
  }
  return victim;
}

}  // namespace comptx::runtime
