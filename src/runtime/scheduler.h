#ifndef COMPTX_RUNTIME_SCHEDULER_H_
#define COMPTX_RUNTIME_SCHEDULER_H_

#include <cstdint>

namespace comptx::runtime {

/// Concurrency-control protocols for executing a composite system.  These
/// are the implementation strategies sketched in the paper's §1/§4
/// (combinations of open and closed nested transactions, plus the ticket
/// method for cross-component order validation).
enum class Protocol : uint8_t {
  /// One root transaction at a time; the trivially correct baseline.
  kGlobalSerial,

  /// Closed nesting: strict two-phase locking where every lock (item and
  /// service) is held by the root until root commit.  Globally
  /// serializable, always Comp-C, but minimal inter-transaction
  /// parallelism.
  kClosedTwoPhase,

  /// Open nesting: strict two-phase locking per subtransaction — locks are
  /// released when the subtransaction commits.  Maximal parallelism; each
  /// component alone stays conflict consistent, but nothing coordinates
  /// serialization orders across components, so join/DAG topologies can
  /// produce executions that are not Comp-C (experiment E6).
  kOpenTwoPhase,

  /// Open nesting plus ticket-style validation: each subtransaction
  /// commit registers its component-level serialization edges (over root
  /// transactions) in a global order manager; a commit that would close a
  /// cycle aborts and restarts its root.  Keeps open nesting's
  /// parallelism while producing only Comp-C executions.
  kOpenValidated,

  /// Open nesting with *conservative timestamp admission*: roots carry a
  /// fixed total order, every root's per-component visit counts are
  /// predeclared (statically derivable because service programs are
  /// straight-line), and a component admits a transaction only when no
  /// smaller-timestamp root still has visits pending there.  Every
  /// component then serializes in timestamp order, so the execution is
  /// Comp-C by construction with *zero aborts* — the top-down enforcement
  /// family the paper's §3 alludes to ("practical protocols may work
  /// top-down, by enforcing restrictions on how the subtransactions can
  /// be executed"), paid for with admission delays.
  kConservativeTimestamp,
};

const char* ProtocolToString(Protocol protocol);

/// True iff `protocol` runs at most one root at a time.
bool IsSerialProtocol(Protocol protocol);

/// True iff locks are released at subtransaction commit (open nesting)
/// rather than held until root commit.
bool ReleasesLocksAtSubCommit(Protocol protocol);

/// True iff subtransaction commits are validated against the global root
/// order.
bool ValidatesRootOrder(Protocol protocol);

/// True iff components admit transactions in root-timestamp order using
/// predeclared visit counts.
bool UsesConservativeAdmission(Protocol protocol);

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_SCHEDULER_H_
