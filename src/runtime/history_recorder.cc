#include "runtime/history_recorder.h"

#include <algorithm>
#include <map>

#include "core/indexing.h"
#include "core/invocation_graph.h"
#include "graph/topological_sort.h"
#include "util/string_util.h"

namespace comptx::runtime {

HistoryRecorder::Record& HistoryRecorder::record(Handle h) {
  COMPTX_CHECK_LT(h, records_.size());
  return records_[h];
}

HistoryRecorder::Handle HistoryRecorder::BeginRoot(uint32_t root_index,
                                                   uint32_t component,
                                                   uint32_t service) {
  if (live_root_.size() <= root_index) {
    live_root_.resize(root_index + 1, kNoHandle);
  }
  COMPTX_CHECK_EQ(live_root_[root_index], kNoHandle)
      << "root " << root_index << " already has a live staging";
  Record r;
  r.component = component;
  r.service = service;
  r.root_index = root_index;
  r.root = true;
  records_.push_back(r);
  Handle h = records_.size() - 1;
  live_root_[root_index] = h;
  return h;
}

HistoryRecorder::Handle HistoryRecorder::BeginSub(Handle parent,
                                                  uint32_t component,
                                                  uint32_t service) {
  Record r;
  r.component = component;
  r.service = service;
  r.parent = parent;
  r.root_index = record(parent).root_index;
  records_.push_back(r);
  Handle h = records_.size() - 1;
  record(parent).children.push_back(h);
  return h;
}

void HistoryRecorder::RecordLocalOp(Handle parent, OpType op, uint32_t item,
                                    uint64_t seq) {
  Record r;
  r.is_leaf = true;
  r.component = record(parent).component;
  r.op = op;
  r.item = item;
  r.seq_commit = seq;
  r.parent = parent;
  r.root_index = record(parent).root_index;
  records_.push_back(r);
  record(parent).children.push_back(records_.size() - 1);
}

void HistoryRecorder::CommitNode(Handle handle, uint64_t seq) {
  record(handle).seq_commit = seq;
}

void HistoryRecorder::MarkSubtree(Handle h, bool committed, bool dead) {
  Record& r = record(h);
  r.committed = committed;
  r.dead = dead;
  for (Handle child : r.children) MarkSubtree(child, committed, dead);
}

void HistoryRecorder::AbortRoot(uint32_t root_index) {
  COMPTX_CHECK_LT(root_index, live_root_.size());
  COMPTX_CHECK_NE(live_root_[root_index], kNoHandle);
  MarkSubtree(live_root_[root_index], /*committed=*/false, /*dead=*/true);
  live_root_[root_index] = kNoHandle;
}

void HistoryRecorder::CommitRoot(uint32_t root_index) {
  COMPTX_CHECK_LT(root_index, live_root_.size());
  COMPTX_CHECK_NE(live_root_[root_index], kNoHandle);
  MarkSubtree(live_root_[root_index], /*committed=*/true, /*dead=*/false);
  live_root_[root_index] = kNoHandle;
}

StatusOr<CompositeSystem> HistoryRecorder::BuildSystem() const {
  CompositeSystem cs;
  for (const auto& component : system_.components) {
    cs.AddSchedule(component->name());
  }

  // Create the forest: committed records in staging order (parents always
  // precede children).
  std::vector<NodeId> node_of(records_.size(), NodeId());
  for (Handle h = 0; h < records_.size(); ++h) {
    const Record& r = records_[h];
    if (!r.committed || r.dead) continue;
    if (r.is_leaf) {
      COMPTX_ASSIGN_OR_RETURN(
          node_of[h],
          cs.AddLeaf(node_of[r.parent],
                     StrCat(OpTypeToString(r.op), "(c",
                            r.component, ".i", r.item, ")#", h)));
    } else if (r.root) {
      COMPTX_ASSIGN_OR_RETURN(
          node_of[h], cs.AddRootTransaction(ScheduleId(r.component),
                                            StrCat("R", r.root_index)));
    } else {
      COMPTX_ASSIGN_OR_RETURN(
          node_of[h],
          cs.AddSubtransaction(node_of[r.parent], ScheduleId(r.component),
                               StrCat("R", r.root_index, ".", h)));
    }
  }

  // Sequential programs: strong intra chains, mirrored into the host
  // schedule's output orders (Def 3.2).
  for (Handle h = 0; h < records_.size(); ++h) {
    const Record& r = records_[h];
    if (!r.committed || r.dead || r.is_leaf) continue;
    for (size_t i = 0; i + 1 < r.children.size(); ++i) {
      NodeId a = node_of[r.children[i]];
      NodeId b = node_of[r.children[i + 1]];
      COMPTX_RETURN_IF_ERROR(cs.AddIntraStrong(node_of[h], a, b));
      COMPTX_RETURN_IF_ERROR(cs.AddStrongOutput(a, b));
    }
  }

  // Conflicts + weak output orders per component, by execution instants.
  for (uint32_t c = 0; c < system_.components.size(); ++c) {
    // Collect this component's committed operations (children of its
    // transactions): leaves and sub-invocations.
    std::vector<Handle> ops;
    for (Handle h = 0; h < records_.size(); ++h) {
      const Record& r = records_[h];
      if (!r.committed || r.dead || r.root) continue;
      if (records_[r.parent].component == c && !records_[r.parent].is_leaf) {
        ops.push_back(h);
      }
    }
    for (size_t i = 0; i < ops.size(); ++i) {
      for (size_t j = i + 1; j < ops.size(); ++j) {
        const Record& a = records_[ops[i]];
        const Record& b = records_[ops[j]];
        if (a.parent == b.parent) continue;  // intra chain already orders.
        bool conflict = false;
        if (a.is_leaf && b.is_leaf) {
          conflict = a.item == b.item && OpsConflict(a.op, b.op);
        } else if (!a.is_leaf && !b.is_leaf) {
          // Invocation pair: conflicting iff same callee and the callee's
          // service matrix says so.
          const Component& callee = *system_.components[a.component];
          conflict = a.component == b.component &&
                     callee.ServicesConflict(a.service, b.service);
        }
        if (!conflict) continue;
        Handle first = a.seq_commit <= b.seq_commit ? ops[i] : ops[j];
        Handle second = first == ops[i] ? ops[j] : ops[i];
        COMPTX_RETURN_IF_ERROR(
            cs.AddConflict(node_of[ops[i]], node_of[ops[j]]));
        COMPTX_RETURN_IF_ERROR(
            cs.AddWeakOutput(node_of[first], node_of[second]));
      }
    }
  }

  // Def 4.7 propagation top-down, then Def 3.3 completion (strong inputs
  // force strong outputs over all operation pairs), cascading downward.
  COMPTX_ASSIGN_OR_RETURN(InvocationGraphResult ig, BuildInvocationGraph(cs));
  std::vector<uint32_t> by_level(cs.ScheduleCount());
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) by_level[s] = s;
  std::sort(by_level.begin(), by_level.end(), [&](uint32_t x, uint32_t y) {
    return ig.schedule_level[x] > ig.schedule_level[y];
  });
  for (uint32_t s : by_level) {
    const ScheduleId sid(s);
    const std::vector<NodeId> ops = cs.OperationsOf(sid);
    // Def 3.3 first: strong inputs of this schedule (propagated from the
    // callers processed earlier) force strong outputs here.
    Relation strong_in = ClosureWithin(cs.schedule(sid).strong_input,
                                       cs.schedule(sid).transactions);
    Status status = Status::OK();
    strong_in.ForEach([&](NodeId t1, NodeId t2) {
      if (!status.ok()) return;
      for (NodeId o1 : cs.node(t1).children) {
        for (NodeId o2 : cs.node(t2).children) {
          status = cs.AddStrongOutput(o1, o2);
          if (!status.ok()) return;
        }
      }
    });
    COMPTX_RETURN_IF_ERROR(status);

    Relation weak_out = ClosureWithin(cs.schedule(sid).weak_output, ops);
    Relation strong_out = ClosureWithin(cs.schedule(sid).strong_output, ops);
    auto propagate = [&](const Relation& rel, bool is_strong) -> Status {
      Status st = Status::OK();
      rel.ForEach([&](NodeId x, NodeId y) {
        if (!st.ok()) return;
        const Node& nx = cs.node(x);
        const Node& ny = cs.node(y);
        if (!nx.IsTransaction() || !ny.IsTransaction()) return;
        if (nx.owner_schedule != ny.owner_schedule) return;
        st = is_strong ? cs.AddStrongInput(nx.owner_schedule, x, y)
                       : cs.AddWeakInput(nx.owner_schedule, x, y);
      });
      return st;
    };
    COMPTX_RETURN_IF_ERROR(propagate(weak_out, /*is_strong=*/false));
    COMPTX_RETURN_IF_ERROR(propagate(strong_out, /*is_strong=*/true));
  }
  return cs;
}

}  // namespace comptx::runtime
