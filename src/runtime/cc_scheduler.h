#ifndef COMPTX_RUNTIME_CC_SCHEDULER_H_
#define COMPTX_RUNTIME_CC_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace comptx::runtime {

/// Observer of root-order decisions made by a RootOrderManager.  This is
/// the runtime's hook for streaming consumers — in particular the online
/// certifier, which mirrors accepted root-order edges as observed-order
/// events of its session (an adapter translates edges to trace events so
/// the runtime stays independent of src/online).
class RootOrderObserver {
 public:
  virtual ~RootOrderObserver() = default;

  /// Called after TryAddEdges commits; `added` holds only the edges that
  /// were actually new (deduplicated, self-loops dropped).
  virtual void OnEdgesAccepted(
      const std::vector<std::pair<uint32_t, uint32_t>>& added) = 0;

  /// Called after RemoveRoot dropped the root's incident edges.
  virtual void OnRootRemoved(uint32_t root) = 0;
};

/// Global root-transaction order manager for the kOpenValidated protocol
/// (the ticket method the paper's §4 cites): maintains the union of all
/// component-level serialization edges projected onto root transactions
/// and refuses additions that would close a cycle.
class RootOrderManager {
 public:
  /// Atomically adds `edges` (pairs earlier-root -> later-root).  Returns
  /// false and leaves the graph unchanged if the addition would create a
  /// cycle.
  bool TryAddEdges(const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  /// Removes every edge incident to `root` (called when the root aborts:
  /// its committed subtransactions are compensated, so the orders they
  /// established disappear).
  void RemoveRoot(uint32_t root);

  size_t EdgeCount() const { return edges_.size(); }

  /// Registers `observer` (not owned; nullptr to detach).  Notified of
  /// every committed edge batch and root removal.
  void set_observer(RootOrderObserver* observer) { observer_ = observer; }

 private:
  bool HasPath(uint32_t from, uint32_t to) const;

  std::set<std::pair<uint32_t, uint32_t>> edges_;
  std::map<uint32_t, std::set<uint32_t>> out_;
  RootOrderObserver* observer_ = nullptr;
};

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_CC_SCHEDULER_H_
