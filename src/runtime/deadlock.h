#ifndef COMPTX_RUNTIME_DEADLOCK_H_
#define COMPTX_RUNTIME_DEADLOCK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace comptx::runtime {

/// Picks a deadlock victim from a waits-for graph over threads: if a cycle
/// exists, the youngest member of the cycle (largest `age`, i.e., the most
/// recently (re)started attempt) is chosen, which guarantees older
/// attempts eventually finish.  Returns nullopt when the graph is acyclic.
std::optional<uint32_t> FindDeadlockVictim(const graph::Digraph& waits_for,
                                           const std::vector<uint64_t>& ages);

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_DEADLOCK_H_
