#include "runtime/lock_manager.h"

#include <algorithm>

namespace comptx::runtime {

bool LockManager::TryAcquire(LockOwner owner, uint32_t resource,
                             uint32_t mode) {
  auto& grants = holders_[resource];
  auto& queue = waiters_[resource];

  // The owner's own queued entry (if any) determines its priority; it
  // defers only to waiters that arrived before it.
  uint64_t my_ticket = UINT64_MAX;
  for (const Waiter& w : queue) {
    if (w.owner == owner && w.mode == mode) {
      my_ticket = w.ticket;
      break;
    }
  }

  bool grantable = true;
  for (const Grant& g : grants) {
    if (g.owner == owner) continue;
    if (conflicts_(resource, g.mode, mode)) {
      grantable = false;
      break;
    }
  }
  if (grantable) {
    for (const Waiter& w : queue) {
      if (w.owner == owner) continue;
      if (w.ticket < my_ticket && conflicts_(resource, w.mode, mode)) {
        grantable = false;
        break;
      }
    }
  }

  if (!grantable) {
    if (my_ticket == UINT64_MAX) {
      queue.push_back(Waiter{owner, mode, next_ticket_++});
    }
    return false;
  }

  // Grant: dequeue the satisfied request and record the grant once.
  queue.erase(std::remove_if(queue.begin(), queue.end(),
                             [&](const Waiter& w) {
                               return w.owner == owner && w.mode == mode;
                             }),
              queue.end());
  for (const Grant& g : grants) {
    if (g.owner == owner && g.mode == mode) return true;
  }
  grants.push_back(Grant{owner, mode});
  return true;
}

void LockManager::ReleaseAll(LockOwner owner) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    auto& grants = it->second;
    grants.erase(std::remove_if(
                     grants.begin(), grants.end(),
                     [&](const Grant& g) { return g.owner == owner; }),
                 grants.end());
    if (grants.empty()) {
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    auto& queue = it->second;
    queue.erase(std::remove_if(
                    queue.begin(), queue.end(),
                    [&](const Waiter& w) { return w.owner == owner; }),
                queue.end());
    if (queue.empty()) {
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<LockOwner> LockManager::Blockers(LockOwner owner,
                                             uint32_t resource,
                                             uint32_t mode) const {
  std::vector<LockOwner> blockers;
  auto hit = holders_.find(resource);
  if (hit != holders_.end()) {
    for (const Grant& g : hit->second) {
      if (g.owner == owner) continue;
      if (conflicts_(resource, g.mode, mode)) blockers.push_back(g.owner);
    }
  }
  auto wit = waiters_.find(resource);
  if (wit != waiters_.end()) {
    uint64_t my_ticket = UINT64_MAX;
    for (const Waiter& w : wit->second) {
      if (w.owner == owner && w.mode == mode) {
        my_ticket = w.ticket;
        break;
      }
    }
    for (const Waiter& w : wit->second) {
      if (w.owner == owner) continue;
      if (w.ticket < my_ticket && conflicts_(resource, w.mode, mode)) {
        blockers.push_back(w.owner);
      }
    }
  }
  return blockers;
}

size_t LockManager::GrantCount() const {
  size_t count = 0;
  for (const auto& [resource, grants] : holders_) count += grants.size();
  return count;
}

size_t LockManager::WaiterCount() const {
  size_t count = 0;
  for (const auto& [resource, queue] : waiters_) count += queue.size();
  return count;
}

}  // namespace comptx::runtime
