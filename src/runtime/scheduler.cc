#include "runtime/scheduler.h"

namespace comptx::runtime {

const char* ProtocolToString(Protocol protocol) {
  switch (protocol) {
    case Protocol::kGlobalSerial:
      return "global_serial";
    case Protocol::kClosedTwoPhase:
      return "closed_2pl";
    case Protocol::kOpenTwoPhase:
      return "open_2pl";
    case Protocol::kOpenValidated:
      return "open_validated";
    case Protocol::kConservativeTimestamp:
      return "conservative_ts";
  }
  return "unknown";
}

bool IsSerialProtocol(Protocol protocol) {
  return protocol == Protocol::kGlobalSerial;
}

bool ReleasesLocksAtSubCommit(Protocol protocol) {
  return protocol == Protocol::kOpenTwoPhase ||
         protocol == Protocol::kOpenValidated ||
         protocol == Protocol::kConservativeTimestamp;
}

bool ValidatesRootOrder(Protocol protocol) {
  return protocol == Protocol::kOpenValidated;
}

bool UsesConservativeAdmission(Protocol protocol) {
  return protocol == Protocol::kConservativeTimestamp;
}

}  // namespace comptx::runtime
