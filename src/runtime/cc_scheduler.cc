#include "runtime/cc_scheduler.h"

namespace comptx::runtime {

bool RootOrderManager::HasPath(uint32_t from, uint32_t to) const {
  if (from == to) return true;
  std::set<uint32_t> seen;
  std::vector<uint32_t> stack = {from};
  seen.insert(from);
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    auto it = out_.find(v);
    if (it == out_.end()) continue;
    for (uint32_t w : it->second) {
      if (w == to) return true;
      if (seen.insert(w).second) stack.push_back(w);
    }
  }
  return false;
}

bool RootOrderManager::TryAddEdges(
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  // Tentatively add, checking each edge against the growing graph; revert
  // everything on failure.
  std::vector<std::pair<uint32_t, uint32_t>> added;
  for (const auto& [from, to] : edges) {
    if (from == to) continue;
    if (edges_.count({from, to}) > 0) continue;
    if (HasPath(to, from)) {
      for (const auto& [f, t] : added) {
        edges_.erase({f, t});
        out_[f].erase(t);
      }
      return false;
    }
    edges_.insert({from, to});
    out_[from].insert(to);
    added.emplace_back(from, to);
  }
  if (observer_ != nullptr && !added.empty()) {
    observer_->OnEdgesAccepted(added);
  }
  return true;
}

void RootOrderManager::RemoveRoot(uint32_t root) {
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (it->first == root || it->second == root) {
      out_[it->first].erase(it->second);
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
  if (observer_ != nullptr) observer_->OnRootRemoved(root);
}

}  // namespace comptx::runtime
