#ifndef COMPTX_RUNTIME_HISTORY_RECORDER_H_
#define COMPTX_RUNTIME_HISTORY_RECORDER_H_

#include <cstdint>
#include <vector>

#include "core/composite_system.h"
#include "runtime/component.h"
#include "util/status_or.h"

namespace comptx::runtime {

/// Records the committed execution of a RuntimeSystem and converts it into
/// a formal CompositeSystem (one schedule per component, one transaction
/// per committed service activation, one leaf per data operation), so the
/// Comp-C machinery can judge what the protocol produced.
///
/// Staging discipline: every root attempt is staged; AbortRoot discards
/// the attempt (the executor rolls the data back), CommitRoot freezes it.
/// Only frozen attempts appear in the built system.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(const RuntimeSystem& system) : system_(system) {}

  /// Handle of a staged transaction record.
  using Handle = uint64_t;

  /// Starts staging a new attempt of root `root_index` entering
  /// `component` with `service`.  Discards any previous staging for the
  /// root implicitly? No — call AbortRoot first; this CHECKs there is no
  /// live staging for the root.
  Handle BeginRoot(uint32_t root_index, uint32_t component, uint32_t service);

  /// Stages a subtransaction activation under `parent`.
  Handle BeginSub(Handle parent, uint32_t component, uint32_t service);

  /// Stages one executed data operation under `parent`; `seq` is the
  /// global execution instant.
  void RecordLocalOp(Handle parent, OpType op, uint32_t item, uint64_t seq);

  /// Marks the staged transaction committed at instant `seq`.
  void CommitNode(Handle handle, uint64_t seq);

  /// Discards the live staging of `root_index` (root restart).
  void AbortRoot(uint32_t root_index);

  /// Freezes the live staging of `root_index` into the committed history.
  void CommitRoot(uint32_t root_index);

  /// Builds the formal composite schedule of everything committed:
  /// conflicts per item overlap / service matrix, output orders per
  /// execution instants, strong intra chains for the sequential programs,
  /// and Def 4.7 input-order propagation.  The result passes Validate().
  StatusOr<CompositeSystem> BuildSystem() const;

 private:
  struct Record {
    bool is_leaf = false;
    uint32_t component = 0;
    uint32_t service = 0;    // transactions only
    OpType op = OpType::kRead;  // leaves only
    uint32_t item = 0;          // leaves only
    uint64_t seq_commit = 0;    // commit instant (txns) or op instant
    Handle parent = 0;
    uint32_t root_index = 0;
    bool root = false;
    std::vector<Handle> children;
    bool committed = false;  // frozen into history
    bool dead = false;       // discarded attempt
  };

  const RuntimeSystem& system_;
  std::vector<Record> records_;
  // Live (uncommitted, undiscarded) staging root handle per root index;
  // kNoHandle when none.
  static constexpr Handle kNoHandle = UINT64_MAX;
  std::vector<Handle> live_root_;

  Record& record(Handle h);
  void MarkSubtree(Handle h, bool committed, bool dead);
};

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_HISTORY_RECORDER_H_
