#ifndef COMPTX_RUNTIME_SYSTEM_EXECUTOR_H_
#define COMPTX_RUNTIME_SYSTEM_EXECUTOR_H_

#include <cstdint>

#include "core/composite_system.h"
#include "runtime/component.h"
#include "runtime/scheduler.h"
#include "util/status_or.h"

namespace comptx::runtime {

/// Knobs for ExecuteSystem.
struct ExecutorOptions {
  Protocol protocol = Protocol::kOpenTwoPhase;
  uint64_t seed = 1;

  /// Abort the simulation (ResourceExhausted) after this many rounds; a
  /// safety valve against protocol livelock.
  uint64_t max_rounds = 1'000'000;

  /// Print per-event diagnostics (blocks, commits, restarts) to stderr.
  bool trace = false;

  /// Failure injection: probability that a client abandons its root
  /// transaction partway through.  An abandoned root is rolled back
  /// (committed subtransactions are compensated by restoring values),
  /// all its locks and order-manager edges are released, and it never
  /// commits — the recorded composite schedule contains committed roots
  /// only, and must still be valid and protocol-correct.
  double client_abort_prob = 0.0;
};

/// What happened during one simulated execution.
struct ExecutionStats {
  /// Lock-step rounds simulated: in each round every unblocked root
  /// attempt advances by one primitive action, so rounds model parallel
  /// wall-clock time (the global-serial makespan equals the total number
  /// of actions).
  uint64_t rounds = 0;

  /// Primitive actions executed, including work redone after restarts.
  uint64_t actions = 0;

  /// Data operations committed (excluding discarded attempts).
  uint64_t committed_ops = 0;

  uint64_t deadlock_restarts = 0;
  uint64_t validation_restarts = 0;

  /// Roots abandoned by their client (failure injection); these do not
  /// appear in the recorded system.
  uint64_t client_aborts = 0;

  /// Mean number of threads that made progress per round (effective
  /// parallelism).
  double avg_parallelism = 0.0;
};

/// Result of one simulated execution: the recorded composite schedule
/// (committed work only) plus runtime statistics.
struct ExecutionResult {
  CompositeSystem recorded;
  ExecutionStats stats;
};

/// Runs every root request of `system` to commit under the chosen protocol
/// with a seeded interleaving, and records the composite schedule the
/// protocol produced.  The recorded system passes Validate(); whether it
/// is Comp-C is the experimental question (E6).
StatusOr<ExecutionResult> ExecuteSystem(const RuntimeSystem& system,
                                        const ExecutorOptions& options);

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_SYSTEM_EXECUTOR_H_
