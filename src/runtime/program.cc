#include "runtime/program.h"

// ProgramStep and Program are passive aggregates; validation of a whole
// component network lives in runtime/component.cc (ValidateNetwork).
