#include "runtime/component.h"

#include "graph/cycle_finder.h"
#include "graph/digraph.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::runtime {

Component::Component(uint32_t id, std::string name, size_t item_count,
                     std::vector<Program> services,
                     std::vector<std::vector<bool>> service_conflicts)
    : id_(id),
      name_(std::move(name)),
      store_(item_count),
      services_(std::move(services)),
      service_conflicts_(std::move(service_conflicts)),
      locks_([this](uint32_t resource, uint32_t mode_a, uint32_t mode_b) {
        if (resource == ServiceResource()) {
          return ServicesConflict(mode_a, mode_b);
        }
        return OpsConflict(static_cast<OpType>(mode_a),
                           static_cast<OpType>(mode_b));
      }) {
  COMPTX_CHECK_EQ(service_conflicts_.size(), services_.size());
  for (size_t i = 0; i < service_conflicts_.size(); ++i) {
    COMPTX_CHECK_EQ(service_conflicts_[i].size(), services_.size());
    for (size_t j = 0; j < service_conflicts_[i].size(); ++j) {
      COMPTX_CHECK_EQ(service_conflicts_[i][j], service_conflicts_[j][i])
          << "service conflict matrix must be symmetric";
    }
  }
}

Status ValidateNetwork(const RuntimeSystem& system) {
  const size_t n = system.components.size();
  graph::Digraph invokes(n);
  for (size_t c = 0; c < n; ++c) {
    const Component& component = *system.components[c];
    for (uint32_t s = 0; s < component.service_count(); ++s) {
      for (const ProgramStep& step : component.service(s).steps) {
        if (step.kind != ProgramStep::Kind::kInvoke) {
          if (step.item >= component.store().item_count()) {
            return Status::InvalidArgument(
                StrCat("component ", component.name(), " service ", s,
                       " touches out-of-range item ", step.item));
          }
          continue;
        }
        if (step.callee_component >= n) {
          return Status::InvalidArgument(
              StrCat("component ", component.name(), " invokes unknown ",
                     "component ", step.callee_component));
        }
        if (step.callee_component == c) {
          return Status::InvalidArgument(
              StrCat("component ", component.name(), " invokes itself"));
        }
        const Component& callee = *system.components[step.callee_component];
        if (step.callee_service >= callee.service_count()) {
          return Status::InvalidArgument(
              StrCat("component ", component.name(), " invokes unknown ",
                     "service ", step.callee_service, " of ", callee.name()));
        }
        invokes.AddEdge(static_cast<uint32_t>(c), step.callee_component);
      }
    }
  }
  if (!graph::IsAcyclic(invokes)) {
    return Status::InvalidArgument(
        "component invocation graph is cyclic (recursion is forbidden, "
        "Def 4.6)");
  }
  for (const auto& root : system.roots) {
    if (root.component >= n ||
        root.service >= system.components[root.component]->service_count()) {
      return Status::InvalidArgument("root request references unknown "
                                     "component or service");
    }
  }
  return Status::OK();
}

}  // namespace comptx::runtime
