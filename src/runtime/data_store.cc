#include "runtime/data_store.h"

#include "util/logging.h"

namespace comptx::runtime {

const char* OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "r";
    case OpType::kWrite:
      return "w";
    case OpType::kAdd:
      return "a";
  }
  return "?";
}

bool OpsConflict(OpType a, OpType b) {
  if (a == OpType::kRead && b == OpType::kRead) return false;
  if (a == OpType::kAdd && b == OpType::kAdd) return false;
  return true;
}

void DataStore::Apply(OpType type, uint32_t item, int64_t operand,
                      std::vector<UndoEntry>& undo) {
  COMPTX_CHECK_LT(item, values_.size());
  undo.push_back(UndoEntry{item, type, values_[item], operand});
  switch (type) {
    case OpType::kRead:
      break;  // reads have no effect; the undo entry is a no-op.
    case OpType::kWrite:
      values_[item] = operand;
      break;
    case OpType::kAdd:
      values_[item] += operand;
      break;
  }
}

void DataStore::Rollback(std::vector<UndoEntry>& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    switch (it->op) {
      case OpType::kRead:
        break;
      case OpType::kWrite:
        values_[it->item] = it->previous_value;
        break;
      case OpType::kAdd:
        values_[it->item] -= it->operand;  // semantic compensation.
        break;
    }
  }
  undo.clear();
}

}  // namespace comptx::runtime
