#ifndef COMPTX_RUNTIME_LOCK_MANAGER_H_
#define COMPTX_RUNTIME_LOCK_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace comptx::runtime {

/// Owner of a lock: a transaction-instance id assigned by the executor
/// (the subtransaction instance under open nesting, the root instance
/// under closed nesting).
using LockOwner = uint64_t;

/// A semantic lock manager for one component with *fair queueing*.
/// Resources are dense ids (data items plus one pseudo-resource for the
/// service table); modes are interpreted by the compatibility predicate
/// the component supplies, so the same manager serves read/write/add item
/// locks and service-matrix locks.
///
/// Fairness: a TryAcquire that cannot be granted enqueues the request.
/// Later requests by other owners are granted only if they are compatible
/// with the holders *and* with every earlier waiter — so a queued lock
/// upgrade (read -> add) cannot be starved by a stream of new readers.
/// This is what makes deadlock-victim restarts convergent in the executor.
class LockManager {
 public:
  /// `conflicts(resource, mode_a, mode_b)` must return true when the two
  /// modes are incompatible on that resource.
  explicit LockManager(
      std::function<bool(uint32_t, uint32_t, uint32_t)> conflicts)
      : conflicts_(std::move(conflicts)) {}

  /// Attempts to acquire `resource` in `mode` for `owner`.  On success the
  /// grant is recorded and any waiting entry of this owner for the same
  /// request is removed.  On failure the request is enqueued (idempotent)
  /// and false is returned; retry by calling TryAcquire again.
  bool TryAcquire(LockOwner owner, uint32_t resource, uint32_t mode);

  /// Releases all grants *and* queued requests of `owner`.
  void ReleaseAll(LockOwner owner);

  /// The owners blocking `owner`'s (re)acquisition of `resource` in
  /// `mode`: conflicting holders plus conflicting earlier waiters.
  std::vector<LockOwner> Blockers(LockOwner owner, uint32_t resource,
                                  uint32_t mode) const;

  /// Number of (owner, resource, mode) grants outstanding.
  size_t GrantCount() const;

  /// Number of queued (waiting) requests.
  size_t WaiterCount() const;

 private:
  struct Grant {
    LockOwner owner;
    uint32_t mode;
  };
  struct Waiter {
    LockOwner owner;
    uint32_t mode;
    uint64_t ticket;  // global arrival order; smaller = earlier.
  };

  std::function<bool(uint32_t, uint32_t, uint32_t)> conflicts_;
  std::map<uint32_t, std::vector<Grant>> holders_;
  std::map<uint32_t, std::vector<Waiter>> waiters_;
  uint64_t next_ticket_ = 0;
};

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_LOCK_MANAGER_H_
