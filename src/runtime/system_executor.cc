#include "runtime/system_executor.h"

#include <algorithm>
#include <iostream>
#include <map>
#include <optional>
#include <vector>

#include "runtime/cc_scheduler.h"
#include "runtime/deadlock.h"
#include "runtime/history_recorder.h"
#include "runtime/two_phase_locking.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace comptx::runtime {

namespace {

/// One access performed by a frame at its component (for validation).
struct Access {
  uint32_t item;
  OpType op;
};

/// Activation record of one (sub)transaction execution.
struct Frame {
  uint32_t component = 0;
  uint32_t service = 0;
  size_t step = 0;
  LockOwner instance = 0;
  HistoryRecorder::Handle record = 0;
  std::vector<Access> accesses;
  // Child instance id reserved for the invoke at the current step (0 if
  // none).  Reserved on the first (possibly blocking) attempt so the lock
  // queue entry stays attached to the same owner across retries.
  LockOwner pending_child = 0;
};

/// One root transaction attempt driven as a sequential logical thread.
struct Thread {
  uint32_t root_index = 0;
  LockOwner root_instance = 0;
  std::vector<Frame> stack;
  bool done = false;
  // Data undo across the whole attempt (open nesting compensates committed
  // subtransactions by physically restoring values).
  std::vector<std::pair<uint32_t, UndoEntry>> undo_log;
  // All lock-owner instances created by the current attempt.
  std::vector<LockOwner> instances;
  // Restart bookkeeping: restarted attempts back off so the surviving
  // side of a deadlock can take the contested locks first (otherwise the
  // lockstep rounds recreate the same deadlock forever).
  uint32_t restarts = 0;
  uint64_t backoff_until_round = 0;
  // Failure injection: abandon the root after this many actions
  // (UINT64_MAX = never).  Persists across restarts of the same root.
  uint64_t abort_after_actions = UINT64_MAX;
  uint64_t actions_done = 0;
  // When blocked: what the thread is waiting for.
  bool blocked = false;
  uint32_t wait_component = 0;
  uint32_t wait_resource = 0;
  uint32_t wait_mode = 0;
  LockOwner wait_owner = 0;
};

/// Everything a committed subtransaction leaves behind for validation.
struct CommittedTxn {
  uint32_t root = 0;
  uint32_t service = 0;
  std::vector<Access> accesses;
};

enum class StepOutcome { kProgress, kBlocked, kValidationAbort };

class Executor {
 public:
  Executor(const RuntimeSystem& system, const ExecutorOptions& options)
      : system_(system),
        options_(options),
        rng_(options.seed),
        recorder_(system),
        committed_per_component_(system.components.size()) {}

  StatusOr<ExecutionResult> Run();

 private:
  Thread MakeThread(uint32_t root_index);
  StepOutcome Advance(Thread& thread);
  void RestartRoot(Thread& thread, bool validation);
  void AbandonRoot(Thread& thread);
  void RollBackAttempt(Thread& thread);
  void ReleaseEverywhere(LockOwner owner);
  Status HandleStall(const std::vector<uint32_t>& alive, bool any_backing_off);

  // Conservative timestamp admission (kConservativeTimestamp): roots are
  // ordered by index; `remaining_visits_[r][c]` counts the component-c
  // transactions root r will still commit.  A root may start work at a
  // component only when no smaller root has visits pending there.
  void PrecomputeVisitCounts();
  bool AdmissionBlocked(uint32_t root_index, uint32_t component) const;
  void FinishVisit(uint32_t root_index, uint32_t component);

  const RuntimeSystem& system_;
  const ExecutorOptions& options_;
  Rng rng_;
  HistoryRecorder recorder_;
  RootOrderManager root_order_;
  std::vector<std::vector<CommittedTxn>> committed_per_component_;
  std::vector<Thread> threads_;
  LockOwner next_instance_ = 1;
  uint64_t seq_ = 0;
  ExecutionStats stats_;
  // remaining_visits_[root][component]; empty unless the protocol uses
  // conservative admission.  declared_visits_ keeps the pristine counts
  // so a restarted root can re-declare its whole access plan.
  std::vector<std::vector<uint32_t>> remaining_visits_;
  std::vector<std::vector<uint32_t>> declared_visits_;
};

void Executor::PrecomputeVisitCounts() {
  const size_t components = system_.components.size();
  // visits[(component, service)] -> per-component transaction counts for
  // one activation, including nested invocations.  Programs are
  // straight-line and the invocation graph is acyclic, so a memoized DFS
  // terminates and the counts are exact.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint32_t>> memo;
  auto counts = [&](auto&& self, uint32_t component,
                    uint32_t service) -> const std::vector<uint32_t>& {
    auto key = std::make_pair(component, service);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    std::vector<uint32_t> total(components, 0);
    total[component] += 1;  // this activation itself.
    for (const ProgramStep& step :
         system_.components[component]->service(service).steps) {
      if (step.kind != ProgramStep::Kind::kInvoke) continue;
      const std::vector<uint32_t>& nested =
          self(self, step.callee_component, step.callee_service);
      for (size_t c = 0; c < components; ++c) total[c] += nested[c];
    }
    return memo.emplace(key, std::move(total)).first->second;
  };
  declared_visits_.clear();
  for (const auto& request : system_.roots) {
    declared_visits_.push_back(counts(counts, request.component,
                                      request.service));
  }
  remaining_visits_ = declared_visits_;
}

bool Executor::AdmissionBlocked(uint32_t root_index,
                                uint32_t component) const {
  for (uint32_t r = 0; r < root_index; ++r) {
    if (remaining_visits_[r][component] > 0) return true;
  }
  return false;
}

void Executor::FinishVisit(uint32_t root_index, uint32_t component) {
  COMPTX_CHECK_GT(remaining_visits_[root_index][component], 0u);
  --remaining_visits_[root_index][component];
}

Thread Executor::MakeThread(uint32_t root_index) {
  const auto& request = system_.roots[root_index];
  Thread thread;
  thread.root_index = root_index;
  thread.root_instance = next_instance_++;
  thread.instances.push_back(thread.root_instance);
  Frame frame;
  frame.component = request.component;
  frame.service = request.service;
  frame.instance = thread.root_instance;
  frame.record =
      recorder_.BeginRoot(root_index, request.component, request.service);
  thread.stack.push_back(std::move(frame));
  return thread;
}

void Executor::ReleaseEverywhere(LockOwner owner) {
  for (const auto& component : system_.components) {
    component->locks().ReleaseAll(owner);
  }
}

StepOutcome Executor::Advance(Thread& thread) {
  Frame& frame = thread.stack.back();
  Component& component = *system_.components[frame.component];
  const Program& program = component.service(frame.service);

  // Conservative admission: before the root's first action, its entry
  // component must have no smaller-timestamp roots with pending visits.
  if (UsesConservativeAdmission(options_.protocol) &&
      thread.stack.size() == 1 && frame.step == 0 &&
      frame.accesses.empty() &&
      AdmissionBlocked(thread.root_index, frame.component) &&
      frame.step < program.steps.size()) {
    thread.blocked = true;
    thread.wait_component = frame.component;
    thread.wait_resource = component.ServiceResource();
    thread.wait_mode = frame.service;
    thread.wait_owner = frame.instance;
    return StepOutcome::kBlocked;
  }

  if (frame.step < program.steps.size()) {
    const ProgramStep& step = program.steps[frame.step];
    if (step.kind == ProgramStep::Kind::kLocal) {
      const LockOwner owner = LockOwnerForFrame(
          options_.protocol, thread.root_instance, frame.instance);
      const uint32_t resource = component.ItemResource(step.item);
      const uint32_t mode = static_cast<uint32_t>(step.op);
      if (!component.locks().TryAcquire(owner, resource, mode)) {
        if (options_.trace && !thread.blocked) {
          std::cerr << "[round " << stats_.rounds << "] root "
                    << thread.root_index << " blocked on item " << step.item
                    << " @ " << component.name() << "\n";
        }
        thread.blocked = true;
        thread.wait_component = frame.component;
        thread.wait_resource = resource;
        thread.wait_mode = mode;
        thread.wait_owner = owner;
        return StepOutcome::kBlocked;
      }
      std::vector<UndoEntry> undo;
      component.store().Apply(step.op, step.item, step.operand, undo);
      for (const UndoEntry& entry : undo) {
        thread.undo_log.emplace_back(frame.component, entry);
      }
      recorder_.RecordLocalOp(frame.record, step.op, step.item, ++seq_);
      frame.accesses.push_back(Access{step.item, step.op});
      ++frame.step;
      thread.blocked = false;
      return StepOutcome::kProgress;
    }

    // kInvoke: acquire the callee's service lock, then push a frame.
    Component& callee = *system_.components[step.callee_component];
    if (UsesConservativeAdmission(options_.protocol) &&
        AdmissionBlocked(thread.root_index, step.callee_component)) {
      thread.blocked = true;
      thread.wait_component = step.callee_component;
      thread.wait_resource = callee.ServiceResource();
      thread.wait_mode = step.callee_service;
      thread.wait_owner = 0;
      return StepOutcome::kBlocked;
    }
    if (frame.pending_child == 0) {
      frame.pending_child = next_instance_++;
      thread.instances.push_back(frame.pending_child);
    }
    const LockOwner child_instance = frame.pending_child;
    const LockOwner owner = LockOwnerForFrame(
        options_.protocol, thread.root_instance, child_instance);
    if (!callee.locks().TryAcquire(owner, callee.ServiceResource(),
                                   step.callee_service)) {
      if (options_.trace && !thread.blocked) {
        std::cerr << "[round " << stats_.rounds << "] root "
                  << thread.root_index << " blocked on service "
                  << step.callee_service << " @ " << callee.name() << "\n";
      }
      thread.blocked = true;
      thread.wait_component = step.callee_component;
      thread.wait_resource = callee.ServiceResource();
      thread.wait_mode = step.callee_service;
      thread.wait_owner = owner;
      return StepOutcome::kBlocked;
    }
    frame.pending_child = 0;
    Frame child;
    child.component = step.callee_component;
    child.service = step.callee_service;
    child.instance = child_instance;
    child.record = recorder_.BeginSub(frame.record, step.callee_component,
                                      step.callee_service);
    ++frame.step;
    thread.stack.push_back(std::move(child));
    thread.blocked = false;
    return StepOutcome::kProgress;
  }

  // Frame complete: commit the (sub)transaction.  A root whose client
  // scheduled an abandonment never commits — if the walk-away point was
  // not reached mid-run, it fires now, before the commit.
  if (thread.stack.size() == 1 &&
      thread.abort_after_actions != UINT64_MAX) {
    AbandonRoot(thread);
    return StepOutcome::kProgress;
  }
  if (ValidatesRootOrder(options_.protocol)) {
    // Register the component-level serialization edges this commit
    // establishes over root transactions; abort the root on a cycle.
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (const CommittedTxn& prior :
         committed_per_component_[frame.component]) {
      if (prior.root == thread.root_index) continue;
      bool conflict =
          component.ServicesConflict(prior.service, frame.service);
      if (!conflict) {
        for (const Access& a : prior.accesses) {
          for (const Access& b : frame.accesses) {
            if (a.item == b.item && OpsConflict(a.op, b.op)) {
              conflict = true;
              break;
            }
          }
          if (conflict) break;
        }
      }
      if (conflict) edges.emplace_back(prior.root, thread.root_index);
    }
    if (!root_order_.TryAddEdges(edges)) {
      return StepOutcome::kValidationAbort;
    }
  }
  committed_per_component_[frame.component].push_back(
      CommittedTxn{thread.root_index, frame.service, frame.accesses});
  recorder_.CommitNode(frame.record, ++seq_);
  if (UsesConservativeAdmission(options_.protocol)) {
    FinishVisit(thread.root_index, frame.component);
  }
  if (ReleasesLocksAtSubCommit(options_.protocol)) {
    ReleaseEverywhere(frame.instance);
  }
  thread.stack.pop_back();
  if (thread.stack.empty()) {
    ReleaseEverywhere(thread.root_instance);
    recorder_.CommitRoot(thread.root_index);
    thread.done = true;
  }
  thread.blocked = false;
  return StepOutcome::kProgress;
}

void Executor::RestartRoot(Thread& thread, bool validation) {
  if (options_.trace) {
    std::cerr << "[round " << stats_.rounds << "] restart root "
              << thread.root_index << " ("
              << (validation ? "validation" : "deadlock") << "), attempt "
              << thread.restarts + 1 << "\n";
  }
  if (validation) {
    ++stats_.validation_restarts;
  } else {
    ++stats_.deadlock_restarts;
  }
  RollBackAttempt(thread);
  if (UsesConservativeAdmission(options_.protocol)) {
    // The restarted attempt re-declares its whole access plan.
    remaining_visits_[thread.root_index] =
        declared_visits_[thread.root_index];
  }

  const uint32_t root_index = thread.root_index;
  const uint32_t restarts = thread.restarts + 1;
  const uint64_t abort_after = thread.abort_after_actions;
  thread = MakeThread(root_index);
  thread.restarts = restarts;
  thread.abort_after_actions = abort_after;
  thread.backoff_until_round =
      stats_.rounds + (uint64_t{4} << std::min<uint32_t>(restarts, 7));
}

void Executor::RollBackAttempt(Thread& thread) {
  // Physically undo all data effects of the attempt, newest first.
  for (auto it = thread.undo_log.rbegin(); it != thread.undo_log.rend();
       ++it) {
    std::vector<UndoEntry> one = {it->second};
    // Rollback() clears the vector; apply entries individually to keep the
    // strict reverse order across components.
    system_.components[it->first]->store().Rollback(one);
  }
  thread.undo_log.clear();
  for (LockOwner owner : thread.instances) ReleaseEverywhere(owner);
  for (auto& committed : committed_per_component_) {
    committed.erase(std::remove_if(committed.begin(), committed.end(),
                                   [&](const CommittedTxn& t) {
                                     return t.root == thread.root_index;
                                   }),
                    committed.end());
  }
  root_order_.RemoveRoot(thread.root_index);
  recorder_.AbortRoot(thread.root_index);
}

void Executor::AbandonRoot(Thread& thread) {
  if (options_.trace) {
    std::cerr << "[round " << stats_.rounds << "] client abandons root "
              << thread.root_index << "\n";
  }
  ++stats_.client_aborts;
  RollBackAttempt(thread);
  if (UsesConservativeAdmission(options_.protocol)) {
    // An abandoned root will never return: release its declarations so
    // larger-timestamp roots are not blocked forever.
    std::fill(remaining_visits_[thread.root_index].begin(),
              remaining_visits_[thread.root_index].end(), 0u);
  }
  thread.done = true;
  thread.blocked = false;
  thread.stack.clear();
}

Status Executor::HandleStall(const std::vector<uint32_t>& alive,
                             bool any_backing_off) {
  // Build the waits-for graph over stalled threads: an edge t -> u when t
  // waits for a lock held by an instance belonging to u.
  std::vector<uint32_t> blocked;
  for (uint32_t t : alive) {
    if (threads_[t].blocked) blocked.push_back(t);
  }
  if (blocked.empty()) {
    if (any_backing_off) return Status::OK();  // wait out the backoff.
    return Status::Internal("no thread progressed but none is blocked");
  }
  graph::Digraph waits(blocked.size());
  std::vector<uint64_t> ages(blocked.size());
  // Owner instance -> local blocked-thread index.
  std::map<LockOwner, uint32_t> owner_to_thread;
  for (uint32_t i = 0; i < blocked.size(); ++i) {
    ages[i] = threads_[blocked[i]].root_instance;
    for (LockOwner owner : threads_[blocked[i]].instances) {
      owner_to_thread[owner] = i;
    }
  }
  for (uint32_t i = 0; i < blocked.size(); ++i) {
    const Thread& t = threads_[blocked[i]];
    Component& component = *system_.components[t.wait_component];
    for (LockOwner holder : component.locks().Blockers(
             t.wait_owner, t.wait_resource, t.wait_mode)) {
      auto it = owner_to_thread.find(holder);
      if (it != owner_to_thread.end() && it->second != i) {
        waits.AddEdge(i, it->second);
      }
    }
  }
  std::optional<uint32_t> victim = FindDeadlockVictim(waits, ages);
  if (!victim) {
    // No cycle among the currently blocked threads: if someone is backing
    // off, its future release/acquisition may unblock them — wait.
    if (any_backing_off) {
      if (options_.trace) {
        std::cerr << "[round " << stats_.rounds << "] stall: no cycle, "
                  << blocked.size() << " blocked, backoff pending\n";
      }
      return Status::OK();
    }
    // Otherwise the blockage must involve state only a restart clears;
    // restart the youngest blocked attempt to stay live.
    victim = 0;
    for (uint32_t i = 1; i < blocked.size(); ++i) {
      if (ages[i] > ages[*victim]) victim = i;
    }
  }
  RestartRoot(threads_[blocked[*victim]], /*validation=*/false);
  return Status::OK();
}

StatusOr<ExecutionResult> Executor::Run() {
  COMPTX_RETURN_IF_ERROR(ValidateNetwork(system_));
  if (UsesConservativeAdmission(options_.protocol)) {
    PrecomputeVisitCounts();
  }
  threads_.reserve(system_.roots.size());
  for (uint32_t r = 0; r < system_.roots.size(); ++r) {
    threads_.push_back(MakeThread(r));
    if (options_.client_abort_prob > 0.0 &&
        rng_.Bernoulli(options_.client_abort_prob)) {
      // The client will walk away after a prefix of its transaction.
      threads_.back().abort_after_actions = 1 + rng_.UniformInt(8);
    }
  }

  double parallelism_sum = 0.0;
  while (true) {
    std::vector<uint32_t> alive;
    for (uint32_t t = 0; t < threads_.size(); ++t) {
      if (!threads_[t].done) alive.push_back(t);
    }
    if (alive.empty()) break;
    if (IsSerialProtocol(options_.protocol)) {
      // One root at a time, to completion.
      alive.resize(1);
    }
    if (++stats_.rounds > options_.max_rounds) {
      return Status::ResourceExhausted(
          StrCat("execution exceeded ", options_.max_rounds, " rounds"));
    }
    if (options_.trace && stats_.rounds % 50 == 0) {
      std::cerr << "[round " << stats_.rounds << "] state:";
      for (uint32_t t = 0; t < threads_.size(); ++t) {
        const Thread& th = threads_[t];
        std::cerr << " r" << th.root_index << "="
                  << (th.done ? "done"
                      : th.blocked ? "blocked"
                      : th.backoff_until_round > stats_.rounds ? "backoff"
                                                               : "run")
                  << "/d" << th.stack.size() << "s"
                  << (th.stack.empty() ? 0 : th.stack.back().step);
      }
      std::cerr << "\n";
    }
    rng_.Shuffle(alive);
    uint32_t progressed = 0;
    bool any_backing_off = false;
    for (uint32_t t : alive) {
      Thread& thread = threads_[t];
      if (thread.done) continue;
      if (thread.backoff_until_round > stats_.rounds) {
        any_backing_off = true;
        continue;
      }
      switch (Advance(thread)) {
        case StepOutcome::kProgress:
          ++progressed;
          ++stats_.actions;
          ++thread.actions_done;
          if (!thread.done &&
              thread.actions_done >= thread.abort_after_actions) {
            AbandonRoot(thread);
          }
          break;
        case StepOutcome::kBlocked:
          break;
        case StepOutcome::kValidationAbort:
          RestartRoot(thread, /*validation=*/true);
          ++progressed;  // the restart itself is forward progress.
          break;
      }
    }
    parallelism_sum += progressed;
    if (progressed == 0) {
      COMPTX_RETURN_IF_ERROR(HandleStall(alive, any_backing_off));
    }
  }

  ExecutionResult result;
  COMPTX_ASSIGN_OR_RETURN(result.recorded, recorder_.BuildSystem());
  stats_.avg_parallelism =
      stats_.rounds == 0 ? 0.0 : parallelism_sum / double(stats_.rounds);
  for (uint32_t v = 0; v < result.recorded.NodeCount(); ++v) {
    if (result.recorded.node(NodeId(v)).IsLeaf()) ++stats_.committed_ops;
  }
  result.stats = stats_;
  return result;
}

}  // namespace

StatusOr<ExecutionResult> ExecuteSystem(const RuntimeSystem& system,
                                        const ExecutorOptions& options) {
  Executor executor(system, options);
  return executor.Run();
}

}  // namespace comptx::runtime
