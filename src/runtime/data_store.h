#ifndef COMPTX_RUNTIME_DATA_STORE_H_
#define COMPTX_RUNTIME_DATA_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comptx::runtime {

/// Primitive data operation types of the simulated components.  `kAdd` is
/// the classic commutative increment: two adds to the same item commute,
/// which is the semantic knowledge higher-level schedulers exploit.
enum class OpType : uint8_t {
  kRead = 0,
  kWrite = 1,
  kAdd = 2,
};

const char* OpTypeToString(OpType type);

/// True iff two operations of the given types on the *same* item conflict:
/// read/read and add/add commute, every other combination conflicts.
bool OpsConflict(OpType a, OpType b);

/// One undo record.  Undo is *semantic* where possible: an add is
/// compensated by the inverse add (correct even when other adds
/// interleaved after the lock was released — the open-nesting
/// compensation discipline); reads and writes restore the before-image
/// (exact while conflicting writers are excluded, which the write lock
/// guarantees until release).
struct UndoEntry {
  uint32_t item;
  OpType op;
  int64_t previous_value;  // before-image (kRead/kWrite compensation).
  int64_t operand;         // the delta (kAdd compensation).
};

/// A component's local store: dense integer registers with undo support so
/// aborted transaction attempts can be rolled back.
class DataStore {
 public:
  explicit DataStore(size_t item_count) : values_(item_count, 0) {}

  size_t item_count() const { return values_.size(); }

  int64_t Read(uint32_t item) const { return values_[item]; }

  /// Applies `type` with `operand` to `item`; appends the matching undo
  /// record so the caller can compensate.
  void Apply(OpType type, uint32_t item, int64_t operand,
             std::vector<UndoEntry>& undo);

  /// Compensates the entries of `undo` in reverse order and clears it.
  void Rollback(std::vector<UndoEntry>& undo);

 private:
  std::vector<int64_t> values_;
};

}  // namespace comptx::runtime

#endif  // COMPTX_RUNTIME_DATA_STORE_H_
