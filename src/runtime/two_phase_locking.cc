#include "runtime/two_phase_locking.h"

namespace comptx::runtime {

LockOwner LockOwnerForFrame(Protocol protocol, LockOwner root_instance,
                            LockOwner frame_instance) {
  if (ReleasesLocksAtSubCommit(protocol)) return frame_instance;
  return root_instance;
}

}  // namespace comptx::runtime
