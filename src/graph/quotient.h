#ifndef COMPTX_GRAPH_QUOTIENT_H_
#define COMPTX_GRAPH_QUOTIENT_H_

#include <vector>

#include "graph/digraph.h"

namespace comptx::graph {

/// Collapses `g` along a block assignment: nodes u, v with
/// block_of[u] == block_of[v] become one node.  Edges between different
/// blocks are kept (deduplicated); intra-block edges are dropped (they are
/// checked separately by the calculation machinery, Def 14).
///
/// `block_of[v]` must be < `block_count` for every v.
Digraph QuotientGraph(const Digraph& g, const std::vector<uint32_t>& block_of,
                      uint32_t block_count);

/// The subgraph of `g` induced by one block: returns the digraph over
/// `members` (re-indexed 0..members.size()-1 in the given order) containing
/// the edges of `g` whose endpoints are both in `members`.
Digraph InducedSubgraph(const Digraph& g, const std::vector<NodeIndex>& members);

}  // namespace comptx::graph

#endif  // COMPTX_GRAPH_QUOTIENT_H_
