#include "graph/quotient.h"

#include <unordered_map>

#include "util/logging.h"

namespace comptx::graph {

Digraph QuotientGraph(const Digraph& g, const std::vector<uint32_t>& block_of,
                      uint32_t block_count) {
  COMPTX_CHECK_EQ(block_of.size(), g.NodeCount());
  Digraph q(block_count);
  for (NodeIndex v = 0; v < g.NodeCount(); ++v) {
    COMPTX_CHECK_LT(block_of[v], block_count);
    for (NodeIndex w : g.OutNeighbors(v)) {
      if (block_of[v] != block_of[w]) q.AddEdge(block_of[v], block_of[w]);
    }
  }
  return q;
}

Digraph InducedSubgraph(const Digraph& g,
                        const std::vector<NodeIndex>& members) {
  std::unordered_map<NodeIndex, NodeIndex> local;
  local.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    local[members[i]] = static_cast<NodeIndex>(i);
  }
  Digraph sub(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    for (NodeIndex w : g.OutNeighbors(members[i])) {
      auto it = local.find(w);
      if (it != local.end()) {
        sub.AddEdge(static_cast<NodeIndex>(i), it->second);
      }
    }
  }
  return sub;
}

}  // namespace comptx::graph
