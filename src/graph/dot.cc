#include "graph/dot.h"

#include <sstream>
#include <unordered_set>

#include "util/logging.h"

namespace comptx::graph {

namespace {

std::string EscapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ToDot(const Digraph& g, const std::vector<std::string>& labels,
                  const DotOptions& options) {
  if (!labels.empty()) COMPTX_CHECK_EQ(labels.size(), g.NodeCount());
  std::unordered_set<NodeIndex> highlighted(options.highlighted.begin(),
                                            options.highlighted.end());
  std::ostringstream out;
  out << "digraph " << options.name << " {\n";
  for (NodeIndex v = 0; v < g.NodeCount(); ++v) {
    out << "  n" << v;
    out << " [label=\""
        << (labels.empty() ? std::to_string(v) : EscapeLabel(labels[v]))
        << "\"";
    if (highlighted.count(v) > 0) {
      out << ", style=filled, fillcolor=lightcoral";
    }
    out << "];\n";
  }
  for (NodeIndex v = 0; v < g.NodeCount(); ++v) {
    for (NodeIndex w : g.OutNeighbors(v)) {
      out << "  n" << v << " -> n" << w << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace comptx::graph
