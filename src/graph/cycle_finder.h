#ifndef COMPTX_GRAPH_CYCLE_FINDER_H_
#define COMPTX_GRAPH_CYCLE_FINDER_H_

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace comptx::graph {

/// Returns a directed cycle of `g` as a node sequence [v0, v1, ..., vk]
/// where each consecutive pair is an edge and vk -> v0 closes the cycle,
/// or std::nullopt if `g` is acyclic.  A self-loop yields a one-node cycle.
///
/// The witness is what makes correctness diagnostics actionable: when a
/// front fails conflict consistency, the cycle names the transactions whose
/// pulled-up orders clash (cf. paper §3.6).
std::optional<std::vector<NodeIndex>> FindCycle(const Digraph& g);

/// True iff `g` has no directed cycle.
bool IsAcyclic(const Digraph& g);

}  // namespace comptx::graph

#endif  // COMPTX_GRAPH_CYCLE_FINDER_H_
