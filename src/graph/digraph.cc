#include "graph/digraph.h"

#include "util/logging.h"

namespace comptx::graph {

Digraph::Digraph(size_t node_count)
    : out_(node_count), in_(node_count), seen_(node_count) {}

NodeIndex Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  seen_.emplace_back();
  return static_cast<NodeIndex>(out_.size() - 1);
}

bool Digraph::AddEdge(NodeIndex from, NodeIndex to) {
  COMPTX_CHECK_LT(from, out_.size());
  COMPTX_CHECK_LT(to, out_.size());
  if (!seen_[from].TestAndSet(to)) return false;
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++edge_count_;
  return true;
}

bool Digraph::HasEdge(NodeIndex from, NodeIndex to) const {
  return from < seen_.size() && seen_[from].Test(to);
}

bool Digraph::HasSelfLoop() const {
  for (NodeIndex v = 0; v < out_.size(); ++v) {
    if (HasEdge(v, v)) return true;
  }
  return false;
}

Digraph Digraph::Reversed() const {
  Digraph r(NodeCount());
  for (NodeIndex v = 0; v < out_.size(); ++v) {
    for (NodeIndex w : out_[v]) r.AddEdge(w, v);
  }
  return r;
}

void Digraph::UnionWith(const Digraph& other) {
  COMPTX_CHECK_EQ(NodeCount(), other.NodeCount());
  for (NodeIndex v = 0; v < other.out_.size(); ++v) {
    for (NodeIndex w : other.out_[v]) AddEdge(v, w);
  }
}

}  // namespace comptx::graph
