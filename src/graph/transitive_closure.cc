#include "graph/transitive_closure.h"

#include "graph/tarjan_scc.h"

namespace comptx::graph {

TransitiveClosure::TransitiveClosure(const Digraph& g)
    : node_count_(g.NodeCount()),
      words_per_row_((node_count_ + 63) / 64),
      bits_(node_count_ * words_per_row_, 0) {
  if (node_count_ == 0) return;
  // Tarjan emits components in reverse topological order of the
  // condensation: when we process components in order 0, 1, ..., every
  // successor component of the one being processed is already final.
  SccResult scc = TarjanScc(g);
  for (const auto& component : scc.components) {
    // Within a non-trivial SCC every member reaches every member.
    for (NodeIndex v : component) {
      for (NodeIndex w : g.OutNeighbors(v)) {
        SetBit(v, w);
        OrRow(v, w);
      }
    }
    if (component.size() > 1) {
      // Union the rows of the whole component, then broadcast.
      NodeIndex head = component.front();
      for (size_t i = 1; i < component.size(); ++i) OrRow(head, component[i]);
      for (NodeIndex v : component) SetBit(head, v);
      for (size_t i = 1; i < component.size(); ++i) {
        for (size_t w = 0; w < words_per_row_; ++w) {
          bits_[component[i] * words_per_row_ + w] =
              bits_[head * words_per_row_ + w];
        }
      }
    }
  }
}

bool TransitiveClosure::Reaches(NodeIndex from, NodeIndex to) const {
  return TestBit(from, to);
}

Digraph TransitiveClosure::ToDigraph() const {
  Digraph out(node_count_);
  for (NodeIndex v = 0; v < node_count_; ++v) {
    ForEachReachable(v, [&](NodeIndex w) { out.AddEdge(v, w); });
  }
  return out;
}

}  // namespace comptx::graph
