#include "graph/tarjan_scc.h"

#include <algorithm>

namespace comptx::graph {

bool SccResult::AllTrivial(const Digraph& g) const {
  if (components.size() != g.NodeCount()) return false;
  return !g.HasSelfLoop();
}

SccResult TarjanScc(const Digraph& g) {
  const size_t n = g.NodeCount();
  constexpr uint32_t kUnvisited = UINT32_MAX;

  SccResult result;
  result.component_of.assign(n, kUnvisited);

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeIndex> scc_stack;
  uint32_t next_index = 0;

  // Iterative Tarjan; frame = (node, next out-neighbor offset).
  std::vector<std::pair<NodeIndex, size_t>> call_stack;
  for (NodeIndex root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.emplace_back(root, 0);
    while (!call_stack.empty()) {
      auto& [v, next] = call_stack.back();
      if (next == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = true;
      }
      const auto& out = g.OutNeighbors(v);
      if (next < out.size()) {
        NodeIndex w = out[next++];
        if (index[w] == kUnvisited) {
          call_stack.emplace_back(w, 0);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          std::vector<NodeIndex> component;
          NodeIndex w;
          do {
            w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            result.component_of[w] =
                static_cast<uint32_t>(result.components.size());
            component.push_back(w);
          } while (w != v);
          result.components.push_back(std::move(component));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          NodeIndex parent = call_stack.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

}  // namespace comptx::graph
