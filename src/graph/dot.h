#ifndef COMPTX_GRAPH_DOT_H_
#define COMPTX_GRAPH_DOT_H_

#include <string>
#include <vector>

#include "graph/digraph.h"

namespace comptx::graph {

/// Options controlling DOT rendering.
struct DotOptions {
  /// Graph name emitted in the `digraph <name> { ... }` header.
  std::string name = "g";
  /// Nodes to highlight (drawn filled); used to color cycle witnesses.
  std::vector<NodeIndex> highlighted;
};

/// Renders `g` as Graphviz DOT.  `labels` may be empty (node indices are
/// used) or must have one entry per node.
std::string ToDot(const Digraph& g, const std::vector<std::string>& labels,
                  const DotOptions& options = {});

}  // namespace comptx::graph

#endif  // COMPTX_GRAPH_DOT_H_
