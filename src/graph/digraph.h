#ifndef COMPTX_GRAPH_DIGRAPH_H_
#define COMPTX_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitrow.h"

namespace comptx::graph {

/// Index of a node inside a Digraph.
using NodeIndex = uint32_t;

/// A simple directed graph over dense node indices [0, NodeCount()).
///
/// Parallel edges are collapsed (AddEdge is idempotent); self-loops are
/// allowed and are reported by HasSelfLoop().  This is the common currency
/// for all order-theoretic algorithms in the library: observed orders,
/// serialization graphs, invocation graphs and ghost graphs are all built as
/// Digraphs and analyzed with the free functions in the sibling headers.
class Digraph {
 public:
  /// Creates a graph with `node_count` isolated nodes.
  explicit Digraph(size_t node_count = 0);

  /// Adds one node and returns its index.
  NodeIndex AddNode();

  /// Adds the edge `from -> to`; both endpoints must exist.  Returns true
  /// if the edge is new, false if it was already present.
  bool AddEdge(NodeIndex from, NodeIndex to);

  /// True iff the edge `from -> to` is present.
  bool HasEdge(NodeIndex from, NodeIndex to) const;

  size_t NodeCount() const { return out_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  /// Successors of `node`, in insertion order.
  const std::vector<NodeIndex>& OutNeighbors(NodeIndex node) const {
    return out_[node];
  }

  /// Predecessors of `node`, in insertion order.
  const std::vector<NodeIndex>& InNeighbors(NodeIndex node) const {
    return in_[node];
  }

  /// True iff any node has an edge to itself.
  bool HasSelfLoop() const;

  /// Returns the graph with every edge reversed.
  Digraph Reversed() const;

  /// Merges all edges of `other` into this graph; the two graphs must have
  /// the same node count.
  void UnionWith(const Digraph& other);

 private:
  std::vector<std::vector<NodeIndex>> out_;
  std::vector<std::vector<NodeIndex>> in_;
  /// Per-source membership bits deduplicating AddEdge in O(1); replaces
  /// the old hashed edge set, which dominated graph-build profiles.
  std::vector<BitRow> seen_;
  size_t edge_count_ = 0;
};

}  // namespace comptx::graph

#endif  // COMPTX_GRAPH_DIGRAPH_H_
