#ifndef COMPTX_GRAPH_TRANSITIVE_CLOSURE_H_
#define COMPTX_GRAPH_TRANSITIVE_CLOSURE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace comptx::graph {

/// Reachability oracle for a digraph, built once in O(V * E / 64) using
/// bitset rows.  The paper's orders are "in all cases transitively closed"
/// (Def 1); this type is how the library answers closed-order membership
/// questions without materializing quadratic edge sets.
class TransitiveClosure {
 public:
  /// Builds reachability for `g` (handles cycles; a node reaches itself
  /// only if it lies on a cycle or has a self-loop).
  explicit TransitiveClosure(const Digraph& g);

  /// True iff there is a non-empty directed path from `from` to `to`.
  bool Reaches(NodeIndex from, NodeIndex to) const;

  size_t NodeCount() const { return node_count_; }

  /// Materializes the closed graph (every reachable pair becomes an edge).
  Digraph ToDigraph() const;

  /// Invokes `f(NodeIndex to)` for every node reachable from `from`, in
  /// ascending index order, scanning whole 64-bit words at a time.  This
  /// is how callers should enumerate a closure (O(n / 64 + reachable)
  /// per row instead of n bit probes).
  template <typename F>
  void ForEachReachable(NodeIndex from, F f) const {
    const uint64_t* row = bits_.data() + from * words_per_row_;
    for (size_t w = 0; w < words_per_row_; ++w) {
      uint64_t word = row[w];
      const NodeIndex base = static_cast<NodeIndex>(w * 64);
      while (word != 0) {
        f(base + static_cast<NodeIndex>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

 private:
  size_t node_count_;
  size_t words_per_row_;
  std::vector<uint64_t> bits_;

  bool TestBit(NodeIndex row, NodeIndex col) const {
    return (bits_[row * words_per_row_ + col / 64] >> (col % 64)) & 1;
  }
  void SetBit(NodeIndex row, NodeIndex col) {
    bits_[row * words_per_row_ + col / 64] |= uint64_t{1} << (col % 64);
  }
  void OrRow(NodeIndex dst, NodeIndex src) {
    for (size_t w = 0; w < words_per_row_; ++w) {
      bits_[dst * words_per_row_ + w] |= bits_[src * words_per_row_ + w];
    }
  }
};

}  // namespace comptx::graph

#endif  // COMPTX_GRAPH_TRANSITIVE_CLOSURE_H_
