#ifndef COMPTX_GRAPH_TARJAN_SCC_H_
#define COMPTX_GRAPH_TARJAN_SCC_H_

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace comptx::graph {

/// Strongly connected components of a digraph.
struct SccResult {
  /// component_of[v] is the component index of node v; component indices
  /// are in reverse topological order of the condensation (component 0 is a
  /// sink in the condensation).
  std::vector<uint32_t> component_of;
  /// Members of each component.
  std::vector<std::vector<NodeIndex>> components;

  size_t ComponentCount() const { return components.size(); }

  /// True iff every component is a single node without a self-loop, i.e.,
  /// the graph is acyclic.
  bool AllTrivial(const Digraph& g) const;
};

/// Computes strongly connected components with an iterative Tarjan
/// algorithm (no recursion, safe for graphs with long paths).
SccResult TarjanScc(const Digraph& g);

}  // namespace comptx::graph

#endif  // COMPTX_GRAPH_TARJAN_SCC_H_
