#include "graph/topological_sort.h"

#include <algorithm>
#include <queue>

namespace comptx::graph {

StatusOr<std::vector<NodeIndex>> TopologicalSort(const Digraph& g) {
  const size_t n = g.NodeCount();
  std::vector<uint32_t> in_degree(n, 0);
  for (NodeIndex v = 0; v < n; ++v) {
    for (NodeIndex w : g.OutNeighbors(v)) ++in_degree[w];
  }
  // Min-heap over node index keeps the order canonical.
  std::priority_queue<NodeIndex, std::vector<NodeIndex>,
                      std::greater<NodeIndex>>
      ready;
  for (NodeIndex v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push(v);
  }
  std::vector<NodeIndex> order;
  order.reserve(n);
  while (!ready.empty()) {
    NodeIndex v = ready.top();
    ready.pop();
    order.push_back(v);
    for (NodeIndex w : g.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push(w);
    }
  }
  if (order.size() != n) {
    return Status::FailedPrecondition("graph is cyclic; no topological order");
  }
  return order;
}

StatusOr<std::vector<uint32_t>> LongestPathLengths(const Digraph& g) {
  COMPTX_ASSIGN_OR_RETURN(std::vector<NodeIndex> order, TopologicalSort(g));
  std::vector<uint32_t> longest(g.NodeCount(), 0);
  // Process in reverse topological order so successors are final.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeIndex v = *it;
    for (NodeIndex w : g.OutNeighbors(v)) {
      longest[v] = std::max(longest[v], longest[w] + 1);
    }
  }
  return longest;
}

}  // namespace comptx::graph
