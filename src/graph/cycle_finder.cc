#include "graph/cycle_finder.h"

#include <algorithm>

namespace comptx::graph {

namespace {

enum class Color : uint8_t { kWhite, kGray, kBlack };

}  // namespace

std::optional<std::vector<NodeIndex>> FindCycle(const Digraph& g) {
  const size_t n = g.NodeCount();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<NodeIndex> parent(n, 0);

  // Iterative DFS; frame = (node, next out-neighbor index to visit).
  std::vector<std::pair<NodeIndex, size_t>> stack;
  for (NodeIndex root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    color[root] = Color::kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto& out = g.OutNeighbors(v);
      if (next < out.size()) {
        NodeIndex w = out[next++];
        if (color[w] == Color::kGray) {
          // Back edge v -> w: reconstruct the cycle w ... v.
          std::vector<NodeIndex> cycle;
          NodeIndex cur = v;
          cycle.push_back(cur);
          while (cur != w) {
            cur = parent[cur];
            cycle.push_back(cur);
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          parent[w] = v;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

bool IsAcyclic(const Digraph& g) { return !FindCycle(g).has_value(); }

}  // namespace comptx::graph
