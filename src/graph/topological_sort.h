#ifndef COMPTX_GRAPH_TOPOLOGICAL_SORT_H_
#define COMPTX_GRAPH_TOPOLOGICAL_SORT_H_

#include <vector>

#include "graph/digraph.h"
#include "util/status_or.h"

namespace comptx::graph {

/// Returns the nodes of `g` in a topological order (Kahn's algorithm), or
/// FailedPrecondition if `g` is cyclic.  Ties are broken by node index so
/// the result is deterministic; Theorem 1's serial-front construction uses
/// this to produce a canonical witness.
StatusOr<std::vector<NodeIndex>> TopologicalSort(const Digraph& g);

/// For each node, the length (edge count) of the longest path starting at
/// that node.  Requires `g` acyclic (FailedPrecondition otherwise).  The
/// paper's level of a schedule (Def 9) is this value + 1 on the invocation
/// graph.
StatusOr<std::vector<uint32_t>> LongestPathLengths(const Digraph& g);

}  // namespace comptx::graph

#endif  // COMPTX_GRAPH_TOPOLOGICAL_SORT_H_
