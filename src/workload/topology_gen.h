#ifndef COMPTX_WORKLOAD_TOPOLOGY_GEN_H_
#define COMPTX_WORKLOAD_TOPOLOGY_GEN_H_

#include <cstdint>

#include "core/composite_system.h"
#include "util/rng.h"

namespace comptx::workload {

/// Configuration shapes from the paper: the special cases (stack, fork,
/// join) of §4 plus the general layered-DAG case the paper is about.
enum class TopologyKind : uint8_t {
  kStack,
  kFork,
  kJoin,
  kLayeredDag,

  /// Per-root invocation chains meeting in one shared bottom-level
  /// schedule (the schedulers-with-a-common-resource-manager picture):
  /// root r runs on its own stack of depth-1 schedules and every
  /// bottom-level subtransaction executes on the common schedule SB,
  /// whose operations are all leaves.  No structural theorem covers the
  /// shape, but the semantic shared-bottom rule decides it statically
  /// when SB's cross-root conflicts all commute.
  kSharedBottom,
};

const char* TopologyKindToString(TopologyKind kind);

/// Parameters for GenerateTopology.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kStack;

  /// Stack depth / number of DAG layers (schedule levels).
  uint32_t depth = 3;

  /// Fork/join width; schedules per DAG layer.
  uint32_t branches = 3;

  /// Number of root transactions.
  uint32_t roots = 4;

  /// Operations per transaction.
  uint32_t fanout = 2;

  /// For kLayeredDag: probability that an operation of a non-bottom
  /// transaction is a leaf instead of a subtransaction (internal schedules
  /// with leaf operations, which the paper explicitly allows).
  double leaf_fraction = 0.2;
};

/// Generates the structural part of a composite system — schedules and the
/// computational forest — with no conflicts or orders yet (those are added
/// by PopulateExecution in schedule_gen.h).  The result satisfies the
/// structural rules of Def 4 (and Def 21/23/25 for the special shapes).
CompositeSystem GenerateTopology(const TopologySpec& spec, Rng& rng);

}  // namespace comptx::workload

#endif  // COMPTX_WORKLOAD_TOPOLOGY_GEN_H_
