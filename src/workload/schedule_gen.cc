#include "workload/schedule_gen.h"

#include <algorithm>
#include <vector>

#include "core/commutativity.h"
#include "core/indexing.h"
#include "core/invocation_graph.h"
#include "graph/digraph.h"
#include "util/string_util.h"

namespace comptx::workload {

const char* AdtMixToString(AdtMix mix) {
  switch (mix) {
    case AdtMix::kNone:
      return "none";
    case AdtMix::kCounter:
      return "counter";
    case AdtMix::kSet:
      return "set";
    case AdtMix::kQueue:
      return "queue";
    case AdtMix::kEscrow:
      return "escrow";
    case AdtMix::kMixed:
      return "mixed";
  }
  return "unknown";
}

StatusOr<AdtMix> ParseAdtMix(const std::string& name) {
  for (AdtMix mix : {AdtMix::kNone, AdtMix::kCounter, AdtMix::kSet,
                     AdtMix::kQueue, AdtMix::kEscrow, AdtMix::kMixed}) {
    if (name == AdtMixToString(mix)) return mix;
  }
  return Status::InvalidArgument(
      StrCat("unknown ADT mix \"", name,
             "\" (want none|counter|set|queue|escrow|mixed)"));
}

namespace {

/// True iff `to` is reachable from `from` in `g` (DFS; graphs here are
/// schedule-sized, so this on-demand check is cheap).
bool Reaches(const graph::Digraph& g, uint32_t from, uint32_t to) {
  if (from == to) return true;
  std::vector<bool> seen(g.NodeCount(), false);
  std::vector<uint32_t> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t w : g.OutNeighbors(v)) {
      if (w == to) return true;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

/// A random topological order of `g` (Kahn with uniformly random choice
/// among ready nodes); `g` must be acyclic.
std::vector<uint32_t> RandomTopologicalOrder(const graph::Digraph& g,
                                             Rng& rng) {
  const size_t n = g.NodeCount();
  std::vector<uint32_t> in_degree(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.OutNeighbors(v)) ++in_degree[w];
  }
  std::vector<uint32_t> ready;
  for (uint32_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<uint32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    size_t pick = static_cast<size_t>(rng.UniformInt(ready.size()));
    uint32_t v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (uint32_t w : g.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push_back(w);
    }
  }
  COMPTX_CHECK_EQ(order.size(), n) << "constraint graph unexpectedly cyclic";
  return order;
}

/// Attaches the built-in tables of `spec.adt` and tags every leaf with a
/// random (class, instance).  Instance numbers are partitioned per ADT so
/// leaves of different ADTs never share an instance.
Status ApplyAdtProfile(CompositeSystem& cs, const ExecutionGenSpec& spec,
                       Rng& rng) {
  std::vector<BuiltinAdt> kinds;
  switch (spec.adt) {
    case AdtMix::kNone:
      return Status::OK();
    case AdtMix::kCounter:
      kinds = {BuiltinAdt::kCounter};
      break;
    case AdtMix::kSet:
      kinds = {BuiltinAdt::kSet};
      break;
    case AdtMix::kQueue:
      kinds = {BuiltinAdt::kQueue};
      break;
    case AdtMix::kEscrow:
      kinds = {BuiltinAdt::kEscrow};
      break;
    case AdtMix::kMixed:
      kinds = {BuiltinAdt::kCounter, BuiltinAdt::kSet, BuiltinAdt::kQueue,
               BuiltinAdt::kEscrow};
      break;
  }
  CommutativitySpec built;
  std::vector<std::vector<uint32_t>> classes;
  for (BuiltinAdt kind : kinds) {
    COMPTX_ASSIGN_OR_RETURN(uint32_t adt, DeclareBuiltinAdt(built, kind));
    classes.push_back(built.adt(adt).op_classes);
  }
  cs.AttachSpec(std::move(built));
  const uint32_t instances = std::max(1u, spec.adt_instances);
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const NodeId id(v);
    if (!cs.node(id).IsLeaf()) continue;
    const size_t pick =
        kinds.size() == 1 ? 0 : static_cast<size_t>(rng.UniformInt(kinds.size()));
    const std::vector<uint32_t>& cls = classes[pick];
    const uint32_t op_class = cls[rng.UniformInt(cls.size())];
    const uint32_t instance =
        static_cast<uint32_t>(pick) * instances +
        static_cast<uint32_t>(rng.UniformInt(instances));
    COMPTX_RETURN_IF_ERROR(cs.TagOperation(id, op_class, instance));
  }
  return Status::OK();
}

}  // namespace

Status PopulateExecution(CompositeSystem& cs, const ExecutionGenSpec& spec,
                         Rng& rng) {
  if (spec.order_preserving_outputs && spec.disorder_prob > 0.0) {
    return Status::InvalidArgument(
        "order_preserving_outputs requires disorder_prob == 0");
  }
  COMPTX_ASSIGN_OR_RETURN(InvocationGraphResult ig, BuildInvocationGraph(cs));
  COMPTX_RETURN_IF_ERROR(ApplyAdtProfile(cs, spec, rng));

  // Random intra-transaction orders along one permutation per transaction.
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const NodeId txn(v);
    const Node& n = cs.node(txn);
    if (!n.IsTransaction() || n.children.size() < 2) continue;
    std::vector<NodeId> perm = n.children;
    rng.Shuffle(perm);
    for (size_t i = 0; i + 1 < perm.size(); ++i) {
      if (rng.Bernoulli(spec.intra_weak_prob)) {
        COMPTX_RETURN_IF_ERROR(cs.AddIntraWeak(txn, perm[i], perm[i + 1]));
        if (rng.Bernoulli(spec.intra_strong_prob)) {
          COMPTX_RETURN_IF_ERROR(
              cs.AddIntraStrong(txn, perm[i], perm[i + 1]));
        }
      }
    }
  }

  // Process schedules top-down so Def 4.7 propagation precedes the
  // callee's own linearization.
  std::vector<uint32_t> by_level(cs.ScheduleCount());
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) by_level[s] = s;
  std::sort(by_level.begin(), by_level.end(), [&](uint32_t a, uint32_t b) {
    return ig.schedule_level[a] > ig.schedule_level[b];
  });

  for (uint32_t s : by_level) {
    const ScheduleId sid(s);
    const std::vector<NodeId> ops = cs.OperationsOf(sid);
    if (ops.empty()) continue;
    NodeIndexMap index(ops);

    // Conflicts between operations of distinct transactions.  Tagged
    // pairs are decided by their instances: same instance always gets a
    // bit (the pessimistic syntactic CON a spec can then erase), distinct
    // instances never do.  Pairs with an untagged member stay random.
    for (size_t i = 0; i < ops.size(); ++i) {
      for (size_t j = i + 1; j < ops.size(); ++j) {
        const Node& na = cs.node(ops[i]);
        const Node& nb = cs.node(ops[j]);
        if (na.parent == nb.parent) continue;
        if (na.sem_class != kInvalidIndex && nb.sem_class != kInvalidIndex) {
          if (na.sem_instance == nb.sem_instance) {
            COMPTX_RETURN_IF_ERROR(cs.AddConflict(ops[i], ops[j]));
          }
        } else if (rng.Bernoulli(spec.conflict_prob)) {
          COMPTX_RETURN_IF_ERROR(cs.AddConflict(ops[i], ops[j]));
        }
      }
    }

    const Schedule& sched = cs.schedule(sid);
    Relation weak_in_closed =
        ClosureWithin(sched.weak_input, sched.transactions);
    Relation strong_in_closed =
        ClosureWithin(sched.strong_input, sched.transactions);

    // Constraints the linearization must respect: intra-transaction weak
    // orders, and all cross pairs of input-ordered transactions.
    graph::Digraph constraints(ops.size());
    for (NodeId txn : sched.transactions) {
      cs.node(txn).weak_intra.ForEach([&](NodeId a, NodeId b) {
        constraints.AddEdge(index.LocalOf(a), index.LocalOf(b));
      });
    }
    weak_in_closed.ForEach([&](NodeId t1, NodeId t2) {
      for (NodeId a : cs.node(t1).children) {
        for (NodeId b : cs.node(t2).children) {
          constraints.AddEdge(index.LocalOf(a), index.LocalOf(b));
        }
      }
    });
    std::vector<uint32_t> order = RandomTopologicalOrder(constraints, rng);
    std::vector<uint32_t> position(ops.size());
    for (uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;

    // Derive the output orders.  `output_graph` tracks everything added so
    // disorder flips can be rejected when they would create a cycle.
    graph::Digraph output_graph(ops.size());
    for (NodeId txn : sched.transactions) {
      const Node& t = cs.node(txn);
      t.weak_intra.ForEach([&](NodeId a, NodeId b) {
        COMPTX_CHECK_OK(cs.AddWeakOutput(a, b));
        output_graph.AddEdge(index.LocalOf(a), index.LocalOf(b));
      });
      t.strong_intra.ForEach([&](NodeId a, NodeId b) {
        COMPTX_CHECK_OK(cs.AddStrongOutput(a, b));
        output_graph.AddEdge(index.LocalOf(a), index.LocalOf(b));
      });
    }
    strong_in_closed.ForEach([&](NodeId t1, NodeId t2) {
      for (NodeId a : cs.node(t1).children) {
        for (NodeId b : cs.node(t2).children) {
          COMPTX_CHECK_OK(cs.AddStrongOutput(a, b));
          output_graph.AddEdge(index.LocalOf(a), index.LocalOf(b));
        }
      }
    });
    // Two-phase conflict ordering: pairs keeping the temporal direction go
    // into the graph first; flips are applied afterwards, each guarded by
    // a reachability check against everything already decided, so the
    // final weak output order is guaranteed acyclic.
    std::vector<std::pair<NodeId, NodeId>> flip_candidates;
    cs.schedule(sid).conflicts.ForEach([&](NodeId a, NodeId b) {
      NodeId t1 = cs.node(a).parent;
      NodeId t2 = cs.node(b).parent;
      uint32_t la = index.LocalOf(a);
      uint32_t lb = index.LocalOf(b);
      NodeId first = position[la] < position[lb] ? a : b;
      NodeId second = first == a ? b : a;
      const bool pinned = weak_in_closed.Contains(t1, t2) ||
                          weak_in_closed.Contains(t2, t1);
      if (!pinned && rng.Bernoulli(spec.disorder_prob)) {
        flip_candidates.emplace_back(first, second);
        return;
      }
      COMPTX_CHECK_OK(cs.AddWeakOutput(first, second));
      output_graph.AddEdge(index.LocalOf(first), index.LocalOf(second));
    });
    for (const auto& [first, second] : flip_candidates) {
      NodeId from = first;
      NodeId to = second;
      if (!Reaches(output_graph, index.LocalOf(first),
                   index.LocalOf(second))) {
        std::swap(from, to);  // safe to reverse the temporal direction.
      }
      COMPTX_CHECK_OK(cs.AddWeakOutput(from, to));
      output_graph.AddEdge(index.LocalOf(from), index.LocalOf(to));
    }

    if (spec.order_preserving_outputs) {
      // An order-preserving scheduler reports its full linearization.
      for (size_t i = 0; i + 1 < order.size(); ++i) {
        COMPTX_CHECK_OK(cs.AddWeakOutput(index.GlobalOf(order[i]),
                                         index.GlobalOf(order[i + 1])));
      }
    }

    // Def 4.7: pass the (closed) output orders on as input orders of the
    // callees.
    Relation weak_out_closed = ClosureWithin(cs.schedule(sid).weak_output,
                                             ops);
    Relation strong_out_closed =
        ClosureWithin(cs.schedule(sid).strong_output, ops);
    auto propagate = [&](const Relation& rel, bool is_strong) -> Status {
      Status status = Status::OK();
      rel.ForEach([&](NodeId a, NodeId b) {
        if (!status.ok()) return;
        const Node& na = cs.node(a);
        const Node& nb = cs.node(b);
        if (!na.IsTransaction() || !nb.IsTransaction()) return;
        if (na.owner_schedule != nb.owner_schedule) return;
        status = is_strong ? cs.AddStrongInput(na.owner_schedule, a, b)
                           : cs.AddWeakInput(na.owner_schedule, a, b);
      });
      return status;
    };
    COMPTX_RETURN_IF_ERROR(propagate(weak_out_closed, /*is_strong=*/false));
    COMPTX_RETURN_IF_ERROR(propagate(strong_out_closed, /*is_strong=*/true));
  }
  return Status::OK();
}

}  // namespace comptx::workload
