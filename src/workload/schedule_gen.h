#ifndef COMPTX_WORKLOAD_SCHEDULE_GEN_H_
#define COMPTX_WORKLOAD_SCHEDULE_GEN_H_

#include <string>

#include "core/composite_system.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/status_or.h"

namespace comptx::workload {

/// Which built-in ADT tables tag the generated leaf operations.
enum class AdtMix : uint8_t {
  kNone,     // no spec: pure bit-level workload
  kCounter,  // every leaf is a counter op (inc/dec/read)
  kSet,      // every leaf is a set op (add/remove/contains)
  kQueue,    // every leaf is a queue op (enq/deq)
  kEscrow,   // every leaf is an escrow op (deposit/withdraw/read)
  kMixed,    // leaves drawn uniformly from all four ADTs
};

const char* AdtMixToString(AdtMix mix);

/// Inverse of AdtMixToString ("none", "counter", "set", "queue",
/// "escrow", "mixed") — the accepted values of the tools' --adt flag.
StatusOr<AdtMix> ParseAdtMix(const std::string& name);

/// Parameters for PopulateExecution.
struct ExecutionGenSpec {
  /// Probability that a pair of operations of distinct transactions on one
  /// schedule is declared conflicting.
  double conflict_prob = 0.3;

  /// Probability that a conflicting pair is ordered *against* the
  /// schedule's linearization (when no input order pins it and the flip
  /// keeps the output order acyclic).  0 keeps every schedule locally
  /// conflict consistent; higher values inject local serialization
  /// anomalies.  Cross-schedule (Fig 3 style) anomalies appear even at 0
  /// because each schedule linearizes independently.
  double disorder_prob = 0.0;

  /// Model order-preserving schedulers [BBG89]: emit the *entire*
  /// linearization as weak output order (not only the conflicting and
  /// intra pairs).  Incompatible with disorder_prob > 0 (a flip would
  /// order a pair both ways); PopulateExecution rejects the combination.
  bool order_preserving_outputs = false;

  /// Probability of a weak intra-transaction order between consecutive
  /// children (in a random per-transaction permutation).
  double intra_weak_prob = 0.2;

  /// Probability that such an intra order is also strong.
  double intra_strong_prob = 0.05;

  /// When not kNone, attach the built-in commutativity tables and tag
  /// every leaf operation with a random (class, instance) of the chosen
  /// mix.  Conflict bits between tagged leaves are then *deterministic*
  /// and pessimistic — every same-instance pair gets a CON_S bit, as a
  /// syntactic analyzer would declare — so the semantic layer has
  /// exactly the commuting subset to erase.  `conflict_prob` still
  /// drives pairs with an untagged member (subtransaction operations).
  AdtMix adt = AdtMix::kNone;

  /// Distinct instances per ADT that tagged leaves are spread over.
  /// Fewer instances mean denser same-instance (conflicting) pairs.
  uint32_t adt_instances = 4;
};

/// Fills a structural composite system (from GenerateTopology) with a
/// random but *well-formed* execution:
///
///   * random intra-transaction orders (acyclic by construction);
///   * per schedule, top-down by level: random conflicts, a random
///     linearization consistent with the (already propagated) input
///     orders, output orders derived from it per Def 3, and Def 4.7
///     propagation of the outputs into the callees' input orders.
///
/// The result always passes CompositeSystem::Validate(); whether it is
/// Comp-C is the random event the experiments measure.
Status PopulateExecution(CompositeSystem& cs, const ExecutionGenSpec& spec,
                         Rng& rng);

}  // namespace comptx::workload

#endif  // COMPTX_WORKLOAD_SCHEDULE_GEN_H_
