#include "workload/trace.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <tuple>

#include "util/string_util.h"

namespace comptx::workload {

namespace {

constexpr char kHeader[] = "comptx-trace v1";

Status CheckName(const std::string& name) {
  for (char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return Status::InvalidArgument(
          StrCat("name contains whitespace: '", name, "'"));
    }
  }
  if (name.empty()) return Status::InvalidArgument("empty name");
  return Status::OK();
}

/// Parses one non-empty trace line into an event; "end" yields nullopt.
StatusOr<std::optional<TraceEvent>> ParseLine(const std::string& line) {
  std::istringstream fields(line);
  std::string kind;
  fields >> kind;
  if (kind == "end") return std::optional<TraceEvent>();

  TraceEvent e;
  bool ok = false;
  if (kind == "schedule") {
    e.kind = TraceEventKind::kSchedule;
    ok = static_cast<bool>(fields >> e.name);
  } else if (kind == "root") {
    e.kind = TraceEventKind::kRoot;
    ok = static_cast<bool>(fields >> e.schedule >> e.name);
  } else if (kind == "sub") {
    e.kind = TraceEventKind::kSub;
    ok = static_cast<bool>(fields >> e.parent >> e.schedule >> e.name);
  } else if (kind == "leaf") {
    e.kind = TraceEventKind::kLeaf;
    ok = static_cast<bool>(fields >> e.parent >> e.name);
  } else if (kind == "conflict" || kind == "weak_out" || kind == "strong_out") {
    e.kind = kind == "conflict"   ? TraceEventKind::kConflict
             : kind == "weak_out" ? TraceEventKind::kWeakOutput
                                  : TraceEventKind::kStrongOutput;
    ok = static_cast<bool>(fields >> e.a >> e.b);
  } else if (kind == "weak_in" || kind == "strong_in") {
    e.kind = kind == "weak_in" ? TraceEventKind::kWeakInput
                               : TraceEventKind::kStrongInput;
    ok = static_cast<bool>(fields >> e.schedule >> e.a >> e.b);
  } else if (kind == "intra_weak" || kind == "intra_strong") {
    e.kind = kind == "intra_weak" ? TraceEventKind::kIntraWeak
                                  : TraceEventKind::kIntraStrong;
    ok = static_cast<bool>(fields >> e.parent >> e.a >> e.b);
  } else if (kind == "commit") {
    e.kind = TraceEventKind::kCommit;
    ok = static_cast<bool>(fields >> e.parent);
  } else if (kind == "commit_through") {
    e.kind = TraceEventKind::kCommitThrough;
    ok = static_cast<bool>(fields >> e.a);
  } else if (kind == "adt") {
    e.kind = TraceEventKind::kAdtDecl;
    ok = static_cast<bool>(fields >> e.name);
  } else if (kind == "adtop") {
    e.kind = TraceEventKind::kAdtOp;
    ok = static_cast<bool>(fields >> e.a >> e.name);
  } else if (kind == "commute" || kind == "clash") {
    e.kind = kind == "commute" ? TraceEventKind::kCommute
                               : TraceEventKind::kClash;
    ok = static_cast<bool>(fields >> e.a >> e.b);
  } else if (kind == "tag") {
    e.kind = TraceEventKind::kTag;
    ok = static_cast<bool>(fields >> e.parent >> e.a >> e.b);
  } else {
    return Status::InvalidArgument(StrCat("unknown record kind '", kind, "'"));
  }
  if (!ok) {
    return Status::InvalidArgument(StrCat("malformed ", kind, " record"));
  }
  return std::optional<TraceEvent>(std::move(e));
}

}  // namespace

const char* TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSchedule:
      return "schedule";
    case TraceEventKind::kRoot:
      return "root";
    case TraceEventKind::kSub:
      return "sub";
    case TraceEventKind::kLeaf:
      return "leaf";
    case TraceEventKind::kConflict:
      return "conflict";
    case TraceEventKind::kWeakOutput:
      return "weak_out";
    case TraceEventKind::kStrongOutput:
      return "strong_out";
    case TraceEventKind::kWeakInput:
      return "weak_in";
    case TraceEventKind::kStrongInput:
      return "strong_in";
    case TraceEventKind::kIntraWeak:
      return "intra_weak";
    case TraceEventKind::kIntraStrong:
      return "intra_strong";
    case TraceEventKind::kCommit:
      return "commit";
    case TraceEventKind::kCommitThrough:
      return "commit_through";
    case TraceEventKind::kAdtDecl:
      return "adt";
    case TraceEventKind::kAdtOp:
      return "adtop";
    case TraceEventKind::kCommute:
      return "commute";
    case TraceEventKind::kClash:
      return "clash";
    case TraceEventKind::kTag:
      return "tag";
  }
  return "unknown";
}

std::string FormatTraceEvent(const TraceEvent& e) {
  const char* kind = TraceEventKindToString(e.kind);
  switch (e.kind) {
    case TraceEventKind::kSchedule:
      return StrCat(kind, " ", e.name);
    case TraceEventKind::kRoot:
      return StrCat(kind, " ", e.schedule, " ", e.name);
    case TraceEventKind::kSub:
      return StrCat(kind, " ", e.parent, " ", e.schedule, " ", e.name);
    case TraceEventKind::kLeaf:
      return StrCat(kind, " ", e.parent, " ", e.name);
    case TraceEventKind::kConflict:
    case TraceEventKind::kWeakOutput:
    case TraceEventKind::kStrongOutput:
      return StrCat(kind, " ", e.a, " ", e.b);
    case TraceEventKind::kWeakInput:
    case TraceEventKind::kStrongInput:
      return StrCat(kind, " ", e.schedule, " ", e.a, " ", e.b);
    case TraceEventKind::kIntraWeak:
    case TraceEventKind::kIntraStrong:
      return StrCat(kind, " ", e.parent, " ", e.a, " ", e.b);
    case TraceEventKind::kCommit:
      return StrCat(kind, " ", e.parent);
    case TraceEventKind::kCommitThrough:
      return StrCat(kind, " ", e.a);
    case TraceEventKind::kAdtDecl:
      return StrCat(kind, " ", e.name);
    case TraceEventKind::kAdtOp:
      return StrCat(kind, " ", e.a, " ", e.name);
    case TraceEventKind::kCommute:
    case TraceEventKind::kClash:
      return StrCat(kind, " ", e.a, " ", e.b);
    case TraceEventKind::kTag:
      return StrCat(kind, " ", e.parent, " ", e.a, " ", e.b);
  }
  return kind;
}

StatusOr<TraceEvent> ParseTraceEventLine(const std::string& line) {
  auto parsed = ParseLine(line);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->has_value()) {
    return Status::InvalidArgument("'end' is not an event");
  }
  return std::move(**parsed);
}

StatusOr<std::vector<TraceEvent>> ParseTraceEvents(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing comptx-trace v1 header");
  }
  size_t line_number = 1;
  std::vector<TraceEvent> events;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto parsed = ParseLine(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          StrCat("trace line ", line_number, ": ", parsed.status().message()));
    }
    if (!parsed->has_value()) {
      saw_end = true;
      break;
    }
    events.push_back(std::move(**parsed));
  }
  if (!saw_end) return Status::InvalidArgument("trace missing 'end' record");
  return events;
}

Status ApplyTraceEvent(CompositeSystem& cs, const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kSchedule:
      cs.AddSchedule(e.name);
      return Status::OK();
    case TraceEventKind::kRoot:
      return cs.AddRootTransaction(ScheduleId(e.schedule), e.name).status();
    case TraceEventKind::kSub:
      return cs
          .AddSubtransaction(NodeId(e.parent), ScheduleId(e.schedule), e.name)
          .status();
    case TraceEventKind::kLeaf:
      return cs.AddLeaf(NodeId(e.parent), e.name).status();
    case TraceEventKind::kConflict:
      return cs.AddConflict(NodeId(e.a), NodeId(e.b));
    case TraceEventKind::kWeakOutput:
      return cs.AddWeakOutput(NodeId(e.a), NodeId(e.b));
    case TraceEventKind::kStrongOutput:
      return cs.AddStrongOutput(NodeId(e.a), NodeId(e.b));
    case TraceEventKind::kWeakInput:
      return cs.AddWeakInput(ScheduleId(e.schedule), NodeId(e.a), NodeId(e.b));
    case TraceEventKind::kStrongInput:
      return cs.AddStrongInput(ScheduleId(e.schedule), NodeId(e.a),
                               NodeId(e.b));
    case TraceEventKind::kIntraWeak:
      return cs.AddIntraWeak(NodeId(e.parent), NodeId(e.a), NodeId(e.b));
    case TraceEventKind::kIntraStrong:
      return cs.AddIntraStrong(NodeId(e.parent), NodeId(e.a), NodeId(e.b));
    case TraceEventKind::kCommit:
    case TraceEventKind::kCommitThrough:
      return Status::OK();
    case TraceEventKind::kAdtDecl:
      return cs.DeclareAdt(e.name).status();
    case TraceEventKind::kAdtOp:
      return cs.DeclareAdtOp(e.a, e.name).status();
    case TraceEventKind::kCommute:
      return cs.DeclareCommute(e.a, e.b);
    case TraceEventKind::kClash:
      return cs.DeclareClash(e.a, e.b);
    case TraceEventKind::kTag:
      return cs.TagOperation(NodeId(e.parent), e.a, e.b);
  }
  return Status::InvalidArgument("unknown event kind");
}

StatusOr<std::string> SaveTrace(const CompositeSystem& cs) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    COMPTX_RETURN_IF_ERROR(CheckName(sched.name));
    out << "schedule " << sched.name << "\n";
  }
  if (const CommutativitySpec* spec = cs.spec()) {
    for (uint32_t a = 0; a < spec->AdtCount(); ++a) {
      COMPTX_RETURN_IF_ERROR(CheckName(spec->adt(a).name));
      out << "adt " << spec->adt(a).name << "\n";
    }
    for (uint32_t c = 0; c < spec->ClassCount(); ++c) {
      COMPTX_RETURN_IF_ERROR(CheckName(spec->op_class(c).name));
      out << "adtop " << spec->op_class(c).adt << " "
          << spec->op_class(c).name << "\n";
    }
    // Deterministic order: entries sorted by packed pair.
    std::vector<std::tuple<uint32_t, uint32_t, CommuteEntry>> entries;
    spec->ForEachEntry([&](uint32_t c1, uint32_t c2, CommuteEntry e) {
      entries.emplace_back(c1, c2, e);
    });
    std::sort(entries.begin(), entries.end());
    for (const auto& [c1, c2, e] : entries) {
      out << (e == CommuteEntry::kCommutes ? "commute " : "clash ") << c1
          << " " << c2 << "\n";
    }
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    COMPTX_RETURN_IF_ERROR(CheckName(n.name));
    if (n.IsRoot()) {
      out << "root " << n.owner_schedule.index() << " " << n.name << "\n";
    } else if (n.IsTransaction()) {
      out << "sub " << n.parent.index() << " " << n.owner_schedule.index()
          << " " << n.name << "\n";
    } else {
      out << "leaf " << n.parent.index() << " " << n.name << "\n";
    }
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    if (n.sem_class != kInvalidIndex) {
      out << "tag " << v << " " << n.sem_class << " " << n.sem_instance
          << "\n";
    }
  }
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    sched.conflicts.ForEach([&](NodeId a, NodeId b) {
      out << "conflict " << a.index() << " " << b.index() << "\n";
    });
    sched.weak_output.ForEach([&](NodeId a, NodeId b) {
      out << "weak_out " << a.index() << " " << b.index() << "\n";
    });
    sched.strong_output.ForEach([&](NodeId a, NodeId b) {
      out << "strong_out " << a.index() << " " << b.index() << "\n";
    });
    sched.weak_input.ForEach([&](NodeId a, NodeId b) {
      out << "weak_in " << s << " " << a.index() << " " << b.index() << "\n";
    });
    sched.strong_input.ForEach([&](NodeId a, NodeId b) {
      out << "strong_in " << s << " " << a.index() << " " << b.index()
          << "\n";
    });
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    n.weak_intra.ForEach([&](NodeId a, NodeId b) {
      out << "intra_weak " << v << " " << a.index() << " " << b.index()
          << "\n";
    });
    n.strong_intra.ForEach([&](NodeId a, NodeId b) {
      out << "intra_strong " << v << " " << a.index() << " " << b.index()
          << "\n";
    });
  }
  out << "end\n";
  return out.str();
}

StatusOr<CompositeSystem> LoadTrace(const std::string& text) {
  COMPTX_ASSIGN_OR_RETURN(std::vector<TraceEvent> events,
                          ParseTraceEvents(text));
  CompositeSystem cs;
  for (size_t i = 0; i < events.size(); ++i) {
    Status status = ApplyTraceEvent(cs, events[i]);
    if (!status.ok()) {
      return Status::InvalidArgument(
          StrCat("trace event ", i + 1, " (",
                 TraceEventKindToString(events[i].kind), "): ",
                 status.message()));
    }
  }
  return cs;
}

}  // namespace comptx::workload
