#include "workload/trace.h"

#include <sstream>

#include "util/string_util.h"

namespace comptx::workload {

namespace {

constexpr char kHeader[] = "comptx-trace v1";

Status CheckName(const std::string& name) {
  for (char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return Status::InvalidArgument(
          StrCat("name contains whitespace: '", name, "'"));
    }
  }
  if (name.empty()) return Status::InvalidArgument("empty name");
  return Status::OK();
}

}  // namespace

StatusOr<std::string> SaveTrace(const CompositeSystem& cs) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    COMPTX_RETURN_IF_ERROR(CheckName(sched.name));
    out << "schedule " << sched.name << "\n";
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    COMPTX_RETURN_IF_ERROR(CheckName(n.name));
    if (n.IsRoot()) {
      out << "root " << n.owner_schedule.index() << " " << n.name << "\n";
    } else if (n.IsTransaction()) {
      out << "sub " << n.parent.index() << " " << n.owner_schedule.index()
          << " " << n.name << "\n";
    } else {
      out << "leaf " << n.parent.index() << " " << n.name << "\n";
    }
  }
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    sched.conflicts.ForEach([&](NodeId a, NodeId b) {
      out << "conflict " << a.index() << " " << b.index() << "\n";
    });
    sched.weak_output.ForEach([&](NodeId a, NodeId b) {
      out << "weak_out " << a.index() << " " << b.index() << "\n";
    });
    sched.strong_output.ForEach([&](NodeId a, NodeId b) {
      out << "strong_out " << a.index() << " " << b.index() << "\n";
    });
    sched.weak_input.ForEach([&](NodeId a, NodeId b) {
      out << "weak_in " << s << " " << a.index() << " " << b.index() << "\n";
    });
    sched.strong_input.ForEach([&](NodeId a, NodeId b) {
      out << "strong_in " << s << " " << a.index() << " " << b.index()
          << "\n";
    });
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    n.weak_intra.ForEach([&](NodeId a, NodeId b) {
      out << "intra_weak " << v << " " << a.index() << " " << b.index()
          << "\n";
    });
    n.strong_intra.ForEach([&](NodeId a, NodeId b) {
      out << "intra_strong " << v << " " << a.index() << " " << b.index()
          << "\n";
    });
  }
  out << "end\n";
  return out.str();
}

StatusOr<CompositeSystem> LoadTrace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StrCat("trace line ", line_number, ": ", msg));
  };

  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing comptx-trace v1 header");
  }
  line_number = 1;

  CompositeSystem cs;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "end") {
      saw_end = true;
      break;
    }
    if (kind == "schedule") {
      std::string name;
      if (!(fields >> name)) return error("schedule needs a name");
      cs.AddSchedule(name);
      continue;
    }
    if (kind == "root" || kind == "sub" || kind == "leaf") {
      uint32_t parent = 0;
      uint32_t sched = 0;
      std::string name;
      bool ok = true;
      if (kind == "root") {
        ok = static_cast<bool>(fields >> sched >> name);
      } else if (kind == "sub") {
        ok = static_cast<bool>(fields >> parent >> sched >> name);
      } else {
        ok = static_cast<bool>(fields >> parent >> name);
      }
      if (!ok) return error("malformed node line");
      StatusOr<NodeId> id =
          kind == "root"
              ? cs.AddRootTransaction(ScheduleId(sched), name)
          : kind == "sub"
              ? cs.AddSubtransaction(NodeId(parent), ScheduleId(sched), name)
              : cs.AddLeaf(NodeId(parent), name);
      if (!id.ok()) return error(id.status().ToString());
      continue;
    }
    if (kind == "conflict" || kind == "weak_out" || kind == "strong_out") {
      uint32_t a = 0;
      uint32_t b = 0;
      if (!(fields >> a >> b)) return error("malformed pair line");
      Status status = kind == "conflict"
                          ? cs.AddConflict(NodeId(a), NodeId(b))
                      : kind == "weak_out"
                          ? cs.AddWeakOutput(NodeId(a), NodeId(b))
                          : cs.AddStrongOutput(NodeId(a), NodeId(b));
      if (!status.ok()) return error(status.ToString());
      continue;
    }
    if (kind == "weak_in" || kind == "strong_in") {
      uint32_t s = 0;
      uint32_t a = 0;
      uint32_t b = 0;
      if (!(fields >> s >> a >> b)) return error("malformed input line");
      Status status =
          kind == "weak_in"
              ? cs.AddWeakInput(ScheduleId(s), NodeId(a), NodeId(b))
              : cs.AddStrongInput(ScheduleId(s), NodeId(a), NodeId(b));
      if (!status.ok()) return error(status.ToString());
      continue;
    }
    if (kind == "intra_weak" || kind == "intra_strong") {
      uint32_t t = 0;
      uint32_t a = 0;
      uint32_t b = 0;
      if (!(fields >> t >> a >> b)) return error("malformed intra line");
      Status status =
          kind == "intra_weak"
              ? cs.AddIntraWeak(NodeId(t), NodeId(a), NodeId(b))
              : cs.AddIntraStrong(NodeId(t), NodeId(a), NodeId(b));
      if (!status.ok()) return error(status.ToString());
      continue;
    }
    return error(StrCat("unknown record kind '", kind, "'"));
  }
  if (!saw_end) return Status::InvalidArgument("trace missing 'end' record");
  return cs;
}

}  // namespace comptx::workload
