#ifndef COMPTX_WORKLOAD_WORKLOAD_SPEC_H_
#define COMPTX_WORKLOAD_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>

#include "core/composite_system.h"
#include "util/status_or.h"
#include "workload/schedule_gen.h"
#include "workload/topology_gen.h"

namespace comptx::workload {

/// A complete randomized-experiment input: a topology shape plus an
/// execution-generation profile.  One spec + one seed identifies one
/// composite execution bit-for-bit.
struct WorkloadSpec {
  TopologySpec topology;
  ExecutionGenSpec execution;
};

/// Generates one validated composite execution from `spec` and `seed`.
/// Internal errors (a generator bug producing an invalid system) surface
/// as Status.
StatusOr<CompositeSystem> GenerateSystem(const WorkloadSpec& spec,
                                         uint64_t seed);

/// One-line rendering of every generator parameter ("stack depth=3
/// branches=2 ... intra_strong_prob=0.1").  Paired with the seed, this is
/// everything needed to regenerate the execution, so test failure
/// messages and witness records embed it verbatim.
std::string DescribeWorkloadSpec(const WorkloadSpec& spec);

}  // namespace comptx::workload

#endif  // COMPTX_WORKLOAD_WORKLOAD_SPEC_H_
