#include "workload/workload_spec.h"

#include "util/rng.h"

namespace comptx::workload {

StatusOr<CompositeSystem> GenerateSystem(const WorkloadSpec& spec,
                                         uint64_t seed) {
  Rng rng(seed);
  CompositeSystem cs = GenerateTopology(spec.topology, rng);
  COMPTX_RETURN_IF_ERROR(PopulateExecution(cs, spec.execution, rng));
  COMPTX_RETURN_IF_ERROR(cs.Validate());
  return cs;
}

}  // namespace comptx::workload
