#include "workload/workload_spec.h"

#include "util/rng.h"
#include "util/string_util.h"

namespace comptx::workload {

StatusOr<CompositeSystem> GenerateSystem(const WorkloadSpec& spec,
                                         uint64_t seed) {
  Rng rng(seed);
  CompositeSystem cs = GenerateTopology(spec.topology, rng);
  COMPTX_RETURN_IF_ERROR(PopulateExecution(cs, spec.execution, rng));
  COMPTX_RETURN_IF_ERROR(cs.Validate());
  return cs;
}

std::string DescribeWorkloadSpec(const WorkloadSpec& spec) {
  return StrCat(TopologyKindToString(spec.topology.kind),
                " depth=", spec.topology.depth,
                " branches=", spec.topology.branches,
                " roots=", spec.topology.roots,
                " fanout=", spec.topology.fanout,
                " leaf_fraction=", spec.topology.leaf_fraction,
                " conflict_prob=", spec.execution.conflict_prob,
                " disorder_prob=", spec.execution.disorder_prob,
                " intra_weak_prob=", spec.execution.intra_weak_prob,
                " intra_strong_prob=", spec.execution.intra_strong_prob,
                " adt=", AdtMixToString(spec.execution.adt),
                " adt_instances=", spec.execution.adt_instances);
}

}  // namespace comptx::workload
