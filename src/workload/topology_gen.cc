#include "workload/topology_gen.h"

#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::workload {

const char* TopologyKindToString(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kStack:
      return "stack";
    case TopologyKind::kFork:
      return "fork";
    case TopologyKind::kJoin:
      return "join";
    case TopologyKind::kLayeredDag:
      return "layered_dag";
    case TopologyKind::kSharedBottom:
      return "shared_bottom";
  }
  return "unknown";
}

namespace {

NodeId MustAdd(StatusOr<NodeId> id) {
  COMPTX_CHECK(id.ok()) << id.status().ToString();
  return *id;
}

/// Expands `txn` with `fanout` leaf operations.
void AddLeaves(CompositeSystem& cs, NodeId txn, uint32_t fanout,
               uint32_t& counter) {
  for (uint32_t i = 0; i < fanout; ++i) {
    MustAdd(cs.AddLeaf(txn, StrCat("o", counter++)));
  }
}

CompositeSystem GenerateStack(const TopologySpec& spec) {
  CompositeSystem cs;
  std::vector<ScheduleId> schedules;  // schedules[0] is the top.
  for (uint32_t level = 0; level < spec.depth; ++level) {
    schedules.push_back(cs.AddSchedule(StrCat("S", spec.depth - level)));
  }
  uint32_t counter = 0;
  std::vector<NodeId> frontier;
  for (uint32_t r = 0; r < spec.roots; ++r) {
    frontier.push_back(
        MustAdd(cs.AddRootTransaction(schedules[0], StrCat("T", r + 1))));
  }
  // In a stack, the operations of each schedule are exactly the
  // transactions of the next schedule down (Def 21).
  for (uint32_t level = 1; level < spec.depth; ++level) {
    std::vector<NodeId> next;
    for (NodeId txn : frontier) {
      for (uint32_t i = 0; i < spec.fanout; ++i) {
        next.push_back(MustAdd(
            cs.AddSubtransaction(txn, schedules[level],
                                 StrCat("t", counter++))));
      }
    }
    frontier = std::move(next);
  }
  for (NodeId txn : frontier) AddLeaves(cs, txn, spec.fanout, counter);
  return cs;
}

CompositeSystem GenerateFork(const TopologySpec& spec, Rng& rng) {
  CompositeSystem cs;
  ScheduleId top = cs.AddSchedule("SF");
  std::vector<ScheduleId> branches;
  for (uint32_t i = 0; i < spec.branches; ++i) {
    branches.push_back(cs.AddSchedule(StrCat("S", i + 1)));
  }
  uint32_t counter = 0;
  for (uint32_t r = 0; r < spec.roots; ++r) {
    NodeId root = MustAdd(cs.AddRootTransaction(top, StrCat("T", r + 1)));
    for (uint32_t i = 0; i < spec.fanout; ++i) {
      ScheduleId branch =
          branches[rng.UniformInt(branches.size())];
      NodeId sub = MustAdd(
          cs.AddSubtransaction(root, branch, StrCat("t", counter)));
      AddLeaves(cs, sub, spec.fanout, counter);
      ++counter;
    }
  }
  return cs;
}

CompositeSystem GenerateJoin(const TopologySpec& spec, Rng& rng) {
  CompositeSystem cs;
  std::vector<ScheduleId> tops;
  for (uint32_t i = 0; i < spec.branches; ++i) {
    tops.push_back(cs.AddSchedule(StrCat("S", i + 1)));
  }
  ScheduleId bottom = cs.AddSchedule("SJ");
  uint32_t counter = 0;
  for (uint32_t r = 0; r < spec.roots; ++r) {
    ScheduleId top = tops[rng.UniformInt(tops.size())];
    NodeId root = MustAdd(cs.AddRootTransaction(top, StrCat("T", r + 1)));
    for (uint32_t i = 0; i < spec.fanout; ++i) {
      NodeId sub = MustAdd(
          cs.AddSubtransaction(root, bottom, StrCat("t", counter)));
      AddLeaves(cs, sub, spec.fanout, counter);
      ++counter;
    }
  }
  return cs;
}

CompositeSystem GenerateLayeredDag(const TopologySpec& spec, Rng& rng) {
  CompositeSystem cs;
  // layers[0] is the top layer; each schedule of layer l may invoke any
  // schedule of layer l+1.
  std::vector<std::vector<ScheduleId>> layers(spec.depth);
  for (uint32_t l = 0; l < spec.depth; ++l) {
    for (uint32_t i = 0; i < spec.branches; ++i) {
      layers[l].push_back(
          cs.AddSchedule(StrCat("S", spec.depth - l, "_", i + 1)));
    }
  }
  uint32_t counter = 0;
  // Expand a transaction at layer `l` with fanout operations.
  auto expand = [&](auto&& self, NodeId txn, uint32_t l) -> void {
    const bool bottom = (l + 1 >= spec.depth);
    for (uint32_t i = 0; i < spec.fanout; ++i) {
      if (bottom || rng.Bernoulli(spec.leaf_fraction)) {
        MustAdd(cs.AddLeaf(txn, StrCat("o", counter++)));
      } else {
        ScheduleId callee =
            layers[l + 1][rng.UniformInt(layers[l + 1].size())];
        NodeId sub = MustAdd(
            cs.AddSubtransaction(txn, callee, StrCat("t", counter++)));
        self(self, sub, l + 1);
      }
    }
  };
  for (uint32_t r = 0; r < spec.roots; ++r) {
    ScheduleId top = layers[0][rng.UniformInt(layers[0].size())];
    NodeId root = MustAdd(cs.AddRootTransaction(top, StrCat("T", r + 1)));
    expand(expand, root, 0);
  }
  return cs;
}

// Per-root chains of depth-1 schedules over one common bottom schedule
// SB whose operations are all leaves.  SB is a meet at level 1; every
// chain schedule serves one root and invokes exactly one schedule — the
// shape the semantic shared-bottom rule decides statically.
CompositeSystem GenerateSharedBottom(const TopologySpec& spec) {
  CompositeSystem cs;
  const uint32_t chain = spec.depth > 1 ? spec.depth - 1 : 1;
  std::vector<std::vector<ScheduleId>> chains(spec.roots);
  for (uint32_t r = 0; r < spec.roots; ++r) {
    for (uint32_t l = 0; l < chain; ++l) {
      chains[r].push_back(
          cs.AddSchedule(StrCat("C", r + 1, "_", chain - l)));
    }
  }
  ScheduleId bottom = cs.AddSchedule("SB");
  uint32_t counter = 0;
  for (uint32_t r = 0; r < spec.roots; ++r) {
    std::vector<NodeId> frontier;
    frontier.push_back(
        MustAdd(cs.AddRootTransaction(chains[r][0], StrCat("T", r + 1))));
    for (uint32_t l = 1; l < chain; ++l) {
      std::vector<NodeId> next;
      for (NodeId txn : frontier) {
        for (uint32_t i = 0; i < spec.fanout; ++i) {
          next.push_back(MustAdd(cs.AddSubtransaction(
              txn, chains[r][l], StrCat("t", counter++))));
        }
      }
      frontier = std::move(next);
    }
    for (NodeId txn : frontier) {
      for (uint32_t i = 0; i < spec.fanout; ++i) {
        NodeId sub = MustAdd(
            cs.AddSubtransaction(txn, bottom, StrCat("t", counter++)));
        AddLeaves(cs, sub, spec.fanout, counter);
      }
    }
  }
  return cs;
}

}  // namespace

CompositeSystem GenerateTopology(const TopologySpec& spec, Rng& rng) {
  COMPTX_CHECK_GE(spec.depth, 1u);
  COMPTX_CHECK_GE(spec.branches, 1u);
  COMPTX_CHECK_GE(spec.roots, 1u);
  COMPTX_CHECK_GE(spec.fanout, 1u);
  switch (spec.kind) {
    case TopologyKind::kStack:
      return GenerateStack(spec);
    case TopologyKind::kFork:
      return GenerateFork(spec, rng);
    case TopologyKind::kJoin:
      return GenerateJoin(spec, rng);
    case TopologyKind::kLayeredDag:
      return GenerateLayeredDag(spec, rng);
    case TopologyKind::kSharedBottom:
      return GenerateSharedBottom(spec);
  }
  COMPTX_CHECK(false) << "unreachable";
  return CompositeSystem();
}

}  // namespace comptx::workload
