#ifndef COMPTX_WORKLOAD_TRACE_H_
#define COMPTX_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/composite_system.h"
#include "util/status_or.h"

namespace comptx::workload {

/// One record of a comptx trace, viewed as an event of a streaming
/// execution.  The line-oriented trace format ("comptx-trace v1") is a
/// sequence of such events: construction events build the composite
/// system incrementally, and `kCommit` marks a root transaction as
/// finished (it does not change the system; it is the signal online
/// consumers use to seal and garbage-collect state).
enum class TraceEventKind : uint8_t {
  kSchedule,      // schedule <name>
  kRoot,          // root <schedule> <name>
  kSub,           // sub <parent> <schedule> <name>
  kLeaf,          // leaf <parent> <name>
  kConflict,      // conflict <a> <b>
  kWeakOutput,    // weak_out <a> <b>
  kStrongOutput,  // strong_out <a> <b>
  kWeakInput,     // weak_in <schedule> <a> <b>
  kStrongInput,   // strong_in <schedule> <a> <b>
  kIntraWeak,     // intra_weak <txn> <a> <b>
  kIntraStrong,   // intra_strong <txn> <a> <b>
  kCommit,        // commit <root>
  kCommitThrough, // commit_through <k>: every root with creation index < k
                  // is committed.  A cumulative watermark form of kCommit,
                  // counted in root-creation order so the value survives
                  // SaveTrace round trips (which reorder relation events
                  // but preserve node creation order).
  // Semantic commutativity layer (ADT specs).  ADTs and operation classes
  // are referenced by declaration-order index, like nodes and schedules;
  // class indices are global across ADTs.
  kAdtDecl,       // adt <name>
  kAdtOp,         // adtop <adt> <name>
  kCommute,       // commute <class1> <class2>
  kClash,         // clash <class1> <class2>
  kTag,           // tag <node> <class> <instance>
};

const char* TraceEventKindToString(TraceEventKind kind);

/// A parsed trace record.  Node and schedule references are creation-order
/// indices, exactly as in the text format; unused fields hold
/// kInvalidIndex.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kSchedule;
  std::string name;                  // kSchedule/kRoot/kSub/kLeaf/kAdtDecl/kAdtOp
  uint32_t schedule = kInvalidIndex; // kRoot/kSub/kWeakInput/kStrongInput
  uint32_t parent = kInvalidIndex;   // kSub/kLeaf parent; kIntra* txn;
                                     // kCommit root; kTag node
  uint32_t a = kInvalidIndex;        // first pair member; kCommitThrough
                                     // watermark; kAdtOp adt; kTag class
  uint32_t b = kInvalidIndex;        // second pair member; kTag instance
};

/// Renders `event` as one trace line (without trailing newline).
std::string FormatTraceEvent(const TraceEvent& event);

/// Parses one trace event line (no header, no "end", no trailing
/// newline) — the unit the service wire protocol ships in APPEND bodies.
/// Rejects "end" and blank lines: a framed protocol has no use for the
/// file format's terminator.
StatusOr<TraceEvent> ParseTraceEventLine(const std::string& line);

/// Parses the body of a trace into its event sequence.  Requires the
/// "comptx-trace v1" header and the final "end" record; the events in
/// between are returned in stream order.  This is the streaming view of a
/// trace: replaying the events through ApplyTraceEvent reproduces
/// LoadTrace, and feeding them to an online::Certifier certifies the
/// execution prefix by prefix.
StatusOr<std::vector<TraceEvent>> ParseTraceEvents(const std::string& text);

/// Applies one construction event to `cs`.  kCommit is a no-op (the
/// composite system records what executed, not transaction lifecycle).
/// Errors carry no line numbers; callers tracking positions should wrap
/// the message.
Status ApplyTraceEvent(CompositeSystem& cs, const TraceEvent& event);

/// Serializes a composite execution to a line-oriented text trace
/// ("comptx-trace v1").  Node and schedule references use creation-order
/// indices, so a round trip reproduces identical ids.  Names must not
/// contain whitespace (InvalidArgument otherwise).
StatusOr<std::string> SaveTrace(const CompositeSystem& cs);

/// Parses a trace produced by SaveTrace.  Structural and referential
/// errors are reported with the offending line number; the loaded system
/// is not implicitly validated (call Validate() for the Def 2-4 rules).
StatusOr<CompositeSystem> LoadTrace(const std::string& text);

}  // namespace comptx::workload

#endif  // COMPTX_WORKLOAD_TRACE_H_
