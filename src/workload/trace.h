#ifndef COMPTX_WORKLOAD_TRACE_H_
#define COMPTX_WORKLOAD_TRACE_H_

#include <string>

#include "core/composite_system.h"
#include "util/status_or.h"

namespace comptx::workload {

/// Serializes a composite execution to a line-oriented text trace
/// ("comptx-trace v1").  Node and schedule references use creation-order
/// indices, so a round trip reproduces identical ids.  Names must not
/// contain whitespace (InvalidArgument otherwise).
StatusOr<std::string> SaveTrace(const CompositeSystem& cs);

/// Parses a trace produced by SaveTrace.  Structural and referential
/// errors are reported with the offending line number; the loaded system
/// is not implicitly validated (call Validate() for the Def 2-4 rules).
StatusOr<CompositeSystem> LoadTrace(const std::string& text);

}  // namespace comptx::workload

#endif  // COMPTX_WORKLOAD_TRACE_H_
