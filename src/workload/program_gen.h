#ifndef COMPTX_WORKLOAD_PROGRAM_GEN_H_
#define COMPTX_WORKLOAD_PROGRAM_GEN_H_

#include <cstdint>

#include "runtime/component.h"

namespace comptx::workload {

/// Parameters for GenerateRuntimeWorkload: a layered component network
/// (layer 0 components are the entry points; each layer invokes only the
/// next one down) with randomized service programs and a client workload.
struct RuntimeWorkloadSpec {
  uint32_t layers = 2;
  uint32_t components_per_layer = 2;
  uint32_t items_per_component = 16;
  uint32_t services_per_component = 3;
  uint32_t steps_per_service = 3;

  /// Probability that a step of a non-bottom-layer service invokes a
  /// component of the next layer (otherwise it is a local data op).
  double invoke_fraction = 0.5;

  /// Data-operation type mix: P(add); the remainder splits into writes
  /// with `write_fraction` and reads otherwise.  Adds commute — they are
  /// the semantic knowledge components can exploit.
  double add_fraction = 0.3;
  double write_fraction = 0.4;

  /// Probability that a pair of services of one component (including a
  /// service with itself) is declared conflicting.
  double service_conflict_prob = 0.4;

  /// Zipf skew of item accesses (0 = uniform).
  double zipf_theta = 0.6;

  /// Number of client root transactions.
  uint32_t num_roots = 8;
};

/// Generates a component network plus root requests from `spec` and
/// `seed`.  The result passes ValidateNetwork.
runtime::RuntimeSystem GenerateRuntimeWorkload(const RuntimeWorkloadSpec& spec,
                                               uint64_t seed);

}  // namespace comptx::workload

#endif  // COMPTX_WORKLOAD_PROGRAM_GEN_H_
