#include "workload/program_gen.h"

#include <memory>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace comptx::workload {

using runtime::Component;
using runtime::OpType;
using runtime::Program;
using runtime::ProgramStep;
using runtime::RuntimeSystem;

RuntimeSystem GenerateRuntimeWorkload(const RuntimeWorkloadSpec& spec,
                                      uint64_t seed) {
  COMPTX_CHECK_GE(spec.layers, 1u);
  COMPTX_CHECK_GE(spec.components_per_layer, 1u);
  COMPTX_CHECK_GE(spec.services_per_component, 1u);
  COMPTX_CHECK_GE(spec.items_per_component, 1u);
  Rng rng(seed);
  ZipfGenerator zipf(spec.items_per_component, spec.zipf_theta);

  RuntimeSystem system;
  const uint32_t total =
      spec.layers * spec.components_per_layer;
  auto component_id = [&](uint32_t layer, uint32_t i) {
    return layer * spec.components_per_layer + i;
  };

  for (uint32_t layer = 0; layer < spec.layers; ++layer) {
    for (uint32_t i = 0; i < spec.components_per_layer; ++i) {
      std::vector<Program> services;
      for (uint32_t s = 0; s < spec.services_per_component; ++s) {
        Program program;
        for (uint32_t step = 0; step < spec.steps_per_service; ++step) {
          const bool can_invoke = layer + 1 < spec.layers;
          if (can_invoke && rng.Bernoulli(spec.invoke_fraction)) {
            uint32_t callee = component_id(
                layer + 1,
                static_cast<uint32_t>(
                    rng.UniformInt(spec.components_per_layer)));
            uint32_t service = static_cast<uint32_t>(
                rng.UniformInt(spec.services_per_component));
            program.steps.push_back(ProgramStep::Invoke(callee, service));
            continue;
          }
          OpType op = OpType::kRead;
          if (rng.Bernoulli(spec.add_fraction)) {
            op = OpType::kAdd;
          } else if (rng.Bernoulli(spec.write_fraction)) {
            op = OpType::kWrite;
          }
          uint32_t item = static_cast<uint32_t>(zipf.Sample(rng));
          program.steps.push_back(
              ProgramStep::Local(op, item, int64_t(rng.UniformInt(100))));
        }
        services.push_back(std::move(program));
      }
      std::vector<std::vector<bool>> conflicts(
          spec.services_per_component,
          std::vector<bool>(spec.services_per_component, false));
      for (uint32_t a = 0; a < spec.services_per_component; ++a) {
        for (uint32_t b = a; b < spec.services_per_component; ++b) {
          const bool conflict = rng.Bernoulli(spec.service_conflict_prob);
          conflicts[a][b] = conflict;
          conflicts[b][a] = conflict;
        }
      }
      system.components.push_back(std::make_unique<Component>(
          component_id(layer, i), StrCat("C", layer, "_", i),
          spec.items_per_component, std::move(services),
          std::move(conflicts)));
    }
  }
  COMPTX_CHECK_EQ(system.components.size(), total);

  for (uint32_t r = 0; r < spec.num_roots; ++r) {
    RuntimeSystem::RootRequest request;
    request.component = component_id(
        0, static_cast<uint32_t>(rng.UniformInt(spec.components_per_layer)));
    request.service = static_cast<uint32_t>(
        rng.UniformInt(spec.services_per_component));
    system.roots.push_back(request);
  }
  return system;
}

}  // namespace comptx::workload
