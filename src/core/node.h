#ifndef COMPTX_CORE_NODE_H_
#define COMPTX_CORE_NODE_H_

#include <string>
#include <vector>

#include "core/ids.h"
#include "core/relation.h"

namespace comptx {

/// Classification of a node in the computational forest (paper Def 4,
/// points 3-5).  A transaction node is a *root* when it has no parent and an
/// *internal node* otherwise; whether it is one or the other is derived, not
/// stored.
enum class NodeKind : uint8_t {
  /// An elementary operation: belongs to some schedule's operation set but
  /// is no schedule's transaction (set L in Def 4).
  kLeaf,
  /// A transaction: element of exactly one schedule's transaction set
  /// (sets I and R in Def 4).  Its children are its operations O_t.
  kTransaction,
};

/// One node of the computational forest.  Passive data owned by
/// CompositeSystem; ids inside refer to the owning system's arenas.
///
/// For a transaction node (Def 2), `children` is O_t and `weak_intra` /
/// `strong_intra` are the intra-transaction orders (with the consistency
/// requirement strong ⊆ weak, enforced by CompositeSystem's mutators).
struct Node {
  NodeId id;
  std::string name;
  NodeKind kind = NodeKind::kLeaf;

  /// The transaction this node is an operation of; invalid for roots
  /// (Def 5: parent(t) = t for roots — represented here as "no parent").
  NodeId parent;

  /// For transactions: the schedule whose transaction set contains this
  /// node (Def 4 point 1 guarantees uniqueness).  Invalid for leaves.
  ScheduleId owner_schedule;

  /// For transactions: operations O_t in creation order.  Empty for leaves.
  std::vector<NodeId> children;

  /// Weak intra-transaction order over `children` (Def 2's precedence).
  Relation weak_intra;
  /// Strong intra-transaction order over `children`; subset of weak_intra.
  Relation strong_intra;

  /// Semantic tag: global operation-class index into the owning system's
  /// CommutativitySpec, or kInvalidIndex when untagged.  Untagged nodes
  /// never commute semantically, so tags only ever erase conflicts.
  uint32_t sem_class = kInvalidIndex;
  /// Semantic tag: the ADT instance (object identity) this operation acts
  /// on.  Operations on distinct instances always commute.
  uint32_t sem_instance = kInvalidIndex;

  bool IsTransaction() const { return kind == NodeKind::kTransaction; }
  bool IsLeaf() const { return kind == NodeKind::kLeaf; }
  bool IsRoot() const { return IsTransaction() && !parent.valid(); }
};

}  // namespace comptx

#endif  // COMPTX_CORE_NODE_H_
