#include "core/node.h"

// Node is a passive aggregate; all behaviour lives in CompositeSystem.
// This translation unit exists so the header has a home in the build graph.
