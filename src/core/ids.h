#ifndef COMPTX_CORE_IDS_H_
#define COMPTX_CORE_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace comptx {

inline constexpr uint32_t kInvalidIndex = UINT32_MAX;

/// Identifier of a node (transaction, internal subtransaction, or leaf
/// operation) inside one CompositeSystem.  Ids are dense indices assigned in
/// creation order; they are only meaningful relative to their owning system.
class NodeId {
 public:
  /// Constructs the invalid id (used for "no parent" on root transactions).
  constexpr NodeId() : index_(kInvalidIndex) {}
  constexpr explicit NodeId(uint32_t index) : index_(index) {}

  constexpr uint32_t index() const { return index_; }
  constexpr bool valid() const { return index_ != kInvalidIndex; }

  friend constexpr bool operator==(NodeId a, NodeId b) {
    return a.index_ == b.index_;
  }
  friend constexpr bool operator!=(NodeId a, NodeId b) { return !(a == b); }
  friend constexpr bool operator<(NodeId a, NodeId b) {
    return a.index_ < b.index_;
  }

 private:
  uint32_t index_;
};

/// Identifier of a schedule (one component scheduler) inside one
/// CompositeSystem.
class ScheduleId {
 public:
  constexpr ScheduleId() : index_(kInvalidIndex) {}
  constexpr explicit ScheduleId(uint32_t index) : index_(index) {}

  constexpr uint32_t index() const { return index_; }
  constexpr bool valid() const { return index_ != kInvalidIndex; }

  friend constexpr bool operator==(ScheduleId a, ScheduleId b) {
    return a.index_ == b.index_;
  }
  friend constexpr bool operator!=(ScheduleId a, ScheduleId b) {
    return !(a == b);
  }
  friend constexpr bool operator<(ScheduleId a, ScheduleId b) {
    return a.index_ < b.index_;
  }

 private:
  uint32_t index_;
};

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  if (!id.valid()) return os << "node(-)";
  return os << "node(" << id.index() << ")";
}

inline std::ostream& operator<<(std::ostream& os, ScheduleId id) {
  if (!id.valid()) return os << "sched(-)";
  return os << "sched(" << id.index() << ")";
}

}  // namespace comptx

namespace std {

template <>
struct hash<comptx::NodeId> {
  size_t operator()(comptx::NodeId id) const noexcept {
    return std::hash<uint32_t>{}(id.index());
  }
};

template <>
struct hash<comptx::ScheduleId> {
  size_t operator()(comptx::ScheduleId id) const noexcept {
    return std::hash<uint32_t>{}(id.index());
  }
};

}  // namespace std

#endif  // COMPTX_CORE_IDS_H_
