#include "core/observed_order.h"

#include <algorithm>
#include <utility>

#include "core/indexing.h"
#include "util/thread_pool.h"

namespace comptx {

void ApplyLeafRuleObserved(const SystemContext& ctx, Front& front) {
  const CompositeSystem& cs = ctx.cs;
  const NodeBitSet membership(front.nodes);
  // Per-schedule scans are independent; collect per-shard and fold in
  // schedule order (the folded relation is order-insensitive anyway).
  // A level-k schedule's operations left the front when the level-k front
  // was built, so schedules at or below the front's level are skipped —
  // their pairs could only fail the membership test anyway.
  const size_t schedule_count = cs.ScheduleCount();
  std::vector<std::vector<std::pair<NodeId, NodeId>>> shards(schedule_count);
  ThreadPool::Global().ParallelFor(schedule_count, [&](size_t s) {
    if (ctx.ig.schedule_level[s] <= front.level) return;
    std::vector<std::pair<NodeId, NodeId>>& out = shards[s];
    ctx.closed_weak_output[s].ForEach([&](NodeId a, NodeId b) {
      if (!membership.Contains(a) || !membership.Contains(b)) return;
      if (cs.node(a).IsLeaf() || cs.node(b).IsLeaf()) {
        out.emplace_back(a, b);
      }
    });
  });
  for (const auto& shard : shards) {
    for (const auto& [a, b] : shard) front.observed.Add(a, b);
  }
}

void ComputeGeneralizedConflicts(const SystemContext& ctx, Front& front) {
  const CompositeSystem& cs = ctx.cs;
  front.conflicts = SymmetricPairSet();
  const NodeBitSet membership(front.nodes);
  // Same-schedule pairs: the schedule's own conflict predicate (Def 11.1).
  const size_t schedule_count = cs.ScheduleCount();
  std::vector<std::vector<std::pair<NodeId, NodeId>>> shards(schedule_count);
  ThreadPool::Global().ParallelFor(schedule_count, [&](size_t s) {
    if (ctx.ig.schedule_level[s] <= front.level) return;  // ops left the front
    std::vector<std::pair<NodeId, NodeId>>& out = shards[s];
    cs.schedule(ScheduleId(s)).conflicts.ForEach([&](NodeId a, NodeId b) {
      if (membership.Contains(a) && membership.Contains(b) &&
          !cs.SemanticallyCommutes(a, b)) {
        out.emplace_back(a, b);
      }
    });
  });
  for (const auto& shard : shards) {
    for (const auto& [a, b] : shard) front.conflicts.Add(a, b);
  }
  // Other pairs: pessimistically conflict iff observed-order related
  // (Def 11.2).  Sharded row-wise over the observed order.
  const size_t row_count = front.observed.SourceCount();
  std::vector<std::vector<std::pair<NodeId, NodeId>>> row_shards(row_count);
  ThreadPool::Global().ParallelFor(row_count, [&](size_t i) {
    const NodeId a = front.observed.SourceAt(i);
    const ScheduleId ha = ctx.host_schedule[a.index()];
    std::vector<std::pair<NodeId, NodeId>>& out = row_shards[i];
    for (uint32_t to : front.observed.SuccessorsAt(i)) {
      const NodeId b(to);
      if (a == b) continue;
      const ScheduleId hb = ctx.host_schedule[to];
      if (ha.valid() && ha == hb) continue;  // governed by CON_S above.
      out.emplace_back(a, b);
    }
  });
  for (const auto& shard : row_shards) {
    for (const auto& [a, b] : shard) front.conflicts.Add(a, b);
  }
}

bool GeneralizedConflict(const SystemContext& ctx, const Front& front,
                         NodeId a, NodeId b) {
  const CompositeSystem& cs = ctx.cs;
  ScheduleId ha = ctx.host_schedule[a.index()];
  ScheduleId hb = ctx.host_schedule[b.index()];
  if (ha.valid() && ha == hb) {
    return cs.EffectiveConflict(ha, a, b);
  }
  return front.observed.Contains(a, b) || front.observed.Contains(b, a);
}

std::optional<std::pair<NodeId, NodeId>> PullUpObservedPair(
    const CompositeSystem& cs, NodeId a, NodeId b, NodeId ra, NodeId rb,
    bool forgetting) {
  if (ra == rb) return std::nullopt;  // the pair collapsed into one node.
  const bool pulled = (ra != a) || (rb != b);
  if (!pulled) {
    // Both endpoints survive into the next front unchanged.
    return std::make_pair(a, b);
  }
  ScheduleId ha = cs.HostScheduleOf(a);
  ScheduleId hb = cs.HostScheduleOf(b);
  if (ha.valid() && ha == hb) {
    // Operations of one common schedule: the schedule is authoritative.
    // Conflicting pairs propagate to the parents (Def 10.2); commuting
    // pairs — by absent CON_S bit or by an attached commutativity spec —
    // are forgotten (the schedule knows the order is irrelevant).
    if (cs.EffectiveConflict(ha, a, b) || !forgetting) {
      return std::make_pair(ra, rb);
    }
    return std::nullopt;
  }
  // Different schedules (or a root involved): propagate (Def 10.3).
  return std::make_pair(ra, rb);
}

Front MakeLevelZeroFront(const SystemContext& ctx) {
  Front front;
  front.level = 0;
  front.nodes = ctx.cs.Leaves();
  std::sort(front.nodes.begin(), front.nodes.end());
  ApplyLeafRuleObserved(ctx, front);
  ComputeGeneralizedConflicts(ctx, front);
  ComputeFrontInputOrders(ctx, front);
  return front;
}

}  // namespace comptx
