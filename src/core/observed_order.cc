#include "core/observed_order.h"

#include <algorithm>

namespace comptx {

namespace {

/// The host schedule of `id`, or an invalid id for roots.
ScheduleId HostOf(const CompositeSystem& cs, NodeId id) {
  return cs.HostScheduleOf(id);
}

}  // namespace

void ApplyLeafRuleObserved(const SystemContext& ctx, Front& front) {
  const CompositeSystem& cs = ctx.cs;
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    ctx.closed_weak_output[s].ForEach([&](NodeId a, NodeId b) {
      if (!front.ContainsNode(a) || !front.ContainsNode(b)) return;
      if (cs.node(a).IsLeaf() || cs.node(b).IsLeaf()) {
        front.observed.Add(a, b);
      }
    });
  }
}

void ComputeGeneralizedConflicts(const SystemContext& ctx, Front& front) {
  const CompositeSystem& cs = ctx.cs;
  front.conflicts = SymmetricPairSet();
  // Same-schedule pairs: the schedule's own conflict predicate (Def 11.1).
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    cs.schedule(ScheduleId(s)).conflicts.ForEach([&](NodeId a, NodeId b) {
      if (front.ContainsNode(a) && front.ContainsNode(b)) {
        front.conflicts.Add(a, b);
      }
    });
  }
  // Other pairs: pessimistically conflict iff observed-order related
  // (Def 11.2).
  front.observed.ForEach([&](NodeId a, NodeId b) {
    if (a == b) return;
    ScheduleId ha = HostOf(cs, a);
    ScheduleId hb = HostOf(cs, b);
    if (ha.valid() && ha == hb) return;  // governed by CON_S above.
    front.conflicts.Add(a, b);
  });
}

bool GeneralizedConflict(const SystemContext& ctx, const Front& front,
                         NodeId a, NodeId b) {
  const CompositeSystem& cs = ctx.cs;
  ScheduleId ha = HostOf(cs, a);
  ScheduleId hb = HostOf(cs, b);
  if (ha.valid() && ha == hb) {
    return cs.schedule(ha).conflicts.Contains(a, b);
  }
  return front.observed.Contains(a, b) || front.observed.Contains(b, a);
}

std::optional<std::pair<NodeId, NodeId>> PullUpObservedPair(
    const CompositeSystem& cs, NodeId a, NodeId b, NodeId ra, NodeId rb,
    bool forgetting) {
  if (ra == rb) return std::nullopt;  // the pair collapsed into one node.
  const bool pulled = (ra != a) || (rb != b);
  if (!pulled) {
    // Both endpoints survive into the next front unchanged.
    return std::make_pair(a, b);
  }
  ScheduleId ha = cs.HostScheduleOf(a);
  ScheduleId hb = cs.HostScheduleOf(b);
  if (ha.valid() && ha == hb) {
    // Operations of one common schedule: the schedule is authoritative.
    // Conflicting pairs propagate to the parents (Def 10.2); commuting
    // pairs are forgotten (the schedule knows the order is irrelevant).
    if (cs.schedule(ha).conflicts.Contains(a, b) || !forgetting) {
      return std::make_pair(ra, rb);
    }
    return std::nullopt;
  }
  // Different schedules (or a root involved): propagate (Def 10.3).
  return std::make_pair(ra, rb);
}

Front MakeLevelZeroFront(const SystemContext& ctx) {
  Front front;
  front.level = 0;
  front.nodes = ctx.cs.Leaves();
  std::sort(front.nodes.begin(), front.nodes.end());
  ApplyLeafRuleObserved(ctx, front);
  ComputeGeneralizedConflicts(ctx, front);
  ComputeFrontInputOrders(ctx, front);
  return front;
}

}  // namespace comptx
