#ifndef COMPTX_CORE_CORRECTNESS_H_
#define COMPTX_CORE_CORRECTNESS_H_

#include <optional>
#include <vector>

#include "core/reduction.h"
#include "util/status_or.h"

namespace comptx {

/// Verdict of the Comp-C decision procedure (Def 20 via Theorem 1), with a
/// serial witness when correct and a failure diagnosis when not.
struct CompCResult {
  /// True iff the composite schedule is Comp-C.
  bool correct = false;

  /// The order N of the composite system.
  uint32_t order = 0;

  /// When correct: a total order of the root transactions such that the
  /// serial front induced by it level-N-contains the reduced execution
  /// (the construction in Theorem 1's proof).
  std::vector<NodeId> serial_order;

  /// When incorrect: where and why the reduction failed.
  std::optional<ReductionFailure> failure;

  /// The full reduction trace (fronts per level), for diagnostics and
  /// figure regeneration.
  ReductionResult reduction;
};

/// Decides Comp-C for `cs` (Def 20): runs the reduction of Def 16 and, on
/// success, extracts a serial witness by topologically sorting the final
/// front (Theorem 1).  Status errors indicate malformed input, not
/// incorrect executions.
StatusOr<CompCResult> CheckCompC(const CompositeSystem& cs,
                                 const ReductionOptions& options = {});

/// Convenience predicate; dies on malformed input.
bool IsCompC(const CompositeSystem& cs);

}  // namespace comptx

#endif  // COMPTX_CORE_CORRECTNESS_H_
