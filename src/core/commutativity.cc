#include "core/commutativity.h"

#include <algorithm>

#include "util/string_util.h"

namespace comptx {

const char* CommuteEntryToString(CommuteEntry entry) {
  switch (entry) {
    case CommuteEntry::kUnspecified:
      return "unspecified";
    case CommuteEntry::kCommutes:
      return "commutes";
    case CommuteEntry::kConflicts:
      return "conflicts";
  }
  return "unknown";
}

uint64_t CommutativitySpec::PackPair(uint32_t c1, uint32_t c2) {
  if (c1 > c2) std::swap(c1, c2);
  return (static_cast<uint64_t>(c1) << 32) | c2;
}

StatusOr<uint32_t> CommutativitySpec::DeclareAdt(std::string name) {
  if (FindAdt(name) != kInvalidIndex) {
    return Status::InvalidArgument(StrCat("duplicate ADT '", name, "'"));
  }
  AdtDecl decl;
  decl.name = std::move(name);
  adts_.push_back(std::move(decl));
  return static_cast<uint32_t>(adts_.size() - 1);
}

StatusOr<uint32_t> CommutativitySpec::DeclareOpClass(uint32_t adt,
                                                     std::string name) {
  if (!HasAdt(adt)) {
    return Status::InvalidArgument(StrCat("unknown ADT index ", adt));
  }
  if (FindClass(adt, name) != kInvalidIndex) {
    return Status::InvalidArgument(StrCat("duplicate operation class '",
                                          adts_[adt].name, ".", name, "'"));
  }
  AdtOpClass cls;
  cls.name = std::move(name);
  cls.adt = adt;
  classes_.push_back(std::move(cls));
  const uint32_t index = static_cast<uint32_t>(classes_.size() - 1);
  adts_[adt].op_classes.push_back(index);
  return index;
}

Status CommutativitySpec::SetEntry(uint32_t c1, uint32_t c2,
                                   CommuteEntry entry) {
  if (!HasClass(c1) || !HasClass(c2)) {
    return Status::InvalidArgument(
        StrCat("unknown operation class index ", HasClass(c1) ? c2 : c1));
  }
  if (entry == CommuteEntry::kUnspecified) {
    return Status::InvalidArgument("cannot declare an unspecified entry");
  }
  const uint64_t key = PackPair(c1, c2);
  auto [it, inserted] = table_.try_emplace(key, entry);
  if (!inserted && it->second != entry) {
    return Status::InvalidArgument(
        StrCat("contradictory table entry for (", ClassLabel(c1), ", ",
               ClassLabel(c2), "): declared both commutes and conflicts"));
  }
  return Status::OK();
}

CommuteEntry CommutativitySpec::Lookup(uint32_t c1, uint32_t c2) const {
  auto it = table_.find(PackPair(c1, c2));
  return it == table_.end() ? CommuteEntry::kUnspecified : it->second;
}

uint32_t CommutativitySpec::FindAdt(const std::string& name) const {
  for (size_t i = 0; i < adts_.size(); ++i) {
    if (adts_[i].name == name) return static_cast<uint32_t>(i);
  }
  return kInvalidIndex;
}

uint32_t CommutativitySpec::FindClass(uint32_t adt,
                                      const std::string& name) const {
  if (!HasAdt(adt)) return kInvalidIndex;
  for (uint32_t cls : adts_[adt].op_classes) {
    if (classes_[cls].name == name) return cls;
  }
  return kInvalidIndex;
}

std::string CommutativitySpec::ClassLabel(uint32_t cls) const {
  if (!HasClass(cls)) return StrCat("class#", cls);
  const AdtOpClass& c = classes_[cls];
  if (!HasAdt(c.adt)) return c.name;
  return StrCat(adts_[c.adt].name, ".", c.name);
}

size_t CommutativitySpec::CountEntries(CommuteEntry entry) const {
  size_t n = 0;
  for (const auto& [key, value] : table_) {
    (void)key;
    if (value == entry) ++n;
  }
  return n;
}

namespace {

struct BuiltinTable {
  const char* adt;
  std::vector<const char*> classes;
  // Pairs of class positions (within `classes`) that commute; every other
  // pair is declared conflicting so the table is total.
  std::vector<std::pair<int, int>> commuting;
};

BuiltinTable BuiltinTableFor(BuiltinAdt adt) {
  switch (adt) {
    case BuiltinAdt::kCounter:
      return {"counter",
              {"inc", "dec", "read"},
              {{0, 0}, {0, 1}, {1, 1}, {2, 2}}};
    case BuiltinAdt::kSet:
      return {"set",
              {"add", "remove", "contains"},
              {{0, 0}, {1, 1}, {2, 2}}};
    case BuiltinAdt::kQueue:
      return {"queue", {"enq", "deq"}, {}};
    case BuiltinAdt::kEscrow:
      return {"escrow",
              {"deposit", "withdraw", "read"},
              {{0, 0}, {0, 1}, {1, 1}, {2, 2}}};
  }
  return {"unknown", {}, {}};
}

}  // namespace

StatusOr<uint32_t> DeclareBuiltinAdt(CommutativitySpec& spec, BuiltinAdt adt) {
  const BuiltinTable table = BuiltinTableFor(adt);
  COMPTX_ASSIGN_OR_RETURN(uint32_t adt_index, spec.DeclareAdt(table.adt));
  std::vector<uint32_t> cls;
  cls.reserve(table.classes.size());
  for (const char* name : table.classes) {
    COMPTX_ASSIGN_OR_RETURN(uint32_t c, spec.DeclareOpClass(adt_index, name));
    cls.push_back(c);
  }
  for (size_t i = 0; i < cls.size(); ++i) {
    for (size_t j = i; j < cls.size(); ++j) {
      const bool commutes =
          std::find(table.commuting.begin(), table.commuting.end(),
                    std::make_pair(static_cast<int>(i), static_cast<int>(j))) !=
          table.commuting.end();
      COMPTX_RETURN_IF_ERROR(spec.SetEntry(
          cls[i], cls[j],
          commutes ? CommuteEntry::kCommutes : CommuteEntry::kConflicts));
    }
  }
  return adt_index;
}

}  // namespace comptx
