#include "core/schedule.h"

// Schedule is a passive aggregate; construction and validation live in
// CompositeSystem.  This translation unit anchors the header in the build.
