#ifndef COMPTX_CORE_COMPOSITE_SYSTEM_H_
#define COMPTX_CORE_COMPOSITE_SYSTEM_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/commutativity.h"
#include "core/node.h"
#include "core/schedule.h"
#include "util/status.h"
#include "util/status_or.h"

namespace comptx {

/// A composite system together with one recorded composite schedule
/// (paper Def 4): a set of component schedules whose transactions form a
/// computational forest.  This is the library's central type; correctness
/// checking (Comp-C, Def 20) operates on instances of it.
///
/// Construction is incremental: add schedules, then the forest
/// (root transactions, internal subtransaction operations, leaf
/// operations), then orders and conflicts.  Mutators validate local
/// referential rules eagerly and return Status; the global model rules of
/// Defs 3 and 4 (order containment, conflict ordering, recursion freedom,
/// order propagation between schedules) are checked by Validate().
class CompositeSystem {
 public:
  CompositeSystem() = default;

  // Movable but not copyable by accident (instances can be large); use
  // Clone() for an explicit deep copy.
  CompositeSystem(const CompositeSystem&) = delete;
  CompositeSystem& operator=(const CompositeSystem&) = delete;
  CompositeSystem(CompositeSystem&&) = default;
  CompositeSystem& operator=(CompositeSystem&&) = default;

  /// Explicit deep copy.
  CompositeSystem Clone() const;

  // ---- Construction -----------------------------------------------------

  /// Adds an empty schedule named `name` and returns its id.
  ScheduleId AddSchedule(std::string name);

  /// Adds a root transaction (element of R, Def 4.5) executed by schedule
  /// `scheduler`.
  StatusOr<NodeId> AddRootTransaction(ScheduleId scheduler, std::string name);

  /// Adds an internal node (Def 4.4): an operation of `parent` that is in
  /// turn a transaction of schedule `scheduler`.
  StatusOr<NodeId> AddSubtransaction(NodeId parent, ScheduleId scheduler,
                                     std::string name);

  /// Adds a leaf operation (Def 4.3) as an operation of `parent`.
  StatusOr<NodeId> AddLeaf(NodeId parent, std::string name);

  /// Declares CON_S(a, b) for the host schedule of `a` and `b`; both must
  /// be operations of the same schedule.
  Status AddConflict(NodeId a, NodeId b);

  /// Declares a weak output order pair a ≺_S b; both must be operations of
  /// the same schedule S.
  Status AddWeakOutput(NodeId a, NodeId b);

  /// Declares a strong output order pair a ≪_S b (also added to the weak
  /// output order, since ≪ ⊆ ≺).
  Status AddStrongOutput(NodeId a, NodeId b);

  /// Declares a weak input order pair t → t'; both must be transactions of
  /// schedule `scheduler`.
  Status AddWeakInput(ScheduleId scheduler, NodeId t1, NodeId t2);

  /// Declares a strong input order pair t ⇒ t' (also added to the weak
  /// input order).
  Status AddStrongInput(ScheduleId scheduler, NodeId t1, NodeId t2);

  /// Declares a weak intra-transaction order pair a ≺_t b; both must be
  /// operations of transaction `txn`.
  Status AddIntraWeak(NodeId txn, NodeId a, NodeId b);

  /// Declares a strong intra-transaction order pair a ≪_t b (also added to
  /// the weak intra order).
  Status AddIntraStrong(NodeId txn, NodeId a, NodeId b);

  // ---- Semantic commutativity (ADT spec layer) ----------------------------
  //
  // An attached CommutativitySpec lets analyses *erase* declared conflict
  // bits between operations known to commute semantically (Weihl tables).
  // The spec is mask-only: EffectiveConflict(a, b) implies
  // conflicts.Contains(a, b), so Def 3.1 validation of the raw bits stays
  // valid and every spec-aware verdict is at least as permissive as the
  // bit-level one.

  /// Declares an ADT in the (lazily created) spec; returns its index.
  StatusOr<uint32_t> DeclareAdt(std::string name);

  /// Declares an operation class of ADT `adt`; returns its global index.
  StatusOr<uint32_t> DeclareAdtOp(uint32_t adt, std::string name);

  /// Declares that classes `c1` and `c2` commute (symmetric).
  Status DeclareCommute(uint32_t c1, uint32_t c2);

  /// Declares that classes `c1` and `c2` conflict (symmetric).
  Status DeclareClash(uint32_t c1, uint32_t c2);

  /// Tags `id` as an operation of class `op_class` on ADT instance
  /// `instance`.  Requires a spec with that class declared.
  Status TagOperation(NodeId id, uint32_t op_class, uint32_t instance);

  /// Installs a pre-built commutativity spec (e.g., loaded from a
  /// standalone "comptx-spec v1" file), replacing any spec declared
  /// in-band so far.  Existing node tags keep their class indices, so
  /// only attach a replacement that declares at least as many classes.
  void AttachSpec(CommutativitySpec spec);

  /// True iff a commutativity spec is attached (even an empty one).
  bool HasSpec() const { return spec_ != nullptr; }
  const CommutativitySpec* spec() const { return spec_.get(); }

  /// True iff the attached spec proves `a` and `b` commute: both tagged,
  /// and either they act on distinct ADT instances or their class pair is
  /// declared commuting.  False without a spec or for untagged nodes.
  bool SemanticallyCommutes(NodeId a, NodeId b) const;

  /// The semantic conflict relation analyses consult: the declared CON_S
  /// bit of `s` minus pairs the spec proves commuting.
  bool EffectiveConflict(ScheduleId s, NodeId a, NodeId b) const {
    return schedule(s).conflicts.Contains(a, b) && !SemanticallyCommutes(a, b);
  }

  // ---- Accessors ----------------------------------------------------------

  size_t NodeCount() const { return nodes_.size(); }
  size_t ScheduleCount() const { return schedules_.size(); }

  const Node& node(NodeId id) const;
  const Schedule& schedule(ScheduleId id) const;

  /// True iff `id` names an existing node.
  bool HasNode(NodeId id) const { return id.index() < nodes_.size(); }
  bool HasSchedule(ScheduleId id) const {
    return id.index() < schedules_.size();
  }

  /// The schedule in whose operation set this node appears, i.e., the
  /// owner schedule of its parent.  Invalid for roots.
  ScheduleId HostScheduleOf(NodeId id) const;

  /// All root transactions, in creation order (set R).
  std::vector<NodeId> Roots() const;

  /// All leaf operations, in creation order (set L).
  std::vector<NodeId> Leaves() const;

  /// O_S: the operations of `scheduler`'s transactions, in creation order.
  std::vector<NodeId> OperationsOf(ScheduleId scheduler) const;

  /// Act(T) of Def 4.6: all descendants of `txn` (excluding `txn` itself),
  /// preorder.
  std::vector<NodeId> Descendants(NodeId txn) const;

  /// The root transaction of the execution tree containing `id`.
  NodeId RootOf(NodeId id) const;

  // ---- Spec introspection (used by the static analyzer / linter) ---------

  /// The distinct schedules invoking `callee` (Def 7: a schedule whose
  /// operation set contains a transaction of `callee`), ascending.  Empty
  /// for schedules hosting only root transactions.
  std::vector<ScheduleId> InvokersOf(ScheduleId callee) const;

  /// True iff more than one distinct schedule invokes `callee` (the
  /// invocation graph is a DAG rather than a forest at this node).
  bool IsSharedSchedule(ScheduleId callee) const;

  /// The number of distinct execution trees (RootOf values) among the
  /// transactions of `s`.  A schedule serving more than one tree is a
  /// "meet" schedule: the point where cross-root orders are created and
  /// where pull-up can forget them (paper Fig 4).
  size_t RootsServed(ScheduleId s) const;

  /// The conflict pairs of `s` whose operations belong to different
  /// execution trees (RootOf differs) — the candidates for cross-root
  /// constraints a shared scheduler exports upward.  Deterministic order.
  std::vector<std::pair<NodeId, NodeId>> CrossRootConflicts(
      ScheduleId s) const;

  /// Checks all global model rules (Defs 2-4).  Thin compatibility wrapper
  /// over CollectModelDiagnostics (core/validate.h): returns OK iff no
  /// error diagnostic, else the first error's message.  Analyses
  /// (reduction, criteria) require a valid system.
  Status Validate() const;

  // ---- Internal mutation (used by generators) ----------------------------

  /// Mutable access for construction helpers; prefer the typed mutators.
  Node& mutable_node(NodeId id);
  Schedule& mutable_schedule(ScheduleId id);

 private:
  Status CheckOperationPair(NodeId a, NodeId b, ScheduleId* host) const;

  std::vector<Node> nodes_;
  std::vector<Schedule> schedules_;
  std::unique_ptr<CommutativitySpec> spec_;
};

/// Preorder interval index over a CompositeSystem's forest, answering
/// "is x in the subtree of a?" in O(1).  Build once per analysis pass;
/// invalidated by any structural mutation of the system.
class SubtreeIndex {
 public:
  explicit SubtreeIndex(const CompositeSystem& cs);

  /// True iff `x` is `ancestor` itself or a descendant of it.
  bool InSubtree(NodeId ancestor, NodeId x) const {
    return enter_[ancestor.index()] <= enter_[x.index()] &&
           exit_[x.index()] <= exit_[ancestor.index()];
  }

 private:
  std::vector<uint32_t> enter_;
  std::vector<uint32_t> exit_;
};

}  // namespace comptx

#endif  // COMPTX_CORE_COMPOSITE_SYSTEM_H_
