#include "core/invocation_graph.h"

#include <algorithm>

#include "graph/topological_sort.h"
#include "util/string_util.h"

namespace comptx {

uint32_t InvocationGraphResult::LevelOfTransaction(const CompositeSystem& cs,
                                                   NodeId txn) const {
  const Node& n = cs.node(txn);
  COMPTX_CHECK(n.IsTransaction()) << txn << " is not a transaction";
  return schedule_level[n.owner_schedule.index()];
}

StatusOr<InvocationGraphResult> BuildInvocationGraph(
    const CompositeSystem& cs) {
  InvocationGraphResult result;
  result.graph = graph::Digraph(cs.ScheduleCount());
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    ScheduleId sid(s);
    for (NodeId op : cs.OperationsOf(sid)) {
      const Node& n = cs.node(op);
      if (n.IsTransaction()) {
        result.graph.AddEdge(s, n.owner_schedule.index());
      }
    }
  }
  auto longest = graph::LongestPathLengths(result.graph);
  if (!longest.ok()) {
    return Status::FailedPrecondition(
        "invocation graph is cyclic: the composite system contains "
        "recursion, which Def 4.6 forbids");
  }
  result.schedule_level.resize(cs.ScheduleCount());
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    result.schedule_level[s] = longest.value()[s] + 1;
  }
  result.order = 0;
  for (uint32_t level : result.schedule_level) {
    result.order = std::max(result.order, level);
  }
  return result;
}

}  // namespace comptx
