#include "core/front.h"

#include <algorithm>

#include "core/indexing.h"
#include "graph/cycle_finder.h"
#include "util/string_util.h"

namespace comptx {

bool Front::ContainsNode(NodeId id) const {
  return std::binary_search(nodes.begin(), nodes.end(), id);
}

SystemContext::SystemContext(const CompositeSystem& system)
    : cs(system), subtree(system), ig([&] {
        auto result = BuildInvocationGraph(system);
        COMPTX_CHECK(result.ok())
            << "SystemContext requires a recursion-free system: "
            << result.status().ToString();
        return std::move(result).value();
      }()) {
  const size_t schedule_count = cs.ScheduleCount();
  closed_weak_output.reserve(schedule_count);
  closed_strong_output.reserve(schedule_count);
  closed_weak_input.reserve(schedule_count);
  closed_strong_input.reserve(schedule_count);
  for (uint32_t s = 0; s < schedule_count; ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    const std::vector<NodeId> ops = cs.OperationsOf(ScheduleId(s));
    closed_weak_output.push_back(ClosureWithin(sched.weak_output, ops));
    closed_strong_output.push_back(ClosureWithin(sched.strong_output, ops));
    closed_weak_input.push_back(
        ClosureWithin(sched.weak_input, sched.transactions));
    closed_strong_input.push_back(
        ClosureWithin(sched.strong_input, sched.transactions));
  }
  closed_weak_intra.resize(cs.NodeCount());
  closed_strong_intra.resize(cs.NodeCount());
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    if (!n.IsTransaction()) continue;
    closed_weak_intra[v] = ClosureWithin(n.weak_intra, n.children);
    closed_strong_intra[v] = ClosureWithin(n.strong_intra, n.children);
  }
}

namespace {

/// Adds (x, y) for every front pair with x in subtree(a), y in subtree(b).
/// This is the pull-down of a strong constraint a ≪ b to the front.
void AddPulledDownPairs(const SystemContext& ctx,
                        const std::vector<NodeId>& front_nodes, NodeId a,
                        NodeId b, Relation& out) {
  // Collect front members of each subtree (a front node is in at most one
  // of them since a and b are siblings or co-scheduled transactions, whose
  // subtrees are disjoint).
  std::vector<NodeId> in_a;
  std::vector<NodeId> in_b;
  for (NodeId x : front_nodes) {
    if (ctx.subtree.InSubtree(a, x)) {
      in_a.push_back(x);
    } else if (ctx.subtree.InSubtree(b, x)) {
      in_b.push_back(x);
    }
  }
  for (NodeId x : in_a) {
    for (NodeId y : in_b) out.Add(x, y);
  }
}

}  // namespace

void ComputeFrontInputOrders(const SystemContext& ctx, Front& front) {
  front.weak_input = Relation();
  front.strong_input = Relation();
  const CompositeSystem& cs = ctx.cs;

  // Weak input orders: pairs directly in the front.
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    ctx.closed_weak_input[s].ForEach([&](NodeId t1, NodeId t2) {
      if (front.ContainsNode(t1) && front.ContainsNode(t2)) {
        front.weak_input.Add(t1, t2);
      }
    });
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    ctx.closed_weak_intra[v].ForEach([&](NodeId a, NodeId b) {
      if (front.ContainsNode(a) && front.ContainsNode(b)) {
        front.weak_input.Add(a, b);
      }
    });
  }

  // Strong temporal orders: pulled down from every strong constraint.
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    ctx.closed_strong_input[s].ForEach([&](NodeId t1, NodeId t2) {
      AddPulledDownPairs(ctx, front.nodes, t1, t2, front.strong_input);
    });
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    ctx.closed_strong_intra[v].ForEach([&](NodeId a, NodeId b) {
      AddPulledDownPairs(ctx, front.nodes, a, b, front.strong_input);
    });
  }

  // Strong orders are also weak orders (Def 1).
  front.weak_input.UnionWith(front.strong_input);
}

std::optional<CycleWitness> FindConflictConsistencyViolation(
    const Front& front) {
  NodeIndexMap index(front.nodes);
  graph::Digraph g = RelationToDigraph(front.observed, index);
  g.UnionWith(RelationToDigraph(front.weak_input, index));
  g.UnionWith(RelationToDigraph(front.strong_input, index));
  auto cycle = graph::FindCycle(g);
  if (!cycle) return std::nullopt;
  CycleWitness witness;
  witness.nodes.reserve(cycle->size());
  for (uint32_t local : *cycle) witness.nodes.push_back(index.GlobalOf(local));
  witness.description =
      StrCat("front level ", front.level, " is not conflict consistent: ",
             cycle->size(), "-node cycle in observed ∪ input orders");
  return witness;
}

bool IsConflictConsistent(const Front& front) {
  return !FindConflictConsistencyViolation(front).has_value();
}

}  // namespace comptx
