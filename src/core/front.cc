#include "core/front.h"

#include <algorithm>
#include <utility>

#include "core/indexing.h"
#include "graph/cycle_finder.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace comptx {

bool Front::ContainsNode(NodeId id) const {
  return std::binary_search(nodes.begin(), nodes.end(), id);
}

SystemContext::SystemContext(const CompositeSystem& system)
    : cs(system), subtree(system), ig([&] {
        auto result = BuildInvocationGraph(system);
        COMPTX_CHECK(result.ok())
            << "SystemContext requires a recursion-free system: "
            << result.status().ToString();
        return std::move(result).value();
      }()) {
  // Every per-schedule and per-transaction closure is independent, so the
  // construction fans out over the pool; each task writes only its own
  // preallocated slot, which keeps the result identical at any thread
  // count.
  const size_t schedule_count = cs.ScheduleCount();
  closed_weak_output.resize(schedule_count);
  closed_strong_output.resize(schedule_count);
  closed_weak_input.resize(schedule_count);
  closed_strong_input.resize(schedule_count);
  ThreadPool::Global().ParallelFor(schedule_count, [&](size_t s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    const std::vector<NodeId> ops = cs.OperationsOf(ScheduleId(s));
    closed_weak_output[s] = ClosureWithin(sched.weak_output, ops);
    closed_strong_output[s] = ClosureWithin(sched.strong_output, ops);
    closed_weak_input[s] = ClosureWithin(sched.weak_input, sched.transactions);
    closed_strong_input[s] =
        ClosureWithin(sched.strong_input, sched.transactions);
  });
  closed_weak_intra.resize(cs.NodeCount());
  closed_strong_intra.resize(cs.NodeCount());
  ThreadPool::Global().ParallelFor(cs.NodeCount(), [&](size_t v) {
    const Node& n = cs.node(NodeId(static_cast<uint32_t>(v)));
    if (!n.IsTransaction()) return;
    closed_weak_intra[v] = ClosureWithin(n.weak_intra, n.children);
    closed_strong_intra[v] = ClosureWithin(n.strong_intra, n.children);
  });
  host_schedule.resize(cs.NodeCount());
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    host_schedule[v] = cs.HostScheduleOf(NodeId(v));
  }
}

namespace {

/// Collects (x, y) for every front pair with x in subtree(a), y in
/// subtree(b).  This is the pull-down of a strong constraint a ≪ b to the
/// front.
void CollectPulledDownPairs(const SystemContext& ctx,
                            const std::vector<NodeId>& front_nodes, NodeId a,
                            NodeId b,
                            std::vector<std::pair<NodeId, NodeId>>& out) {
  // Collect front members of each subtree (a front node is in at most one
  // of them since a and b are siblings or co-scheduled transactions, whose
  // subtrees are disjoint).
  std::vector<NodeId> in_a;
  std::vector<NodeId> in_b;
  for (NodeId x : front_nodes) {
    if (ctx.subtree.InSubtree(a, x)) {
      in_a.push_back(x);
    } else if (ctx.subtree.InSubtree(b, x)) {
      in_b.push_back(x);
    }
  }
  for (NodeId x : in_a) {
    for (NodeId y : in_b) out.emplace_back(x, y);
  }
}

}  // namespace

void ComputeFrontInputOrders(const SystemContext& ctx, Front& front) {
  front.weak_input = Relation();
  front.strong_input = Relation();
  const CompositeSystem& cs = ctx.cs;
  const NodeBitSet membership(front.nodes);

  // One shard per schedule plus one per node; each collects its weak and
  // strong pairs locally, and the shards are folded in index order.  The
  // folded relations are sets with canonical iteration order, so the
  // outcome is independent of shard scheduling.
  const size_t schedule_count = cs.ScheduleCount();
  const size_t shard_count = schedule_count + cs.NodeCount();
  std::vector<std::vector<std::pair<NodeId, NodeId>>> weak_shards(shard_count);
  std::vector<std::vector<std::pair<NodeId, NodeId>>> strong_shards(
      shard_count);
  ThreadPool::Global().ParallelFor(shard_count, [&](size_t k) {
    std::vector<std::pair<NodeId, NodeId>>& weak = weak_shards[k];
    std::vector<std::pair<NodeId, NodeId>>& strong = strong_shards[k];
    if (k < schedule_count) {
      // Weak input orders: pairs directly in the front.
      ctx.closed_weak_input[k].ForEach([&](NodeId t1, NodeId t2) {
        if (membership.Contains(t1) && membership.Contains(t2)) {
          weak.emplace_back(t1, t2);
        }
      });
      // Strong temporal orders: pulled down from every strong constraint.
      ctx.closed_strong_input[k].ForEach([&](NodeId t1, NodeId t2) {
        CollectPulledDownPairs(ctx, front.nodes, t1, t2, strong);
      });
    } else {
      const size_t v = k - schedule_count;
      ctx.closed_weak_intra[v].ForEach([&](NodeId a, NodeId b) {
        if (membership.Contains(a) && membership.Contains(b)) {
          weak.emplace_back(a, b);
        }
      });
      ctx.closed_strong_intra[v].ForEach([&](NodeId a, NodeId b) {
        CollectPulledDownPairs(ctx, front.nodes, a, b, strong);
      });
    }
  });
  for (const auto& shard : weak_shards) {
    for (const auto& [a, b] : shard) front.weak_input.Add(a, b);
  }
  for (const auto& shard : strong_shards) {
    for (const auto& [a, b] : shard) front.strong_input.Add(a, b);
  }

  // Strong orders are also weak orders (Def 1).
  front.weak_input.UnionWith(front.strong_input);
}

std::optional<CycleWitness> FindConflictConsistencyViolation(
    const Front& front) {
  NodeIndexMap index(front.nodes);
  graph::Digraph g(index.size());
  AddRelationEdges(front.observed, index, g);
  AddRelationEdges(front.weak_input, index, g);
  AddRelationEdges(front.strong_input, index, g);
  auto cycle = graph::FindCycle(g);
  if (!cycle) return std::nullopt;
  CycleWitness witness;
  witness.nodes.reserve(cycle->size());
  for (uint32_t local : *cycle) witness.nodes.push_back(index.GlobalOf(local));
  witness.description =
      StrCat("front level ", front.level, " is not conflict consistent: ",
             cycle->size(), "-node cycle in observed ∪ input orders");
  return witness;
}

bool IsConflictConsistent(const Front& front) {
  return !FindConflictConsistencyViolation(front).has_value();
}

}  // namespace comptx
