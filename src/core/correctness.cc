#include "core/correctness.h"

#include "core/serial_front.h"

namespace comptx {

StatusOr<CompCResult> CheckCompC(const CompositeSystem& cs,
                                 const ReductionOptions& options) {
  CompCResult result;
  COMPTX_ASSIGN_OR_RETURN(result.reduction, RunReduction(cs, options));
  result.correct = result.reduction.comp_c;
  result.order = result.reduction.order;
  result.failure = result.reduction.failure;
  if (result.correct) {
    // A level-N front exists and is conflict consistent, so the
    // topological sort cannot fail (Theorem 1).
    COMPTX_ASSIGN_OR_RETURN(result.serial_order,
                            SerializeFront(result.reduction.FinalFront()));
  }
  return result;
}

bool IsCompC(const CompositeSystem& cs) {
  auto result = CheckCompC(cs);
  COMPTX_CHECK(result.ok()) << result.status().ToString();
  return result->correct;
}

}  // namespace comptx
