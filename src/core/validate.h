#ifndef COMPTX_CORE_VALIDATE_H_
#define COMPTX_CORE_VALIDATE_H_

#include <vector>

#include "core/composite_system.h"
#include "core/diagnostic.h"

namespace comptx {

/// Checks every global model rule of Defs 2-4 on `cs` and returns *all*
/// violations as structured diagnostics with stable CTX codes, in
/// deterministic order (recursion, then intra-transaction rules, then the
/// per-schedule rules in schedule order).  An empty result means the
/// system is well formed.
///
/// `CompositeSystem::Validate()` is the thin compatibility wrapper: it
/// returns OK iff this collection is error-free and otherwise a
/// FailedPrecondition carrying the first error's message.
std::vector<Diagnostic> CollectModelDiagnostics(const CompositeSystem& cs);

}  // namespace comptx

#endif  // COMPTX_CORE_VALIDATE_H_
