#include "core/reduction.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/calculation.h"
#include "core/observed_order.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace comptx {

const char* ReductionFailureStepToString(ReductionFailureStep step) {
  switch (step) {
    case ReductionFailureStep::kCalculation:
      return "calculation";
    case ReductionFailureStep::kConflictConsistency:
      return "conflict_consistency";
  }
  return "unknown";
}

const Front& ReductionResult::FinalFront() const {
  COMPTX_CHECK(!fronts.empty()) << "no fronts kept";
  return fronts.back();
}

namespace {

/// Pulls the observed order of `prev` up into `next` (Def 10 points 2-4).
///
/// `rep` maps a grouped operation to its level-i transaction and every
/// other node to itself.  Same-schedule pairs that the schedule declares
/// non-conflicting are dropped when pulled up ("forgotten", Fig 4) unless
/// the ablation flag disables forgetting.
void PullUpObserved(const SystemContext& ctx, const Front& prev,
                    const std::unordered_map<NodeId, NodeId>& rep,
                    bool forgetting, Front& next) {
  auto rep_of = [&](NodeId x) {
    auto it = rep.find(x);
    return it == rep.end() ? x : it->second;
  };
  prev.observed.ForEach([&](NodeId a, NodeId b) {
    if (auto image = PullUpObservedPair(ctx.cs, a, b, rep_of(a), rep_of(b),
                                        forgetting)) {
      next.observed.Add(image->first, image->second);
    }
  });
}

/// Adds the serialization orders of the level-i schedules (Def 10.2): for
/// conflicting operations of distinct transactions ordered by the weak
/// output order, the parents become observed-ordered.  Each schedule is
/// scanned independently on the pool; the per-schedule pair lists are
/// folded in schedule order (the observed order is a set with canonical
/// iteration order, so the fold is thread-count-invariant).
void AddScheduleSerializationOrders(const SystemContext& ctx,
                                    const std::vector<ScheduleId>& schedules,
                                    Front& next) {
  const CompositeSystem& cs = ctx.cs;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> shards(schedules.size());
  ThreadPool::Global().ParallelFor(schedules.size(), [&](size_t k) {
    const ScheduleId s = schedules[k];
    const Schedule& sched = cs.schedule(s);
    const Relation& closed_output = ctx.closed_weak_output[s.index()];
    std::vector<std::pair<NodeId, NodeId>>& out = shards[k];
    sched.conflicts.ForEach([&](NodeId o1, NodeId o2) {
      if (cs.SemanticallyCommutes(o1, o2)) return;
      NodeId t1 = cs.node(o1).parent;
      NodeId t2 = cs.node(o2).parent;
      if (t1 == t2) return;
      if (closed_output.Contains(o1, o2)) out.emplace_back(t1, t2);
      if (closed_output.Contains(o2, o1)) out.emplace_back(t2, t1);
    });
  });
  for (const auto& shard : shards) {
    for (const auto& [t1, t2] : shard) next.observed.Add(t1, t2);
  }
}

}  // namespace

Reducer::Reducer(const CompositeSystem& cs, const ReductionOptions& options)
    : options_(options), ctx_(std::make_unique<SystemContext>(cs)) {
  order_ = ctx_->ig.order;
  transactions_at_level_.resize(order_ + 1);
  schedules_at_level_.resize(order_ + 1);
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const uint32_t level = ctx_->ig.schedule_level[s];
    schedules_at_level_[level].push_back(ScheduleId(s));
    for (NodeId txn : cs.schedule(ScheduleId(s)).transactions) {
      transactions_at_level_[level].push_back(txn);
    }
  }
}

StatusOr<Reducer> Reducer::Create(const CompositeSystem& cs,
                                  const ReductionOptions& options) {
  if (options.validate) {
    COMPTX_RETURN_IF_ERROR(cs.Validate());
  }
  Reducer reducer(cs, options);
  reducer.current_ = MakeLevelZeroFront(*reducer.ctx_);
  if (auto violation = FindConflictConsistencyViolation(reducer.current_)) {
    reducer.failed_ = true;
    reducer.failure_ = ReductionFailure{
        0, ReductionFailureStep::kConflictConsistency, *violation};
  }
  return reducer;
}

const std::vector<NodeId>& Reducer::TransactionsAtLevel(uint32_t level) const {
  COMPTX_CHECK_LE(level, order_);
  return transactions_at_level_[level];
}

bool Reducer::Step() {
  COMPTX_CHECK(!Done()) << "Step() called on a finished reduction";
  const CompositeSystem& cs = ctx_->cs;
  const uint32_t level = current_.level + 1;
  const std::vector<NodeId>& groups = transactions_at_level_[level];

  // Def 16 step 1: every level-i transaction must admit a calculation.
  if (auto violation = FindCalculationViolation(*ctx_, current_, groups)) {
    failed_ = true;
    failure_ = ReductionFailure{level, ReductionFailureStep::kCalculation,
                                *violation};
    return false;
  }

  // Def 16 steps 2 & 5: replace the grouped operations by their
  // transactions; keep everything else (roots propagate).
  Front next;
  next.level = level;
  std::unordered_map<NodeId, NodeId> rep;
  std::unordered_set<NodeId> removed;
  for (NodeId txn : groups) {
    for (NodeId op : cs.node(txn).children) {
      rep.emplace(op, txn);
      removed.insert(op);
    }
  }
  for (NodeId node : current_.nodes) {
    if (removed.count(node) == 0) next.nodes.push_back(node);
  }
  next.nodes.insert(next.nodes.end(), groups.begin(), groups.end());
  std::sort(next.nodes.begin(), next.nodes.end());

  // Def 16 steps 3 & 4: pull up the observed order and conflicts; pairs
  // involving removed operations disappear with their operations.
  PullUpObserved(*ctx_, current_, rep, options_.forgetting, next);
  AddScheduleSerializationOrders(*ctx_, schedules_at_level_[level], next);
  ApplyLeafRuleObserved(*ctx_, next);
  ComputeGeneralizedConflicts(*ctx_, next);

  // Def 16 step 6: include the level-i input orders and check CC.
  ComputeFrontInputOrders(*ctx_, next);
  if (auto violation = FindConflictConsistencyViolation(next)) {
    failed_ = true;
    failure_ = ReductionFailure{
        level, ReductionFailureStep::kConflictConsistency, *violation};
    current_ = std::move(next);  // expose the offending front.
    return false;
  }

  current_ = std::move(next);
  return true;
}

StatusOr<ReductionResult> RunReduction(const CompositeSystem& cs,
                                       const ReductionOptions& options) {
  COMPTX_ASSIGN_OR_RETURN(Reducer reducer, Reducer::Create(cs, options));
  ReductionResult result;
  result.order = reducer.order();

  auto record_front = [&](const Front& front) {
    if (!options.keep_fronts) result.fronts.clear();
    result.fronts.push_back(front);
  };
  record_front(reducer.current());

  while (!reducer.Done()) {
    if (reducer.Step()) {
      record_front(reducer.current());
    } else {
      // On a CC failure the reducer exposes the offending partial front;
      // keep it for diagnostics when fronts are retained.
      const std::optional<ReductionFailure>& failure = reducer.failure();
      if (options.keep_fronts && failure.has_value() &&
          failure->step == ReductionFailureStep::kConflictConsistency &&
          failure->level > 0) {
        result.fronts.push_back(reducer.current());
      }
      break;
    }
  }

  result.comp_c = !reducer.Failed();
  result.failure = reducer.failure();
  if (result.comp_c) {
    // Theorem 1 sanity check: only root transactions remain.
    for (NodeId node : reducer.current().nodes) {
      COMPTX_CHECK(cs.node(node).IsRoot())
          << "non-root node " << cs.node(node).name << " in the level "
          << result.order << " front";
    }
  }
  return result;
}

}  // namespace comptx
