#include <map>
#include <vector>

#include "core/composite_system.h"
#include "core/indexing.h"
#include "core/invocation_graph.h"
#include "graph/cycle_finder.h"
#include "util/string_util.h"

namespace comptx {

namespace {

/// Checks that `rel`, restricted to `domain`, is acyclic (i.e., a strict
/// partial order after closure).
Status CheckPartialOrder(const Relation& rel, const std::vector<NodeId>& domain,
                         const std::string& what) {
  NodeIndexMap index(domain);
  graph::Digraph g = RelationToDigraph(rel, index);
  if (auto cycle = graph::FindCycle(g)) {
    return Status::FailedPrecondition(
        StrCat(what, " is cyclic (", cycle->size(), "-node cycle)"));
  }
  return Status::OK();
}

}  // namespace

Status CompositeSystem::Validate() const {
  // Recursion freedom (Def 4.6): the invocation graph must be acyclic.
  COMPTX_RETURN_IF_ERROR(BuildInvocationGraph(*this).status());

  // Intra-transaction orders (Def 2): partial orders with strong ⊆ weak.
  for (const Node& n : nodes_) {
    if (!n.IsTransaction()) continue;
    COMPTX_RETURN_IF_ERROR(CheckPartialOrder(
        n.weak_intra, n.children, StrCat("weak intra order of ", n.name)));
    Relation weak_closed = ClosureWithin(n.weak_intra, n.children);
    bool strong_in_weak = true;
    n.strong_intra.ForEach([&](NodeId a, NodeId b) {
      if (!weak_closed.Contains(a, b)) strong_in_weak = false;
    });
    if (!strong_in_weak) {
      return Status::FailedPrecondition(
          StrCat("transaction ", n.name,
                 ": strong intra order not contained in weak intra order"));
    }
  }

  for (const Schedule& s : schedules_) {
    const std::vector<NodeId> ops = OperationsOf(s.id);

    // Input orders are partial orders over T_S with strong ⊆ weak.
    COMPTX_RETURN_IF_ERROR(CheckPartialOrder(
        s.weak_input, s.transactions,
        StrCat("weak input order of schedule ", s.name)));
    Relation weak_in_closed = ClosureWithin(s.weak_input, s.transactions);
    Relation strong_in_closed = ClosureWithin(s.strong_input, s.transactions);
    if (!weak_in_closed.ContainsAllOf(s.strong_input)) {
      return Status::FailedPrecondition(
          StrCat("schedule ", s.name,
                 ": strong input order not contained in weak input order"));
    }

    // Output orders are partial orders over O_S; Def 3.4: strong ⊆ weak.
    COMPTX_RETURN_IF_ERROR(
        CheckPartialOrder(s.weak_output, ops,
                          StrCat("weak output order of schedule ", s.name)));
    Relation weak_out_closed = ClosureWithin(s.weak_output, ops);
    Relation strong_out_closed = ClosureWithin(s.strong_output, ops);
    if (!weak_out_closed.ContainsAllOf(s.strong_output)) {
      return Status::FailedPrecondition(
          StrCat("schedule ", s.name,
                 ": strong output order not contained in weak output order"));
    }

    // Def 3.1: conflicting operations of distinct transactions must be
    // weak-output-ordered, and consistently with the weak input order.
    bool conflict_rule_ok = true;
    std::string conflict_msg;
    s.conflicts.ForEach([&](NodeId o1, NodeId o2) {
      NodeId t1 = node(o1).parent;
      NodeId t2 = node(o2).parent;
      if (t1 == t2) return;  // Def 3.1 quantifies over distinct transactions.
      bool fwd = weak_out_closed.Contains(o1, o2);
      bool bwd = weak_out_closed.Contains(o2, o1);
      if (fwd && bwd) {
        conflict_rule_ok = false;
        conflict_msg = StrCat("schedule ", s.name, ": conflicting ops ",
                              node(o1).name, ", ", node(o2).name,
                              " ordered both ways");
        return;
      }
      if (!fwd && !bwd) {
        conflict_rule_ok = false;
        conflict_msg = StrCat("schedule ", s.name, ": conflicting ops ",
                              node(o1).name, ", ", node(o2).name,
                              " left unordered (Def 3.1c)");
        return;
      }
      if (weak_in_closed.Contains(t1, t2) && bwd) {
        conflict_rule_ok = false;
        conflict_msg = StrCat("schedule ", s.name, ": conflicting ops of ",
                              node(t1).name, " -> ", node(t2).name,
                              " ordered against the weak input order");
        return;
      }
      if (weak_in_closed.Contains(t2, t1) && fwd) {
        conflict_rule_ok = false;
        conflict_msg = StrCat("schedule ", s.name, ": conflicting ops of ",
                              node(t2).name, " -> ", node(t1).name,
                              " ordered against the weak input order");
      }
    });
    if (!conflict_rule_ok) return Status::FailedPrecondition(conflict_msg);

    // Def 3.2: intra-transaction orders are honored by the output orders.
    for (NodeId txn : s.transactions) {
      const Node& t = node(txn);
      bool ok = weak_out_closed.ContainsAllOf(t.weak_intra) &&
                strong_out_closed.ContainsAllOf(t.strong_intra);
      if (!ok) {
        return Status::FailedPrecondition(
            StrCat("schedule ", s.name, ": output orders do not honor the ",
                   "intra-transaction orders of ", t.name, " (Def 3.2)"));
      }
    }

    // Def 3.3: strong input order forces all operation pairs to be
    // strongly ordered in the output.
    bool strong_rule_ok = true;
    std::string strong_msg;
    strong_in_closed.ForEach([&](NodeId t1, NodeId t2) {
      for (NodeId o1 : node(t1).children) {
        for (NodeId o2 : node(t2).children) {
          if (!strong_out_closed.Contains(o1, o2)) {
            strong_rule_ok = false;
            strong_msg =
                StrCat("schedule ", s.name, ": strong input ", node(t1).name,
                       " => ", node(t2).name, " not reflected by strong ",
                       "output over ops ", node(o1).name, ", ",
                       node(o2).name, " (Def 3.3)");
            return;
          }
        }
      }
    });
    if (!strong_rule_ok) return Status::FailedPrecondition(strong_msg);

    // Def 4.7: output orders over operations that are transactions of one
    // common schedule must be passed on as that schedule's input orders.
    // The callee input closures are cached — recomputing them per pair
    // would make validation quadratic in the closure size.
    bool propagation_ok = true;
    std::string propagation_msg;
    std::map<uint32_t, Relation> weak_input_cache;
    std::map<uint32_t, Relation> strong_input_cache;
    auto closed_input_of = [&](const Schedule& callee,
                               bool strong) -> const Relation& {
      auto& cache = strong ? strong_input_cache : weak_input_cache;
      auto it = cache.find(callee.id.index());
      if (it == cache.end()) {
        const Relation& input =
            strong ? callee.strong_input : callee.weak_input;
        it = cache.emplace(callee.id.index(),
                           ClosureWithin(input, callee.transactions))
                 .first;
      }
      return it->second;
    };
    auto check_propagation = [&](const Relation& out_closed,
                                 bool strong) {
      out_closed.ForEach([&](NodeId a, NodeId b) {
        const Node& na = node(a);
        const Node& nb = node(b);
        if (!na.IsTransaction() || !nb.IsTransaction()) return;
        if (na.owner_schedule != nb.owner_schedule) return;
        const Schedule& callee = schedule(na.owner_schedule);
        const Relation& input_closed = closed_input_of(callee, strong);
        if (!input_closed.Contains(a, b)) {
          propagation_ok = false;
          propagation_msg = StrCat(
              "schedule ", s.name, ": ", (strong ? "strong" : "weak"),
              " output order ", na.name, " -> ", nb.name,
              " not propagated as input order of schedule ", callee.name,
              " (Def 4.7)");
        }
      });
    };
    check_propagation(weak_out_closed, /*strong=*/false);
    if (propagation_ok) check_propagation(strong_out_closed, /*strong=*/true);
    if (!propagation_ok) return Status::FailedPrecondition(propagation_msg);
  }

  return Status::OK();
}

}  // namespace comptx
