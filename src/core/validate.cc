#include "core/validate.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/composite_system.h"
#include "core/indexing.h"
#include "core/invocation_graph.h"
#include "graph/cycle_finder.h"
#include "util/string_util.h"

namespace comptx {

namespace {

/// Appends a cyclicity diagnostic when `rel`, restricted to `domain`, is
/// not a strict partial order after closure.
void CheckPartialOrder(const Relation& rel, const std::vector<NodeId>& domain,
                       const std::string& what, DiagCode code,
                       const std::string& location,
                       std::vector<Diagnostic>& out) {
  NodeIndexMap index(domain);
  graph::Digraph g = RelationToDigraph(rel, index);
  if (auto cycle = graph::FindCycle(g)) {
    out.push_back({DiagSeverity::kError, code, location, 0,
                   StrCat(what, " is cyclic (", cycle->size(),
                          "-node cycle)"),
                   "remove one edge of the cycle"});
  }
}

}  // namespace

std::vector<Diagnostic> CollectModelDiagnostics(const CompositeSystem& cs) {
  std::vector<Diagnostic> diags;

  // Recursion freedom (Def 4.6): the invocation graph must be acyclic.
  if (auto ig = BuildInvocationGraph(cs); !ig.ok()) {
    diags.push_back({DiagSeverity::kError, DiagCode::kRecursion,
                     "invocation graph", 0, ig.status().message(),
                     "break the schedule invocation cycle (Def 4.6 forbids "
                     "recursion)"});
  }

  // Intra-transaction orders (Def 2): partial orders with strong ⊆ weak.
  for (size_t ni = 0; ni < cs.NodeCount(); ++ni) {
    const Node& n = cs.node(NodeId(static_cast<uint32_t>(ni)));
    if (!n.IsTransaction()) continue;
    const std::string location = StrCat("transaction ", n.name);
    CheckPartialOrder(n.weak_intra, n.children,
                      StrCat("weak intra order of ", n.name),
                      DiagCode::kCyclicIntraOrder, location, diags);
    Relation weak_closed = ClosureWithin(n.weak_intra, n.children);
    bool strong_in_weak = true;
    n.strong_intra.ForEach([&](NodeId a, NodeId b) {
      if (!weak_closed.Contains(a, b)) strong_in_weak = false;
    });
    if (!strong_in_weak) {
      diags.push_back(
          {DiagSeverity::kError, DiagCode::kStrongIntraNotInWeak, location, 0,
           StrCat("transaction ", n.name,
                  ": strong intra order not contained in weak intra order"),
           "add the strong pair to the weak intra order too"});
    }
  }

  for (size_t si = 0; si < cs.ScheduleCount(); ++si) {
    const Schedule& s = cs.schedule(ScheduleId(static_cast<uint32_t>(si)));
    const std::vector<NodeId> ops = cs.OperationsOf(s.id);
    const std::string location = StrCat("schedule ", s.name);

    // Input orders are partial orders over T_S with strong ⊆ weak.
    CheckPartialOrder(s.weak_input, s.transactions,
                      StrCat("weak input order of schedule ", s.name),
                      DiagCode::kCyclicInputOrder, location, diags);
    Relation weak_in_closed = ClosureWithin(s.weak_input, s.transactions);
    Relation strong_in_closed = ClosureWithin(s.strong_input, s.transactions);
    if (!weak_in_closed.ContainsAllOf(s.strong_input)) {
      diags.push_back(
          {DiagSeverity::kError, DiagCode::kStrongInputNotInWeak, location, 0,
           StrCat("schedule ", s.name,
                  ": strong input order not contained in weak input order"),
           "add the strong pair to the weak input order too"});
    }

    // Output orders are partial orders over O_S; Def 3.4: strong ⊆ weak.
    CheckPartialOrder(s.weak_output, ops,
                      StrCat("weak output order of schedule ", s.name),
                      DiagCode::kCyclicOutputOrder, location, diags);
    Relation weak_out_closed = ClosureWithin(s.weak_output, ops);
    Relation strong_out_closed = ClosureWithin(s.strong_output, ops);
    if (!weak_out_closed.ContainsAllOf(s.strong_output)) {
      diags.push_back(
          {DiagSeverity::kError, DiagCode::kStrongOutputNotInWeak, location,
           0,
           StrCat("schedule ", s.name,
                  ": strong output order not contained in weak output order"),
           "add the strong pair to the weak output order too"});
    }

    // Def 3.1: conflicting operations of distinct transactions must be
    // weak-output-ordered, and consistently with the weak input order.
    s.conflicts.ForEach([&](NodeId o1, NodeId o2) {
      NodeId t1 = cs.node(o1).parent;
      NodeId t2 = cs.node(o2).parent;
      if (t1 == t2) return;  // Def 3.1 quantifies over distinct transactions.
      bool fwd = weak_out_closed.Contains(o1, o2);
      bool bwd = weak_out_closed.Contains(o2, o1);
      if (fwd && bwd) {
        diags.push_back(
            {DiagSeverity::kError, DiagCode::kConflictOrderedBothWays,
             location, 0,
             StrCat("schedule ", s.name, ": conflicting ops ",
                    cs.node(o1).name, ", ", cs.node(o2).name,
                    " ordered both ways"),
             "drop one direction from the weak output order"});
        return;
      }
      if (!fwd && !bwd) {
        diags.push_back(
            {DiagSeverity::kError, DiagCode::kConflictUnordered, location, 0,
             StrCat("schedule ", s.name, ": conflicting ops ",
                    cs.node(o1).name, ", ", cs.node(o2).name,
                    " left unordered (Def 3.1c)"),
             StrCat("add a weak_out edge between ", cs.node(o1).name,
                    " and ", cs.node(o2).name)});
        return;
      }
      if (weak_in_closed.Contains(t1, t2) && bwd) {
        diags.push_back(
            {DiagSeverity::kError, DiagCode::kConflictAgainstInput, location,
             0,
             StrCat("schedule ", s.name, ": conflicting ops of ",
                    cs.node(t1).name, " -> ", cs.node(t2).name,
                    " ordered against the weak input order"),
             "flip the weak output order of the conflicting pair"});
        return;
      }
      if (weak_in_closed.Contains(t2, t1) && fwd) {
        diags.push_back(
            {DiagSeverity::kError, DiagCode::kConflictAgainstInput, location,
             0,
             StrCat("schedule ", s.name, ": conflicting ops of ",
                    cs.node(t2).name, " -> ", cs.node(t1).name,
                    " ordered against the weak input order"),
             "flip the weak output order of the conflicting pair"});
      }
    });

    // Def 3.2: intra-transaction orders are honored by the output orders.
    for (NodeId txn : s.transactions) {
      const Node& t = cs.node(txn);
      bool ok = weak_out_closed.ContainsAllOf(t.weak_intra) &&
                strong_out_closed.ContainsAllOf(t.strong_intra);
      if (!ok) {
        diags.push_back(
            {DiagSeverity::kError, DiagCode::kIntraOrderNotHonored, location,
             0,
             StrCat("schedule ", s.name, ": output orders do not honor the ",
                    "intra-transaction orders of ", t.name, " (Def 3.2)"),
             StrCat("emit the intra order of ", t.name,
                    " into the output orders")});
      }
    }

    // Def 3.3: strong input order forces all operation pairs to be
    // strongly ordered in the output.
    strong_in_closed.ForEach([&](NodeId t1, NodeId t2) {
      for (NodeId o1 : cs.node(t1).children) {
        for (NodeId o2 : cs.node(t2).children) {
          if (!strong_out_closed.Contains(o1, o2)) {
            diags.push_back(
                {DiagSeverity::kError, DiagCode::kStrongInputNotReflected,
                 location, 0,
                 StrCat("schedule ", s.name, ": strong input ",
                        cs.node(t1).name, " => ", cs.node(t2).name,
                        " not reflected by strong output over ops ",
                        cs.node(o1).name, ", ", cs.node(o2).name,
                        " (Def 3.3)"),
                 StrCat("add strong_out ", cs.node(o1).name, " -> ",
                        cs.node(o2).name)});
            return;
          }
        }
      }
    });

    // Def 4.7: output orders over operations that are transactions of one
    // common schedule must be passed on as that schedule's input orders.
    // The callee input closures are cached — recomputing them per pair
    // would make validation quadratic in the closure size.
    std::map<uint32_t, Relation> weak_input_cache;
    std::map<uint32_t, Relation> strong_input_cache;
    auto closed_input_of = [&](const Schedule& callee,
                               bool strong) -> const Relation& {
      auto& cache = strong ? strong_input_cache : weak_input_cache;
      auto it = cache.find(callee.id.index());
      if (it == cache.end()) {
        const Relation& input =
            strong ? callee.strong_input : callee.weak_input;
        it = cache.emplace(callee.id.index(),
                           ClosureWithin(input, callee.transactions))
                 .first;
      }
      return it->second;
    };
    auto check_propagation = [&](const Relation& out_closed, bool strong) {
      out_closed.ForEach([&](NodeId a, NodeId b) {
        const Node& na = cs.node(a);
        const Node& nb = cs.node(b);
        if (!na.IsTransaction() || !nb.IsTransaction()) return;
        if (na.owner_schedule != nb.owner_schedule) return;
        const Schedule& callee = cs.schedule(na.owner_schedule);
        const Relation& input_closed = closed_input_of(callee, strong);
        if (!input_closed.Contains(a, b)) {
          diags.push_back(
              {DiagSeverity::kError, DiagCode::kOutputNotPropagated, location,
               0,
               StrCat("schedule ", s.name, ": ",
                      (strong ? "strong" : "weak"), " output order ", na.name,
                      " -> ", nb.name,
                      " not propagated as input order of schedule ",
                      callee.name, " (Def 4.7)"),
               StrCat("add ", (strong ? "strong_in " : "weak_in "),
                      callee.name, " ", na.name, " -> ", nb.name)});
        }
      });
    };
    check_propagation(weak_out_closed, /*strong=*/false);
    check_propagation(strong_out_closed, /*strong=*/true);
  }

  return diags;
}

Status CompositeSystem::Validate() const {
  // Thin compatibility wrapper over CollectModelDiagnostics: legacy
  // callers get the first violation as a flat Status; new callers use the
  // diagnostic collection to see every violation at once.
  for (const Diagnostic& d : CollectModelDiagnostics(*this)) {
    if (d.severity == DiagSeverity::kError) {
      return Status::FailedPrecondition(d.message);
    }
  }
  return Status::OK();
}

}  // namespace comptx
