#ifndef COMPTX_CORE_DIAGNOSTIC_H_
#define COMPTX_CORE_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace comptx {

/// Severity of a diagnostic.  Errors make a spec unusable (validation or
/// referential failures); warnings flag suspicious-but-usable constructs
/// (orphan schedulers, degenerate generator parameters); notes carry
/// analysis context (e.g., forgotten-order hazards on shared schedulers).
enum class DiagSeverity : uint8_t {
  kNote,
  kWarning,
  kError,
};

const char* DiagSeverityToString(DiagSeverity severity);

/// Stable diagnostic codes.  The numeric values are part of the tool
/// contract (CI greps for them, DESIGN.md documents them): never renumber
/// or reuse a retired value — append instead.
enum class DiagCode : uint16_t {
  // -- Model rules of Defs 2-4 (CollectModelDiagnostics, validate.cc) ----
  kRecursion = 1,                 // CTX001 invocation graph is cyclic
  kCyclicIntraOrder = 2,          // CTX002 intra-transaction order cyclic
  kStrongIntraNotInWeak = 3,      // CTX003 strong intra ⊄ weak intra
  kCyclicInputOrder = 4,          // CTX004 schedule input order cyclic
  kStrongInputNotInWeak = 5,      // CTX005 strong input ⊄ weak input
  kCyclicOutputOrder = 6,         // CTX006 schedule output order cyclic
  kStrongOutputNotInWeak = 7,     // CTX007 strong output ⊄ weak output
  kConflictOrderedBothWays = 8,   // CTX008 Def 3.1 violated (both ways)
  kConflictUnordered = 9,         // CTX009 Def 3.1c violated (unordered)
  kConflictAgainstInput = 10,     // CTX010 Def 3.1a/b violated
  kIntraOrderNotHonored = 11,     // CTX011 Def 3.2 violated
  kStrongInputNotReflected = 12,  // CTX012 Def 3.3 violated
  kOutputNotPropagated = 13,      // CTX013 Def 4.7 violated

  // -- Structural / referential lint (src/staticcheck) -------------------
  kEmptySystem = 20,              // CTX020 no schedules or no roots
  kOrphanSchedule = 21,           // CTX021 schedule with no transactions
  kDanglingScheduleRef = 22,      // CTX022 event names an unknown schedule
  kDanglingNodeRef = 23,          // CTX023 event names an unknown node
  kSelfConflict = 24,             // CTX024 conflict pair (a, a)
  kCrossScheduleConflict = 25,    // CTX025 conflict across schedules
  kDuplicateConflict = 26,        // CTX026 conflict declared twice
  kCommuteContradictsConflict = 27,  // CTX027 pair both commuting+conflicting
  kSelfCommute = 28,              // CTX028 commuting pair (a, a)
  kForgottenOrderHazard = 29,     // CTX029 shared scheduler, cross-root conflicts

  // -- Workload-spec parameter lint --------------------------------------
  kProbabilityOutOfRange = 40,    // CTX040 probability outside [0, 1]
  kDegenerateWorkload = 41,       // CTX041 zero roots/depth/fanout
  kIncompatibleSpec = 42,         // CTX042 contradictory generator options

  // -- Container / parse level -------------------------------------------
  kMalformedSpec = 50,            // CTX050 unparsable trace / witness JSON
  kInternalError = 99,            // CTX099 the analyzer itself broke

  // -- Commutativity-spec lint (ADT semantic layer) ----------------------
  kSpecMalformed = 100,           // CTX100 unparsable commutativity spec
  kSpecDuplicateDecl = 101,       // CTX101 duplicate ADT / operation class
  kSpecUnknownClass = 102,        // CTX102 table entry names unknown class
  kSpecContradictoryEntry = 103,  // CTX103 pair both commutes and clashes
  kSpecIncompleteTable = 104,     // CTX104 same-ADT pair left unspecified
  kSpecAllCommute = 105,          // CTX105 table makes everything commute
  kSpecEmptyAdt = 106,            // CTX106 ADT declares no operation classes
  kSpecTagMismatch = 107,         // CTX107 tag references unknown class/node
  kSpecUndeclaredSemConflict = 108,  // CTX108 clashing same-instance pair
                                     // has no CON_S bit
};

/// "CTX001"-style stable rendering of `code`.
std::string DiagCodeName(DiagCode code);

/// One-line summary of what the code means (the DESIGN.md §9 table text).
const char* DiagCodeDescription(DiagCode code);

/// One structured finding of the validator / linter / analyzer.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  DiagCode code = DiagCode::kInternalError;

  /// Where in the spec: "schedule SB", "transaction T1", "events[12]" —
  /// empty when the finding is about the whole artifact.
  std::string location;

  /// 1-based line in the source artifact (trace file, witness JSON);
  /// 0 when the diagnostic has no textual source.
  uint32_t line = 0;

  /// Human-readable statement of the violation.
  std::string message;

  /// Suggested fix; empty when none applies.
  std::string fix;
};

/// "error[CTX009] schedule SB: conflicting ops x, y left unordered
///  (fix: add a weak_out edge)" — the text rendering of one diagnostic.
std::string FormatDiagnostic(const Diagnostic& diag);

/// Renders diagnostics as a JSON array (the `comptx_lint --json` format):
/// [{"severity": "error", "code": "CTX009", "location": ..., "line": ...,
///   "message": ..., "fix": ...}, ...].
std::string FormatDiagnosticsJson(const std::vector<Diagnostic>& diags);

/// True iff any diagnostic has severity kError.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// The diagnostics of severity kError, in order.
std::vector<Diagnostic> ErrorsOnly(const std::vector<Diagnostic>& diags);

}  // namespace comptx

#endif  // COMPTX_CORE_DIAGNOSTIC_H_
