#ifndef COMPTX_CORE_CALCULATION_H_
#define COMPTX_CORE_CALCULATION_H_

#include <optional>
#include <vector>

#include "core/front.h"
#include "core/indexing.h"
#include "graph/digraph.h"

namespace comptx {

/// Builds the non-reorderability constraint graph of a front over
/// `index` (one graph node per front node).  An edge a -> b means a must
/// stay before b in any equivalent execution of the front:
///   1. strong temporal orders (Def 16 step 1: "without switching operation
///      pairs that are strongly ordered"),
///   2. observed-order pairs that conflict under the generalized conflict
///      relation (commuting pairs may be reordered, Def 14),
///   3. schedule weak output orders over conflicting same-schedule pairs
///      (the serialization decisions of not-yet-reduced schedules).
graph::Digraph BuildCalculationConstraintGraph(const SystemContext& ctx,
                                               const Front& front,
                                               const NodeIndexMap& index);

/// Decides whether every transaction in `group_transactions` admits a
/// calculation in `front` (Def 14): an equivalent reordering of the front
/// in which each transaction's operations appear contiguously, respecting
/// both the constraint graph and each transaction's weak intra order.
///
/// Implemented as the standard grouping test: collapse each transaction's
/// operation set to one block in the constraint graph; a calculation for
/// all transactions exists iff the quotient graph and every intra-block
/// graph (constraints ∪ the transaction's ≺_t) are acyclic.  Returns a
/// witness cycle when the test fails (this is what fails at level 2 in the
/// paper's Figure 3), std::nullopt when all calculations exist.
std::optional<CycleWitness> FindCalculationViolation(
    const SystemContext& ctx, const Front& front,
    const std::vector<NodeId>& group_transactions);

}  // namespace comptx

#endif  // COMPTX_CORE_CALCULATION_H_
