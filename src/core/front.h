#ifndef COMPTX_CORE_FRONT_H_
#define COMPTX_CORE_FRONT_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/composite_system.h"
#include "core/invocation_graph.h"
#include "core/relation.h"
#include "util/status_or.h"

namespace comptx {

/// A computational front (Def 12): a maximal set of independent nodes of
/// the forest, together with the orders known about them at this
/// abstraction level.
struct Front {
  /// The front's level: 0 is the all-leaves front (Def 15); level i is the
  /// result of reducing all level-i schedules (Def 16).
  uint32_t level = 0;

  /// The independent node set O, in deterministic (ascending id) order.
  std::vector<NodeId> nodes;

  /// The observed order <_o over `nodes` (Def 10).  Stored as generating
  /// pairs; it is implicitly transitively closed (closure does not change
  /// any acyclicity judgement, so it is not materialized).
  Relation observed;

  /// The generalized conflict relation CON over `nodes` (Def 11):
  /// same-schedule pairs inherit the schedule's CON_S; cross-schedule
  /// pairs conflict iff they are observed-order related.
  SymmetricPairSet conflicts;

  /// Weak input orders between front nodes: schedule input orders →_S over
  /// co-scheduled transaction pairs plus intra-transaction weak orders ≺_P
  /// over sibling pairs, both restricted to pairs directly in the front.
  Relation weak_input;

  /// Strong temporal orders between front nodes: every strong constraint
  /// (⇒_S over co-scheduled transactions, ≪_P over siblings) pulled down
  /// to the front members of the constrained subtrees.  These pairs can
  /// never be reordered (Def 16 step 1).
  Relation strong_input;

  /// True iff `id` is a member of this front.
  bool ContainsNode(NodeId id) const;
};

/// A directed cycle violating an acyclicity requirement, with the nodes
/// named so diagnostics are actionable (cf. the paper's Fig 3 discussion).
struct CycleWitness {
  std::vector<NodeId> nodes;
  std::string description;
};

/// Precomputed, transitively closed views of a validated composite system,
/// shared by the reduction machinery.  Building it validates nothing; call
/// CompositeSystem::Validate() first (the reduction driver does).
struct SystemContext {
  explicit SystemContext(const CompositeSystem& cs);

  const CompositeSystem& cs;
  SubtreeIndex subtree;
  InvocationGraphResult ig;

  /// Per schedule: output orders closed within O_S.
  std::vector<Relation> closed_weak_output;
  std::vector<Relation> closed_strong_output;
  /// Per schedule: input orders closed within T_S.
  std::vector<Relation> closed_weak_input;
  std::vector<Relation> closed_strong_input;
  /// Per node (transactions only): intra orders closed within the children.
  std::vector<Relation> closed_weak_intra;
  std::vector<Relation> closed_strong_intra;

  /// Cached CompositeSystem::HostScheduleOf per node (invalid for roots);
  /// the conflict machinery probes this millions of times per reduction.
  std::vector<ScheduleId> host_schedule;
};

/// Recomputes a front's `weak_input` and `strong_input` from the system
/// context (see the Front field comments for the exact rule).
void ComputeFrontInputOrders(const SystemContext& ctx, Front& front);

/// Checks conflict consistency of a front (Def 13): the union of the
/// observed order and the input orders must be acyclic.  Returns a witness
/// cycle if it is not.
std::optional<CycleWitness> FindConflictConsistencyViolation(
    const Front& front);

/// Convenience wrapper around FindConflictConsistencyViolation.
bool IsConflictConsistent(const Front& front);

}  // namespace comptx

#endif  // COMPTX_CORE_FRONT_H_
