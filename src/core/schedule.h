#ifndef COMPTX_CORE_SCHEDULE_H_
#define COMPTX_CORE_SCHEDULE_H_

#include <string>
#include <vector>

#include "core/ids.h"
#include "core/relation.h"

namespace comptx {

/// One component scheduler's schedule: the six-tuple of Def 3,
/// S = (T, CON_S, weak/strong input orders, weak/strong output orders).
///
/// * `transactions` is T_S — the transactions this scheduler executed.
/// * The operation set O_S is derived: the union of the children of the
///   transactions in T_S (query via CompositeSystem::OperationsOf).
/// * `conflicts` is CON_S, a symmetric predicate over O_S.
/// * `weak_input` / `strong_input` are partial orders over T_S describing
///   how callers asked the transactions to be ordered (strong ⊆ weak).
/// * `weak_output` / `strong_output` are partial orders over O_S describing
///   the net-effect order the scheduler produced (Def 3 conditions 1-4;
///   checked by CompositeSystem::Validate, not by this struct).
///
/// Passive data; CompositeSystem's mutators maintain the cross-references.
struct Schedule {
  ScheduleId id;
  std::string name;

  std::vector<NodeId> transactions;

  SymmetricPairSet conflicts;

  Relation weak_input;
  Relation strong_input;

  Relation weak_output;
  Relation strong_output;
};

}  // namespace comptx

#endif  // COMPTX_CORE_SCHEDULE_H_
