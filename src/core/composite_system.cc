#include "core/composite_system.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace comptx {

CompositeSystem CompositeSystem::Clone() const {
  CompositeSystem copy;
  copy.nodes_ = nodes_;
  copy.schedules_ = schedules_;
  if (spec_) copy.spec_ = std::make_unique<CommutativitySpec>(*spec_);
  return copy;
}

ScheduleId CompositeSystem::AddSchedule(std::string name) {
  ScheduleId id(static_cast<uint32_t>(schedules_.size()));
  Schedule s;
  s.id = id;
  s.name = std::move(name);
  schedules_.push_back(std::move(s));
  return id;
}

StatusOr<NodeId> CompositeSystem::AddRootTransaction(ScheduleId scheduler,
                                                     std::string name) {
  if (!HasSchedule(scheduler)) {
    return Status::InvalidArgument(
        StrCat("unknown schedule ", scheduler, " for root ", name));
  }
  NodeId id(static_cast<uint32_t>(nodes_.size()));
  Node n;
  n.id = id;
  n.name = std::move(name);
  n.kind = NodeKind::kTransaction;
  n.owner_schedule = scheduler;
  nodes_.push_back(std::move(n));
  schedules_[scheduler.index()].transactions.push_back(id);
  return id;
}

StatusOr<NodeId> CompositeSystem::AddSubtransaction(NodeId parent,
                                                    ScheduleId scheduler,
                                                    std::string name) {
  if (!HasNode(parent) || !node(parent).IsTransaction()) {
    return Status::InvalidArgument(
        StrCat("parent ", parent, " is not a transaction"));
  }
  if (!HasSchedule(scheduler)) {
    return Status::InvalidArgument(
        StrCat("unknown schedule ", scheduler, " for subtransaction ", name));
  }
  if (node(parent).owner_schedule == scheduler) {
    // A transaction's operation scheduled by the transaction's own
    // scheduler would make the schedule invoke itself (Def 4.6 forbids all
    // recursion; direct self-invocation is rejected eagerly, indirect
    // recursion is caught by Validate()).
    return Status::InvalidArgument(
        StrCat("subtransaction ", name, " would make ", scheduler,
               " invoke itself"));
  }
  NodeId id(static_cast<uint32_t>(nodes_.size()));
  Node n;
  n.id = id;
  n.name = std::move(name);
  n.kind = NodeKind::kTransaction;
  n.parent = parent;
  n.owner_schedule = scheduler;
  nodes_.push_back(std::move(n));
  nodes_[parent.index()].children.push_back(id);
  schedules_[scheduler.index()].transactions.push_back(id);
  return id;
}

StatusOr<NodeId> CompositeSystem::AddLeaf(NodeId parent, std::string name) {
  if (!HasNode(parent) || !node(parent).IsTransaction()) {
    return Status::InvalidArgument(
        StrCat("parent ", parent, " is not a transaction"));
  }
  NodeId id(static_cast<uint32_t>(nodes_.size()));
  Node n;
  n.id = id;
  n.name = std::move(name);
  n.kind = NodeKind::kLeaf;
  n.parent = parent;
  nodes_.push_back(std::move(n));
  nodes_[parent.index()].children.push_back(id);
  return id;
}

Status CompositeSystem::CheckOperationPair(NodeId a, NodeId b,
                                           ScheduleId* host) const {
  if (!HasNode(a) || !HasNode(b)) {
    return Status::InvalidArgument(StrCat("unknown node in pair (", a, ", ",
                                          b, ")"));
  }
  ScheduleId ha = HostScheduleOf(a);
  ScheduleId hb = HostScheduleOf(b);
  if (!ha.valid() || ha != hb) {
    return Status::InvalidArgument(
        StrCat("nodes ", a, " and ", b,
               " are not operations of one common schedule"));
  }
  if (a == b) {
    return Status::InvalidArgument(StrCat("pair (", a, ", ", b,
                                          ") is reflexive"));
  }
  *host = ha;
  return Status::OK();
}

Status CompositeSystem::AddConflict(NodeId a, NodeId b) {
  ScheduleId host;
  COMPTX_RETURN_IF_ERROR(CheckOperationPair(a, b, &host));
  schedules_[host.index()].conflicts.Add(a, b);
  return Status::OK();
}

Status CompositeSystem::AddWeakOutput(NodeId a, NodeId b) {
  ScheduleId host;
  COMPTX_RETURN_IF_ERROR(CheckOperationPair(a, b, &host));
  schedules_[host.index()].weak_output.Add(a, b);
  return Status::OK();
}

Status CompositeSystem::AddStrongOutput(NodeId a, NodeId b) {
  ScheduleId host;
  COMPTX_RETURN_IF_ERROR(CheckOperationPair(a, b, &host));
  schedules_[host.index()].strong_output.Add(a, b);
  schedules_[host.index()].weak_output.Add(a, b);
  return Status::OK();
}

Status CompositeSystem::AddWeakInput(ScheduleId scheduler, NodeId t1,
                                     NodeId t2) {
  if (!HasSchedule(scheduler)) {
    return Status::InvalidArgument(StrCat("unknown schedule ", scheduler));
  }
  if (!HasNode(t1) || !HasNode(t2) || t1 == t2 ||
      node(t1).owner_schedule != scheduler ||
      node(t2).owner_schedule != scheduler) {
    return Status::InvalidArgument(
        StrCat("(", t1, ", ", t2, ") is not a pair of distinct transactions",
               " of ", scheduler));
  }
  schedules_[scheduler.index()].weak_input.Add(t1, t2);
  return Status::OK();
}

Status CompositeSystem::AddStrongInput(ScheduleId scheduler, NodeId t1,
                                       NodeId t2) {
  COMPTX_RETURN_IF_ERROR(AddWeakInput(scheduler, t1, t2));
  schedules_[scheduler.index()].strong_input.Add(t1, t2);
  return Status::OK();
}

Status CompositeSystem::AddIntraWeak(NodeId txn, NodeId a, NodeId b) {
  if (!HasNode(txn) || !node(txn).IsTransaction()) {
    return Status::InvalidArgument(StrCat(txn, " is not a transaction"));
  }
  if (!HasNode(a) || !HasNode(b) || a == b || node(a).parent != txn ||
      node(b).parent != txn) {
    return Status::InvalidArgument(
        StrCat("(", a, ", ", b, ") is not a pair of distinct operations of ",
               txn));
  }
  nodes_[txn.index()].weak_intra.Add(a, b);
  return Status::OK();
}

Status CompositeSystem::AddIntraStrong(NodeId txn, NodeId a, NodeId b) {
  COMPTX_RETURN_IF_ERROR(AddIntraWeak(txn, a, b));
  nodes_[txn.index()].strong_intra.Add(a, b);
  return Status::OK();
}

StatusOr<uint32_t> CompositeSystem::DeclareAdt(std::string name) {
  if (!spec_) spec_ = std::make_unique<CommutativitySpec>();
  return spec_->DeclareAdt(std::move(name));
}

StatusOr<uint32_t> CompositeSystem::DeclareAdtOp(uint32_t adt,
                                                 std::string name) {
  if (!spec_) spec_ = std::make_unique<CommutativitySpec>();
  return spec_->DeclareOpClass(adt, std::move(name));
}

void CompositeSystem::AttachSpec(CommutativitySpec spec) {
  spec_ = std::make_unique<CommutativitySpec>(std::move(spec));
}

Status CompositeSystem::DeclareCommute(uint32_t c1, uint32_t c2) {
  if (!spec_) spec_ = std::make_unique<CommutativitySpec>();
  return spec_->SetEntry(c1, c2, CommuteEntry::kCommutes);
}

Status CompositeSystem::DeclareClash(uint32_t c1, uint32_t c2) {
  if (!spec_) spec_ = std::make_unique<CommutativitySpec>();
  return spec_->SetEntry(c1, c2, CommuteEntry::kConflicts);
}

Status CompositeSystem::TagOperation(NodeId id, uint32_t op_class,
                                     uint32_t instance) {
  if (!HasNode(id)) {
    return Status::InvalidArgument(StrCat("unknown node ", id));
  }
  if (!spec_ || !spec_->HasClass(op_class)) {
    return Status::InvalidArgument(
        StrCat("tag on ", id, " references undeclared operation class ",
               op_class));
  }
  if (instance == kInvalidIndex) {
    return Status::InvalidArgument(
        StrCat("tag on ", id, " uses the reserved instance index"));
  }
  nodes_[id.index()].sem_class = op_class;
  nodes_[id.index()].sem_instance = instance;
  return Status::OK();
}

bool CompositeSystem::SemanticallyCommutes(NodeId a, NodeId b) const {
  if (!spec_) return false;
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.sem_class == kInvalidIndex || nb.sem_class == kInvalidIndex) {
    return false;
  }
  // Distinct ADT instances (or distinct ADTs) never interfere.
  if (na.sem_instance != nb.sem_instance) return true;
  return spec_->Commutes(na.sem_class, nb.sem_class);
}

const Node& CompositeSystem::node(NodeId id) const {
  COMPTX_CHECK(HasNode(id)) << "node id out of range: " << id;
  return nodes_[id.index()];
}

const Schedule& CompositeSystem::schedule(ScheduleId id) const {
  COMPTX_CHECK(HasSchedule(id)) << "schedule id out of range: " << id;
  return schedules_[id.index()];
}

Node& CompositeSystem::mutable_node(NodeId id) {
  COMPTX_CHECK(HasNode(id)) << "node id out of range: " << id;
  return nodes_[id.index()];
}

Schedule& CompositeSystem::mutable_schedule(ScheduleId id) {
  COMPTX_CHECK(HasSchedule(id)) << "schedule id out of range: " << id;
  return schedules_[id.index()];
}

ScheduleId CompositeSystem::HostScheduleOf(NodeId id) const {
  const Node& n = node(id);
  if (!n.parent.valid()) return ScheduleId();
  return node(n.parent).owner_schedule;
}

std::vector<NodeId> CompositeSystem::Roots() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.IsRoot()) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> CompositeSystem::Leaves() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.IsLeaf()) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> CompositeSystem::OperationsOf(ScheduleId scheduler) const {
  std::vector<NodeId> out;
  for (NodeId txn : schedule(scheduler).transactions) {
    const Node& t = node(txn);
    out.insert(out.end(), t.children.begin(), t.children.end());
  }
  return out;
}

std::vector<NodeId> CompositeSystem::Descendants(NodeId txn) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack(node(txn).children.rbegin(),
                            node(txn).children.rend());
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const Node& n = node(cur);
    stack.insert(stack.end(), n.children.rbegin(), n.children.rend());
  }
  return out;
}

NodeId CompositeSystem::RootOf(NodeId id) const {
  NodeId cur = id;
  while (node(cur).parent.valid()) cur = node(cur).parent;
  return cur;
}

std::vector<ScheduleId> CompositeSystem::InvokersOf(ScheduleId callee) const {
  std::vector<ScheduleId> out;
  for (NodeId txn : schedule(callee).transactions) {
    ScheduleId host = HostScheduleOf(txn);
    if (!host.valid()) continue;  // root transaction: no invoker
    bool seen = false;
    for (ScheduleId s : out) seen = seen || s == host;
    if (!seen) out.push_back(host);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool CompositeSystem::IsSharedSchedule(ScheduleId callee) const {
  return InvokersOf(callee).size() > 1;
}

size_t CompositeSystem::RootsServed(ScheduleId s) const {
  std::vector<NodeId> roots;
  for (NodeId txn : schedule(s).transactions) {
    NodeId root = RootOf(txn);
    bool seen = false;
    for (NodeId r : roots) seen = seen || r == root;
    if (!seen) roots.push_back(root);
  }
  return roots.size();
}

std::vector<std::pair<NodeId, NodeId>> CompositeSystem::CrossRootConflicts(
    ScheduleId s) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  schedule(s).conflicts.ForEach([&](NodeId a, NodeId b) {
    if (RootOf(a) != RootOf(b)) out.emplace_back(a, b);
  });
  return out;
}

SubtreeIndex::SubtreeIndex(const CompositeSystem& cs)
    : enter_(cs.NodeCount(), 0), exit_(cs.NodeCount(), 0) {
  uint32_t clock = 0;
  // Iterative preorder/postorder numbering per root.
  for (NodeId root : cs.Roots()) {
    // Frame: (node, entered?).
    std::vector<std::pair<NodeId, bool>> stack;
    stack.emplace_back(root, false);
    while (!stack.empty()) {
      auto [cur, entered] = stack.back();
      stack.pop_back();
      if (entered) {
        exit_[cur.index()] = clock++;
        continue;
      }
      enter_[cur.index()] = clock++;
      stack.emplace_back(cur, true);
      const Node& n = cs.node(cur);
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        stack.emplace_back(*it, false);
      }
    }
  }
}

}  // namespace comptx
