#ifndef COMPTX_CORE_INVOCATION_GRAPH_H_
#define COMPTX_CORE_INVOCATION_GRAPH_H_

#include <vector>

#include "core/composite_system.h"
#include "graph/digraph.h"
#include "util/status_or.h"

namespace comptx {

/// The invocation graph of a composite system (Def 8) plus the derived
/// schedule levels (Def 9).
struct InvocationGraphResult {
  /// Node i of the digraph is schedule i; edge S_i -> S_j iff S_i invokes
  /// S_j (some operation of S_i is a transaction of S_j, Def 7).
  graph::Digraph graph;

  /// Level of each schedule: 1 + length of the longest path starting at it
  /// (Def 9).  Leaf schedules have level 1.
  std::vector<uint32_t> schedule_level;

  /// The order N of the composite system: the maximum schedule level
  /// (0 for an empty system).
  uint32_t order = 0;

  /// Level of a transaction/operation: the level of the schedule owning it
  /// (transactions) — leaves have no level of their own.
  uint32_t LevelOfTransaction(const CompositeSystem& cs, NodeId txn) const;
};

/// Builds the invocation graph; fails with FailedPrecondition if the system
/// contains (indirect) recursion, i.e., the graph is cyclic, which Def 4.6
/// forbids.
StatusOr<InvocationGraphResult> BuildInvocationGraph(const CompositeSystem& cs);

}  // namespace comptx

#endif  // COMPTX_CORE_INVOCATION_GRAPH_H_
