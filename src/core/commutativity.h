#ifndef COMPTX_CORE_COMMUTATIVITY_H_
#define COMPTX_CORE_COMMUTATIVITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "util/status.h"
#include "util/status_or.h"

namespace comptx {

/// One cell of a Weihl-style commutativity table.  The table is total
/// only by convention (lint flags undeclared pairs); an unspecified pair
/// is treated as conflicting, so forgetting a table entry can only make
/// verdicts more conservative, never unsound.
enum class CommuteEntry : uint8_t {
  kUnspecified,
  kCommutes,
  kConflicts,
};

const char* CommuteEntryToString(CommuteEntry entry);

/// A named operation class of one ADT (e.g. counter.inc).  Classes are
/// globally indexed by declaration order across all ADTs of a spec, so a
/// class index is unambiguous without naming its ADT.
struct AdtOpClass {
  std::string name;
  uint32_t adt = kInvalidIndex;  // owning ADT, by declaration order
};

/// A named abstract data type with its operation classes.
struct AdtDecl {
  std::string name;
  std::vector<uint32_t> op_classes;  // global class indices, declaration order
};

/// A semantic conflict specification: ADTs, operation classes, and a
/// symmetric commutes/conflicts table over class pairs (Weihl-style
/// forward commutativity).  Instances are passive value types owned by a
/// CompositeSystem; the system's EffectiveConflict() consults the table
/// to *erase* declared conflict bits between commuting operations of the
/// same ADT instance.  The spec can only mask CON_S, never extend it, so
/// Def 3.1 validation on the raw bits stays meaningful.
class CommutativitySpec {
 public:
  /// Declares an ADT; duplicate names are rejected.
  StatusOr<uint32_t> DeclareAdt(std::string name);

  /// Declares an operation class of `adt`; duplicate names within one ADT
  /// are rejected.  Returns the global class index.
  StatusOr<uint32_t> DeclareOpClass(uint32_t adt, std::string name);

  /// Sets the symmetric table entry for {c1, c2}.  Re-declaring the same
  /// value is idempotent; contradicting an earlier entry is an error
  /// (lint reports it as CTX103).
  Status SetEntry(uint32_t c1, uint32_t c2, CommuteEntry entry);

  /// The table entry for {c1, c2}; kUnspecified when never declared.
  CommuteEntry Lookup(uint32_t c1, uint32_t c2) const;

  /// True iff the pair is explicitly declared commuting.
  bool Commutes(uint32_t c1, uint32_t c2) const {
    return Lookup(c1, c2) == CommuteEntry::kCommutes;
  }

  size_t AdtCount() const { return adts_.size(); }
  size_t ClassCount() const { return classes_.size(); }
  bool HasAdt(uint32_t adt) const { return adt < adts_.size(); }
  bool HasClass(uint32_t cls) const { return cls < classes_.size(); }
  const AdtDecl& adt(uint32_t index) const { return adts_[index]; }
  const AdtOpClass& op_class(uint32_t index) const { return classes_[index]; }

  /// Index of the ADT named `name`, or kInvalidIndex.
  uint32_t FindAdt(const std::string& name) const;

  /// Global index of `adt`'s class named `name`, or kInvalidIndex.
  uint32_t FindClass(uint32_t adt, const std::string& name) const;

  /// "adt.class" label for diagnostics and explanation trails.
  std::string ClassLabel(uint32_t cls) const;

  /// Number of explicitly declared table entries with the given value.
  size_t CountEntries(CommuteEntry entry) const;

  /// Visits every declared table entry as (c1 <= c2, entry).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [key, entry] : table_) {
      fn(static_cast<uint32_t>(key >> 32),
         static_cast<uint32_t>(key & 0xffffffffu), entry);
    }
  }

 private:
  static uint64_t PackPair(uint32_t c1, uint32_t c2);

  std::vector<AdtDecl> adts_;
  std::vector<AdtOpClass> classes_;
  std::unordered_map<uint64_t, CommuteEntry> table_;
};

/// The library's built-in Weihl tables, usable as generator defaults and
/// as the reference the scenario pack is written against.
enum class BuiltinAdt : uint8_t {
  kCounter,  // inc/dec/read: blind updates commute, reads clash with updates
  kSet,      // add/remove/contains on one element
  kQueue,    // enq/deq: FIFO order is observable, nothing commutes
  kEscrow,   // deposit/withdraw/read: escrow updates commute (O'Neil)
};

/// Appends the built-in table for `adt` to `spec` and returns the new
/// ADT's index.  Fails only if the ADT name is already declared.
StatusOr<uint32_t> DeclareBuiltinAdt(CommutativitySpec& spec, BuiltinAdt adt);

}  // namespace comptx

#endif  // COMPTX_CORE_COMMUTATIVITY_H_
