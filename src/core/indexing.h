#ifndef COMPTX_CORE_INDEXING_H_
#define COMPTX_CORE_INDEXING_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "core/ids.h"
#include "core/relation.h"
#include "graph/digraph.h"
#include "graph/transitive_closure.h"
#include "util/bitrow.h"
#include "util/logging.h"

namespace comptx {

/// Bidirectional mapping between a set of NodeIds and dense local indices
/// [0, size).  All graph algorithms work on dense indices; this is the
/// bridge from the model's ids.
///
/// The id -> local direction is a direct-mapped array windowed to
/// [min id, max id]: node ids are allocated densely by the system, so the
/// window never exceeds the node count, and every probe is one bounds
/// check plus one load — index maps are built once per front or closure
/// domain and then probed millions of times, where this beats both a hash
/// table (hashing, rehashing) and a sorted array (log n probes).
class NodeIndexMap {
 public:
  explicit NodeIndexMap(const std::vector<NodeId>& nodes) : globals_(nodes) {
    if (nodes.empty()) return;
    uint32_t lo = UINT32_MAX;
    uint32_t hi = 0;
    for (NodeId id : nodes) {
      lo = std::min(lo, id.index());
      hi = std::max(hi, id.index());
    }
    base_ = lo;
    local_.assign(size_t(hi) - lo + 1, kMissing);
    for (size_t i = 0; i < nodes.size(); ++i) {
      uint32_t& slot = local_[nodes[i].index() - base_];
      COMPTX_CHECK(slot == kMissing)
          << "duplicate node in index map: " << nodes[i];
      slot = static_cast<uint32_t>(i);
    }
  }

  size_t size() const { return globals_.size(); }

  bool Has(NodeId id) const { return TryLocalOf(id).has_value(); }

  uint32_t LocalOf(NodeId id) const {
    std::optional<uint32_t> local = TryLocalOf(id);
    COMPTX_CHECK(local.has_value()) << "node not in index map: " << id;
    // The CHECK above aborts when disengaged; opaque to clang-tidy.
    return *local;  // NOLINT(bugprone-unchecked-optional-access)
  }

  std::optional<uint32_t> TryLocalOf(NodeId id) const {
    const uint32_t x = id.index();
    if (x < base_ || x - base_ >= local_.size()) return std::nullopt;
    const uint32_t local = local_[x - base_];
    if (local == kMissing) return std::nullopt;
    return local;
  }

  NodeId GlobalOf(uint32_t local) const {
    COMPTX_CHECK_LT(local, globals_.size());
    return globals_[local];
  }

  const std::vector<NodeId>& nodes() const { return globals_; }

 private:
  static constexpr uint32_t kMissing = UINT32_MAX;

  std::vector<NodeId> globals_;
  uint32_t base_ = 0;
  std::vector<uint32_t> local_;  // windowed id -> local, kMissing = absent
};

/// O(1) membership over a fixed set of NodeIds — the hot-loop companion of
/// a node list (Front::ContainsNode does a binary search per probe; stages
/// that probe per relation pair build one of these first).
class NodeBitSet {
 public:
  NodeBitSet() = default;
  explicit NodeBitSet(const std::vector<NodeId>& nodes) {
    for (NodeId id : nodes) bits_.TestAndSet(id.index());
  }

  bool Contains(NodeId id) const { return bits_.Test(id.index()); }

 private:
  BitRow bits_;
};

/// Adds `rel`'s pairs to `g` (over `index`'s local ids).  Pairs with an
/// endpoint outside the index are silently dropped (this is the common
/// "restrict to a front" operation).  The source lookup is hoisted per row.
inline void AddRelationEdges(const Relation& rel, const NodeIndexMap& index,
                             graph::Digraph& g) {
  const size_t rows = rel.SourceCount();
  for (size_t i = 0; i < rows; ++i) {
    auto la = index.TryLocalOf(rel.SourceAt(i));
    if (!la) continue;
    for (uint32_t to : rel.SuccessorsAt(i)) {
      if (auto lb = index.TryLocalOf(NodeId(to))) g.AddEdge(*la, *lb);
    }
  }
}

/// Converts `rel` into a digraph over `index`'s local ids.
inline graph::Digraph RelationToDigraph(const Relation& rel,
                                        const NodeIndexMap& index) {
  graph::Digraph g(index.size());
  AddRelationEdges(rel, index, g);
  return g;
}

/// The transitive closure of `rel` restricted to `domain`, returned as a
/// Relation over the original NodeIds.  Pairs leaving the domain are
/// dropped before closing.
inline Relation ClosureWithin(const Relation& rel,
                              const std::vector<NodeId>& domain) {
  if (rel.empty() || domain.empty()) return Relation();
  // Sorting the domain makes local order coincide with id order, so the
  // closure rows enumerate in ascending global id and every insert below
  // hits the relation's append fast path (no binary search, no shifting).
  std::vector<NodeId> sorted = domain;
  std::sort(sorted.begin(), sorted.end());
  NodeIndexMap index(sorted);
  graph::Digraph g = RelationToDigraph(rel, index);
  graph::TransitiveClosure closure(g);
  Relation out;
  std::vector<uint32_t> scratch;
  for (uint32_t a = 0; a < index.size(); ++a) {
    scratch.clear();
    closure.ForEachReachable(
        a, [&](uint32_t b) { scratch.push_back(index.GlobalOf(b).index()); });
    out.AddAll(index.GlobalOf(a), scratch);
  }
  return out;
}

}  // namespace comptx

#endif  // COMPTX_CORE_INDEXING_H_
