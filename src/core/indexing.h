#ifndef COMPTX_CORE_INDEXING_H_
#define COMPTX_CORE_INDEXING_H_

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/relation.h"
#include "graph/digraph.h"
#include "graph/transitive_closure.h"
#include "util/logging.h"

namespace comptx {

/// Bidirectional mapping between a set of NodeIds and dense local indices
/// [0, size).  All graph algorithms work on dense indices; this is the
/// bridge from the model's ids.
class NodeIndexMap {
 public:
  explicit NodeIndexMap(const std::vector<NodeId>& nodes) : globals_(nodes) {
    locals_.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      bool inserted =
          locals_.emplace(nodes[i], static_cast<uint32_t>(i)).second;
      COMPTX_CHECK(inserted) << "duplicate node in index map: " << nodes[i];
    }
  }

  size_t size() const { return globals_.size(); }

  bool Has(NodeId id) const { return locals_.count(id) > 0; }

  uint32_t LocalOf(NodeId id) const {
    auto it = locals_.find(id);
    COMPTX_CHECK(it != locals_.end()) << "node not in index map: " << id;
    return it->second;
  }

  std::optional<uint32_t> TryLocalOf(NodeId id) const {
    auto it = locals_.find(id);
    if (it == locals_.end()) return std::nullopt;
    return it->second;
  }

  NodeId GlobalOf(uint32_t local) const {
    COMPTX_CHECK_LT(local, globals_.size());
    return globals_[local];
  }

  const std::vector<NodeId>& nodes() const { return globals_; }

 private:
  std::vector<NodeId> globals_;
  std::unordered_map<NodeId, uint32_t> locals_;
};

/// Converts `rel` into a digraph over `index`'s local ids.  Pairs with an
/// endpoint outside the index are silently dropped (this is the common
/// "restrict to a front" operation).
inline graph::Digraph RelationToDigraph(const Relation& rel,
                                        const NodeIndexMap& index) {
  graph::Digraph g(index.size());
  rel.ForEach([&](NodeId a, NodeId b) {
    auto la = index.TryLocalOf(a);
    auto lb = index.TryLocalOf(b);
    if (la && lb) g.AddEdge(*la, *lb);
  });
  return g;
}

/// The transitive closure of `rel` restricted to `domain`, returned as a
/// Relation over the original NodeIds.  Pairs leaving the domain are
/// dropped before closing.
inline Relation ClosureWithin(const Relation& rel,
                              const std::vector<NodeId>& domain) {
  NodeIndexMap index(domain);
  graph::Digraph g = RelationToDigraph(rel, index);
  graph::TransitiveClosure closure(g);
  Relation out;
  for (uint32_t a = 0; a < index.size(); ++a) {
    for (uint32_t b = 0; b < index.size(); ++b) {
      if (closure.Reaches(a, b)) out.Add(index.GlobalOf(a), index.GlobalOf(b));
    }
  }
  return out;
}

}  // namespace comptx

#endif  // COMPTX_CORE_INDEXING_H_
