#ifndef COMPTX_CORE_OBSERVED_ORDER_H_
#define COMPTX_CORE_OBSERVED_ORDER_H_

#include "core/front.h"

namespace comptx {

/// Builds the unique level 0 front (Def 15): all leaf operations, with the
/// observed order seeded by the leaf atomicity rule (Def 10 point 1), the
/// generalized conflicts restricted to leaf pairs (Def 11), and the input
/// orders computed per ComputeFrontInputOrders.
Front MakeLevelZeroFront(const SystemContext& ctx);

/// Applies the leaf atomicity rule (Def 10 point 1) to `front`: for every
/// schedule, every closed weak-output pair whose endpoints are both front
/// members and at least one of which is a leaf becomes an observed-order
/// pair.  Used at level 0 and again whenever new transaction nodes join a
/// front next to leaf operations of the same schedule.
void ApplyLeafRuleObserved(const SystemContext& ctx, Front& front);

/// Recomputes the generalized conflict relation of `front` (Def 11): pairs
/// of operations of one common schedule conflict iff that schedule's CON_S
/// says so; all other pairs (different schedules, or a root involved)
/// conflict iff they are observed-order related.  Must run after
/// `front.observed` is final for the level.
void ComputeGeneralizedConflicts(const SystemContext& ctx, Front& front);

/// True under the generalized conflict relation of `front` (Def 11).
bool GeneralizedConflict(const SystemContext& ctx, const Front& front,
                         NodeId a, NodeId b);

}  // namespace comptx

#endif  // COMPTX_CORE_OBSERVED_ORDER_H_
