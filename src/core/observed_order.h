#ifndef COMPTX_CORE_OBSERVED_ORDER_H_
#define COMPTX_CORE_OBSERVED_ORDER_H_

#include <optional>
#include <utility>

#include "core/front.h"

namespace comptx {

/// Builds the unique level 0 front (Def 15): all leaf operations, with the
/// observed order seeded by the leaf atomicity rule (Def 10 point 1), the
/// generalized conflicts restricted to leaf pairs (Def 11), and the input
/// orders computed per ComputeFrontInputOrders.
Front MakeLevelZeroFront(const SystemContext& ctx);

/// Applies the leaf atomicity rule (Def 10 point 1) to `front`: for every
/// schedule, every closed weak-output pair whose endpoints are both front
/// members and at least one of which is a leaf becomes an observed-order
/// pair.  Used at level 0 and again whenever new transaction nodes join a
/// front next to leaf operations of the same schedule.
void ApplyLeafRuleObserved(const SystemContext& ctx, Front& front);

/// Recomputes the generalized conflict relation of `front` (Def 11): pairs
/// of operations of one common schedule conflict iff that schedule's CON_S
/// says so; all other pairs (different schedules, or a root involved)
/// conflict iff they are observed-order related.  Must run after
/// `front.observed` is final for the level.
void ComputeGeneralizedConflicts(const SystemContext& ctx, Front& front);

/// True under the generalized conflict relation of `front` (Def 11).
bool GeneralizedConflict(const SystemContext& ctx, const Front& front,
                         NodeId a, NodeId b);

/// The image of one observed-order pair (a, b) under a reduction step
/// (Def 10 points 2-4), given the pair's representatives in the next front
/// (`ra`/`rb` are the grouping transaction when the endpoint is replaced
/// this step, the endpoint itself otherwise).  Returns nullopt when the
/// pair disappears: both endpoints collapse into one transaction, or the
/// endpoints are operations of one common schedule that declares them
/// non-conflicting ("forgetting", Def 10 rule 3 / Fig 4) while
/// `forgetting` is enabled.
///
/// This is the patching hook shared by the batch reducer and the online
/// certifier: both must agree pair-for-pair on what survives a pull-up.
std::optional<std::pair<NodeId, NodeId>> PullUpObservedPair(
    const CompositeSystem& cs, NodeId a, NodeId b, NodeId ra, NodeId rb,
    bool forgetting);

}  // namespace comptx

#endif  // COMPTX_CORE_OBSERVED_ORDER_H_
