#include "core/relation.h"

#include <algorithm>

#include "util/logging.h"

namespace comptx {

namespace relation_internal {

bool Row::Insert(uint32_t id) {
  if (!bits.TestAndSet(id)) return false;
  // Common case: pairs arrive in ascending target order (closure
  // materialization, pull-ups over sorted fronts), so appending wins.
  if (elems.empty() || id > elems.back()) {
    elems.push_back(id);
  } else {
    elems.insert(std::lower_bound(elems.begin(), elems.end(), id), id);
  }
  return true;
}

Row& RowStore::RowOf(uint32_t source) {
  // Grow the position window to cover `source`, keeping existing slots.
  if (sources_.empty()) {
    base_ = source;
    pos_.assign(1, 0);
  } else if (source < base_) {
    pos_.insert(pos_.begin(), base_ - source, 0);
    base_ = source;
  } else if (source - base_ >= pos_.size()) {
    pos_.resize(source - base_ + 1, 0);
  }
  uint32_t& slot = pos_[source - base_];
  if (slot != 0) return rows_[slot - 1];

  if (sources_.empty() || source > sources_.back()) {
    sources_.push_back(source);
    rows_.emplace_back();
    slot = static_cast<uint32_t>(rows_.size());
    return rows_.back();
  }
  // Out-of-order new source (rare): insert sorted and re-aim the shifted
  // positions behind it.
  auto it = std::lower_bound(sources_.begin(), sources_.end(), source);
  const size_t p = static_cast<size_t>(it - sources_.begin());
  sources_.insert(it, source);
  rows_.insert(rows_.begin() + p, Row());
  for (size_t i = p; i < sources_.size(); ++i) {
    pos_[sources_[i] - base_] = static_cast<uint32_t>(i) + 1;
  }
  return rows_[p];
}

bool RowStore::operator==(const RowStore& other) const {
  if (sources_ != other.sources_) return false;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].elems != other.rows_[i].elems) return false;
  }
  return true;
}

}  // namespace relation_internal

bool Relation::Add(NodeId a, NodeId b) {
  COMPTX_CHECK(a.valid());
  COMPTX_CHECK(b.valid());
  const bool inserted = store_.RowOf(a.index()).Insert(b.index());
  if (inserted) ++pair_count_;
  return inserted;
}

void Relation::AddAll(NodeId src, const std::vector<uint32_t>& targets) {
  if (targets.empty()) return;
  COMPTX_CHECK(src.valid());
  relation_internal::Row& row = store_.RowOf(src.index());
  for (uint32_t t : targets) {
    if (row.Insert(t)) ++pair_count_;
  }
}

std::vector<NodeId> Relation::Successors(NodeId a) const {
  std::vector<NodeId> out;
  const std::span<const uint32_t> ids = SuccessorIds(a);
  out.reserve(ids.size());
  for (uint32_t to : ids) out.push_back(NodeId(to));
  return out;
}

void Relation::UnionWith(const Relation& other) {
  other.ForEach([&](NodeId a, NodeId b) { Add(a, b); });
}

bool Relation::ContainsAllOf(const Relation& other) const {
  bool all = true;
  other.ForEach([&](NodeId a, NodeId b) {
    if (!Contains(a, b)) all = false;
  });
  return all;
}

std::vector<std::pair<NodeId, NodeId>> Relation::Pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(pair_count_);
  ForEach([&](NodeId a, NodeId b) { out.emplace_back(a, b); });
  return out;
}

bool SymmetricPairSet::Add(NodeId a, NodeId b) {
  COMPTX_CHECK(a.valid());
  COMPTX_CHECK(b.valid());
  COMPTX_CHECK(a != b) << "conflict pairs are irreflexive";
  const bool inserted = store_.RowOf(a.index()).Insert(b.index());
  store_.RowOf(b.index()).Insert(a.index());
  if (inserted) ++pair_count_;
  return inserted;
}

std::vector<NodeId> SymmetricPairSet::PeersOf(NodeId a) const {
  std::vector<NodeId> out;
  const std::span<const uint32_t> ids = PeerIds(a);
  out.reserve(ids.size());
  for (uint32_t peer : ids) out.push_back(NodeId(peer));
  return out;
}

void SymmetricPairSet::UnionWith(const SymmetricPairSet& other) {
  other.ForEach([&](NodeId a, NodeId b) { Add(a, b); });
}

}  // namespace comptx
