#include "core/relation.h"

#include "util/logging.h"

namespace comptx {

bool Relation::Add(NodeId a, NodeId b) {
  COMPTX_CHECK(a.valid());
  COMPTX_CHECK(b.valid());
  bool inserted = adjacency_[a.index()].insert(b.index()).second;
  if (inserted) ++pair_count_;
  return inserted;
}

bool Relation::Contains(NodeId a, NodeId b) const {
  auto it = adjacency_.find(a.index());
  if (it == adjacency_.end()) return false;
  return it->second.count(b.index()) > 0;
}

std::vector<NodeId> Relation::Successors(NodeId a) const {
  std::vector<NodeId> out;
  auto it = adjacency_.find(a.index());
  if (it == adjacency_.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t to : it->second) out.push_back(NodeId(to));
  return out;
}

void Relation::UnionWith(const Relation& other) {
  other.ForEach([&](NodeId a, NodeId b) { Add(a, b); });
}

bool Relation::ContainsAllOf(const Relation& other) const {
  bool all = true;
  other.ForEach([&](NodeId a, NodeId b) {
    if (!Contains(a, b)) all = false;
  });
  return all;
}

std::vector<std::pair<NodeId, NodeId>> Relation::Pairs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(pair_count_);
  ForEach([&](NodeId a, NodeId b) { out.emplace_back(a, b); });
  return out;
}

bool SymmetricPairSet::Add(NodeId a, NodeId b) {
  COMPTX_CHECK(a.valid());
  COMPTX_CHECK(b.valid());
  COMPTX_CHECK(a != b) << "conflict pairs are irreflexive";
  bool inserted = adjacency_[a.index()].insert(b.index()).second;
  adjacency_[b.index()].insert(a.index());
  if (inserted) ++pair_count_;
  return inserted;
}

bool SymmetricPairSet::Contains(NodeId a, NodeId b) const {
  auto it = adjacency_.find(a.index());
  if (it == adjacency_.end()) return false;
  return it->second.count(b.index()) > 0;
}

std::vector<NodeId> SymmetricPairSet::PeersOf(NodeId a) const {
  std::vector<NodeId> out;
  auto it = adjacency_.find(a.index());
  if (it == adjacency_.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t peer : it->second) out.push_back(NodeId(peer));
  return out;
}

void SymmetricPairSet::UnionWith(const SymmetricPairSet& other) {
  other.ForEach([&](NodeId a, NodeId b) { Add(a, b); });
}

}  // namespace comptx
