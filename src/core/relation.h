#ifndef COMPTX_CORE_RELATION_H_
#define COMPTX_CORE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/ids.h"
#include "util/bitrow.h"

namespace comptx {

namespace relation_internal {

/// One adjacency row of a dense relation: the sorted target ids (the
/// deterministic iteration path) plus a windowed bitset over the same ids
/// (the O(1) membership path).  Both views always agree.
struct Row {
  std::vector<uint32_t> elems;  // targets, ascending
  BitRow bits;                  // membership mirror of elems

  /// Inserts `id`; returns true iff it was new.
  bool Insert(uint32_t id);
};

/// Shared storage of Relation and SymmetricPairSet: rows keyed by source
/// node id, held in ascending source order (sources_[i] owns rows_[i]).
/// Lookups go through a direct-mapped position index windowed to the span
/// of source ids actually present (sources are sparse in the global id
/// space — a per-transaction intra order touches a handful of ids out of
/// thousands — so the window, like the rows' bitsets, keeps memory
/// proportional to the pairs stored while every probe is O(1)).
class RowStore {
 public:
  /// The row of `source`, creating it if absent.
  Row& RowOf(uint32_t source);
  /// The row of `source`, or nullptr.
  const Row* FindRow(uint32_t source) const {
    if (sources_.empty() || source < base_) return nullptr;
    const uint32_t slot = source - base_;
    if (slot >= pos_.size() || pos_[slot] == 0) return nullptr;
    return &rows_[pos_[slot] - 1];
  }

  size_t SourceCount() const { return sources_.size(); }
  uint32_t SourceAt(size_t i) const { return sources_[i]; }
  const Row& RowAt(size_t i) const { return rows_[i]; }

  bool operator==(const RowStore& other) const;

 private:
  std::vector<uint32_t> sources_;  // ascending
  std::vector<Row> rows_;          // parallel to sources_
  uint32_t base_ = 0;              // id of pos_[0]
  std::vector<uint32_t> pos_;      // windowed id -> row position + 1
};

}  // namespace relation_internal

/// A binary relation over node ids (a set of ordered pairs).  Used for every
/// order in the paper: weak/strong input and output orders (Def 3),
/// intra-transaction orders (Def 2), and the observed order (Def 10).
///
/// Storage is dense per source: a sorted flat vector of targets drives
/// deterministic iteration (sources ascending, then targets ascending —
/// the exact order the previous map-of-sets layout produced, so failure
/// witnesses and generated workloads stay reproducible bit-for-bit), and a
/// windowed bitset row answers Contains in O(1).  Const member functions
/// are safe to call concurrently; mutation is single-threaded.
class Relation {
 public:
  Relation() = default;

  /// Adds the ordered pair (a, b).  Returns true if it was new.
  bool Add(NodeId a, NodeId b);

  /// Adds (src, t) for every t in `targets`, resolving the row only once.
  /// The bulk path for closure materialization, where one source gains
  /// hundreds of targets at a time.
  void AddAll(NodeId src, const std::vector<uint32_t>& targets);

  /// True iff (a, b) is in the relation.
  bool Contains(NodeId a, NodeId b) const {
    const relation_internal::Row* row = store_.FindRow(a.index());
    return row != nullptr && row->bits.Test(b.index());
  }

  /// Number of ordered pairs.
  size_t PairCount() const { return pair_count_; }
  bool empty() const { return pair_count_ == 0; }

  /// Invokes `f(NodeId from, NodeId to)` for each pair, in (from, to)
  /// lexicographic order.
  template <typename F>
  void ForEach(F f) const {
    for (size_t i = 0; i < store_.SourceCount(); ++i) {
      const NodeId from(store_.SourceAt(i));
      for (uint32_t to : store_.RowAt(i).elems) f(from, NodeId(to));
    }
  }

  /// Successors of `a` in ascending id order (empty if none).  Allocates;
  /// hot paths should use SuccessorIds or ForEachSuccessor instead.
  std::vector<NodeId> Successors(NodeId a) const;

  /// The successor ids of `a` in ascending order, without copying.  The
  /// span is invalidated by any mutation of the relation.
  std::span<const uint32_t> SuccessorIds(NodeId a) const {
    const relation_internal::Row* row = store_.FindRow(a.index());
    if (row == nullptr) return {};
    return {row->elems.data(), row->elems.size()};
  }

  /// Invokes `f(NodeId to)` for each successor of `a` in ascending order.
  template <typename F>
  void ForEachSuccessor(NodeId a, F f) const {
    for (uint32_t to : SuccessorIds(a)) f(NodeId(to));
  }

  /// Number of distinct sources (rows); with SourceAt/SuccessorsAt this
  /// lets parallel stages shard a relation row-wise.
  size_t SourceCount() const { return store_.SourceCount(); }
  NodeId SourceAt(size_t i) const { return NodeId(store_.SourceAt(i)); }
  std::span<const uint32_t> SuccessorsAt(size_t i) const {
    const relation_internal::Row& row = store_.RowAt(i);
    return {row.elems.data(), row.elems.size()};
  }

  /// Adds every pair of `other` into this relation.
  void UnionWith(const Relation& other);

  /// True iff every pair of `other` is also in this relation.
  bool ContainsAllOf(const Relation& other) const;

  /// The relation restricted to pairs whose endpoints satisfy `keep`.
  template <typename Pred>
  Relation RestrictedTo(Pred keep) const {
    Relation out;
    ForEach([&](NodeId a, NodeId b) {
      if (keep(a) && keep(b)) out.Add(a, b);
    });
    return out;
  }

  /// All pairs in deterministic order.
  std::vector<std::pair<NodeId, NodeId>> Pairs() const;

  bool operator==(const Relation& other) const {
    return pair_count_ == other.pair_count_ && store_ == other.store_;
  }

 private:
  relation_internal::RowStore store_;
  size_t pair_count_ = 0;
};

/// An irreflexive symmetric pair set, used for conflict predicates
/// (Def 3's CON_S and Def 11's generalized CON).  Adding (a, b) also makes
/// Contains(b, a) true; self-pairs are rejected.  Same dense storage and
/// iteration-order guarantees as Relation.
class SymmetricPairSet {
 public:
  SymmetricPairSet() = default;

  /// Adds the unordered pair {a, b}; requires a != b.  Returns true if new.
  bool Add(NodeId a, NodeId b);

  /// True iff {a, b} is in the set.
  bool Contains(NodeId a, NodeId b) const {
    const relation_internal::Row* row = store_.FindRow(a.index());
    return row != nullptr && row->bits.Test(b.index());
  }

  /// Number of unordered pairs.
  size_t PairCount() const { return pair_count_; }
  bool empty() const { return pair_count_ == 0; }

  /// Peers of `a` in ascending id order.  Allocates; hot paths should use
  /// PeerIds instead.
  std::vector<NodeId> PeersOf(NodeId a) const;

  /// The peer ids of `a` in ascending order, without copying.
  std::span<const uint32_t> PeerIds(NodeId a) const {
    const relation_internal::Row* row = store_.FindRow(a.index());
    if (row == nullptr) return {};
    return {row->elems.data(), row->elems.size()};
  }

  /// Invokes `f(a, b)` once per unordered pair with a.index() < b.index().
  template <typename F>
  void ForEach(F f) const {
    for (size_t i = 0; i < store_.SourceCount(); ++i) {
      const uint32_t a = store_.SourceAt(i);
      for (uint32_t b : store_.RowAt(i).elems) {
        if (a < b) f(NodeId(a), NodeId(b));
      }
    }
  }

  void UnionWith(const SymmetricPairSet& other);

  bool operator==(const SymmetricPairSet& other) const {
    return pair_count_ == other.pair_count_ && store_ == other.store_;
  }

 private:
  relation_internal::RowStore store_;
  size_t pair_count_ = 0;
};

}  // namespace comptx

#endif  // COMPTX_CORE_RELATION_H_
