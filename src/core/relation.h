#ifndef COMPTX_CORE_RELATION_H_
#define COMPTX_CORE_RELATION_H_

#include <cstddef>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/ids.h"

namespace comptx {

/// A binary relation over node ids (a set of ordered pairs).  Used for every
/// order in the paper: weak/strong input and output orders (Def 3),
/// intra-transaction orders (Def 2), and the observed order (Def 10).
///
/// Storage is an ordered adjacency map, so iteration is deterministic —
/// important because failure witnesses and generated workloads must be
/// reproducible bit-for-bit from a seed.
class Relation {
 public:
  Relation() = default;

  /// Adds the ordered pair (a, b).  Returns true if it was new.
  bool Add(NodeId a, NodeId b);

  /// True iff (a, b) is in the relation.
  bool Contains(NodeId a, NodeId b) const;

  /// Number of ordered pairs.
  size_t PairCount() const { return pair_count_; }
  bool empty() const { return pair_count_ == 0; }

  /// Invokes `f(NodeId from, NodeId to)` for each pair, in (from, to)
  /// lexicographic order.
  template <typename F>
  void ForEach(F f) const {
    for (const auto& [from, tos] : adjacency_) {
      for (uint32_t to : tos) f(NodeId(from), NodeId(to));
    }
  }

  /// Successors of `a` in ascending id order (empty if none).
  std::vector<NodeId> Successors(NodeId a) const;

  /// Adds every pair of `other` into this relation.
  void UnionWith(const Relation& other);

  /// True iff every pair of `other` is also in this relation.
  bool ContainsAllOf(const Relation& other) const;

  /// The relation restricted to pairs whose endpoints satisfy `keep`.
  template <typename Pred>
  Relation RestrictedTo(Pred keep) const {
    Relation out;
    ForEach([&](NodeId a, NodeId b) {
      if (keep(a) && keep(b)) out.Add(a, b);
    });
    return out;
  }

  /// All pairs in deterministic order.
  std::vector<std::pair<NodeId, NodeId>> Pairs() const;

  bool operator==(const Relation& other) const {
    return adjacency_ == other.adjacency_;
  }

 private:
  std::map<uint32_t, std::set<uint32_t>> adjacency_;
  size_t pair_count_ = 0;
};

/// An irreflexive symmetric pair set, used for conflict predicates
/// (Def 3's CON_S and Def 11's generalized CON).  Adding (a, b) also makes
/// Contains(b, a) true; self-pairs are rejected.
class SymmetricPairSet {
 public:
  SymmetricPairSet() = default;

  /// Adds the unordered pair {a, b}; requires a != b.  Returns true if new.
  bool Add(NodeId a, NodeId b);

  /// True iff {a, b} is in the set.
  bool Contains(NodeId a, NodeId b) const;

  /// Number of unordered pairs.
  size_t PairCount() const { return pair_count_; }
  bool empty() const { return pair_count_ == 0; }

  /// Peers of `a` in ascending id order.
  std::vector<NodeId> PeersOf(NodeId a) const;

  /// Invokes `f(a, b)` once per unordered pair with a.index() < b.index().
  template <typename F>
  void ForEach(F f) const {
    for (const auto& [a, peers] : adjacency_) {
      for (uint32_t b : peers) {
        if (a < b) f(NodeId(a), NodeId(b));
      }
    }
  }

  void UnionWith(const SymmetricPairSet& other);

  bool operator==(const SymmetricPairSet& other) const {
    return adjacency_ == other.adjacency_;
  }

 private:
  std::map<uint32_t, std::set<uint32_t>> adjacency_;
  size_t pair_count_ = 0;
};

}  // namespace comptx

#endif  // COMPTX_CORE_RELATION_H_
