#ifndef COMPTX_CORE_SERIAL_FRONT_H_
#define COMPTX_CORE_SERIAL_FRONT_H_

#include <vector>

#include "core/front.h"
#include "util/status_or.h"

namespace comptx {

/// True iff `front` is serial (Def 17): its strong input order, closed,
/// totally orders the front's nodes.
bool IsSerialFront(const Front& front);

/// Theorem 1 ("if" direction): topologically sorts the union of the
/// observed order and the input orders of `front` into a total order.
/// Fails with FailedPrecondition when the union is cyclic (the front is not
/// conflict consistent).
StatusOr<std::vector<NodeId>> SerializeFront(const Front& front);

/// Builds the serial front obtained by strongly ordering `front`'s nodes
/// according to `order` (which must be a permutation of the nodes).  The
/// observed order and conflicts are carried over unchanged, so the result
/// level-N-contains the original front whenever `order` came from
/// SerializeFront.
Front MakeSerialFront(const Front& front, const std::vector<NodeId>& order);

/// Level-i-equivalence of two fronts (Def 18): same node set, same closed
/// observed order, and same generalized conflict relation.
bool FrontsEquivalent(const Front& a, const Front& b);

/// Def 19: `container` level-contains `front` iff they are equivalent up to
/// ordering and `container`'s strong order (closed) includes every observed
/// and input order of `front`.
bool LevelContains(const Front& container, const Front& front);

}  // namespace comptx

#endif  // COMPTX_CORE_SERIAL_FRONT_H_
