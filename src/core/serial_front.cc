#include "core/serial_front.h"

#include "core/indexing.h"
#include "graph/topological_sort.h"
#include "util/string_util.h"

namespace comptx {

namespace {

/// The union of observed and input orders as a digraph over local indices.
graph::Digraph AllOrdersDigraph(const Front& front, const NodeIndexMap& index) {
  graph::Digraph g = RelationToDigraph(front.observed, index);
  g.UnionWith(RelationToDigraph(front.weak_input, index));
  g.UnionWith(RelationToDigraph(front.strong_input, index));
  return g;
}

}  // namespace

bool IsSerialFront(const Front& front) {
  Relation closed = ClosureWithin(front.strong_input, front.nodes);
  for (NodeId a : front.nodes) {
    for (NodeId b : front.nodes) {
      if (a == b) continue;
      if (!closed.Contains(a, b) && !closed.Contains(b, a)) return false;
    }
  }
  return true;
}

StatusOr<std::vector<NodeId>> SerializeFront(const Front& front) {
  NodeIndexMap index(front.nodes);
  graph::Digraph g = AllOrdersDigraph(front, index);
  COMPTX_ASSIGN_OR_RETURN(std::vector<uint32_t> order,
                          graph::TopologicalSort(g));
  std::vector<NodeId> out;
  out.reserve(order.size());
  for (uint32_t local : order) out.push_back(index.GlobalOf(local));
  return out;
}

Front MakeSerialFront(const Front& front, const std::vector<NodeId>& order) {
  COMPTX_CHECK_EQ(order.size(), front.nodes.size());
  Front serial = front;
  serial.strong_input = Relation();
  serial.weak_input = Relation();
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    serial.strong_input.Add(order[i], order[i + 1]);
  }
  serial.weak_input = serial.strong_input;
  return serial;
}

bool FrontsEquivalent(const Front& a, const Front& b) {
  if (a.nodes != b.nodes) return false;
  Relation obs_a = ClosureWithin(a.observed, a.nodes);
  Relation obs_b = ClosureWithin(b.observed, b.nodes);
  if (!(obs_a == obs_b)) return false;
  return a.conflicts == b.conflicts;
}

bool LevelContains(const Front& container, const Front& front) {
  if (container.nodes != front.nodes) return false;
  if (!(container.conflicts == front.conflicts)) return false;
  Relation strong = ClosureWithin(container.strong_input, container.nodes);
  bool contained = strong.ContainsAllOf(front.observed) &&
                   strong.ContainsAllOf(front.weak_input) &&
                   strong.ContainsAllOf(front.strong_input);
  return contained;
}

}  // namespace comptx
