#ifndef COMPTX_CORE_REDUCTION_H_
#define COMPTX_CORE_REDUCTION_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/front.h"
#include "util/status_or.h"

namespace comptx {

/// Which construction step of Def 16 failed.
enum class ReductionFailureStep {
  /// Step 1: some level-i transaction admits no calculation (Def 14); the
  /// execution cannot be untangled at this level (paper Fig 3).
  kCalculation,
  /// Step 6: the constructed front is not conflict consistent (Def 13).
  kConflictConsistency,
};

const char* ReductionFailureStepToString(ReductionFailureStep step);

/// Diagnostic information for a failed reduction.
struct ReductionFailure {
  /// The level of the front whose construction failed (1-based; 0 means
  /// the level 0 front itself was inconsistent).
  uint32_t level = 0;
  ReductionFailureStep step = ReductionFailureStep::kCalculation;
  CycleWitness witness;
};

/// Options controlling the reduction.
struct ReductionOptions {
  /// Validate the composite system (Defs 2-4) before reducing.  Disable
  /// only when the caller has already validated.
  bool validate = true;

  /// Keep every intermediate front in the result (needed for figure
  /// regeneration and tests; costs memory on large systems).
  bool keep_fronts = true;

  /// Implement Def 10's "forgetting": an observed order between
  /// operations of one common schedule that declares them non-conflicting
  /// is dropped when pulled up (paper Fig 4).  Disabling this is the E8
  /// ablation: every observed order propagates, as in conventional
  /// multilevel serializability.
  bool forgetting = true;
};

/// Outcome of the level-by-level reduction (Def 16 + Theorem 1).
struct ReductionResult {
  /// True iff the reduction reached a level-N front, i.e., the composite
  /// schedule is Comp-C (Theorem 1).
  bool comp_c = false;

  /// The order N of the system (maximum schedule level).
  uint32_t order = 0;

  /// The constructed fronts, level 0 upward.  If the reduction failed, the
  /// last entry is the deepest successfully constructed front.  Empty when
  /// options.keep_fronts is false, except for the final front which is
  /// always kept when the reduction succeeds.
  std::vector<Front> fronts;

  /// Set iff !comp_c.
  std::optional<ReductionFailure> failure;

  /// The final front (level N) when comp_c; undefined content otherwise.
  const Front& FinalFront() const;
};

/// Runs the stepwise reduction of Def 16 on `cs`: builds the level 0 front
/// (all leaves), then per level i replaces the operations of every level-i
/// transaction by the transaction, pulling observed orders and conflicts up
/// (Defs 10-11) and checking calculations (Def 14) and conflict consistency
/// (Def 13) along the way.
///
/// Status errors report malformed input (validation failures); a
/// well-formed but incorrect execution yields an OK status with
/// result.comp_c == false and a failure witness.
StatusOr<ReductionResult> RunReduction(const CompositeSystem& cs,
                                       const ReductionOptions& options = {});

/// Incremental reduction driver: the same Def 16 machinery as
/// RunReduction, one level at a time, exposing each front as it is
/// constructed — for interactive exploration, visualization and tests
/// that inspect intermediate state.
///
/// The Reducer keeps references into `cs`; the system must outlive it and
/// must not be mutated while reducing.
class Reducer {
 public:
  /// Validates `cs` (unless options.validate is false) and builds the
  /// level 0 front.  A level-0 conflict-consistency violation is reported
  /// through Failed(), not through the Status.
  static StatusOr<Reducer> Create(const CompositeSystem& cs,
                                  const ReductionOptions& options = {});

  Reducer(Reducer&&) = default;
  Reducer& operator=(Reducer&&) = delete;

  /// The order N of the composite system.
  uint32_t order() const { return order_; }

  /// The most recently constructed front (level 0 after Create()).
  const Front& current() const { return current_; }

  /// True when no further Step() is possible: either the level-N front
  /// was reached (success) or a step failed.
  bool Done() const { return failed_ || current_.level >= order_; }

  /// True iff the reduction failed; see failure() for the diagnosis.
  bool Failed() const { return failed_; }
  const std::optional<ReductionFailure>& failure() const { return failure_; }

  /// The transactions that will be (or were) grouped at `level`.
  const std::vector<NodeId>& TransactionsAtLevel(uint32_t level) const;

  /// Performs one level step (Def 16).  Returns true and advances
  /// current() on success; returns false (and records failure()) when the
  /// calculation or CC check fails.  Must not be called when Done().
  bool Step();

 private:
  Reducer(const CompositeSystem& cs, const ReductionOptions& options);

  ReductionOptions options_;
  std::unique_ptr<SystemContext> ctx_;
  uint32_t order_ = 0;
  std::vector<std::vector<NodeId>> transactions_at_level_;
  std::vector<std::vector<ScheduleId>> schedules_at_level_;
  Front current_;
  bool failed_ = false;
  std::optional<ReductionFailure> failure_;
};

}  // namespace comptx

#endif  // COMPTX_CORE_REDUCTION_H_
