#include "core/diagnostic.h"

#include "util/string_util.h"

namespace comptx {

const char* DiagSeverityToString(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kNote:
      return "note";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "?";
}

std::string DiagCodeName(DiagCode code) {
  const auto value = static_cast<uint16_t>(code);
  return StrCat("CTX", value / 100, (value / 10) % 10, value % 10);
}

const char* DiagCodeDescription(DiagCode code) {
  switch (code) {
    case DiagCode::kRecursion:
      return "invocation graph is cyclic (recursion, Def 4.6)";
    case DiagCode::kCyclicIntraOrder:
      return "intra-transaction order is cyclic (Def 2)";
    case DiagCode::kStrongIntraNotInWeak:
      return "strong intra order not contained in weak intra order (Def 2)";
    case DiagCode::kCyclicInputOrder:
      return "schedule input order is cyclic (Def 3)";
    case DiagCode::kStrongInputNotInWeak:
      return "strong input order not contained in weak input order (Def 3)";
    case DiagCode::kCyclicOutputOrder:
      return "schedule output order is cyclic (Def 3)";
    case DiagCode::kStrongOutputNotInWeak:
      return "strong output order not contained in weak output order "
             "(Def 3.4)";
    case DiagCode::kConflictOrderedBothWays:
      return "conflicting operations ordered both ways (Def 3.1)";
    case DiagCode::kConflictUnordered:
      return "conflicting operations left unordered (Def 3.1c)";
    case DiagCode::kConflictAgainstInput:
      return "conflict ordered against the weak input order (Def 3.1a/b)";
    case DiagCode::kIntraOrderNotHonored:
      return "output orders do not honor an intra-transaction order "
             "(Def 3.2)";
    case DiagCode::kStrongInputNotReflected:
      return "strong input order not reflected by strong output order "
             "(Def 3.3)";
    case DiagCode::kOutputNotPropagated:
      return "caller output order not propagated to callee input order "
             "(Def 4.7)";
    case DiagCode::kEmptySystem:
      return "system has no schedules or no root transactions";
    case DiagCode::kOrphanSchedule:
      return "schedule executes no transactions";
    case DiagCode::kDanglingScheduleRef:
      return "reference to an undeclared schedule";
    case DiagCode::kDanglingNodeRef:
      return "reference to an undeclared operation or transaction";
    case DiagCode::kSelfConflict:
      return "conflict pair relates an operation to itself";
    case DiagCode::kCrossScheduleConflict:
      return "conflict pair spans two schedules";
    case DiagCode::kDuplicateConflict:
      return "conflict pair declared more than once";
    case DiagCode::kCommuteContradictsConflict:
      return "pair declared both commuting and conflicting";
    case DiagCode::kSelfCommute:
      return "commuting pair relates an operation to itself";
    case DiagCode::kForgottenOrderHazard:
      return "shared scheduler with cross-root conflict pairs (forgotten-"
             "order hazard, Fig 4)";
    case DiagCode::kProbabilityOutOfRange:
      return "generator probability outside [0, 1]";
    case DiagCode::kDegenerateWorkload:
      return "degenerate workload shape (zero roots, depth or fanout)";
    case DiagCode::kIncompatibleSpec:
      return "contradictory generator options";
    case DiagCode::kMalformedSpec:
      return "spec cannot be parsed or applied";
    case DiagCode::kInternalError:
      return "internal analyzer error (a comptx bug, please report)";
    case DiagCode::kSpecMalformed:
      return "commutativity spec cannot be parsed";
    case DiagCode::kSpecDuplicateDecl:
      return "duplicate ADT or operation-class declaration";
    case DiagCode::kSpecUnknownClass:
      return "table entry references an undeclared operation class";
    case DiagCode::kSpecContradictoryEntry:
      return "class pair declared both commuting and clashing";
    case DiagCode::kSpecIncompleteTable:
      return "same-ADT class pair left unspecified (table must be total)";
    case DiagCode::kSpecAllCommute:
      return "table declares every pair commuting (vacuous spec)";
    case DiagCode::kSpecEmptyAdt:
      return "ADT declares no operation classes";
    case DiagCode::kSpecTagMismatch:
      return "tag references an unknown node or operation class";
    case DiagCode::kSpecUndeclaredSemConflict:
      return "clashing same-instance operations carry no CON_S bit";
  }
  return "unknown diagnostic code";
}

std::string FormatDiagnostic(const Diagnostic& diag) {
  std::string out = StrCat(DiagSeverityToString(diag.severity), "[",
                           DiagCodeName(diag.code), "]");
  if (diag.line != 0) out = StrCat(out, " line ", diag.line);
  if (!diag.location.empty()) out = StrCat(out, " ", diag.location);
  out = StrCat(out, ": ", diag.message);
  if (!diag.fix.empty()) out = StrCat(out, " (fix: ", diag.fix, ")");
  return out;
}

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string FormatDiagnosticsJson(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i != 0) out += ",";
    out += "\n  {\"severity\": ";
    AppendJsonString(out, DiagSeverityToString(d.severity));
    out += ", \"code\": ";
    AppendJsonString(out, DiagCodeName(d.code));
    out += ", \"location\": ";
    AppendJsonString(out, d.location);
    out = StrCat(out, ", \"line\": ", d.line, ", \"message\": ");
    AppendJsonString(out, d.message);
    out += ", \"fix\": ";
    AppendJsonString(out, d.fix);
    out += "}";
  }
  out += diags.empty() ? "]" : "\n]";
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == DiagSeverity::kError) return true;
  }
  return false;
}

std::vector<Diagnostic> ErrorsOnly(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> errors;
  for (const Diagnostic& d : diags) {
    if (d.severity == DiagSeverity::kError) errors.push_back(d);
  }
  return errors;
}

}  // namespace comptx
