#include "core/calculation.h"

#include "core/observed_order.h"
#include "graph/cycle_finder.h"
#include "graph/quotient.h"
#include "util/string_util.h"

namespace comptx {

graph::Digraph BuildCalculationConstraintGraph(const SystemContext& ctx,
                                               const Front& front,
                                               const NodeIndexMap& index) {
  const CompositeSystem& cs = ctx.cs;
  graph::Digraph g(index.size());

  // 1. Strong temporal orders can never be reordered.
  front.strong_input.ForEach([&](NodeId a, NodeId b) {
    g.AddEdge(index.LocalOf(a), index.LocalOf(b));
  });

  // 2. Observed orders bind when the pair conflicts (generalized CON);
  //    commuting pairs may be swapped when constructing F** (Def 16.1).
  front.observed.ForEach([&](NodeId a, NodeId b) {
    if (GeneralizedConflict(ctx, front, a, b)) {
      g.AddEdge(index.LocalOf(a), index.LocalOf(b));
    }
  });

  // 3. Serialization decisions of the schedules: conflicting operation
  //    pairs ordered by their schedule's weak output order.
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    sched.conflicts.ForEach([&](NodeId a, NodeId b) {
      auto la = index.TryLocalOf(a);
      auto lb = index.TryLocalOf(b);
      if (!la || !lb) return;
      if (ctx.closed_weak_output[s].Contains(a, b)) g.AddEdge(*la, *lb);
      if (ctx.closed_weak_output[s].Contains(b, a)) g.AddEdge(*lb, *la);
    });
  }
  return g;
}

std::optional<CycleWitness> FindCalculationViolation(
    const SystemContext& ctx, const Front& front,
    const std::vector<NodeId>& group_transactions) {
  const CompositeSystem& cs = ctx.cs;
  NodeIndexMap index(front.nodes);
  graph::Digraph constraints =
      BuildCalculationConstraintGraph(ctx, front, index);

  // Assign blocks: members of each group transaction share a block; every
  // other front node is a singleton block.
  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> block_of(index.size(), kUnassigned);
  // block id -> representative (the transaction for group blocks, the node
  // itself for singletons).
  std::vector<NodeId> block_rep;
  for (NodeId txn : group_transactions) {
    const uint32_t block = static_cast<uint32_t>(block_rep.size());
    block_rep.push_back(txn);
    for (NodeId op : cs.node(txn).children) {
      auto local = index.TryLocalOf(op);
      COMPTX_CHECK(local.has_value())
          << "operation " << cs.node(op).name << " of group transaction "
          << cs.node(txn).name << " is not in the level " << front.level
          << " front";
      block_of[*local] = block;
    }
  }
  for (uint32_t local = 0; local < index.size(); ++local) {
    if (block_of[local] == kUnassigned) {
      block_of[local] = static_cast<uint32_t>(block_rep.size());
      block_rep.push_back(index.GlobalOf(local));
    }
  }

  // Inter-block test: the quotient graph must be acyclic.
  graph::Digraph quotient = graph::QuotientGraph(
      constraints, block_of, static_cast<uint32_t>(block_rep.size()));
  if (auto cycle = graph::FindCycle(quotient)) {
    CycleWitness witness;
    for (uint32_t block : *cycle) witness.nodes.push_back(block_rep[block]);
    witness.description = StrCat(
        "no calculation at level ", front.level + 1, ": ", cycle->size(),
        "-block cycle prevents isolating the level ", front.level + 1,
        " transactions (Def 14/16)");
    return witness;
  }

  // Intra-block test: each group's constraints together with the
  // transaction's weak intra order must be acyclic.
  for (NodeId txn : group_transactions) {
    const Node& t = cs.node(txn);
    if (t.children.size() < 2) continue;
    NodeIndexMap members(t.children);
    graph::Digraph intra(members.size());
    for (NodeId a : t.children) {
      uint32_t la = index.LocalOf(a);
      for (uint32_t lw : constraints.OutNeighbors(la)) {
        NodeId b = index.GlobalOf(lw);
        if (auto mb = members.TryLocalOf(b)) {
          intra.AddEdge(members.LocalOf(a), *mb);
        }
      }
    }
    ctx.closed_weak_intra[txn.index()].ForEach([&](NodeId a, NodeId b) {
      intra.AddEdge(members.LocalOf(a), members.LocalOf(b));
    });
    if (auto cycle = graph::FindCycle(intra)) {
      CycleWitness witness;
      for (uint32_t local : *cycle) {
        witness.nodes.push_back(members.GlobalOf(local));
      }
      witness.description =
          StrCat("no calculation for transaction ", t.name,
                 ": the observed order contradicts its intra-transaction ",
                 "order (Def 14)");
      return witness;
    }
  }
  return std::nullopt;
}

}  // namespace comptx
