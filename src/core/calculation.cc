#include "core/calculation.h"

#include <utility>

#include "core/observed_order.h"
#include "graph/cycle_finder.h"
#include "graph/quotient.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace comptx {

graph::Digraph BuildCalculationConstraintGraph(const SystemContext& ctx,
                                               const Front& front,
                                               const NodeIndexMap& index) {
  const CompositeSystem& cs = ctx.cs;
  graph::Digraph g(index.size());

  // 1. Strong temporal orders can never be reordered.
  front.strong_input.ForEach([&](NodeId a, NodeId b) {
    g.AddEdge(index.LocalOf(a), index.LocalOf(b));
  });

  // 2. Observed orders bind when the pair conflicts (generalized CON);
  //    commuting pairs may be swapped when constructing F** (Def 16.1).
  //    Sharded row-wise; folding in row order reproduces the serial edge
  //    insertion sequence exactly (witness cycles depend on it).
  using EdgeList = std::vector<std::pair<uint32_t, uint32_t>>;
  {
    const size_t row_count = front.observed.SourceCount();
    std::vector<EdgeList> shards(row_count);
    ThreadPool::Global().ParallelFor(row_count, [&](size_t i) {
      const NodeId a = front.observed.SourceAt(i);
      const uint32_t la = index.LocalOf(a);
      const ScheduleId ha = ctx.host_schedule[a.index()];
      EdgeList& out = shards[i];
      for (uint32_t to : front.observed.SuccessorsAt(i)) {
        const NodeId b(to);
        // GeneralizedConflict specialized to a pair already known to be in
        // the observed order: cross-schedule pairs conflict by Def 11.2
        // outright; only same-schedule pairs consult the schedule's CON_S
        // (minus spec-proven commuting pairs).
        const ScheduleId hb = ctx.host_schedule[to];
        if (!ha.valid() || ha != hb || cs.EffectiveConflict(ha, a, b)) {
          out.emplace_back(la, index.LocalOf(b));
        }
      }
    });
    for (const EdgeList& shard : shards) {
      for (const auto& [la, lb] : shard) g.AddEdge(la, lb);
    }
  }

  // 3. Serialization decisions of the schedules: conflicting operation
  //    pairs ordered by their schedule's weak output order.  One shard per
  //    schedule, folded in schedule order.  Schedules at or below the
  //    front's level were already grouped — their operations are no longer
  //    in the index, so they are skipped outright.
  {
    const size_t schedule_count = cs.ScheduleCount();
    std::vector<EdgeList> shards(schedule_count);
    ThreadPool::Global().ParallelFor(schedule_count, [&](size_t s) {
      if (ctx.ig.schedule_level[s] <= front.level) return;
      const Schedule& sched = cs.schedule(ScheduleId(s));
      const Relation& closed_output = ctx.closed_weak_output[s];
      EdgeList& out = shards[s];
      sched.conflicts.ForEach([&](NodeId a, NodeId b) {
        if (cs.SemanticallyCommutes(a, b)) return;
        auto la = index.TryLocalOf(a);
        auto lb = index.TryLocalOf(b);
        if (!la || !lb) return;
        if (closed_output.Contains(a, b)) out.emplace_back(*la, *lb);
        if (closed_output.Contains(b, a)) out.emplace_back(*lb, *la);
      });
    });
    for (const EdgeList& shard : shards) {
      for (const auto& [la, lb] : shard) g.AddEdge(la, lb);
    }
  }
  return g;
}

std::optional<CycleWitness> FindCalculationViolation(
    const SystemContext& ctx, const Front& front,
    const std::vector<NodeId>& group_transactions) {
  const CompositeSystem& cs = ctx.cs;
  NodeIndexMap index(front.nodes);
  graph::Digraph constraints =
      BuildCalculationConstraintGraph(ctx, front, index);

  // Assign blocks: members of each group transaction share a block; every
  // other front node is a singleton block.
  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> block_of(index.size(), kUnassigned);
  // block id -> representative (the transaction for group blocks, the node
  // itself for singletons).
  std::vector<NodeId> block_rep;
  for (NodeId txn : group_transactions) {
    const uint32_t block = static_cast<uint32_t>(block_rep.size());
    block_rep.push_back(txn);
    for (NodeId op : cs.node(txn).children) {
      auto local = index.TryLocalOf(op);
      COMPTX_CHECK(local.has_value())
          << "operation " << cs.node(op).name << " of group transaction "
          << cs.node(txn).name << " is not in the level " << front.level
          << " front";
      block_of[*local] = block;
    }
  }
  for (uint32_t local = 0; local < index.size(); ++local) {
    if (block_of[local] == kUnassigned) {
      block_of[local] = static_cast<uint32_t>(block_rep.size());
      block_rep.push_back(index.GlobalOf(local));
    }
  }

  // Inter-block test: the quotient graph must be acyclic.
  graph::Digraph quotient = graph::QuotientGraph(
      constraints, block_of, static_cast<uint32_t>(block_rep.size()));
  if (auto cycle = graph::FindCycle(quotient)) {
    CycleWitness witness;
    for (uint32_t block : *cycle) witness.nodes.push_back(block_rep[block]);
    witness.description = StrCat(
        "no calculation at level ", front.level + 1, ": ", cycle->size(),
        "-block cycle prevents isolating the level ", front.level + 1,
        " transactions (Def 14/16)");
    return witness;
  }

  // Intra-block test: each group's constraints together with the
  // transaction's weak intra order must be acyclic.  Groups are checked
  // independently on the pool; the lowest-indexed violation is reported,
  // which is exactly the one the serial loop would have found first.
  std::vector<std::optional<CycleWitness>> violations(
      group_transactions.size());
  ThreadPool::Global().ParallelFor(group_transactions.size(), [&](size_t k) {
    const NodeId txn = group_transactions[k];
    const Node& t = cs.node(txn);
    if (t.children.size() < 2) return;
    NodeIndexMap members(t.children);
    graph::Digraph intra(members.size());
    for (NodeId a : t.children) {
      uint32_t la = index.LocalOf(a);
      for (uint32_t lw : constraints.OutNeighbors(la)) {
        NodeId b = index.GlobalOf(lw);
        if (auto mb = members.TryLocalOf(b)) {
          intra.AddEdge(members.LocalOf(a), *mb);
        }
      }
    }
    ctx.closed_weak_intra[txn.index()].ForEach([&](NodeId a, NodeId b) {
      intra.AddEdge(members.LocalOf(a), members.LocalOf(b));
    });
    if (auto cycle = graph::FindCycle(intra)) {
      CycleWitness witness;
      for (uint32_t local : *cycle) {
        witness.nodes.push_back(members.GlobalOf(local));
      }
      witness.description =
          StrCat("no calculation for transaction ", t.name,
                 ": the observed order contradicts its intra-transaction ",
                 "order (Def 14)");
      violations[k] = std::move(witness);
    }
  });
  for (std::optional<CycleWitness>& violation : violations) {
    if (violation.has_value()) return std::move(*violation);
  }
  return std::nullopt;
}

}  // namespace comptx
