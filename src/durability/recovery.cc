#include "durability/recovery.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/correctness.h"
#include "online/state_io.h"

namespace comptx::durability {

namespace fs = std::filesystem;

std::string WalPath(const std::string& dir, uint64_t id) {
  return dir + "/s" + std::to_string(id) + ".wal";
}

std::string SnapshotPath(const std::string& dir, uint64_t id) {
  return dir + "/s" + std::to_string(id) + ".snap";
}

std::vector<workload::TraceEvent> SessionDurableState::SuffixEvents() const {
  const uint64_t base = has_snapshot ? snapshot.event_seq : 0;
  std::vector<workload::TraceEvent> events;
  for (const auto& record : wal_records) {
    if (record.type == WalRecordType::kCommitWatermark) {
      // Reconstitute the watermark as the commit_through event it was
      // logged for, at its original stream position, so replay seals and
      // prunes exactly as the pre-crash session did.
      if (record.seq > base) {
        workload::TraceEvent e;
        e.kind = workload::TraceEventKind::kCommitThrough;
        e.a = static_cast<uint32_t>(record.commit_through);
        events.push_back(std::move(e));
      }
      continue;
    }
    if (record.type != WalRecordType::kAppend) continue;
    for (size_t i = 0; i < record.events.size(); ++i) {
      const uint64_t seq = record.seq + i;
      if (seq > base) events.push_back(record.events[i]);
    }
  }
  return events;
}

std::vector<uint64_t> ListDurableSessionIds(const std::string& dir) {
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const bool wal = name.size() > 5 && name.compare(name.size() - 4, 4, ".wal") == 0;
    const bool snap = name.size() > 6 && name.compare(name.size() - 5, 5, ".snap") == 0;
    if ((!wal && !snap) || name[0] != 's') continue;
    const std::string digits =
        name.substr(1, name.size() - 1 - (wal ? 4 : 5));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

StatusOr<SessionDurableState> ReadSessionDurableState(const std::string& dir,
                                                      uint64_t id) {
  SessionDurableState state;
  state.id = id;
  state.dir = dir;

  auto snapshot = ReadSnapshotFile(SnapshotPath(dir, id));
  if (snapshot.ok()) {
    if (snapshot->session_id != id) {
      return Status::Internal("snapshot " + SnapshotPath(dir, id) +
                              " claims session " +
                              std::to_string(snapshot->session_id));
    }
    state.has_snapshot = true;
    state.snapshot = std::move(snapshot).value();
    state.options = state.snapshot.options;
    state.event_seq = state.snapshot.event_seq;
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  auto scan = ReadWalFile(WalPath(dir, id));
  if (scan.ok()) {
    state.wal_scan = std::move(scan).value();
    state.wal_records = state.wal_scan.records;
    for (const auto& record : state.wal_records) {
      switch (record.type) {
        case WalRecordType::kOpen:
          if (state.options.empty()) state.options = record.options;
          break;
        case WalRecordType::kAppend:
          if (!record.events.empty()) {
            state.event_seq = std::max(
                state.event_seq, record.seq + record.events.size() - 1);
          }
          break;
        case WalRecordType::kEvict:
          state.evicted = true;
          break;
        case WalRecordType::kResume:
          state.evicted = false;
          break;
        case WalRecordType::kClose:
          state.closed = true;
          break;
        case WalRecordType::kCommitWatermark:
          // Occupies one event seq slot of its own.
          state.event_seq = std::max(state.event_seq, record.seq);
          break;
        case WalRecordType::kSeal:
        case WalRecordType::kStreamCursor:
          // Cursor records do not consume event seq slots; the
          // distributed layer folds them out of wal_records itself.
          break;
      }
    }
  } else if (scan.status().code() == StatusCode::kNotFound) {
    state.wal_missing = true;
    if (!state.has_snapshot) {
      return Status::NotFound("no durable state for session " +
                              std::to_string(id) + " in " + dir);
    }
  } else {
    // Bad magic: a crash can leave a zero-length or header-torn file
    // behind (the header write itself is not synced).  With a snapshot
    // the session is still fully recoverable; without one there was
    // nothing durable to lose.
    state.wal_missing = true;
  }
  return state;
}

Status RemoveSessionFiles(const std::string& dir, uint64_t id) {
  std::error_code ec;
  fs::remove(WalPath(dir, id), ec);
  fs::remove(SnapshotPath(dir, id), ec);
  return Status::OK();
}

StatusOr<std::unique_ptr<online::Certifier>> RebuildCertifier(
    const SessionDurableState& state, const online::CertifierOptions& options,
    std::vector<workload::TraceEvent>* accepted_stream) {
  std::unique_ptr<online::Certifier> certifier;
  if (state.has_snapshot) {
    COMPTX_ASSIGN_OR_RETURN(
        certifier, online::RestoreCertifierState(state.snapshot.state, options));
  } else {
    certifier = std::make_unique<online::Certifier>(options);
  }
  // Replay the uncovered log suffix.  Rejections are not errors: the
  // original session logged every acked batch before ingesting it, so a
  // rejected event is replayed into the same rejection and the rebuilt
  // counters match the uninterrupted run's.
  for (const auto& event : state.SuffixEvents()) {
    const Status status = certifier->Ingest(event);
    if (accepted_stream != nullptr && status.ok() &&
        event.kind != workload::TraceEventKind::kCommit &&
        event.kind != workload::TraceEventKind::kCommitThrough) {
      accepted_stream->push_back(event);
    }
  }
  return certifier;
}

Status VerifyRecovery(const online::Certifier& certifier,
                      uint64_t expected_events) {
  const online::CertifierStats stats = certifier.Stats();
  if (stats.events_accepted + stats.events_rejected != expected_events) {
    return Status::Internal(
        "recovered session accounts for " +
        std::to_string(stats.events_accepted + stats.events_rejected) +
        " events but " + std::to_string(expected_events) +
        " were durably logged");
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto batch = CheckCompC(certifier.system(), options);
  if (!batch.ok()) {
    return Status::Internal("batch replay of recovered system failed: " +
                            batch.status().ToString());
  }
  if (batch->correct != certifier.Certifiable()) {
    return Status::Internal(
        std::string("recovered verdict diverges from batch oracle: online "
                    "says ") +
        (certifier.Certifiable() ? "certifiable" : "not certifiable") +
        ", batch says " + (batch->correct ? "certifiable" : "not certifiable"));
  }
  return Status::OK();
}

}  // namespace comptx::durability
