#ifndef COMPTX_DURABILITY_RECOVERY_H_
#define COMPTX_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/snapshot.h"
#include "durability/wal.h"
#include "online/certifier.h"
#include "util/status_or.h"

namespace comptx::durability {

/// File layout: one WAL and at most one snapshot per session, named by
/// the server-assigned session id inside the durability directory.
std::string WalPath(const std::string& dir, uint64_t id);
std::string SnapshotPath(const std::string& dir, uint64_t id);

/// Everything on disk about one session, as read (and nothing else: no
/// repair, no replay).  The recovery state machine (DESIGN.md §11.4)
/// classifies a session from its lifecycle flags:
///   closed      -> the CLOSE ack was durable; delete the files.
///   evicted     -> persisted-then-evicted; leave on disk, resumable.
///   otherwise   -> live at crash time; rebuild into memory.
struct SessionDurableState {
  uint64_t id = 0;
  std::string dir;
  std::string options;   // OPEN options text (snapshot wins over the log)
  bool closed = false;
  bool evicted = false;
  bool has_snapshot = false;
  Snapshot snapshot;
  uint64_t event_seq = 0;  // highest durably logged 1-based event seq
  std::vector<WalRecord> wal_records;  // valid records, in LSN order
  WalReadResult wal_scan;              // torn-tail details for repair
  bool wal_missing = false;            // no usable WAL file

  /// True when neither file yields anything replayable: no snapshot and
  /// not a single valid WAL record.  Recovery discards such sessions (a
  /// crash before the OPEN frame hit the disk — the OPEN is fsynced
  /// before its ack, so an acked session always has at least that
  /// record and survives, even with zero events and empty options).
  bool Empty() const { return !has_snapshot && wal_records.empty(); }

  /// The logged events not covered by the snapshot, in stream order with
  /// their 1-based sequence numbers.  A compaction keeps whole records,
  /// so a record may straddle the watermark; covered prefixes are
  /// skipped here rather than on disk.
  std::vector<workload::TraceEvent> SuffixEvents() const;
};

/// Session ids present in `dir` (union of *.wal and *.snap), ascending.
std::vector<uint64_t> ListDurableSessionIds(const std::string& dir);

/// Reads both files of session `id`.  kNotFound when neither exists.
/// A torn WAL tail is normal crash damage and is reported through
/// `wal_scan` (records past it are simply absent); a corrupt *snapshot*
/// is an error — snapshots are published atomically, so damage there
/// means real corruption and the session must not be served silently.
StatusOr<SessionDurableState> ReadSessionDurableState(const std::string& dir,
                                                      uint64_t id);

/// Deletes both files of session `id`; missing files are fine.
Status RemoveSessionFiles(const std::string& dir, uint64_t id);

/// Rebuilds a certifier: restore the snapshot image (if any), then
/// replay the WAL suffix through Ingest.  Replay repeats the original
/// accept/reject decisions, so the rebuilt counters equal the original
/// stream's.
/// When `accepted_stream` is non-null, every replayed event the certifier
/// accepted — excluding kCommit/kCommitThrough, which are never published
/// upstream — is appended to it in ingest order.  This is how a stream
/// (`stream=1`) session rebuilds its order-stream log after a restart:
/// such sessions never snapshot, so the replayed suffix is the whole
/// history and the collected subsequence reproduces the pre-crash stream
/// sequence numbers exactly.
StatusOr<std::unique_ptr<online::Certifier>> RebuildCertifier(
    const SessionDurableState& state, const online::CertifierOptions& options,
    std::vector<workload::TraceEvent>* accepted_stream = nullptr);

/// The RecoveryVerifier differential check (reuses the PR 3 harness): a
/// recovered session's online verdict must match batch CheckCompC over
/// its accumulated system, and its counters must account for every
/// durably logged event (`accepted + rejected == expected_events`).
/// Returns kInternal with a description on any disagreement.
Status VerifyRecovery(const online::Certifier& certifier,
                      uint64_t expected_events);

}  // namespace comptx::durability

#endif  // COMPTX_DURABILITY_RECOVERY_H_
