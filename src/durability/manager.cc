#include "durability/manager.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "online/state_io.h"
#include "util/logging.h"

namespace comptx::durability {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// SessionLog

SessionLog::SessionLog(Manager* manager, uint64_t id, std::string options_text)
    : manager_(manager), id_(id), options_text_(std::move(options_text)) {}

SessionLog::~SessionLog() = default;

Status SessionLog::LogAppend(const std::vector<workload::TraceEvent>& events) {
  // Commit watermarks get their own record type (kCommitWatermark) so
  // compaction can reason about them without decoding event payloads;
  // the surrounding construction events are written as plain kAppend
  // runs.  Every event — watermarks included — consumes one seq slot,
  // keeping WAL order identical to queue/ingest order.
  uint64_t seq = logged_.load(std::memory_order_relaxed) + 1;
  size_t run_start = 0;
  auto flush_run = [&](size_t end) -> Status {
    if (end == run_start) return Status::OK();
    WalRecord record;
    record.type = WalRecordType::kAppend;
    record.seq = seq;
    record.events.assign(events.begin() + run_start, events.begin() + end);
    COMPTX_RETURN_IF_ERROR(writer_->Append(record).status());
    seq += end - run_start;
    run_start = end;
    return Status::OK();
  };
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind != workload::TraceEventKind::kCommitThrough) continue;
    COMPTX_RETURN_IF_ERROR(flush_run(i));
    WalRecord record;
    record.type = WalRecordType::kCommitWatermark;
    record.seq = seq;
    record.commit_through = events[i].a;
    COMPTX_RETURN_IF_ERROR(writer_->Append(record).status());
    ++seq;
    run_start = i + 1;
  }
  COMPTX_RETURN_IF_ERROR(flush_run(events.size()));
  logged_.fetch_add(events.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status SessionLog::LogStreamCursor(uint64_t edge, uint64_t cursor_seq,
                                   const std::string& mapping) {
  WalRecord record;
  record.type = WalRecordType::kStreamCursor;
  record.seq = logged_.load(std::memory_order_relaxed);
  record.edge = edge;
  record.cursor_seq = cursor_seq;
  record.mapping = mapping;
  return writer_->Append(record).status();
}

void SessionLog::SetSnapshotExempt() {
  snapshot_exempt_.store(true, std::memory_order_relaxed);
}

Status SessionLog::SyncForAck() { return writer_->SyncForAck(); }

void SessionLog::OnIngested(size_t n) {
  ingested_.fetch_add(n, std::memory_order_relaxed);
}

bool SessionLog::SnapshotDue() const {
  if (snapshot_exempt_.load(std::memory_order_relaxed)) return false;
  const uint64_t interval = manager_->options().snapshot_events;
  if (interval == 0) return false;
  return ingested_.load(std::memory_order_relaxed) -
             snapshotted_.load(std::memory_order_relaxed) >=
         interval;
}

Status SessionLog::WriteSnapshot(const online::Certifier& certifier) {
  Snapshot snapshot;
  snapshot.session_id = id_;
  // The caller guarantees no concurrent ingest, so the certifier holds
  // exactly the first `ingested_` events of the stream.
  snapshot.event_seq = ingested_.load(std::memory_order_relaxed);
  snapshot.options = options_text_;
  COMPTX_ASSIGN_OR_RETURN(snapshot.state,
                          online::CaptureCertifierState(certifier));
  COMPTX_RETURN_IF_ERROR(WriteSnapshotFile(
      SnapshotPath(manager_->options().dir, id_), snapshot));
  if (manager_->counters() != nullptr) {
    manager_->counters()->snapshots_written.fetch_add(
        1, std::memory_order_relaxed);
  }

  WalRecord open;
  open.type = WalRecordType::kOpen;
  open.options = options_text_;
  WalRecord seal;
  seal.type = WalRecordType::kSeal;
  seal.seq = snapshot.event_seq;
  seal.accepted = snapshot.state.accepted;
  seal.rejected = snapshot.state.rejected;
  seal.certifiable = snapshot.state.certifiable;
  COMPTX_RETURN_IF_ERROR(
      writer_->CompactThrough(snapshot.event_seq, open, seal));
  snapshotted_.store(snapshot.event_seq, std::memory_order_relaxed);
  return Status::OK();
}

Status SessionLog::PersistEvicted(const online::Certifier& certifier) {
  if (!snapshot_exempt_.load(std::memory_order_relaxed)) {
    COMPTX_RETURN_IF_ERROR(WriteSnapshot(certifier));
  }
  WalRecord record;
  record.type = WalRecordType::kEvict;
  record.seq = ingested_.load(std::memory_order_relaxed);
  COMPTX_RETURN_IF_ERROR(writer_->Append(record).status());
  return writer_->SyncNow();
}

Status SessionLog::PersistShutdown(const online::Certifier& certifier) {
  if (!snapshot_exempt_.load(std::memory_order_relaxed)) {
    COMPTX_RETURN_IF_ERROR(WriteSnapshot(certifier));
  }
  return writer_->SyncNow();
}

Status SessionLog::MarkClosedAndRemove() {
  WalRecord record;
  record.type = WalRecordType::kClose;
  record.seq = ingested_.load(std::memory_order_relaxed);
  COMPTX_RETURN_IF_ERROR(writer_->Append(record).status());
  COMPTX_RETURN_IF_ERROR(writer_->SyncNow());
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    writer_.reset();
  }
  return manager_->RemoveFiles(id_);
}

Status SessionLog::SyncIfDirty() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (writer_ == nullptr) return Status::OK();
  return writer_->SyncNow();
}

// ---------------------------------------------------------------------------
// Manager

Manager::Manager(const Options& options, Counters* counters)
    : options_(options), counters_(counters) {}

StatusOr<std::unique_ptr<Manager>> Manager::Start(const Options& options,
                                                  Counters* counters) {
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create durability dir " + options.dir +
                            ": " + ec.message());
  }
  std::unique_ptr<Manager> manager(new Manager(options, counters));
  if (options.fsync == FsyncPolicy::kInterval) {
    manager->flusher_ = std::thread([m = manager.get()] { m->FlusherLoop(); });
  }
  return manager;
}

Manager::~Manager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void Manager::Register(const std::shared_ptr<SessionLog>& log) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_.erase(std::remove_if(logs_.begin(), logs_.end(),
                             [](const std::weak_ptr<SessionLog>& weak) {
                               return weak.expired();
                             }),
              logs_.end());
  logs_.push_back(log);
}

void Manager::FlusherLoop() {
  for (;;) {
    std::vector<std::shared_ptr<SessionLog>> live;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(options_.fsync_interval_ms),
                   [this] { return stopping_; });
      if (stopping_) return;
      live.reserve(logs_.size());
      for (const auto& weak : logs_) {
        if (auto log = weak.lock()) live.push_back(std::move(log));
      }
    }
    for (const auto& log : live) {
      const Status status = log->SyncIfDirty();
      if (!status.ok()) {
        COMPTX_LOG(Warn) << "interval fsync of session " << log->id()
                         << " failed: " << status;
      }
    }
  }
}

StatusOr<std::shared_ptr<SessionLog>> Manager::CreateLog(
    uint64_t id, const std::string& options_text) {
  std::shared_ptr<SessionLog> log(new SessionLog(this, id, options_text));
  COMPTX_ASSIGN_OR_RETURN(
      log->writer_, WalWriter::Create(WalPath(options_.dir, id),
                                      options_.fsync, counters_));
  WalRecord open;
  open.type = WalRecordType::kOpen;
  open.options = options_text;
  COMPTX_RETURN_IF_ERROR(log->writer_->Append(open).status());
  // Session existence is durable before the OPEN ack under every policy:
  // one fsync per session lifetime is noise, and it pins the id so a
  // crashed-then-restarted server never reassigns it.
  COMPTX_RETURN_IF_ERROR(log->writer_->SyncNow());
  Register(log);
  return log;
}

StatusOr<std::shared_ptr<SessionLog>> Manager::AdoptLog(
    const SessionDurableState& state, bool resume) {
  std::shared_ptr<SessionLog> log(
      new SessionLog(this, state.id, state.options));
  const std::string wal_path = WalPath(options_.dir, state.id);
  if (state.wal_missing) {
    COMPTX_ASSIGN_OR_RETURN(
        log->writer_, WalWriter::Create(wal_path, options_.fsync, counters_));
    WalRecord open;
    open.type = WalRecordType::kOpen;
    open.options = state.options;
    COMPTX_RETURN_IF_ERROR(log->writer_->Append(open).status());
  } else {
    if (!state.wal_scan.clean) {
      COMPTX_RETURN_IF_ERROR(RepairWalFile(wal_path, state.wal_scan));
      if (counters_ != nullptr) {
        counters_->records_truncated.fetch_add(1, std::memory_order_relaxed);
      }
    }
    WalReadResult repaired = state.wal_scan;
    repaired.clean = true;
    COMPTX_ASSIGN_OR_RETURN(
        log->writer_, WalWriter::OpenExisting(wal_path, options_.fsync,
                                              counters_, repaired));
  }
  log->logged_.store(state.event_seq, std::memory_order_relaxed);
  log->ingested_.store(state.event_seq, std::memory_order_relaxed);
  log->snapshotted_.store(
      state.has_snapshot ? state.snapshot.event_seq : 0,
      std::memory_order_relaxed);
  if (resume) {
    WalRecord marker;
    marker.type = WalRecordType::kResume;
    marker.seq = state.event_seq;
    COMPTX_RETURN_IF_ERROR(log->writer_->Append(marker).status());
    COMPTX_RETURN_IF_ERROR(log->writer_->SyncNow());
  }
  Register(log);
  return log;
}

}  // namespace comptx::durability
