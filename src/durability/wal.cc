#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace comptx::durability {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitive codec.  The WAL is a disk format, so widths and
// byte order are pinned rather than inherited from the host (even though
// every supported host is little-endian today).

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Bounds-checked cursor over a decoded payload.  Every Get* reports
// exhaustion through `ok`; decode functions check it once at the end so a
// short payload is one error path, not eight.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint8_t GetU8() {
    if (pos + 1 > size) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }
  uint32_t GetU32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  uint64_t GetU64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  std::string GetBytes(size_t n) {
    if (pos + n > size || n > size) {
      ok = false;
      return std::string();
    }
    std::string v(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return v;
  }
};

void PutEvent(std::string& out, const workload::TraceEvent& event) {
  PutU8(out, static_cast<uint8_t>(event.kind));
  PutU32(out, event.schedule);
  PutU32(out, event.parent);
  PutU32(out, event.a);
  PutU32(out, event.b);
  PutU32(out, static_cast<uint32_t>(event.name.size()));
  out.append(event.name);
}

bool GetEvent(Cursor& cur, workload::TraceEvent& event) {
  const uint8_t kind = cur.GetU8();
  event.schedule = cur.GetU32();
  event.parent = cur.GetU32();
  event.a = cur.GetU32();
  event.b = cur.GetU32();
  const uint32_t name_len = cur.GetU32();
  event.name = cur.GetBytes(name_len);
  if (!cur.ok) return false;
  if (kind > static_cast<uint8_t>(workload::TraceEventKind::kTag)) {
    return false;
  }
  event.kind = static_cast<workload::TraceEventKind>(kind);
  return true;
}

bool DecodePayload(const uint8_t* data, size_t size, WalRecord& record,
                   std::string& error) {
  Cursor cur{data, size};
  const uint8_t type = cur.GetU8();
  record.seq = cur.GetU64();
  if (!cur.ok || type < static_cast<uint8_t>(WalRecordType::kOpen) ||
      type > static_cast<uint8_t>(WalRecordType::kStreamCursor)) {
    error = "unknown record type";
    return false;
  }
  record.type = static_cast<WalRecordType>(type);
  switch (record.type) {
    case WalRecordType::kOpen: {
      const uint32_t len = cur.GetU32();
      record.options = cur.GetBytes(len);
      break;
    }
    case WalRecordType::kAppend: {
      const uint32_t count = cur.GetU32();
      if (!cur.ok || count > kMaxWalPayloadBytes / 21) {
        error = "implausible event count";
        return false;
      }
      record.events.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!GetEvent(cur, record.events[i])) {
          error = "undecodable event";
          return false;
        }
      }
      break;
    }
    case WalRecordType::kSeal: {
      record.accepted = cur.GetU64();
      record.rejected = cur.GetU64();
      record.certifiable = cur.GetU8() != 0;
      break;
    }
    case WalRecordType::kCommitWatermark: {
      record.commit_through = cur.GetU64();
      break;
    }
    case WalRecordType::kStreamCursor: {
      record.edge = cur.GetU64();
      record.cursor_seq = cur.GetU64();
      const uint32_t len = cur.GetU32();
      record.mapping = cur.GetBytes(len);
      break;
    }
    case WalRecordType::kEvict:
    case WalRecordType::kResume:
    case WalRecordType::kClose:
      break;
  }
  if (!cur.ok) {
    error = "short payload";
    return false;
  }
  if (cur.pos != size) {
    error = "trailing bytes in payload";
    return false;
  }
  return true;
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

// Fsyncs the directory containing `path` so a just-renamed file's
// directory entry is durable (the tmp+rename atomic-publish idiom).
Status SyncParentDir(const std::string& path) {
  std::string dir = ".";
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // Table generated once from the reflected polynomial 0xEDB88320.
  static const uint32_t* const kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

StatusOr<FsyncPolicy> ParseFsyncPolicy(const std::string& text) {
  if (text == "none") return FsyncPolicy::kNone;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown fsync policy '" + text +
                                 "' (want always|interval|none)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "?";
}

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kOpen:
      return "OPEN";
    case WalRecordType::kAppend:
      return "APPEND";
    case WalRecordType::kSeal:
      return "SEAL";
    case WalRecordType::kEvict:
      return "EVICT";
    case WalRecordType::kResume:
      return "RESUME";
    case WalRecordType::kClose:
      return "CLOSE";
    case WalRecordType::kCommitWatermark:
      return "COMMIT";
    case WalRecordType::kStreamCursor:
      return "CURSOR";
  }
  return "?";
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  PutU8(payload, static_cast<uint8_t>(record.type));
  PutU64(payload, record.seq);
  switch (record.type) {
    case WalRecordType::kOpen:
      PutU32(payload, static_cast<uint32_t>(record.options.size()));
      payload.append(record.options);
      break;
    case WalRecordType::kAppend:
      PutU32(payload, static_cast<uint32_t>(record.events.size()));
      for (const auto& event : record.events) PutEvent(payload, event);
      break;
    case WalRecordType::kSeal:
      PutU64(payload, record.accepted);
      PutU64(payload, record.rejected);
      PutU8(payload, record.certifiable ? 1 : 0);
      break;
    case WalRecordType::kCommitWatermark:
      PutU64(payload, record.commit_through);
      break;
    case WalRecordType::kStreamCursor:
      PutU64(payload, record.edge);
      PutU64(payload, record.cursor_seq);
      PutU32(payload, static_cast<uint32_t>(record.mapping.size()));
      payload.append(record.mapping);
      break;
    case WalRecordType::kEvict:
    case WalRecordType::kResume:
    case WalRecordType::kClose:
      break;
  }
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

StatusOr<WalReadResult> ReadWalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  if (content.size() < sizeof(kWalMagic) ||
      std::memcmp(content.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a comptx WAL (bad magic)");
  }

  WalReadResult result;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(content.data());
  size_t pos = sizeof(kWalMagic);
  result.valid_bytes = pos;
  while (pos < content.size()) {
    const auto fail = [&](const std::string& why) {
      result.clean = false;
      result.damage = "lsn " + std::to_string(result.records.size()) +
                      " at offset " + std::to_string(pos) + ": " + why;
    };
    if (pos + 8 > content.size()) {
      fail("torn frame header");
      break;
    }
    Cursor header{data + pos, 8};
    const uint32_t len = header.GetU32();
    const uint32_t crc = header.GetU32();
    if (len < 9 || len > kMaxWalPayloadBytes) {
      fail("frame length " + std::to_string(len) + " out of range");
      break;
    }
    if (pos + 8 + len > content.size()) {
      fail("torn frame payload");
      break;
    }
    if (Crc32(data + pos + 8, len) != crc) {
      fail("crc mismatch");
      break;
    }
    WalRecord record;
    std::string error;
    if (!DecodePayload(data + pos + 8, len, record, error)) {
      fail(error);
      break;
    }
    result.records.push_back(std::move(record));
    pos += 8 + len;
    result.valid_bytes = pos;
  }
  result.truncation_lsn = result.records.size();
  return result;
}

Status RepairWalFile(const std::string& path, const WalReadResult& result) {
  if (result.clean) return Status::OK();
  if (::truncate(path.c_str(), static_cast<off_t>(result.valid_bytes)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(std::string path, int fd, FsyncPolicy policy,
                     Counters* counters, uint64_t next_lsn)
    : path_(std::move(path)),
      policy_(policy),
      counters_(counters),
      fd_(fd),
      next_lsn_(next_lsn) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                       FsyncPolicy policy,
                                                       Counters* counters) {
  const int fd = ::open(path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  std::unique_ptr<WalWriter> writer(
      new WalWriter(path, fd, policy, counters, 0));
  COMPTX_RETURN_IF_ERROR(writer->WriteFully(kWalMagic, sizeof(kWalMagic)));
  if (counters != nullptr) {
    counters->wal_bytes.fetch_add(sizeof(kWalMagic),
                                  std::memory_order_relaxed);
  }
  return writer;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::OpenExisting(
    const std::string& path, FsyncPolicy policy, Counters* counters,
    const WalReadResult& scan) {
  if (!scan.clean) {
    return Status::FailedPrecondition(
        "refusing to append to a torn WAL (repair first): " + scan.damage);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, policy, counters, scan.records.size()));
}

Status WalWriter::WriteFully(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path_);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<uint64_t> WalWriter::Append(const WalRecord& record) {
  const std::string frame = EncodeWalRecord(record);
  std::lock_guard<std::mutex> lock(mu_);
  COMPTX_RETURN_IF_ERROR(WriteFully(frame.data(), frame.size()));
  ++appended_;
  if (counters_ != nullptr) {
    counters_->wal_bytes.fetch_add(frame.size(), std::memory_order_relaxed);
    if (record.type == WalRecordType::kAppend) {
      counters_->wal_appends.fetch_add(1, std::memory_order_relaxed);
      counters_->wal_append_events.fetch_add(record.events.size(),
                                             std::memory_order_relaxed);
    }
  }
  return next_lsn_.fetch_add(1, std::memory_order_relaxed);
}

Status WalWriter::SyncForAck() {
  if (policy_ != FsyncPolicy::kAlways) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  return SyncLocked(lock);
}

Status WalWriter::SyncNow() {
  std::unique_lock<std::mutex> lock(mu_);
  return SyncLocked(lock);
}

Status WalWriter::SyncLocked(std::unique_lock<std::mutex>& lock) {
  // Group commit: the target is the append watermark at entry.  Whoever
  // finds no sync in flight becomes the leader and fsyncs everything
  // appended so far; late arrivals whose appends are already covered
  // return without touching the disk.
  const uint64_t target = appended_;
  while (durable_ < target) {
    if (sync_in_progress_) {
      cv_.wait(lock);
      continue;
    }
    sync_in_progress_ = true;
    const uint64_t covered = appended_;
    // Capture the fd before dropping the lock: CompactThrough swaps fd_,
    // and it waits for sync_in_progress_ to clear, so this descriptor
    // stays open for the whole fsync.
    const int fd = fd_;
    lock.unlock();
    const int rc = ::fsync(fd);
    lock.lock();
    sync_in_progress_ = false;
    if (rc == 0 && covered > durable_) durable_ = covered;
    if (counters_ != nullptr) {
      counters_->fsyncs.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
    if (rc != 0) return ErrnoStatus("fsync", path_);
  }
  return Status::OK();
}

Status WalWriter::CompactThrough(uint64_t watermark, const WalRecord& open,
                                 const WalRecord& seal) {
  std::unique_lock<std::mutex> lock(mu_);
  // A group-commit leader may be mid-fsync on fd_ with mu_ released;
  // wait it out so closing/swapping fd_ below never races the fsync.
  while (sync_in_progress_) cv_.wait(lock);
  // Re-scan our own file (every frame was written unbuffered, and the
  // lock holds appends off, so the scan is complete and clean).
  COMPTX_ASSIGN_OR_RETURN(WalReadResult scan, ReadWalFile(path_));
  if (!scan.clean) {
    return Status::Internal("own WAL scans dirty during compaction: " +
                            scan.damage);
  }
  std::vector<WalRecord> records;
  records.push_back(open);
  for (auto& record : scan.records) {
    if (record.type == WalRecordType::kCommitWatermark) {
      // A commit watermark occupies exactly one event seq slot; keep it
      // only while the snapshot does not cover it.
      if (record.seq > watermark) records.push_back(std::move(record));
      continue;
    }
    if (record.type == WalRecordType::kStreamCursor) {
      // Cursor records carry incremental remap deltas: recovering an
      // edge's translation tables folds every delta, so compaction must
      // never drop one (they are a few dozen bytes each).
      records.push_back(std::move(record));
      continue;
    }
    if (record.type != WalRecordType::kAppend || record.events.empty()) {
      continue;
    }
    if (record.seq + record.events.size() - 1 > watermark) {
      records.push_back(std::move(record));
    }
  }
  records.push_back(seal);
  // +2 for the frames just added: dropped counts frames of the old file
  // that the new file no longer carries.
  const uint64_t dropped = scan.records.size() + 2 - records.size();

  std::string content(kWalMagic, sizeof(kWalMagic));
  for (const auto& record : records) content += EncodeWalRecord(record);

  const std::string tmp = path_ + ".tmp";
  const int tmp_fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (tmp_fd < 0) return ErrnoStatus("open", tmp);
  size_t left = content.size();
  const char* p = content.data();
  while (left > 0) {
    const ssize_t n = ::write(tmp_fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(tmp_fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("write", tmp);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(tmp_fd) != 0) {
    ::close(tmp_fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync", tmp);
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::close(tmp_fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("rename", tmp);
  }
  COMPTX_RETURN_IF_ERROR(SyncParentDir(path_));
  // The old fd now points at the unlinked inode; appends must go to the
  // rewritten file.
  ::close(fd_);
  fd_ = tmp_fd;  // same inode as the renamed file: keep appending to it
  if (counters_ != nullptr) {
    counters_->fsyncs.fetch_add(1, std::memory_order_relaxed);
    counters_->wal_bytes.fetch_add(content.size(), std::memory_order_relaxed);
    counters_->records_truncated.fetch_add(dropped, std::memory_order_relaxed);
  }
  // Everything in the new file is already durable; wake any SyncLocked
  // waiter whose target the compaction just covered.
  ++appended_;
  durable_ = appended_;
  next_lsn_.store(records.size(), std::memory_order_relaxed);
  cv_.notify_all();
  return Status::OK();
}

}  // namespace comptx::durability
