#ifndef COMPTX_DURABILITY_WAL_H_
#define COMPTX_DURABILITY_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::durability {

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320, init/xorout 0xFFFFFFFF) over
/// `data`.  Implemented in-repo so the WAL has no compression-library
/// dependency; the standard check value is Crc32("123456789") ==
/// 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);

/// When an fsync is issued for a session WAL (DESIGN.md §11.2).
///
///   kAlways   - group commit: every acked APPEND is durable before the
///               ack (concurrent producers share one fsync).
///   kInterval - a background flusher syncs dirty logs every
///               fsync_interval_ms; a crash can lose up to one interval
///               of *acked* appends to a power failure (not to a process
///               kill: the data is already in the page cache).
///   kNone     - never fsync; durability against process death only.
enum class FsyncPolicy : uint8_t { kNone = 0, kInterval = 1, kAlways = 2 };

StatusOr<FsyncPolicy> ParseFsyncPolicy(const std::string& text);
const char* FsyncPolicyName(FsyncPolicy policy);

/// WAL record types.  Lifecycle markers double as the recovery state
/// machine's input alphabet (DESIGN.md §11.4): the *last* lifecycle
/// marker in the log decides whether a session is rebuilt into memory
/// (SEAL / RESUME / none), left on disk awaiting a resume (EVICT), or
/// deleted (CLOSE).
enum class WalRecordType : uint8_t {
  kOpen = 1,    // session created; payload carries the OPEN options text
  kAppend = 2,  // one acked APPEND batch; payload carries the events
  kSeal = 3,    // snapshot watermark: events <= seq are covered on disk
  kEvict = 4,   // idle session persisted-then-evicted; state stays on disk
  kResume = 5,  // an evicted session was re-opened from disk
  kClose = 6,   // client CLOSE acked; files are deleted (tolerate crash
                // between marker and unlink by deleting at recovery)
  kCommitWatermark = 7,  // commit_through watermark: every root created
                         // before `commit_through` is committed.  Consumes
                         // one event seq slot so replay interleaves it at
                         // its original stream position, and compaction
                         // can drop records the latest snapshot covers.
  kStreamCursor = 8,     // distributed ingest cursor: the downstream
                         // session has durably applied the upstream edge's
                         // stream through `cursor_seq`, together with the
                         // index-mapping delta that batch created.  Does
                         // not consume an event seq slot (certifier replay
                         // skips it); resubscribe-from-LSN folds these to
                         // recover per-edge cursors and remap tables.
};

const char* WalRecordTypeName(WalRecordType type);

/// One decoded WAL record.  `seq` numbers events, 1-based and contiguous
/// per session: for kAppend it is the sequence number of the *first*
/// event in the batch; for every other type it is the event watermark at
/// the time the record was written (how many events precede it).  The LSN
/// of a record is its ordinal position in the file (0-based, counted over
/// valid frames only).
struct WalRecord {
  WalRecordType type = WalRecordType::kOpen;
  uint64_t seq = 0;
  std::vector<workload::TraceEvent> events;  // kAppend
  std::string options;                       // kOpen
  uint64_t accepted = 0;                     // kSeal: certifier counters
  uint64_t rejected = 0;                     //   at the snapshot watermark
  bool certifiable = true;                   // kSeal: verdict at watermark
  uint64_t commit_through = 0;               // kCommitWatermark: root count
  uint64_t edge = 0;                         // kStreamCursor: edge id
  uint64_t cursor_seq = 0;                   // kStreamCursor: upstream seq
  std::string mapping;                       // kStreamCursor: opaque delta
                                             //   (distributed-layer codec)
};

/// Durability counter block, plain atomics so it can live inside
/// service::ServiceMetrics without a dependency from durability on the
/// service layer.  All counters are cumulative per process.
struct Counters {
  std::atomic<uint64_t> wal_appends{0};        // APPEND records written
  std::atomic<uint64_t> wal_append_events{0};  // events carried by those
                                               // records (ratio to
                                               // wal_appends = group-commit
                                               // amortization)
  std::atomic<uint64_t> wal_bytes{0};          // bytes written to WALs
  std::atomic<uint64_t> fsyncs{0};             // fsync(2) calls issued
  std::atomic<uint64_t> snapshots_written{0};  // snapshot files published
  std::atomic<uint64_t> sessions_recovered{0}; // rebuilt from disk
  std::atomic<uint64_t> records_truncated{0};  // frames dropped: torn-tail
                                               // cuts + compaction drops
  std::atomic<uint64_t> recovered_events{0};   // events replayed from disk
  std::atomic<uint64_t> recovery_mismatches{0};// differential-check fails
};

/// Result of scanning a WAL file.  The reader never fails on damage past
/// the header: it returns every record up to the first bad frame and
/// describes the damage.  `truncation_lsn` is the LSN the file would be
/// truncated to by repair — equal to records.size(), i.e. the first frame
/// that did not decode.
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;     // offset just past the last valid frame
  uint64_t truncation_lsn = 0;  // == records.size()
  bool clean = true;            // false iff bytes follow valid_bytes
  std::string damage;           // human-readable reason scanning stopped
};

/// Scans `path`.  Returns an error only when the file cannot be read at
/// all or its 8-byte magic header is wrong (not a WAL); torn or corrupt
/// tails are reported through WalReadResult, never as a Status.
StatusOr<WalReadResult> ReadWalFile(const std::string& path);

/// Truncates `path` to `result.valid_bytes`, discarding a torn tail in
/// place.  No-op when the scan was clean.
Status RepairWalFile(const std::string& path, const WalReadResult& result);

/// Encodes one record as a framed byte string:
///   [u32 payload_len][u32 crc32(payload)][payload]
/// with payload = [u8 type][u64 seq][type-specific body].  Exposed for
/// tests and comptx_walcheck.
std::string EncodeWalRecord(const WalRecord& record);

/// Append-only writer for one session's WAL.  Thread safety: Append and
/// the Sync* entry points may be called from different threads; the
/// writer serializes internally.  Group commit: concurrent SyncForAck
/// callers ride one fsync (the classic durable-LSN scheme).
class WalWriter {
 public:
  /// Creates (or truncates) the file and writes the magic header.
  static StatusOr<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                     FsyncPolicy policy,
                                                     Counters* counters);

  /// Opens an existing, already-repaired WAL for appending.  `scan` must
  /// be a clean read of the current file contents (recovery repairs the
  /// tail first).
  static StatusOr<std::unique_ptr<WalWriter>> OpenExisting(
      const std::string& path, FsyncPolicy policy, Counters* counters,
      const WalReadResult& scan);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (write(2) to the file, no fsync).  Returns the
  /// record's LSN.
  StatusOr<uint64_t> Append(const WalRecord& record);

  /// Makes everything appended so far durable when the policy is kAlways;
  /// a no-op otherwise.  This is the ack barrier for APPEND requests.
  Status SyncForAck();

  /// Fsyncs if anything was written since the last sync, regardless of
  /// policy.  Used by the interval flusher and by lifecycle markers
  /// (EVICT/CLOSE), which must be durable under every policy.
  Status SyncNow();

  /// Compacts the WAL after a snapshot at event watermark `watermark`:
  /// atomically rewrites the file (temp + rename + directory sync) as
  /// [open][APPEND records with events past the watermark][seal],
  /// dropping every frame the snapshot covers (accounted in
  /// records_truncated).  Appends continue against the new file; blocks
  /// concurrent Append for the duration.
  Status CompactThrough(uint64_t watermark, const WalRecord& open,
                        const WalRecord& seal);

  uint64_t next_lsn() const { return next_lsn_.load(std::memory_order_relaxed); }

 private:
  WalWriter(std::string path, int fd, FsyncPolicy policy, Counters* counters,
            uint64_t next_lsn);

  Status WriteFully(const void* data, size_t size);
  Status SyncLocked(std::unique_lock<std::mutex>& lock);

  const std::string path_;
  const FsyncPolicy policy_;
  Counters* const counters_;

  std::mutex mu_;               // file writes + group-commit state
  std::condition_variable cv_;  // wakes SyncForAck waiters
  int fd_ = -1;
  uint64_t appended_ = 0;  // monotone count of write(2) batches
  uint64_t durable_ = 0;   // appended_ value covered by the last fsync
  bool sync_in_progress_ = false;

  std::atomic<uint64_t> next_lsn_{0};
};

/// The 8-byte file magic ("comptxw1") and the maximum frame payload the
/// reader accepts.  A frame claiming more is treated as corruption: the
/// wire protocol caps request frames at 4 MiB, so no legitimate record
/// approaches this.
inline constexpr char kWalMagic[8] = {'c', 'o', 'm', 'p', 't', 'x', 'w', '1'};
inline constexpr uint32_t kMaxWalPayloadBytes = 8u << 20;

}  // namespace comptx::durability

#endif  // COMPTX_DURABILITY_WAL_H_
