#ifndef COMPTX_DURABILITY_SNAPSHOT_H_
#define COMPTX_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "online/state_io.h"
#include "util/status_or.h"

namespace comptx::durability {

/// A snapshot file: one CRC-framed image of a session's certifier state
/// plus the metadata recovery needs to splice the WAL suffix back on
/// (DESIGN.md §11.3).  `event_seq` is the watermark: every event with
/// 1-based sequence number <= event_seq is reflected in `state`, so
/// recovery replays only WAL events with seq > event_seq.
struct Snapshot {
  uint64_t session_id = 0;
  uint64_t event_seq = 0;       // events covered by the image
  std::string options;          // the session's OPEN options text
  online::CertifierState state;
};

/// Serializes `snapshot` into the on-disk byte string:
///   magic "comptxs1" | u32 payload_len | u32 crc32(payload) | payload
std::string EncodeSnapshot(const Snapshot& snapshot);

/// Decodes a snapshot file image.  Unlike the WAL reader there is no
/// partial result: a snapshot is valid as a whole or not at all (it is
/// published atomically, so damage means disk corruption, not a torn
/// write mid-stream — recovery then falls back to the WAL alone if the
/// log was not yet truncated, or refuses the session if it was).
StatusOr<Snapshot> DecodeSnapshot(const std::string& bytes);

/// Writes `snapshot` to `path` atomically: temp file in the same
/// directory, fsync, rename over `path`, fsync the directory.
Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot);

/// Reads and decodes `path`.  kNotFound when the file does not exist;
/// kInvalidArgument / kOutOfRange when it exists but does not decode.
StatusOr<Snapshot> ReadSnapshotFile(const std::string& path);

inline constexpr char kSnapshotMagic[8] = {'c', 'o', 'm', 'p',
                                           't', 'x', 's', '1'};

}  // namespace comptx::durability

#endif  // COMPTX_DURABILITY_SNAPSHOT_H_
