#ifndef COMPTX_DURABILITY_MANAGER_H_
#define COMPTX_DURABILITY_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "online/certifier.h"
#include "util/status_or.h"

namespace comptx::durability {

/// Server-level durability configuration (comptx_serve --data-dir etc.).
/// Durability is off when `dir` is empty; everything in the service layer
/// gates on enabled().
struct Options {
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  uint64_t fsync_interval_ms = 5;
  /// Snapshot (and compact the WAL) after this many newly ingested
  /// events per session; 0 disables periodic snapshots (eviction and
  /// graceful shutdown still snapshot).
  uint64_t snapshot_events = 4096;
  /// Cross-check every recovered session against the batch oracle at
  /// startup (the RecoveryVerifier mode); failures poison server init.
  bool verify_recovery = false;

  bool enabled() const { return !dir.empty(); }
};

class Manager;

/// The durability face of one live session.  Division of labor with the
/// service layer (DESIGN.md §11.2):
///
///   * producers call LogAppend + SyncForAck under the session's append
///     lock, so WAL order == queue order == ingest order — the property
///     recovery replay depends on;
///   * the single drain worker calls OnIngested/SnapshotDue/
///     WriteSnapshot, so snapshots see a quiescent certifier;
///   * lifecycle transitions (evict/close/shutdown) run on drained
///     sessions only.
///
/// A crash between LogAppend and the client's ack can leave *unacked*
/// events durable.  That is harmless over-persistence: logged events are
/// always a prefix-extension of the acked stream, recovery replays them
/// once, and a resuming client that queries the recovered event count
/// continues from there without duplicating or losing anything.
class SessionLog {
 public:
  ~SessionLog();

  SessionLog(const SessionLog&) = delete;
  SessionLog& operator=(const SessionLog&) = delete;

  /// Appends one APPEND record covering `events` (assigns their sequence
  /// numbers).  Caller must serialize with other LogAppend calls.
  Status LogAppend(const std::vector<workload::TraceEvent>& events);

  /// Appends one kStreamCursor record: the session has durably applied
  /// upstream edge `edge` through `cursor_seq`, creating the (opaque)
  /// remap `mapping` delta.  Written *after* the batch's LogAppend, so a
  /// crash between the two refetches the batch — a tolerated duplicate
  /// (name-keyed dedup upstream), never a loss.  Cursor records do not
  /// consume event seq slots.  Caller serializes with LogAppend.
  Status LogStreamCursor(uint64_t edge, uint64_t cursor_seq,
                         const std::string& mapping);

  /// Marks this session as a stream (replication-log) session: the WAL
  /// is the upstream subscribers' resync source, so it must retain the
  /// full event history.  SnapshotDue() becomes false and the persist
  /// paths skip snapshot+compaction (they still sync and write lifecycle
  /// markers); recovery replays the whole log instead.
  void SetSnapshotExempt();

  /// Ack barrier: under the `always` policy, blocks until every record
  /// appended so far is fsynced (group commit); otherwise a no-op.
  Status SyncForAck();

  /// The drain worker ingested `n` more events.
  void OnIngested(size_t n);

  /// True when enough events were ingested since the last snapshot.
  bool SnapshotDue() const;

  /// Captures `certifier`, publishes the snapshot atomically, and
  /// compacts the WAL past the watermark.  Call only from the drain
  /// worker (or on a quiesced session).
  Status WriteSnapshot(const online::Certifier& certifier);

  /// Snapshot + durable EVICT marker: the session's files stay on disk
  /// for a later resume.  Session must be drained.
  Status PersistEvicted(const online::Certifier& certifier);

  /// Snapshot + fsync for graceful shutdown; no lifecycle marker, so a
  /// restart rebuilds the session as live.
  Status PersistShutdown(const online::Certifier& certifier);

  /// Durable CLOSE marker, then removes both files.  The marker makes a
  /// crash between ack and unlink unambiguous: recovery deletes any
  /// session whose log ends in CLOSE.
  Status MarkClosedAndRemove();

  uint64_t id() const { return id_; }
  uint64_t logged_events() const {
    return logged_.load(std::memory_order_relaxed);
  }

 private:
  friend class Manager;
  SessionLog(Manager* manager, uint64_t id, std::string options_text);

  Status SyncIfDirty();  // interval flusher hook

  Manager* const manager_;
  const uint64_t id_;
  const std::string options_text_;

  /// Guards the writer_ pointer itself against the one cross-thread
  /// mutation: MarkClosedAndRemove resetting it while the interval
  /// flusher is inside SyncIfDirty.  Held across the flusher's SyncNow
  /// so the writer cannot be destroyed under a blocking fsync.  All
  /// other writer_ uses run on session-serialized paths (producer
  /// append lock / single drain worker) strictly before the close.
  std::mutex writer_mu_;
  std::unique_ptr<WalWriter> writer_;
  std::atomic<uint64_t> logged_{0};    // events appended to the WAL
  std::atomic<uint64_t> ingested_{0};  // events the worker consumed
  std::atomic<uint64_t> snapshotted_{0};  // ingest watermark of last snap
  std::atomic<bool> snapshot_exempt_{false};  // stream session: never snap
};

/// Owns the durability directory: creates per-session logs, re-opens
/// them for recovery/resume, and runs the interval-fsync flusher thread.
class Manager {
 public:
  static StatusOr<std::unique_ptr<Manager>> Start(const Options& options,
                                                  Counters* counters);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  const Options& options() const { return options_; }
  Counters* counters() const { return counters_; }

  /// Creates the WAL for a fresh session and writes + fsyncs its OPEN
  /// record (session existence is durable under every policy before the
  /// OPEN ack).
  StatusOr<std::shared_ptr<SessionLog>> CreateLog(
      uint64_t id, const std::string& options_text);

  /// Re-opens the log of a recovered or resumed session: repairs any
  /// torn tail in place, recreates a missing WAL from the snapshot's
  /// metadata, and (for resume) appends a durable RESUME marker.
  StatusOr<std::shared_ptr<SessionLog>> AdoptLog(
      const SessionDurableState& state, bool resume);

  std::vector<uint64_t> ListSessionIds() const {
    return ListDurableSessionIds(options_.dir);
  }
  StatusOr<SessionDurableState> ReadState(uint64_t id) const {
    return ReadSessionDurableState(options_.dir, id);
  }
  Status RemoveFiles(uint64_t id) {
    return RemoveSessionFiles(options_.dir, id);
  }

 private:
  explicit Manager(const Options& options, Counters* counters);

  void Register(const std::shared_ptr<SessionLog>& log);
  void FlusherLoop();

  const Options options_;
  Counters* const counters_;

  std::mutex mu_;  // flusher registry + shutdown flag
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<std::weak_ptr<SessionLog>> logs_;
  std::thread flusher_;
};

}  // namespace comptx::durability

#endif  // COMPTX_DURABILITY_MANAGER_H_
