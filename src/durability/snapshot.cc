#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "durability/wal.h"

namespace comptx::durability {

namespace {

// Snapshot payloads reuse the WAL's little-endian primitive layout; the
// codec here is deliberately tiny and local rather than a shared
// "serialization framework".

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint8_t GetU8() {
    if (pos + 1 > size) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }
  uint32_t GetU32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  uint64_t GetU64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  std::string GetBytes(size_t n) {
    if (pos + n > size || n > size) {
      ok = false;
      return std::string();
    }
    std::string v(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return v;
  }
};

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::string EncodeSnapshot(const Snapshot& snapshot) {
  std::string payload;
  PutU64(payload, snapshot.session_id);
  PutU64(payload, snapshot.event_seq);
  PutU64(payload, snapshot.state.accepted);
  PutU64(payload, snapshot.state.rejected);
  PutU8(payload, snapshot.state.certifiable ? 1 : 0);
  PutU32(payload, static_cast<uint32_t>(snapshot.options.size()));
  payload.append(snapshot.options);
  PutU32(payload, static_cast<uint32_t>(snapshot.state.sealed.size()));
  for (const uint32_t root : snapshot.state.sealed) PutU32(payload, root);
  PutU64(payload, snapshot.state.trace.size());
  payload.append(snapshot.state.trace);

  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

StatusOr<Snapshot> DecodeSnapshot(const std::string& bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 8 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("not a comptx snapshot (bad magic)");
  }
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  Cursor header{data + sizeof(kSnapshotMagic), 8};
  const uint32_t len = header.GetU32();
  const uint32_t crc = header.GetU32();
  const size_t payload_off = sizeof(kSnapshotMagic) + 8;
  if (len != bytes.size() - payload_off) {
    return Status::OutOfRange("snapshot length mismatch (truncated file?)");
  }
  if (Crc32(data + payload_off, len) != crc) {
    return Status::OutOfRange("snapshot crc mismatch");
  }

  Cursor cur{data + payload_off, len};
  Snapshot snapshot;
  snapshot.session_id = cur.GetU64();
  snapshot.event_seq = cur.GetU64();
  snapshot.state.accepted = cur.GetU64();
  snapshot.state.rejected = cur.GetU64();
  snapshot.state.certifiable = cur.GetU8() != 0;
  const uint32_t options_len = cur.GetU32();
  snapshot.options = cur.GetBytes(options_len);
  const uint32_t sealed_count = cur.GetU32();
  if (!cur.ok || sealed_count > len / 4) {
    return Status::OutOfRange("snapshot payload undecodable");
  }
  snapshot.state.sealed.reserve(sealed_count);
  for (uint32_t i = 0; i < sealed_count; ++i) {
    snapshot.state.sealed.push_back(cur.GetU32());
  }
  const uint64_t trace_len = cur.GetU64();
  if (!cur.ok || trace_len > len) {
    return Status::OutOfRange("snapshot payload undecodable");
  }
  snapshot.state.trace = cur.GetBytes(trace_len);
  if (!cur.ok || cur.pos != len) {
    return Status::OutOfRange("snapshot payload undecodable");
  }
  return snapshot;
}

Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot) {
  const std::string bytes = EncodeSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  size_t left = bytes.size();
  const char* p = bytes.data();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("write", tmp);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("rename", tmp);
  }
  std::string dir = ".";
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) return ErrnoStatus("open dir", dir);
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return Status::OK();
}

StatusOr<Snapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DecodeSnapshot(buf.str());
}

}  // namespace comptx::durability
