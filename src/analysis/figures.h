#ifndef COMPTX_ANALYSIS_FIGURES_H_
#define COMPTX_ANALYSIS_FIGURES_H_

#include <string>

#include "core/composite_system.h"

namespace comptx::analysis {

/// One of the paper's worked examples, reconstructed as an executable
/// composite system.  The paper prints these as drawings (Figures 1-4);
/// the reconstructions preserve the documented structure and behaviour —
/// see each factory's comment for the fidelity notes.
struct PaperFigure {
  CompositeSystem system;
  std::string title;
  std::string notes;
};

/// Figure 1: a general composite system of order 3 with five composite
/// transactions over five schedules, where T4 and T5 share no schedule and
/// roots exist at several levels.  Demonstrates Defs 4-9 (forest,
/// invocation graph, levels); the execution is Comp-C.
PaperFigure MakeFigure1();

/// Figure 2: two composite transactions whose only interaction is a pair
/// of conflicting leaf operations (o13, o25) on the shared leaf schedule
/// S4.  Demonstrates how conflict and observed order are pulled up
/// (Defs 10-11): the leaf order relates (T1, T2) at the roots.
PaperFigure MakeFigure2();

/// Figure 3: an incorrect execution.  Two roots interact through two
/// disjoint branches whose conflicts are serialized in opposite
/// directions, and the top schedule declares both branch pairs
/// conflicting, so neither order is forgotten: the reduction reaches the
/// last level and then no calculation isolating T1 exists (Def 14 fails;
/// the paper's §3.6).
PaperFigure MakeFigure3();

/// Figure 4: a correct execution with the same two-branch shape as
/// Figure 3, except the top schedule declares the first branch pair
/// (t11, t21) non-conflicting.  The order pulled up for that pair is
/// forgotten at the common schedule (Def 10.3, the paper's §3.7) and the
/// reduction completes.  Running this system with
/// ReductionOptions::forgetting = false makes it incorrect — the E8
/// ablation.
PaperFigure MakeFigure4();

}  // namespace comptx::analysis

#endif  // COMPTX_ANALYSIS_FIGURES_H_
