#include "analysis/models.h"

#include <vector>

#include "analysis/builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::analysis {

ModelSystem MakeSagaModel(uint32_t sagas, uint32_t steps, bool interleaved) {
  COMPTX_CHECK_GE(sagas, 1u);
  COMPTX_CHECK_GE(steps, 2u);
  CompositeSystemBuilder b;
  ScheduleId manager = b.Schedule("saga_manager");
  ScheduleId executor = b.Schedule("step_executor");

  // saga i -> its step subtransactions -> one data operation each.
  std::vector<std::vector<NodeId>> step_txn(sagas);
  std::vector<std::vector<NodeId>> step_op(sagas);
  for (uint32_t i = 0; i < sagas; ++i) {
    NodeId saga = b.Root(manager, StrCat("saga", i + 1));
    for (uint32_t j = 0; j < steps; ++j) {
      NodeId step =
          b.Sub(saga, executor, StrCat("s", i + 1, ".", j + 1));
      step_txn[i].push_back(step);
      step_op[i].push_back(
          b.Leaf(step, StrCat("op", i + 1, ".", j + 1)));
    }
    // Saga steps run strictly one after another.
    for (uint32_t j = 0; j + 1 < steps; ++j) {
      b.IntraStrong(saga, step_txn[i][j], step_txn[i][j + 1]);
      b.StrongOut(step_txn[i][j], step_txn[i][j + 1]);    // manager output
      b.StrongIn(executor, step_txn[i][j], step_txn[i][j + 1]);  // Def 4.7
      b.StrongOut(step_op[i][j], step_op[i][j + 1]);      // Def 3.3
    }
  }

  // Data conflicts: step j of every saga touches the same item, so steps
  // with equal index conflict across sagas.  The executor's serialization
  // models the classic overtaking interleaving: saga order on the first
  // item, *reverse* saga order on the last one.
  for (uint32_t i = 0; i < sagas; ++i) {
    for (uint32_t k = i + 1; k < sagas; ++k) {
      for (uint32_t j = 0; j < steps; ++j) {
        b.Conflict(step_op[i][j], step_op[k][j]);
        const bool reverse = interleaved && (j + 1 == steps);
        if (reverse) {
          b.WeakOut(step_op[k][j], step_op[i][j]);
        } else {
          b.WeakOut(step_op[i][j], step_op[k][j]);
        }
      }
    }
  }
  // NOTE: the saga manager deliberately declares *no* conflicts between
  // steps of different sagas — saga semantics say committed steps are
  // final and interleavings compensatable, i.e., the step operations
  // commute at the manager level.  That declaration is what lets Comp-C
  // forget the opposing data-level orders.

  ModelSystem model;
  model.system = std::move(b.Take());
  model.title = StrCat("Sagas (", sagas, " sagas x ", steps, " steps, ",
                       interleaved ? "interleaved" : "back-to-back", ")");
  model.notes =
      "Sagas as open nested composite transactions: steps conflict on "
      "data at the shared step executor, but the saga manager declares "
      "them commuting.  The interleaved variant is rejected by flat "
      "conflict serializability and accepted by Comp-C via forgetting — "
      "exactly the saga relaxation (paper §4).";
  return model;
}

ModelSystem MakeFederatedModel(uint32_t sites, bool consistent_sites) {
  COMPTX_CHECK_GE(sites, 2u);
  CompositeSystemBuilder b;
  ScheduleId gateway = b.Schedule("federation_gateway");
  std::vector<ScheduleId> site_ids;
  for (uint32_t k = 0; k < sites; ++k) {
    site_ids.push_back(b.Schedule(StrCat("site", k + 1)));
  }

  NodeId g1 = b.Root(gateway, "G1");
  NodeId g2 = b.Root(gateway, "G2");
  for (uint32_t k = 0; k < sites; ++k) {
    NodeId g1k = b.Sub(g1, site_ids[k], StrCat("g1@s", k + 1));
    NodeId g2k = b.Sub(g2, site_ids[k], StrCat("g2@s", k + 1));
    NodeId o1 = b.Leaf(g1k, StrCat("g1.op@s", k + 1));
    NodeId o2 = b.Leaf(g2k, StrCat("g2.op@s", k + 1));
    // A purely local transaction sits between the two global branches at
    // this site: the indirect conflict no participant can see globally.
    NodeId local = b.Root(site_ids[k], StrCat("L", k + 1));
    NodeId lo = b.Leaf(local, StrCat("l.op@s", k + 1));
    // Site k serializes: first-global < local < second-global.  All sites
    // agree on G1 first unless `consistent_sites` is false, in which case
    // the last site reverses — the classical federated anomaly.
    const bool reversed = !consistent_sites && (k + 1 == sites);
    NodeId first = reversed ? o2 : o1;
    NodeId second = reversed ? o1 : o2;
    b.Conflict(first, lo);
    b.WeakOut(first, lo);
    b.Conflict(lo, second);
    b.WeakOut(lo, second);
  }

  ModelSystem model;
  model.system = std::move(b.Take());
  model.title = StrCat("Federated transactions (", sites, " sites, ",
                       consistent_sites ? "consistent" : "inconsistent",
                       " site serializations)");
  model.notes =
      "Global transactions fan out from a federation gateway to "
      "autonomous sites that also run local transactions.  The local "
      "transactions create indirect conflicts: each site is perfectly "
      "serializable on its own, but inconsistent site-level orders chain "
      "through the locals into a global cycle — visible only to the "
      "composite criterion (paper §4's federated-transactions claim).";
  return model;
}

ModelSystem MakeDistributedTransactionModel(uint32_t transactions,
                                            uint32_t sites) {
  COMPTX_CHECK_GE(transactions, 2u);
  COMPTX_CHECK_GE(sites, 1u);
  CompositeSystemBuilder b;
  ScheduleId coordinator = b.Schedule("coordinator");
  std::vector<ScheduleId> site_ids;
  for (uint32_t k = 0; k < sites; ++k) {
    site_ids.push_back(b.Schedule(StrCat("site", k + 1)));
  }

  std::vector<NodeId> roots;
  std::vector<std::vector<NodeId>> branch(transactions);
  std::vector<std::vector<NodeId>> ops(transactions);
  for (uint32_t t = 0; t < transactions; ++t) {
    NodeId root = b.Root(coordinator, StrCat("T", t + 1));
    roots.push_back(root);
    for (uint32_t k = 0; k < sites; ++k) {
      NodeId sub = b.Sub(root, site_ids[k], StrCat("T", t + 1, "@s", k + 1));
      branch[t].push_back(sub);
      ops[t].push_back(b.Leaf(sub, StrCat("w", t + 1, "@s", k + 1)));
    }
    // The coordinator drives its branches sequentially (prepare order).
    for (uint32_t k = 0; k + 1 < sites; ++k) {
      b.IntraStrong(root, branch[t][k], branch[t][k + 1]);
      b.StrongOut(branch[t][k], branch[t][k + 1]);
    }
  }
  // Global lock-step: transaction t completes entirely before t+1 starts
  // (strong input order at the coordinator, Def 1's sequential order).
  for (uint32_t t = 0; t + 1 < transactions; ++t) {
    b.StrongIn(coordinator, roots[t], roots[t + 1]);
  }
  // Def 3.3 at the coordinator: the strong input order forces strong
  // output orders over all branch pairs; Def 4.7 passes them to the
  // sites, where they force strong orders over the data operations.
  for (uint32_t t = 0; t + 1 < transactions; ++t) {
    for (uint32_t u = t + 1; u < transactions; ++u) {
      for (uint32_t k = 0; k < sites; ++k) {
        for (uint32_t k2 = 0; k2 < sites; ++k2) {
          b.StrongOut(branch[t][k], branch[u][k2]);
          if (k == k2) {
            b.StrongIn(site_ids[k], branch[t][k], branch[u][k]);
            b.StrongOut(ops[t][k], ops[u][k]);
          }
        }
      }
    }
  }
  // All writes at one site hit the same item.
  for (uint32_t k = 0; k < sites; ++k) {
    for (uint32_t t = 0; t < transactions; ++t) {
      for (uint32_t u = t + 1; u < transactions; ++u) {
        b.Conflict(ops[t][k], ops[u][k]);
      }
    }
  }

  ModelSystem model;
  model.system = std::move(b.Take());
  model.title = StrCat("Distributed transactions (", transactions,
                       " transactions x ", sites, " sites, 2PC-style)");
  model.notes =
      "Flat distributed transactions under a strict coordinator: strong "
      "(sequential) orders everywhere, Def 1's '<<'.  The execution is "
      "trivially Comp-C with the lock-step serial witness — the composite "
      "model's strong orders recover classical distributed transactions "
      "(paper §4).";
  return model;
}

}  // namespace comptx::analysis
