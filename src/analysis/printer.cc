#include "analysis/printer.h"

#include <sstream>
#include <unordered_set>

#include "core/invocation_graph.h"
#include "util/string_util.h"

namespace comptx::analysis {

std::string NodeName(const CompositeSystem& cs, NodeId id) {
  const std::string& name = cs.node(id).name;
  if (!name.empty()) return name;
  return StrCat("node(", id.index(), ")");
}

namespace {

void AppendRelation(const CompositeSystem& cs, const Relation& rel,
                    const char* label, std::ostringstream& out) {
  if (rel.empty()) return;
  out << "    " << label << ":";
  rel.ForEach([&](NodeId a, NodeId b) {
    out << " " << NodeName(cs, a) << "<" << NodeName(cs, b);
  });
  out << "\n";
}

void AppendTree(const CompositeSystem& cs, NodeId id, int depth,
                std::ostringstream& out) {
  out << std::string(static_cast<size_t>(depth) * 2, ' ')
      << NodeName(cs, id);
  const Node& n = cs.node(id);
  if (n.IsTransaction()) {
    out << " [txn @" << cs.schedule(n.owner_schedule).name << "]";
  } else {
    out << " [leaf]";
  }
  out << "\n";
  for (NodeId child : n.children) AppendTree(cs, child, depth + 1, out);
}

}  // namespace

std::string DescribeSystem(const CompositeSystem& cs) {
  std::ostringstream out;
  auto ig = BuildInvocationGraph(cs);
  out << "composite system: " << cs.ScheduleCount() << " schedules, "
      << cs.NodeCount() << " nodes";
  if (ig.ok()) out << ", order " << ig->order;
  out << "\n";
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    out << "  schedule " << sched.name;
    if (ig.ok()) out << " (level " << ig->schedule_level[s] << ")";
    out << ": " << sched.transactions.size() << " transactions, "
        << sched.conflicts.PairCount() << " conflicts\n";
    if (!sched.conflicts.empty()) {
      out << "    conflicts:";
      sched.conflicts.ForEach([&](NodeId a, NodeId b) {
        out << " {" << NodeName(cs, a) << "," << NodeName(cs, b) << "}";
      });
      out << "\n";
    }
    AppendRelation(cs, sched.weak_output, "weak output", out);
    AppendRelation(cs, sched.strong_output, "strong output", out);
    AppendRelation(cs, sched.weak_input, "weak input", out);
    AppendRelation(cs, sched.strong_input, "strong input", out);
  }
  out << "  forest:\n";
  for (NodeId root : cs.Roots()) AppendTree(cs, root, 2, out);
  return out.str();
}

std::string DescribeFront(const CompositeSystem& cs, const Front& front) {
  std::ostringstream out;
  out << "front level " << front.level << ": {";
  bool first = true;
  for (NodeId id : front.nodes) {
    if (!first) out << ", ";
    out << NodeName(cs, id);
    first = false;
  }
  out << "}\n";
  AppendRelation(cs, front.observed, "observed", out);
  if (!front.conflicts.empty()) {
    out << "    CON:";
    front.conflicts.ForEach([&](NodeId a, NodeId b) {
      out << " {" << NodeName(cs, a) << "," << NodeName(cs, b) << "}";
    });
    out << "\n";
  }
  AppendRelation(cs, front.weak_input, "weak input", out);
  AppendRelation(cs, front.strong_input, "strong input", out);
  return out.str();
}

std::string DescribeReduction(const CompositeSystem& cs,
                              const CompCResult& result) {
  std::ostringstream out;
  for (const Front& front : result.reduction.fronts) {
    out << DescribeFront(cs, front);
  }
  if (result.correct) {
    out << "verdict: Comp-C (level " << result.order
        << " front reached).  serial witness:";
    for (NodeId root : result.serial_order) {
      out << " " << NodeName(cs, root);
    }
    out << "\n";
  } else if (result.failure) {
    out << "verdict: NOT Comp-C.  failed at level " << result.failure->level
        << ", step " << ReductionFailureStepToString(result.failure->step)
        << ": " << result.failure->witness.description << "\n  cycle:";
    for (NodeId id : result.failure->witness.nodes) {
      out << " " << NodeName(cs, id);
    }
    out << "\n";
  }
  return out.str();
}

std::string FrontToDot(const CompositeSystem& cs, const Front& front,
                       const std::vector<NodeId>& highlight) {
  std::unordered_set<uint32_t> highlighted;
  for (NodeId id : highlight) highlighted.insert(id.index());
  std::ostringstream out;
  out << "digraph front_level_" << front.level << " {\n  rankdir=LR;\n";
  for (NodeId id : front.nodes) {
    out << "  n" << id.index() << " [label=\"" << NodeName(cs, id) << "\"";
    if (highlighted.count(id.index()) > 0) {
      out << ", style=filled, fillcolor=lightcoral";
    }
    out << "];\n";
  }
  front.observed.ForEach([&](NodeId a, NodeId b) {
    out << "  n" << a.index() << " -> n" << b.index() << ";\n";
  });
  front.weak_input.ForEach([&](NodeId a, NodeId b) {
    out << "  n" << a.index() << " -> n" << b.index()
        << " [style=dashed];\n";
  });
  front.conflicts.ForEach([&](NodeId a, NodeId b) {
    out << "  n" << a.index() << " -> n" << b.index()
        << " [dir=none, color=red, constraint=false];\n";
  });
  out << "}\n";
  return out.str();
}

std::string ForestToDot(const CompositeSystem& cs) {
  std::ostringstream out;
  out << "digraph forest {\n  rankdir=TB;\n";
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    out << "  n" << v << " [label=\"" << NodeName(cs, NodeId(v)) << "\""
        << (n.IsLeaf() ? ", shape=box" : ", shape=ellipse") << "];\n";
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    for (NodeId child : cs.node(NodeId(v)).children) {
      out << "  n" << v << " -> n" << child.index() << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace comptx::analysis
