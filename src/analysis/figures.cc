#include "analysis/figures.h"

#include "analysis/builder.h"
#include "util/logging.h"

namespace comptx::analysis {

PaperFigure MakeFigure1() {
  CompositeSystemBuilder b;
  // Five schedules: one of level 3, two of level 2, two of level 1.
  ScheduleId s1 = b.Schedule("S1");  // level 3
  ScheduleId s2 = b.Schedule("S2");  // level 2
  ScheduleId s3 = b.Schedule("S3");  // level 2
  ScheduleId s4 = b.Schedule("S4");  // level 1
  ScheduleId s5 = b.Schedule("S5");  // level 1

  // Five composite transactions; T4 and T5 share no schedule, and roots
  // exist at levels 3 (T1, T2), 2 (T3, T4) and 1 (T5).
  NodeId t1 = b.Root(s1, "T1");
  NodeId t2 = b.Root(s1, "T2");
  NodeId t3 = b.Root(s2, "T3");
  NodeId t4 = b.Root(s3, "T4");
  NodeId t5 = b.Root(s4, "T5");

  NodeId a1 = b.Sub(t1, s2, "a1");
  NodeId b1 = b.Sub(t1, s3, "b1");
  NodeId a2 = b.Sub(t2, s2, "a2");

  NodeId c1 = b.Sub(a1, s4, "c1");
  NodeId c2 = b.Sub(a2, s4, "c2");
  NodeId c3 = b.Sub(t3, s4, "c3");

  NodeId d1 = b.Sub(b1, s5, "d1");
  NodeId d4 = b.Sub(t4, s5, "d4");

  NodeId x1 = b.Leaf(c1, "x1");
  NodeId x2 = b.Leaf(c2, "x2");
  NodeId x3 = b.Leaf(c3, "x3");
  b.Leaf(t5, "x5");
  NodeId y1 = b.Leaf(d1, "y1");
  NodeId y4 = b.Leaf(d4, "y4");

  // Top-down orders, with Def 4.7 propagation made explicit.
  b.Conflict(a1, a2);
  b.WeakOut(a1, a2);
  b.WeakIn(s2, a1, a2);

  b.Conflict(c1, c2);
  b.WeakOut(c1, c2);
  b.WeakIn(s4, c1, c2);

  b.Conflict(x1, x2);
  b.WeakOut(x1, x2);
  b.Conflict(x2, x3);
  b.WeakOut(x2, x3);

  b.Conflict(y1, y4);
  b.WeakOut(y1, y4);

  PaperFigure fig;
  fig.system = std::move(b.Take());
  fig.title = "Figure 1: a general composite system (order 3)";
  fig.notes =
      "Reconstruction of the paper's running example: five composite "
      "transactions over five schedulers; T4 and T5 have no schedule in "
      "common but are still comparable through transitive dependencies; "
      "the execution is Comp-C.";
  return fig;
}

PaperFigure MakeFigure2() {
  CompositeSystemBuilder b;
  ScheduleId s1 = b.Schedule("S1");  // level 2
  ScheduleId s2 = b.Schedule("S2");  // level 2
  ScheduleId s3 = b.Schedule("S3");  // level 2
  ScheduleId s4 = b.Schedule("S4");  // the shared leaf schedule, level 1

  NodeId t1 = b.Root(s1, "T1");
  NodeId t2 = b.Root(s2, "T2");
  NodeId t3 = b.Root(s3, "T3");

  NodeId u1 = b.Sub(t1, s4, "u1");
  NodeId u2 = b.Sub(t2, s4, "u2");
  NodeId u3 = b.Sub(t3, s4, "u3");

  NodeId o13 = b.Leaf(u1, "o13");
  NodeId o25 = b.Leaf(u2, "o25");
  NodeId o35 = b.Leaf(u3, "o35");

  // The only interactions: conflicting leaf pairs on S4, both ordered
  // after T1's operation.
  b.Conflict(o13, o25);
  b.WeakOut(o13, o25);
  b.Conflict(o13, o35);
  b.WeakOut(o13, o35);

  PaperFigure fig;
  fig.system = std::move(b.Take());
  fig.title = "Figure 2: conflict and observed order pulled up";
  fig.notes =
      "o13 conflicts with o25 and o35 on the shared schedule S4; the "
      "schedule orders o13 first, so (T1,T2) and (T1,T3) become related "
      "by the observed order and the generalized conflict relation even "
      "though the roots share no schedule.";
  return fig;
}

namespace {

/// Common two-branch shape of Figures 3 and 4: two roots at the level-3
/// schedule S1, each with one subtransaction per branch; branch A
/// serializes T1's work first, branch B serializes T2's work first.
/// Whether this is correct hinges on what S1 says about (t11, t21).
struct TwoBranchSystem {
  CompositeSystemBuilder b;
  ScheduleId s1;
  NodeId t11, t12, t21, t22;
};

TwoBranchSystem MakeTwoBranchSystem() {
  TwoBranchSystem sys;
  CompositeSystemBuilder& b = sys.b;
  sys.s1 = b.Schedule("S1");         // level 3
  ScheduleId s2 = b.Schedule("S2");  // level 2, branch A
  ScheduleId s3 = b.Schedule("S3");  // level 2, branch B
  ScheduleId s4 = b.Schedule("S4");  // level 1, branch A
  ScheduleId s5 = b.Schedule("S5");  // level 1, branch B

  NodeId t1 = b.Root(sys.s1, "T1");
  NodeId t2 = b.Root(sys.s1, "T2");
  sys.t11 = b.Sub(t1, s2, "t11");
  sys.t12 = b.Sub(t1, s3, "t12");
  sys.t21 = b.Sub(t2, s2, "t21");
  sys.t22 = b.Sub(t2, s3, "t22");

  NodeId u11 = b.Sub(sys.t11, s4, "u11");
  NodeId u21 = b.Sub(sys.t21, s4, "u21");
  NodeId u12 = b.Sub(sys.t12, s5, "u12");
  NodeId u22 = b.Sub(sys.t22, s5, "u22");

  NodeId x11 = b.Leaf(u11, "x11");
  NodeId x21 = b.Leaf(u21, "x21");
  NodeId x12 = b.Leaf(u12, "x12");
  NodeId x22 = b.Leaf(u22, "x22");

  // Branch A: T1's operation first at every level.
  b.Conflict(u11, u21);
  b.WeakOut(u11, u21);
  b.WeakIn(s4, u11, u21);
  b.Conflict(x11, x21);
  b.WeakOut(x11, x21);

  // Branch B: T2's operation first at every level.
  b.Conflict(u22, u12);
  b.WeakOut(u22, u12);
  b.WeakIn(s5, u22, u12);
  b.Conflict(x22, x12);
  b.WeakOut(x22, x12);
  return sys;
}

}  // namespace

PaperFigure MakeFigure3() {
  TwoBranchSystem sys = MakeTwoBranchSystem();
  // S1 declares both branch pairs conflicting: neither pulled-up order is
  // forgotten, so the roots are observed-ordered both ways.
  sys.b.Conflict(sys.t11, sys.t21);
  sys.b.WeakOut(sys.t11, sys.t21);
  sys.b.WeakIn(ScheduleId(1), sys.t11, sys.t21);  // Def 4.7 into S2.
  sys.b.Conflict(sys.t22, sys.t12);
  sys.b.WeakOut(sys.t22, sys.t12);
  sys.b.WeakIn(ScheduleId(2), sys.t22, sys.t12);  // Def 4.7 into S3.

  PaperFigure fig;
  fig.system = std::move(sys.b.Take());
  fig.title = "Figure 3: an execution that is not Comp-C";
  fig.notes =
      "Branch A serializes T1 before T2, branch B serializes T2 before "
      "T1, and the level-3 schedule considers both pairs conflicting.  "
      "The reduction pulls both orders up; at the last level no "
      "calculation isolating T1 exists (Def 14) and the schedule is "
      "rejected, as in the paper's §3.6.";
  return fig;
}

PaperFigure MakeFigure4() {
  TwoBranchSystem sys = MakeTwoBranchSystem();
  // S1 knows (t11, t21) commute: only branch B's order survives.
  sys.b.Conflict(sys.t22, sys.t12);
  sys.b.WeakOut(sys.t22, sys.t12);
  sys.b.WeakIn(ScheduleId(2), sys.t22, sys.t12);  // Def 4.7 into S3.

  PaperFigure fig;
  fig.system = std::move(sys.b.Take());
  fig.title = "Figure 4: a correct execution (order forgotten)";
  fig.notes =
      "Same two-branch interaction as Figure 3, but the level-3 schedule "
      "declares (t11, t21) non-conflicting.  The order pulled up through "
      "branch A is forgotten at the common schedule (Def 10.3); only "
      "T2 -> T1 survives and the reduction completes with serial witness "
      "T2, T1, as in the paper's §3.7.  Disabling forgetting "
      "(ReductionOptions) makes this execution incorrect.";
  return fig;
}

}  // namespace comptx::analysis
