#ifndef COMPTX_ANALYSIS_BUILDER_H_
#define COMPTX_ANALYSIS_BUILDER_H_

#include <string>
#include <vector>

#include "core/composite_system.h"

namespace comptx::analysis {

/// Ergonomic construction wrapper around CompositeSystem for tests,
/// examples and generators.  All mutators die on misuse (they wrap the
/// Status-returning CompositeSystem API with COMPTX_CHECK), which keeps
/// construction code linear; production call sites that handle untrusted
/// input should use CompositeSystem directly.
class CompositeSystemBuilder {
 public:
  CompositeSystemBuilder() = default;

  ScheduleId Schedule(std::string name);
  NodeId Root(ScheduleId scheduler, std::string name);
  NodeId Sub(NodeId parent, ScheduleId scheduler, std::string name);
  NodeId Leaf(NodeId parent, std::string name);

  void Conflict(NodeId a, NodeId b);
  void WeakOut(NodeId a, NodeId b);
  void StrongOut(NodeId a, NodeId b);
  void WeakIn(ScheduleId scheduler, NodeId t1, NodeId t2);
  void StrongIn(ScheduleId scheduler, NodeId t1, NodeId t2);
  void IntraWeak(NodeId txn, NodeId a, NodeId b);
  void IntraStrong(NodeId txn, NodeId a, NodeId b);

  /// Derives `scheduler`'s output orders from a temporal execution order
  /// of its operations (a permutation of O_S):
  ///   * conflicting operations of distinct transactions are weakly
  ///     ordered in temporal order (Def 3.1);
  ///   * each transaction's intra orders are copied into the outputs
  ///     (Def 3.2);
  ///   * strong input orders force strong output orders over all operation
  ///     pairs (Def 3.3).
  /// When `preserve_all_orders` is true the entire temporal order is
  /// emitted as weak output (an order-preserving scheduler); otherwise
  /// only the pairs above are emitted (a scheduler exploiting
  /// commutativity — the paper's preferred behaviour).
  void ExecuteInOrder(ScheduleId scheduler,
                      const std::vector<NodeId>& temporal_ops,
                      bool preserve_all_orders = false);

  /// Applies Def 4.7 to every schedule: each (closed) output order over
  /// operations that are transactions of one common callee is copied into
  /// the callee's input orders.  Call top-down: after setting a schedule's
  /// outputs and before deriving its callees' outputs.
  void PropagateOrders();

  /// Finds a node by its (unique) name; dies if absent or ambiguous.
  NodeId NodeByName(const std::string& name) const;

  const CompositeSystem& system() const { return cs_; }
  CompositeSystem&& Take() { return std::move(cs_); }

 private:
  CompositeSystem cs_;
};

}  // namespace comptx::analysis

#endif  // COMPTX_ANALYSIS_BUILDER_H_
