#ifndef COMPTX_ANALYSIS_STATS_H_
#define COMPTX_ANALYSIS_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace comptx::analysis {

/// Online mean / variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accept/reject counter that renders as a rate.
class RateCounter {
 public:
  void Add(bool accepted) {
    ++total_;
    if (accepted) ++accepted_;
  }
  uint64_t total() const { return total_; }
  uint64_t accepted() const { return accepted_; }
  double rate() const { return total_ == 0 ? 0.0 : double(accepted_) / double(total_); }

 private:
  uint64_t total_ = 0;
  uint64_t accepted_ = 0;
};

/// Minimal fixed-width text table for bench/experiment reports.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns.
  std::string ToString() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` fractional digits.
std::string FormatDouble(double value, int digits = 3);

}  // namespace comptx::analysis

#endif  // COMPTX_ANALYSIS_STATS_H_
