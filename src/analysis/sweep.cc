#include "analysis/sweep.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace comptx::analysis {

std::vector<SweepVerdict> SweepCompC(
    const std::vector<const CompositeSystem*>& systems,
    const ReductionOptions& options) {
  return ParallelMap<SweepVerdict>(systems.size(), [&](size_t i) {
    SweepVerdict verdict;
    auto result = CheckCompC(*systems[i], options);
    if (!result.ok()) {
      verdict.status_message = result.status().ToString();
      return verdict;
    }
    verdict.ok = true;
    verdict.comp_c = result->correct;
    verdict.order = result->order;
    verdict.failure = result->failure;
    return verdict;
  });
}

StatusOr<std::vector<bool>> BatchPrefixVerdicts(
    const std::vector<workload::TraceEvent>& events,
    const ReductionOptions& options) {
  const size_t n = events.size();
  ReductionOptions prefix_options = options;
  prefix_options.validate = false;

  // One chunk per pool thread (capped at n): each extra chunk costs a full
  // prefix replay, so oversubscribing buys nothing here.
  const size_t chunk_count =
      std::max<size_t>(1, std::min(n, ThreadPool::Global().ThreadCount()));
  const size_t chunk_size = (n + chunk_count - 1) / chunk_count;

  std::vector<bool> verdicts(n);
  std::vector<Status> chunk_status(chunk_count);
  ThreadPool::Global().ParallelFor(chunk_count, [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) return;
    CompositeSystem mirror;
    for (size_t i = 0; i < end; ++i) {
      if (Status applied = workload::ApplyTraceEvent(mirror, events[i]);
          !applied.ok()) {
        chunk_status[c] = Status::InvalidArgument(
            StrCat("event ", i + 1, " failed to apply: ",
                   applied.ToString()));
        return;
      }
      if (i < begin) continue;  // silent replay of the chunk's prefix.
      auto result = CheckCompC(mirror, prefix_options);
      if (!result.ok()) {
        chunk_status[c] = result.status();
        return;
      }
      verdicts[i] = result->correct;
    }
  });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  return verdicts;
}

}  // namespace comptx::analysis
