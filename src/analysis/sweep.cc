#include "analysis/sweep.h"

#include <algorithm>
#include <utility>

#include "staticcheck/analyzer.h"
#include "util/string_util.h"

namespace comptx::analysis {

namespace {

/// Decides one system by reduction alone.
SweepVerdict DynamicVerdict(const CompositeSystem& cs,
                            const ReductionOptions& options) {
  SweepVerdict verdict;
  auto result = CheckCompC(cs, options);
  if (!result.ok()) {
    verdict.status_message = result.status().ToString();
    return verdict;
  }
  verdict.ok = true;
  verdict.comp_c = result->correct;
  verdict.order = result->order;
  verdict.failure = result->failure;
  return verdict;
}

/// Decides one system under `options`, consulting the static analyzer
/// first when the fast path applies.
SweepVerdict DecideOne(const CompositeSystem& cs, const SweepOptions& options) {
  if (!options.static_fast_path || !options.reduction.forgetting) {
    return DynamicVerdict(cs, options.reduction);
  }
  staticcheck::AnalyzerOptions analyzer_options;
  analyzer_options.explain = false;  // only the verdict matters here
  staticcheck::StaticAnalysis analysis =
      staticcheck::AnalyzeConfiguration(cs, analyzer_options);
  if (!analysis.well_formed) {
    // Keep the failure surface of the dynamic path (a FailedPrecondition
    // status naming the first violation).
    return DynamicVerdict(cs, options.reduction);
  }
  if (analysis.verdict == staticcheck::SafetyVerdict::kNeedsDynamic) {
    // The analyzer already ran the Def 2-4 checks; don't pay for them
    // again in the reduction.
    ReductionOptions reduction = options.reduction;
    reduction.validate = false;
    return DynamicVerdict(cs, reduction);
  }
  SweepVerdict verdict;
  verdict.ok = true;
  verdict.static_fast_path = true;
  verdict.comp_c = analysis.verdict == staticcheck::SafetyVerdict::kSafe;
  verdict.order = analysis.order;
  if (!verdict.comp_c && analysis.witness.has_value()) {
    ReductionFailure failure;
    failure.step = ReductionFailureStep::kConflictConsistency;
    failure.witness = *analysis.witness;
    verdict.failure = failure;
  }
  if (options.paranoid) {
    ReductionOptions reduction = options.reduction;
    reduction.validate = false;
    SweepVerdict dynamic = DynamicVerdict(cs, reduction);
    if (!dynamic.ok) return dynamic;
    if (dynamic.comp_c != verdict.comp_c) {
      verdict.ok = false;
      verdict.status_message = StrCat(
          "internal: static verdict ", verdict.comp_c ? "SAFE" : "UNSAFE",
          " disagrees with the reduction (",
          dynamic.comp_c ? "correct" : "incorrect", "), shape ",
          staticcheck::ConfigShapeToString(analysis.shape), ", reason: ",
          analysis.reason);
      return verdict;
    }
    // Agreement: prefer the reduction's richer failure diagnosis.
    verdict.failure = dynamic.failure;
  }
  return verdict;
}

}  // namespace

std::vector<SweepVerdict> SweepCompC(
    const std::vector<const CompositeSystem*>& systems,
    const SweepOptions& options, const SweepHooks& hooks,
    const std::vector<bool>& expected) {
  std::vector<SweepVerdict> verdicts = ParallelMap<SweepVerdict>(
      systems.size(), [&](size_t i) { return DecideOne(*systems[i], options); });
  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (hooks.on_verdict) hooks.on_verdict(i, verdicts[i]);
    if (!hooks.on_disagreement) continue;
    if (!verdicts[i].ok) {
      hooks.on_disagreement(
          i, StrCat("check failed: ", verdicts[i].status_message));
    } else if (i < expected.size() && verdicts[i].comp_c != expected[i]) {
      hooks.on_disagreement(
          i, StrCat("expected ", expected[i] ? "correct" : "incorrect",
                    ", batch says ",
                    verdicts[i].comp_c ? "correct" : "incorrect"));
    }
  }
  return verdicts;
}

std::vector<SweepVerdict> SweepCompC(
    const std::vector<const CompositeSystem*>& systems,
    const ReductionOptions& options, const SweepHooks& hooks,
    const std::vector<bool>& expected) {
  SweepOptions sweep;
  sweep.reduction = options;
  return SweepCompC(systems, sweep, hooks, expected);
}

StatusOr<std::vector<bool>> BatchPrefixVerdicts(
    const std::vector<workload::TraceEvent>& events,
    const ReductionOptions& options) {
  const size_t n = events.size();
  ReductionOptions prefix_options = options;
  prefix_options.validate = false;

  // One chunk per pool thread (capped at n): each extra chunk costs a full
  // prefix replay, so oversubscribing buys nothing here.
  const size_t chunk_count =
      std::max<size_t>(1, std::min(n, ThreadPool::Global().ThreadCount()));
  const size_t chunk_size = (n + chunk_count - 1) / chunk_count;

  // Byte-per-verdict scratch: vector<bool> packs 64 elements per word, so
  // two chunks writing distinct indices would still race on the same word.
  std::vector<unsigned char> scratch(n, 0);
  std::vector<Status> chunk_status(chunk_count);
  ThreadPool::Global().ParallelFor(chunk_count, [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) return;
    CompositeSystem mirror;
    for (size_t i = 0; i < end; ++i) {
      if (Status applied = workload::ApplyTraceEvent(mirror, events[i]);
          !applied.ok()) {
        chunk_status[c] = Status::InvalidArgument(
            StrCat("event ", i + 1, " failed to apply: ",
                   applied.ToString()));
        return;
      }
      if (i < begin) continue;  // silent replay of the chunk's prefix.
      auto result = CheckCompC(mirror, prefix_options);
      if (!result.ok()) {
        chunk_status[c] = result.status();
        return;
      }
      scratch[i] = result->correct ? 1 : 0;
    }
  });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  return std::vector<bool>(scratch.begin(), scratch.end());
}

StatusOr<std::vector<bool>> BatchPrefixVerdicts(
    const std::vector<workload::TraceEvent>& events,
    const SweepOptions& options) {
  if (!options.static_fast_path || !options.reduction.forgetting) {
    return BatchPrefixVerdicts(events, options.reduction);
  }
  // Replay the full stream once; the analyzer looks at the final system.
  CompositeSystem full;
  for (size_t i = 0; i < events.size(); ++i) {
    if (Status applied = workload::ApplyTraceEvent(full, events[i]);
        !applied.ok()) {
      return Status::InvalidArgument(StrCat("event ", i + 1,
                                            " failed to apply: ",
                                            applied.ToString()));
    }
  }
  staticcheck::AnalyzerOptions analyzer_options;
  analyzer_options.explain = false;  // only the verdict matters here
  staticcheck::StaticAnalysis analysis =
      staticcheck::AnalyzeConfiguration(full, analyzer_options);
  if (!analysis.well_formed ||
      analysis.verdict != staticcheck::SafetyVerdict::kSafe) {
    // UNSAFE executions can still have long Comp-C prefixes, so only the
    // SAFE verdict shortcuts the per-prefix reductions.
    return BatchPrefixVerdicts(events, options.reduction);
  }
  std::vector<bool> verdicts(events.size(), true);
  if (options.paranoid) {
    COMPTX_ASSIGN_OR_RETURN(std::vector<bool> dynamic,
                            BatchPrefixVerdicts(events, options.reduction));
    for (size_t i = 0; i < dynamic.size(); ++i) {
      if (!dynamic[i]) {
        return Status::Internal(StrCat(
            "static SAFE but prefix ", i + 1, " of ", events.size(),
            " fails the reduction; analyzer reason: ", analysis.reason));
      }
    }
  }
  return verdicts;
}

}  // namespace comptx::analysis
