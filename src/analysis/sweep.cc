#include "analysis/sweep.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace comptx::analysis {

std::vector<SweepVerdict> SweepCompC(
    const std::vector<const CompositeSystem*>& systems,
    const ReductionOptions& options, const SweepHooks& hooks,
    const std::vector<bool>& expected) {
  std::vector<SweepVerdict> verdicts =
      ParallelMap<SweepVerdict>(systems.size(), [&](size_t i) {
        SweepVerdict verdict;
        auto result = CheckCompC(*systems[i], options);
        if (!result.ok()) {
          verdict.status_message = result.status().ToString();
          return verdict;
        }
        verdict.ok = true;
        verdict.comp_c = result->correct;
        verdict.order = result->order;
        verdict.failure = result->failure;
        return verdict;
      });
  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (hooks.on_verdict) hooks.on_verdict(i, verdicts[i]);
    if (!hooks.on_disagreement) continue;
    if (!verdicts[i].ok) {
      hooks.on_disagreement(
          i, StrCat("check failed: ", verdicts[i].status_message));
    } else if (i < expected.size() && verdicts[i].comp_c != expected[i]) {
      hooks.on_disagreement(
          i, StrCat("expected ", expected[i] ? "correct" : "incorrect",
                    ", batch says ",
                    verdicts[i].comp_c ? "correct" : "incorrect"));
    }
  }
  return verdicts;
}

StatusOr<std::vector<bool>> BatchPrefixVerdicts(
    const std::vector<workload::TraceEvent>& events,
    const ReductionOptions& options) {
  const size_t n = events.size();
  ReductionOptions prefix_options = options;
  prefix_options.validate = false;

  // One chunk per pool thread (capped at n): each extra chunk costs a full
  // prefix replay, so oversubscribing buys nothing here.
  const size_t chunk_count =
      std::max<size_t>(1, std::min(n, ThreadPool::Global().ThreadCount()));
  const size_t chunk_size = (n + chunk_count - 1) / chunk_count;

  // Byte-per-verdict scratch: vector<bool> packs 64 elements per word, so
  // two chunks writing distinct indices would still race on the same word.
  std::vector<unsigned char> scratch(n, 0);
  std::vector<Status> chunk_status(chunk_count);
  ThreadPool::Global().ParallelFor(chunk_count, [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) return;
    CompositeSystem mirror;
    for (size_t i = 0; i < end; ++i) {
      if (Status applied = workload::ApplyTraceEvent(mirror, events[i]);
          !applied.ok()) {
        chunk_status[c] = Status::InvalidArgument(
            StrCat("event ", i + 1, " failed to apply: ",
                   applied.ToString()));
        return;
      }
      if (i < begin) continue;  // silent replay of the chunk's prefix.
      auto result = CheckCompC(mirror, prefix_options);
      if (!result.ok()) {
        chunk_status[c] = result.status();
        return;
      }
      scratch[i] = result->correct ? 1 : 0;
    }
  });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  return std::vector<bool>(scratch.begin(), scratch.end());
}

}  // namespace comptx::analysis
