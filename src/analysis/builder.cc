#include "analysis/builder.h"

#include <unordered_map>

#include "core/indexing.h"
#include "util/logging.h"

namespace comptx::analysis {

ScheduleId CompositeSystemBuilder::Schedule(std::string name) {
  return cs_.AddSchedule(std::move(name));
}

NodeId CompositeSystemBuilder::Root(ScheduleId scheduler, std::string name) {
  auto id = cs_.AddRootTransaction(scheduler, std::move(name));
  COMPTX_CHECK(id.ok()) << id.status().ToString();
  return *id;
}

NodeId CompositeSystemBuilder::Sub(NodeId parent, ScheduleId scheduler,
                                   std::string name) {
  auto id = cs_.AddSubtransaction(parent, scheduler, std::move(name));
  COMPTX_CHECK(id.ok()) << id.status().ToString();
  return *id;
}

NodeId CompositeSystemBuilder::Leaf(NodeId parent, std::string name) {
  auto id = cs_.AddLeaf(parent, std::move(name));
  COMPTX_CHECK(id.ok()) << id.status().ToString();
  return *id;
}

void CompositeSystemBuilder::Conflict(NodeId a, NodeId b) {
  COMPTX_CHECK_OK(cs_.AddConflict(a, b));
}
void CompositeSystemBuilder::WeakOut(NodeId a, NodeId b) {
  COMPTX_CHECK_OK(cs_.AddWeakOutput(a, b));
}
void CompositeSystemBuilder::StrongOut(NodeId a, NodeId b) {
  COMPTX_CHECK_OK(cs_.AddStrongOutput(a, b));
}
void CompositeSystemBuilder::WeakIn(ScheduleId scheduler, NodeId t1,
                                    NodeId t2) {
  COMPTX_CHECK_OK(cs_.AddWeakInput(scheduler, t1, t2));
}
void CompositeSystemBuilder::StrongIn(ScheduleId scheduler, NodeId t1,
                                      NodeId t2) {
  COMPTX_CHECK_OK(cs_.AddStrongInput(scheduler, t1, t2));
}
void CompositeSystemBuilder::IntraWeak(NodeId txn, NodeId a, NodeId b) {
  COMPTX_CHECK_OK(cs_.AddIntraWeak(txn, a, b));
}
void CompositeSystemBuilder::IntraStrong(NodeId txn, NodeId a, NodeId b) {
  COMPTX_CHECK_OK(cs_.AddIntraStrong(txn, a, b));
}

void CompositeSystemBuilder::ExecuteInOrder(
    ScheduleId scheduler, const std::vector<NodeId>& temporal_ops,
    bool preserve_all_orders) {
  const comptx::Schedule& s = cs_.schedule(scheduler);
  std::unordered_map<NodeId, size_t> position;
  for (size_t i = 0; i < temporal_ops.size(); ++i) {
    position[temporal_ops[i]] = i;
  }
  auto before = [&](NodeId a, NodeId b) {
    auto ia = position.find(a);
    auto ib = position.find(b);
    COMPTX_CHECK(ia != position.end() && ib != position.end())
        << "operation missing from temporal order";
    return ia->second < ib->second;
  };

  // Conflicting pairs of distinct transactions: temporal direction.
  s.conflicts.ForEach([&](NodeId a, NodeId b) {
    if (cs_.node(a).parent == cs_.node(b).parent) return;
    if (before(a, b)) {
      COMPTX_CHECK_OK(cs_.AddWeakOutput(a, b));
    } else {
      COMPTX_CHECK_OK(cs_.AddWeakOutput(b, a));
    }
  });

  // Intra-transaction orders are honored by the output (Def 3.2).
  for (NodeId txn : s.transactions) {
    const Node& t = cs_.node(txn);
    t.weak_intra.ForEach(
        [&](NodeId a, NodeId b) { COMPTX_CHECK_OK(cs_.AddWeakOutput(a, b)); });
    t.strong_intra.ForEach([&](NodeId a, NodeId b) {
      COMPTX_CHECK_OK(cs_.AddStrongOutput(a, b));
    });
  }

  // Strong input orders sequence all operation pairs (Def 3.3).
  Relation strong_in_closed =
      ClosureWithin(s.strong_input, s.transactions);
  strong_in_closed.ForEach([&](NodeId t1, NodeId t2) {
    for (NodeId a : cs_.node(t1).children) {
      for (NodeId b : cs_.node(t2).children) {
        COMPTX_CHECK_OK(cs_.AddStrongOutput(a, b));
      }
    }
  });

  if (preserve_all_orders) {
    for (size_t i = 0; i < temporal_ops.size(); ++i) {
      for (size_t j = i + 1; j < temporal_ops.size(); ++j) {
        COMPTX_CHECK_OK(cs_.AddWeakOutput(temporal_ops[i], temporal_ops[j]));
      }
    }
  }
}

void CompositeSystemBuilder::PropagateOrders() {
  for (uint32_t si = 0; si < cs_.ScheduleCount(); ++si) {
    const ScheduleId sid(si);
    const std::vector<NodeId> ops = cs_.OperationsOf(sid);
    Relation weak = ClosureWithin(cs_.schedule(sid).weak_output, ops);
    Relation strong = ClosureWithin(cs_.schedule(sid).strong_output, ops);
    auto propagate = [&](const Relation& rel, bool is_strong) {
      rel.ForEach([&](NodeId a, NodeId b) {
        const Node& na = cs_.node(a);
        const Node& nb = cs_.node(b);
        if (!na.IsTransaction() || !nb.IsTransaction()) return;
        if (na.owner_schedule != nb.owner_schedule) return;
        if (is_strong) {
          COMPTX_CHECK_OK(cs_.AddStrongInput(na.owner_schedule, a, b));
        } else {
          COMPTX_CHECK_OK(cs_.AddWeakInput(na.owner_schedule, a, b));
        }
      });
    };
    propagate(weak, /*is_strong=*/false);
    propagate(strong, /*is_strong=*/true);
  }
}

NodeId CompositeSystemBuilder::NodeByName(const std::string& name) const {
  NodeId found;
  for (uint32_t v = 0; v < cs_.NodeCount(); ++v) {
    if (cs_.node(NodeId(v)).name == name) {
      COMPTX_CHECK(!found.valid()) << "ambiguous node name: " << name;
      found = NodeId(v);
    }
  }
  COMPTX_CHECK(found.valid()) << "no node named: " << name;
  return found;
}

}  // namespace comptx::analysis
