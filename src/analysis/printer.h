#ifndef COMPTX_ANALYSIS_PRINTER_H_
#define COMPTX_ANALYSIS_PRINTER_H_

#include <string>

#include "core/composite_system.h"
#include "core/correctness.h"
#include "core/front.h"

namespace comptx::analysis {

/// The node's name, or "node(i)" if unnamed.
std::string NodeName(const CompositeSystem& cs, NodeId id);

/// Multi-line human-readable description of a composite system: schedules
/// with levels, the forest, conflicts and orders.
std::string DescribeSystem(const CompositeSystem& cs);

/// One-front summary: members, observed order, conflicts, input orders.
std::string DescribeFront(const CompositeSystem& cs, const Front& front);

/// Full reduction trace: per-level fronts plus the verdict or the failure
/// diagnosis (witness cycle rendered with node names).
std::string DescribeReduction(const CompositeSystem& cs,
                              const CompCResult& result);

/// Graphviz DOT of the computational forest (transaction trees), with
/// leaf operations as boxes.
std::string ForestToDot(const CompositeSystem& cs);

/// Graphviz DOT of one front: solid edges are observed orders, dashed
/// edges are input orders, red undirected edges are generalized
/// conflicts.  Highlights `highlight` nodes (e.g., a failure witness).
std::string FrontToDot(const CompositeSystem& cs, const Front& front,
                       const std::vector<NodeId>& highlight = {});

}  // namespace comptx::analysis

#endif  // COMPTX_ANALYSIS_PRINTER_H_
