#ifndef COMPTX_ANALYSIS_MODELS_H_
#define COMPTX_ANALYSIS_MODELS_H_

#include <cstdint>
#include <string>

#include "core/composite_system.h"

namespace comptx::analysis {

/// A classical transaction model encoded as a composite system.  The
/// paper's §4 claims the composite framework subsumes "federated
/// transactions, the ticket method for federated transaction management,
/// sagas and distributed transactions"; these factories make that claim
/// executable — each produces a composite schedule whose Comp-C verdict
/// matches the source model's own correctness notion (asserted in
/// tests/test_models.cc).
struct ModelSystem {
  CompositeSystem system;
  std::string title;
  std::string notes;
};

/// Sagas: long-lived transactions broken into steps executed as open
/// nested subtransactions on a shared step executor.  Saga semantics
/// allow steps of different sagas to interleave (the saga manager
/// declares step operations commuting), even though the steps conflict on
/// data.  `interleaved == false` runs the sagas back-to-back.
///
/// Expected verdicts: Comp-C accepts both variants (the interleaved one
/// via forgetting, exactly the saga relaxation); flat conflict
/// serializability rejects the interleaved variant.
ModelSystem MakeSagaModel(uint32_t sagas, uint32_t steps, bool interleaved);

/// Federated database: global transactions submitted through a federation
/// gateway fan out to site databases, which also execute purely local
/// transactions.  Each site serializes independently.  With
/// `consistent_sites == true` all sites serialize the global transactions
/// in the same direction; otherwise two sites disagree — the classical
/// indirect-conflict anomaly of federated transaction management, which
/// no site can observe locally.
///
/// Expected verdicts: consistent → Comp-C; inconsistent → not Comp-C.
/// The local transactions are roots of their own, so the pulled-up orders
/// they mediate never meet a common schedule that could forget them —
/// the disagreement becomes a cycle at the root front.
ModelSystem MakeFederatedModel(uint32_t sites, bool consistent_sites);

/// Distributed (flat) transactions with a two-phase-commit-style
/// coordinator: each transaction runs one branch per site, the
/// coordinator's phases impose *strong* (sequential) intra-transaction
/// orders, and a global lock-step order between the transactions is
/// encoded as strong input orders.  Demonstrates the strong-order half of
/// Def 1; always Comp-C.
ModelSystem MakeDistributedTransactionModel(uint32_t transactions,
                                            uint32_t sites);

}  // namespace comptx::analysis

#endif  // COMPTX_ANALYSIS_MODELS_H_
