#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace comptx::analysis {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> row) {
  COMPTX_CHECK_EQ(row.size(), rows_.front().size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
          << rows_[r][c];
    }
    out << "\n";
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out << std::string(widths[c], '-') << "  ";
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

}  // namespace comptx::analysis
