#ifndef COMPTX_ANALYSIS_SWEEP_H_
#define COMPTX_ANALYSIS_SWEEP_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/correctness.h"
#include "util/status_or.h"
#include "util/thread_pool.h"
#include "workload/trace.h"

namespace comptx::analysis {

/// Runs `fn(i)` for i in [0, n) on the global pool and returns the results
/// in index order.  `R` must be default-constructible; each slot is written
/// exactly once by the task that owns it, so the result vector is identical
/// at any thread count.  `fn` must be safe to call concurrently.
template <typename R, typename Fn>
std::vector<R> ParallelMap(size_t n, const Fn& fn) {
  std::vector<R> results(n);
  ThreadPool::Global().ParallelFor(n, [&](size_t i) { results[i] = fn(i); });
  return results;
}

/// Outcome of one sweep item: either a transport error (`!ok`, message in
/// `status_message`) or a Comp-C verdict with its diagnosis.
struct SweepVerdict {
  bool ok = false;
  std::string status_message;
  bool comp_c = false;
  uint32_t order = 0;
  std::optional<ReductionFailure> failure;

  /// True iff the verdict came from the static configuration analyzer
  /// (staticcheck/analyzer.h) without running the reduction.
  bool static_fast_path = false;
};

/// Options for the sweep drivers.
struct SweepOptions {
  ReductionOptions reduction;

  /// Consult the static configuration analyzer first and skip the
  /// reduction when it returns SAFE or UNSAFE (exact on those verdicts).
  /// Honored only under the paper's semantics (reduction.forgetting);
  /// the E8 ablation always runs the reduction.
  bool static_fast_path = false;

  /// With the fast path: run the reduction anyway and cross-check the
  /// static verdict.  A disagreement is an internal error, reported as a
  /// failed (!ok) verdict so hooks and callers see it.
  bool paranoid = false;
};

/// Observation hooks for sweep drivers.  Callbacks are invoked on the
/// calling thread, in index order, after the parallel phase has finished —
/// so they may mutate caller state without locking and see a
/// deterministic sequence at any thread count.
struct SweepHooks {
  /// Called once per sweep item with its verdict.
  std::function<void(size_t index, const SweepVerdict& verdict)> on_verdict;

  /// Called for items whose verdict deviates from expectation: transport
  /// errors always, and — when the caller supplied `expected` to a
  /// cross-checking driver — verdict mismatches.  The differential
  /// harness (testing/campaign.h) uses this to stream disagreements as
  /// they are confirmed.
  std::function<void(size_t index, const std::string& description)>
      on_disagreement;
};

/// Decides Comp-C for every system in `systems` on the global pool.
/// Result i corresponds to systems[i]; the vector is bit-identical to a
/// serial loop over CheckCompC at any thread count (each verdict depends
/// only on its own system).  `hooks` (optional) observes the verdicts in
/// index order; on_disagreement fires for transport errors and, when
/// `expected` is non-empty (parallel to `systems`), for any verdict that
/// differs from expected[i].
std::vector<SweepVerdict> SweepCompC(
    const std::vector<const CompositeSystem*>& systems,
    const ReductionOptions& options = {}, const SweepHooks& hooks = {},
    const std::vector<bool>& expected = {});

/// As above, with the full option set (static fast path, paranoid
/// cross-checking).  The ReductionOptions overload is equivalent to
/// SweepOptions{options} (fast path off).
std::vector<SweepVerdict> SweepCompC(
    const std::vector<const CompositeSystem*>& systems,
    const SweepOptions& options, const SweepHooks& hooks = {},
    const std::vector<bool>& expected = {});

/// Batch verdicts for every prefix of an (already accepted) event stream:
/// result i is CheckCompC(events[0..i]).correct.  The stream is cut into
/// contiguous chunks; each worker silently replays the events before its
/// chunk, then checks each prefix inside it — so the total work is
/// O(chunks * n) event applications plus the n reductions, instead of the
/// O(n^2) applications a naive per-prefix rebuild would cost.
///
/// `options.validate` is forced off (prefixes of well-formed executions
/// legitimately violate the completeness rules of Defs 3-4).  Returns an
/// error if any event fails to apply — callers should pass only events the
/// online certifier accepted.
StatusOr<std::vector<bool>> BatchPrefixVerdicts(
    const std::vector<workload::TraceEvent>& events,
    const ReductionOptions& options = {});

/// As above with the full option set.  When the fast path is on and the
/// *full* system is statically SAFE, every prefix verdict is true without
/// any reduction: the derived orders of a prefix are subsets of the full
/// execution's, so prefixes of Comp-C executions are Comp-C (and the
/// analyzer's SAFE shapes are closed under prefixing).  Statically UNSAFE
/// or undecided streams fall back to the per-prefix reduction.
StatusOr<std::vector<bool>> BatchPrefixVerdicts(
    const std::vector<workload::TraceEvent>& events,
    const SweepOptions& options);

}  // namespace comptx::analysis

#endif  // COMPTX_ANALYSIS_SWEEP_H_
