#include "online/certifier.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "util/string_util.h"

namespace comptx::online {

using workload::TraceEvent;
using workload::TraceEventKind;

Certifier::Certifier(const CertifierOptions& options) : options_(options) {
  engine_.Reset(&cs_, {}, 0, options_.forgetting);
}

Status Certifier::Ingest(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  Status status = IngestLocked(event);
  if (!status.ok()) {
    ++events_rejected_;
    return status;
  }
  ++events_accepted_;
  ++events_since_prune_;
  MaybePruneLocked();
  return status;
}

Status Certifier::CheckNotSealed(NodeId id) const {
  if (sealed_nodes_.count(id) > 0) {
    return Status::FailedPrecondition(
        StrCat("node ", id.index(), " (", cs_.node(id).name,
               ") belongs to a committed root's sealed subtree"));
  }
  return Status::OK();
}

bool Certifier::WouldCreateRecursion(ScheduleId from, ScheduleId to) const {
  if (from == to) return true;
  // BFS over the invocation adjacency: recursion iff `to` reaches `from`.
  std::vector<bool> seen(invokes_.size(), false);
  std::deque<uint32_t> queue = {to.index()};
  seen[to.index()] = true;
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    if (s == from.index()) return true;
    for (uint32_t next : invokes_[s]) {
      if (!seen[next]) {
        seen[next] = true;
        queue.push_back(next);
      }
    }
  }
  return false;
}

bool Certifier::RecomputeLevels() {
  const size_t count = cs_.ScheduleCount();
  std::vector<uint32_t> levels(count, 0);
  // level(s) = 1 + longest invocation path starting at s (Def 9); the
  // adjacency is acyclic by the recursion pre-check, so a memoized DFS
  // suffices.
  std::function<uint32_t(uint32_t)> level_of = [&](uint32_t s) -> uint32_t {
    if (levels[s] != 0) return levels[s];
    uint32_t best = 0;
    for (uint32_t next : invokes_[s]) best = std::max(best, level_of(next));
    return levels[s] = best + 1;
  };
  uint32_t order = 0;
  for (uint32_t s = 0; s < count; ++s) order = std::max(order, level_of(s));
  const bool changed = levels != schedule_levels_ || order != order_;
  schedule_levels_ = std::move(levels);
  order_ = order;
  return changed;
}

void Certifier::Rebuild() {
  ++rebuilds_;
  engine_.Reset(&cs_, schedule_levels_, order_, options_.forgetting);
  // Replay every retained closed pair.  All derived structures are
  // monotone functions of these facts (the conflict-dependent rules
  // consult the complete CON relations of cs_ at replay time), so replay
  // order is irrelevant and the result equals a fresh session's state.
  for (uint32_t s = 0; s < cs_.ScheduleCount(); ++s) {
    const ScheduleId sid(s);
    ScheduleShard& sh = shard(sid);
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.weak_output.ForEach(
        [&](NodeId a, NodeId b) { engine_.OnClosedWeakOutput(sid, a, b); });
    sh.weak_input.ForEach(
        [&](NodeId a, NodeId b) { engine_.OnClosedWeakInput(a, b); });
    sh.strong_input.ForEach(
        [&](NodeId a, NodeId b) { engine_.OnClosedStrongInput(a, b); });
    for (const auto& [p, closure] : sh.weak_intra) {
      closure.ForEach(
          [&, p = p](NodeId a, NodeId b) { engine_.OnClosedWeakIntra(p, a, b); });
    }
    for (const auto& [p, closure] : sh.strong_intra) {
      closure.ForEach(
          [&](NodeId a, NodeId b) { engine_.OnClosedStrongIntra(a, b); });
    }
  }
}

Status Certifier::IngestLocked(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kSchedule: {
      cs_.AddSchedule(e.name);
      shards_.push_back(std::make_unique<ScheduleShard>());
      invokes_.emplace_back();
      // The level vector grew (and the order may have), so the engine's
      // level assignment is stale either way: rebuild.  This is cheap in
      // practice because schedules arrive before the bulk of the stream.
      RecomputeLevels();
      Rebuild();
      return Status::OK();
    }
    case TraceEventKind::kRoot: {
      COMPTX_ASSIGN_OR_RETURN(
          NodeId root, cs_.AddRootTransaction(ScheduleId(e.schedule), e.name));
      engine_.OnNodeAdded(root);
      return Status::OK();
    }
    case TraceEventKind::kSub: {
      const NodeId parent(e.parent);
      const ScheduleId sched(e.schedule);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(parent));
      if (cs_.HasNode(parent) && cs_.HasSchedule(sched) &&
          cs_.node(parent).IsTransaction()) {
        const ScheduleId host = cs_.node(parent).owner_schedule;
        if (WouldCreateRecursion(host, sched)) {
          return Status::FailedPrecondition(
              StrCat("subtransaction under ", cs_.node(parent).name,
                     " would make schedule ", cs_.schedule(sched).name,
                     " (indirectly) invoke itself"));
        }
      }
      COMPTX_ASSIGN_OR_RETURN(NodeId sub,
                              cs_.AddSubtransaction(parent, sched, e.name));
      invokes_[cs_.node(parent).owner_schedule.index()].insert(sched.index());
      if (RecomputeLevels()) {
        Rebuild();
      } else {
        engine_.OnNodeAdded(sub);
      }
      return Status::OK();
    }
    case TraceEventKind::kLeaf: {
      const NodeId parent(e.parent);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(parent));
      COMPTX_ASSIGN_OR_RETURN(NodeId leaf, cs_.AddLeaf(parent, e.name));
      engine_.OnNodeAdded(leaf);
      return Status::OK();
    }
    case TraceEventKind::kConflict: {
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      COMPTX_RETURN_IF_ERROR(cs_.AddConflict(a, b));
      const ScheduleId host = cs_.HostScheduleOf(a);
      bool wo_ab = false, wo_ba = false;
      {
        ScheduleShard& sh = shard(host);
        std::lock_guard<std::mutex> lock(sh.mu);
        wo_ab = sh.weak_output.Contains(a, b);
        wo_ba = sh.weak_output.Contains(b, a);
      }
      engine_.OnConflict(a, b, wo_ab, wo_ba);
      return Status::OK();
    }
    case TraceEventKind::kWeakOutput:
    case TraceEventKind::kStrongOutput: {
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      // A strong output pair is also a weak output pair (Def 1); the
      // decision procedure only consumes the weak output closure, so both
      // kinds route through it.
      COMPTX_RETURN_IF_ERROR(e.kind == TraceEventKind::kWeakOutput
                                 ? cs_.AddWeakOutput(a, b)
                                 : cs_.AddStrongOutput(a, b));
      const ScheduleId host = cs_.HostScheduleOf(a);
      std::vector<std::pair<NodeId, NodeId>> new_pairs;
      {
        ScheduleShard& sh = shard(host);
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.weak_output.Add(a, b, new_pairs);
      }
      for (const auto& [x, y] : new_pairs) {
        engine_.OnClosedWeakOutput(host, x, y);
      }
      return Status::OK();
    }
    case TraceEventKind::kWeakInput:
    case TraceEventKind::kStrongInput: {
      const ScheduleId sched(e.schedule);
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      const bool strong = e.kind == TraceEventKind::kStrongInput;
      COMPTX_RETURN_IF_ERROR(strong ? cs_.AddStrongInput(sched, a, b)
                                    : cs_.AddWeakInput(sched, a, b));
      std::vector<std::pair<NodeId, NodeId>> new_strong, new_weak;
      {
        ScheduleShard& sh = shard(sched);
        std::lock_guard<std::mutex> lock(sh.mu);
        if (strong) sh.strong_input.Add(a, b, new_strong);
        sh.weak_input.Add(a, b, new_weak);  // strong pairs are weak pairs.
      }
      for (const auto& [x, y] : new_strong) engine_.OnClosedStrongInput(x, y);
      for (const auto& [x, y] : new_weak) engine_.OnClosedWeakInput(x, y);
      return Status::OK();
    }
    case TraceEventKind::kIntraWeak:
    case TraceEventKind::kIntraStrong: {
      const NodeId txn(e.parent);
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(txn));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      const bool strong = e.kind == TraceEventKind::kIntraStrong;
      COMPTX_RETURN_IF_ERROR(strong ? cs_.AddIntraStrong(txn, a, b)
                                    : cs_.AddIntraWeak(txn, a, b));
      const ScheduleId owner = cs_.node(txn).owner_schedule;
      std::vector<std::pair<NodeId, NodeId>> new_strong, new_weak;
      {
        ScheduleShard& sh = shard(owner);
        std::lock_guard<std::mutex> lock(sh.mu);
        if (strong) sh.strong_intra[txn].Add(a, b, new_strong);
        sh.weak_intra[txn].Add(a, b, new_weak);  // strong implies weak.
      }
      for (const auto& [x, y] : new_strong) engine_.OnClosedStrongIntra(x, y);
      for (const auto& [x, y] : new_weak) {
        engine_.OnClosedWeakIntra(txn, x, y);
      }
      return Status::OK();
    }
    case TraceEventKind::kCommit: {
      const NodeId root(e.parent);
      if (!cs_.HasNode(root) || !cs_.node(root).IsRoot()) {
        return Status::InvalidArgument(
            StrCat("commit of ", e.parent, ": not a root transaction"));
      }
      if (sealed_nodes_.count(root) > 0) return Status::OK();  // idempotent.
      sealed_roots_.push_back(root);
      sealed_nodes_.insert(root);
      for (NodeId d : cs_.Descendants(root)) sealed_nodes_.insert(d);
      if (options_.auto_prune) PruneLocked();
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown event kind");
}

Status Certifier::Commit(NodeId root) {
  TraceEvent e;
  e.kind = TraceEventKind::kCommit;
  e.parent = root.index();
  return Ingest(e);
}

std::vector<NodeId> Certifier::SealedRoots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_roots_;
}

void Certifier::RestoreCounters(uint64_t accepted, uint64_t rejected) {
  std::lock_guard<std::mutex> lock(mu_);
  events_accepted_ = accepted;
  events_rejected_ = rejected;
}

void Certifier::MaybePruneLocked() {
  if (!options_.auto_prune || options_.epoch_interval == 0) return;
  if (events_since_prune_ < options_.epoch_interval) return;
  if (pruned_roots_.size() == sealed_roots_.size()) {
    events_since_prune_ = 0;
    return;
  }
  PruneLocked();
}

bool Certifier::CanPrune(const std::vector<NodeId>& subtree) const {
  // In-edges whose source lies inside the subtree are removed together
  // with it, so only edges crossing the boundary from outside pin the
  // subtree down.  This is sound because PruneLocked only runs while the
  // engine is certifiable: every maintained graph is acyclic, so the
  // subtree carries no internal cycle whose evidence removal could lose,
  // and with a zero external in-degree no future event (which may not
  // reference sealed nodes) can ever route a cycle through the subtree.
  const std::unordered_set<NodeId> inside(subtree.begin(), subtree.end());
  for (NodeId n : subtree) {
    // No external in-edge in any front-level or quotient structure.
    if (engine_.HasIncomingEdges(n, inside)) return false;
    const Node& node = cs_.node(n);
    if (node.IsTransaction()) {
      // Intra-block edges are always internal (the block's children are in
      // the subtree whenever the block is), so a clean graph suffices.
      if (!engine_.IntraGraphClean(n)) return false;
      const ScheduleShard& sh = shard(node.owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      if (sh.weak_input.HasIncomingFromOutside(n, inside) ||
          sh.strong_input.HasIncomingFromOutside(n, inside)) {
        return false;
      }
    }
    if (!node.IsRoot()) {
      // Closure in-edges could later manufacture derived in-edges by
      // transitivity without any event naming `n`; require that none
      // cross the boundary.
      {
        const ScheduleShard& sh = shard(cs_.HostScheduleOf(n));
        std::lock_guard<std::mutex> lock(sh.mu);
        if (sh.weak_output.HasIncomingFromOutside(n, inside)) return false;
      }
      const NodeId parent = node.parent;
      const ScheduleShard& sh = shard(cs_.node(parent).owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      auto check = [&](const auto& map) {
        auto it = map.find(parent);
        return it != map.end() && it->second.HasIncomingFromOutside(n, inside);
      };
      if (check(sh.weak_intra) || check(sh.strong_intra)) return false;
    }
  }
  return true;
}

void Certifier::RemoveSubtree(const std::vector<NodeId>& subtree) {
  for (NodeId n : subtree) {
    engine_.RemoveNode(n);
    const Node& node = cs_.node(n);
    if (node.IsTransaction()) {
      engine_.RemoveIntraGraphOf(n);
      ScheduleShard& sh = shard(node.owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.weak_input.RemoveNode(n);
      sh.strong_input.RemoveNode(n);
      sh.weak_intra.erase(n);
      sh.strong_intra.erase(n);
    }
    if (!node.IsRoot()) {
      {
        ScheduleShard& sh = shard(cs_.HostScheduleOf(n));
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.weak_output.RemoveNode(n);
      }
      const NodeId parent = node.parent;
      ScheduleShard& sh = shard(cs_.node(parent).owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      if (auto it = sh.weak_intra.find(parent); it != sh.weak_intra.end()) {
        it->second.RemoveNode(n);
      }
      if (auto it = sh.strong_intra.find(parent); it != sh.strong_intra.end()) {
        it->second.RemoveNode(n);
      }
    }
  }
}

size_t Certifier::PruneLocked() {
  // Once failed, keep everything: the failure evidence (a cycle in some
  // maintained graph) must survive rebuilds, and pruning is only a memory
  // optimization for live sessions anyway.
  if (!engine_.certifiable()) {
    events_since_prune_ = 0;
    return 0;
  }
  size_t removed = 0;
  bool progress = true;
  // Removing one subtree can zero another's in-degrees, so iterate to a
  // fixpoint.
  while (progress) {
    progress = false;
    for (NodeId root : sealed_roots_) {
      if (pruned_roots_.count(root) > 0) continue;
      std::vector<NodeId> subtree = {root};
      for (NodeId d : cs_.Descendants(root)) subtree.push_back(d);
      if (!CanPrune(subtree)) continue;
      RemoveSubtree(subtree);
      pruned_roots_.insert(root);
      for (NodeId n : subtree) pruned_nodes_.insert(n);
      removed += subtree.size();
      progress = true;
    }
  }
  if (removed > 0) ++prune_passes_;
  events_since_prune_ = 0;
  return removed;
}

size_t Certifier::Prune() {
  std::lock_guard<std::mutex> lock(mu_);
  return PruneLocked();
}

CertifierVerdict Certifier::Verdict() const {
  std::lock_guard<std::mutex> lock(mu_);
  CertifierVerdict verdict;
  verdict.certifiable = engine_.certifiable();
  verdict.order = order_;
  verdict.failure = engine_.failure();
  return verdict;
}

bool Certifier::Certifiable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.certifiable();
}

std::vector<NodeId> Certifier::SerialWitness() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!engine_.certifiable()) return {};
  std::vector<NodeId> roots;
  for (NodeId r : cs_.Roots()) {
    if (pruned_roots_.count(r) == 0) roots.push_back(r);
  }
  std::stable_sort(roots.begin(), roots.end(), [&](NodeId x, NodeId y) {
    return engine_.TopOrderKey(x) < engine_.TopOrderKey(y);
  });
  return roots;
}

CertifierStats Certifier::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CertifierStats stats;
  stats.events_accepted = events_accepted_;
  stats.events_rejected = events_rejected_;
  stats.rebuilds = rebuilds_;
  stats.prune_passes = prune_passes_;
  stats.pruned_nodes = pruned_nodes_.size();
  stats.live_nodes = cs_.NodeCount() - pruned_nodes_.size();
  stats.observed_pairs = engine_.ObservedPairCount();
  stats.cc_edges = engine_.CcEdgeCount();
  stats.calc_edges = engine_.CalcEdgeCount();
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> shard_lock(sh->mu);
    stats.closure_pairs += sh->weak_output.PairCount() +
                           sh->weak_input.PairCount() +
                           sh->strong_input.PairCount();
    for (const auto& [p, c] : sh->weak_intra) stats.closure_pairs += c.PairCount();
    for (const auto& [p, c] : sh->strong_intra) {
      stats.closure_pairs += c.PairCount();
    }
  }
  return stats;
}

}  // namespace comptx::online
