#include "online/certifier.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "core/correctness.h"
#include "staticcheck/analyzer.h"
#include "util/string_util.h"

namespace comptx::online {

using workload::TraceEvent;
using workload::TraceEventKind;

namespace {

OnlineFailure FailureFromReduction(const ReductionFailure& failure) {
  OnlineFailure out;
  out.level = failure.level;
  out.step = failure.step == ReductionFailureStep::kCalculation
                 ? OnlineFailure::Step::kCalculation
                 : OnlineFailure::Step::kConflictConsistency;
  out.witness = failure.witness.nodes;
  out.description = failure.witness.description;
  return out;
}

}  // namespace

Certifier::Certifier(const CertifierOptions& options) : options_(options) {
  if (options_.paranoid) {
    mode_ = Mode::kParanoid;
  } else if (options_.static_admission && options_.forgetting) {
    // The analyzer verdict is exact only under the paper's semantics
    // (forgetting enabled); the E8 ablation must stay dynamic.
    mode_ = Mode::kStatic;
  }
  engine_.Reset(&cs_, {}, 0, options_.forgetting);
}

bool Certifier::IsSealed(NodeId id) const {
  return id.index() < node_flags_.size() && (node_flags_[id.index()] & 1u) != 0;
}

bool Certifier::IsPruned(NodeId id) const {
  return id.index() < node_flags_.size() && (node_flags_[id.index()] & 2u) != 0;
}

void Certifier::MarkSealed(NodeId id) {
  if (node_flags_.size() < cs_.NodeCount()) node_flags_.resize(cs_.NodeCount());
  uint8_t& flags = node_flags_[id.index()];
  if ((flags & 1u) == 0) {
    flags |= 1u;
    ++sealed_node_count_;
  }
}

void Certifier::MarkPruned(NodeId id) {
  if (node_flags_.size() < cs_.NodeCount()) node_flags_.resize(cs_.NodeCount());
  uint8_t& flags = node_flags_[id.index()];
  if ((flags & 2u) == 0) {
    flags |= 2u;
    ++pruned_node_count_;
  }
}

Status Certifier::Ingest(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fallback_wanted_) FallbackLocked();
  Status status = IngestLocked(event);
  if (!status.ok()) {
    ++events_rejected_;
    return status;
  }
  ++events_accepted_;
  ++events_since_prune_;
  MaybePruneLocked();
  return status;
}

size_t Certifier::IngestBatch(const std::vector<TraceEvent>& events,
                              std::vector<Status>* statuses) {
  std::lock_guard<std::mutex> lock(mu_);
  if (statuses) {
    statuses->clear();
    statuses->reserve(events.size());
  }
  if (fallback_wanted_) FallbackLocked();
  // One Pearce-Kelly maintenance window for the whole batch: cycle-graph
  // edges defer into the arena and apply in order at the flush.  The
  // accept/reject decision for each event reads only cs_, the closures
  // and the seal bits — never the deferred graphs — so per-event statuses
  // are identical to the sequential Ingest sequence.  Pruning (which does
  // read the graphs) runs at most once, after the flush.
  const bool dynamic = DynamicActive();
  if (dynamic) engine_.BeginBatch(&arena_);
  in_batch_ = true;
  size_t rejected = 0;
  for (const TraceEvent& event : events) {
    Status status = IngestLocked(event);
    if (status.ok()) {
      ++events_accepted_;
      ++events_since_prune_;
      MaybePruneLocked();
    } else {
      ++events_rejected_;
      ++rejected;
    }
    if (statuses) statuses->push_back(std::move(status));
  }
  in_batch_ = false;
  if (dynamic) engine_.FlushBatch();
  if (prune_pending_) {
    prune_pending_ = false;
    PruneLocked();
  }
  arena_.Reset();
  return rejected;
}

Status Certifier::CheckNotSealed(NodeId id) const {
  if (IsSealed(id)) {
    return Status::FailedPrecondition(
        StrCat("node ", id.index(), " (", cs_.node(id).name,
               ") belongs to a committed root's sealed subtree"));
  }
  return Status::OK();
}

bool Certifier::SealRootLocked(NodeId root) {
  if (IsSealed(root)) return false;
  sealed_roots_.push_back(root);
  unpruned_sealed_.push_back(root);
  MarkSealed(root);
  for (NodeId d : cs_.Descendants(root)) MarkSealed(d);
  return true;
}

bool Certifier::WouldCreateRecursion(ScheduleId from, ScheduleId to) const {
  if (from == to) return true;
  // BFS over the invocation adjacency: recursion iff `to` reaches `from`.
  std::vector<bool> seen(invokes_.size(), false);
  std::deque<uint32_t> queue = {to.index()};
  seen[to.index()] = true;
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    if (s == from.index()) return true;
    for (uint32_t next : invokes_[s]) {
      if (!seen[next]) {
        seen[next] = true;
        queue.push_back(next);
      }
    }
  }
  return false;
}

bool Certifier::RecomputeLevels() {
  const size_t count = cs_.ScheduleCount();
  std::vector<uint32_t> levels(count, 0);
  // level(s) = 1 + longest invocation path starting at s (Def 9); the
  // adjacency is acyclic by the recursion pre-check, so a memoized DFS
  // suffices.
  std::function<uint32_t(uint32_t)> level_of = [&](uint32_t s) -> uint32_t {
    if (levels[s] != 0) return levels[s];
    uint32_t best = 0;
    for (uint32_t next : invokes_[s]) best = std::max(best, level_of(next));
    return levels[s] = best + 1;
  };
  uint32_t order = 0;
  for (uint32_t s = 0; s < count; ++s) order = std::max(order, level_of(s));
  const bool changed = levels != schedule_levels_ || order != order_;
  schedule_levels_ = std::move(levels);
  order_ = order;
  return changed;
}

void Certifier::Rebuild() {
  ++rebuilds_;
  engine_.Reset(&cs_, schedule_levels_, order_, options_.forgetting);
  // Replay every retained closed pair.  All derived structures are
  // monotone functions of these facts (the conflict-dependent rules
  // consult the complete CON relations of cs_ at replay time), so replay
  // order is irrelevant and the result equals a fresh session's state.
  for (uint32_t s = 0; s < cs_.ScheduleCount(); ++s) {
    const ScheduleId sid(s);
    ScheduleShard& sh = shard(sid);
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.weak_output.ForEach(
        [&](NodeId a, NodeId b) { engine_.OnClosedWeakOutput(sid, a, b); });
    sh.weak_input.ForEach(
        [&](NodeId a, NodeId b) { engine_.OnClosedWeakInput(a, b); });
    sh.strong_input.ForEach(
        [&](NodeId a, NodeId b) { engine_.OnClosedStrongInput(a, b); });
    for (const auto& [p, closure] : sh.weak_intra) {
      closure.ForEach(
          [&, p = p](NodeId a, NodeId b) { engine_.OnClosedWeakIntra(p, a, b); });
    }
    for (const auto& [p, closure] : sh.strong_intra) {
      closure.ForEach(
          [&](NodeId a, NodeId b) { engine_.OnClosedStrongIntra(a, b); });
    }
  }
}

Status Certifier::IngestLocked(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kSchedule: {
      cs_.AddSchedule(e.name);
      shards_.push_back(std::make_unique<ScheduleShard>());
      invokes_.emplace_back();
      // The level vector grew (and the order may have), so the engine's
      // level assignment is stale either way: rebuild.  This is cheap in
      // practice because schedules arrive before the bulk of the stream.
      RecomputeLevels();
      if (DynamicActive()) Rebuild();
      return Status::OK();
    }
    case TraceEventKind::kRoot: {
      COMPTX_ASSIGN_OR_RETURN(
          NodeId root, cs_.AddRootTransaction(ScheduleId(e.schedule), e.name));
      roots_.push_back(root);
      if (DynamicActive()) engine_.OnNodeAdded(root);
      return Status::OK();
    }
    case TraceEventKind::kSub: {
      const NodeId parent(e.parent);
      const ScheduleId sched(e.schedule);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(parent));
      if (cs_.HasNode(parent) && cs_.HasSchedule(sched) &&
          cs_.node(parent).IsTransaction()) {
        const ScheduleId host = cs_.node(parent).owner_schedule;
        if (WouldCreateRecursion(host, sched)) {
          return Status::FailedPrecondition(
              StrCat("subtransaction under ", cs_.node(parent).name,
                     " would make schedule ", cs_.schedule(sched).name,
                     " (indirectly) invoke itself"));
        }
      }
      COMPTX_ASSIGN_OR_RETURN(NodeId sub,
                              cs_.AddSubtransaction(parent, sched, e.name));
      invokes_[cs_.node(parent).owner_schedule.index()].insert(sched.index());
      if (RecomputeLevels()) {
        if (DynamicActive()) Rebuild();
      } else if (DynamicActive()) {
        engine_.OnNodeAdded(sub);
      }
      return Status::OK();
    }
    case TraceEventKind::kLeaf: {
      const NodeId parent(e.parent);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(parent));
      COMPTX_ASSIGN_OR_RETURN(NodeId leaf, cs_.AddLeaf(parent, e.name));
      if (DynamicActive()) engine_.OnNodeAdded(leaf);
      return Status::OK();
    }
    case TraceEventKind::kConflict: {
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      COMPTX_RETURN_IF_ERROR(cs_.AddConflict(a, b));
      saw_relational_event_ = true;
      if (!DynamicActive()) return Status::OK();
      const ScheduleId host = cs_.HostScheduleOf(a);
      bool wo_ab = false, wo_ba = false;
      {
        ScheduleShard& sh = shard(host);
        std::lock_guard<std::mutex> lock(sh.mu);
        wo_ab = sh.weak_output.Contains(a, b);
        wo_ba = sh.weak_output.Contains(b, a);
      }
      engine_.OnConflict(a, b, wo_ab, wo_ba);
      return Status::OK();
    }
    case TraceEventKind::kWeakOutput:
    case TraceEventKind::kStrongOutput: {
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      // A strong output pair is also a weak output pair (Def 1); the
      // decision procedure only consumes the weak output closure, so both
      // kinds route through it.
      COMPTX_RETURN_IF_ERROR(e.kind == TraceEventKind::kWeakOutput
                                 ? cs_.AddWeakOutput(a, b)
                                 : cs_.AddStrongOutput(a, b));
      saw_relational_event_ = true;
      if (!DynamicActive()) return Status::OK();
      const ScheduleId host = cs_.HostScheduleOf(a);
      std::vector<std::pair<NodeId, NodeId>> new_pairs;
      {
        ScheduleShard& sh = shard(host);
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.weak_output.Add(a, b, new_pairs);
      }
      for (const auto& [x, y] : new_pairs) {
        engine_.OnClosedWeakOutput(host, x, y);
      }
      return Status::OK();
    }
    case TraceEventKind::kWeakInput:
    case TraceEventKind::kStrongInput: {
      const ScheduleId sched(e.schedule);
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      const bool strong = e.kind == TraceEventKind::kStrongInput;
      COMPTX_RETURN_IF_ERROR(strong ? cs_.AddStrongInput(sched, a, b)
                                    : cs_.AddWeakInput(sched, a, b));
      saw_relational_event_ = true;
      if (!DynamicActive()) return Status::OK();
      std::vector<std::pair<NodeId, NodeId>> new_strong, new_weak;
      {
        ScheduleShard& sh = shard(sched);
        std::lock_guard<std::mutex> lock(sh.mu);
        if (strong) sh.strong_input.Add(a, b, new_strong);
        sh.weak_input.Add(a, b, new_weak);  // strong pairs are weak pairs.
      }
      for (const auto& [x, y] : new_strong) engine_.OnClosedStrongInput(x, y);
      for (const auto& [x, y] : new_weak) engine_.OnClosedWeakInput(x, y);
      return Status::OK();
    }
    case TraceEventKind::kIntraWeak:
    case TraceEventKind::kIntraStrong: {
      const NodeId txn(e.parent);
      const NodeId a(e.a), b(e.b);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(txn));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(a));
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(b));
      const bool strong = e.kind == TraceEventKind::kIntraStrong;
      COMPTX_RETURN_IF_ERROR(strong ? cs_.AddIntraStrong(txn, a, b)
                                    : cs_.AddIntraWeak(txn, a, b));
      saw_relational_event_ = true;
      if (!DynamicActive()) return Status::OK();
      const ScheduleId owner = cs_.node(txn).owner_schedule;
      std::vector<std::pair<NodeId, NodeId>> new_strong, new_weak;
      {
        ScheduleShard& sh = shard(owner);
        std::lock_guard<std::mutex> lock(sh.mu);
        if (strong) sh.strong_intra[txn].Add(a, b, new_strong);
        sh.weak_intra[txn].Add(a, b, new_weak);  // strong implies weak.
      }
      for (const auto& [x, y] : new_strong) engine_.OnClosedStrongIntra(x, y);
      for (const auto& [x, y] : new_weak) {
        engine_.OnClosedWeakIntra(txn, x, y);
      }
      return Status::OK();
    }
    case TraceEventKind::kCommit: {
      const NodeId root(e.parent);
      if (!cs_.HasNode(root) || !cs_.node(root).IsRoot()) {
        return Status::InvalidArgument(
            StrCat("commit of ", e.parent, ": not a root transaction"));
      }
      if (!SealRootLocked(root)) return Status::OK();  // idempotent.
      if (options_.auto_prune) SchedulePruneLocked();
      return Status::OK();
    }
    case TraceEventKind::kCommitThrough: {
      // Cumulative watermark: every root with creation index < e.a is
      // committed.  Counted in creation order, so the walk resumes at
      // the previous watermark and the per-event cost is bounded by the
      // number of newly covered roots — O(window) across the session.
      const uint64_t through = e.a;
      if (through > roots_.size()) {
        return Status::InvalidArgument(
            StrCat("commit_through ", through, ": only ", roots_.size(),
                   " root transactions exist"));
      }
      bool sealed_any = false;
      for (uint64_t i = std::min(commit_watermark_, through); i < through;
           ++i) {
        sealed_any = SealRootLocked(roots_[i]) || sealed_any;
      }
      commit_watermark_ = std::max(commit_watermark_, through);
      if (sealed_any && options_.auto_prune) SchedulePruneLocked();
      return Status::OK();
    }
    case TraceEventKind::kAdtDecl:
      return cs_.DeclareAdt(e.name).status();
    case TraceEventKind::kAdtOp:
      return cs_.DeclareAdtOp(e.a, e.name).status();
    case TraceEventKind::kCommute:
    case TraceEventKind::kClash: {
      COMPTX_RETURN_IF_ERROR(e.kind == TraceEventKind::kCommute
                                 ? cs_.DeclareCommute(e.a, e.b)
                                 : cs_.DeclareClash(e.a, e.b));
      // Retroactive spec change: conflicts already ingested may have been
      // derived under the old table.  Replay from the retained closures.
      if (saw_relational_event_ && DynamicActive()) Rebuild();
      return Status::OK();
    }
    case TraceEventKind::kTag: {
      const NodeId target(e.parent);
      COMPTX_RETURN_IF_ERROR(CheckNotSealed(target));
      COMPTX_RETURN_IF_ERROR(cs_.TagOperation(target, e.a, e.b));
      if (saw_relational_event_ && DynamicActive()) Rebuild();
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown event kind");
}

Status Certifier::Commit(NodeId root) {
  TraceEvent e;
  e.kind = TraceEventKind::kCommit;
  e.parent = root.index();
  return Ingest(e);
}

std::vector<NodeId> Certifier::SealedRoots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_roots_;
}

void Certifier::RestoreCounters(uint64_t accepted, uint64_t rejected) {
  std::lock_guard<std::mutex> lock(mu_);
  events_accepted_ = accepted;
  events_rejected_ = rejected;
  analysis_cached_at_ = ~uint64_t{0};
}

void Certifier::SchedulePruneLocked() {
  if (in_batch_) {
    // Pruning reads the engine's cycle graphs, which are deferred while
    // a batch is open; the batch epilogue runs one pass after the flush.
    prune_pending_ = true;
    events_since_prune_ = 0;
    return;
  }
  PruneLocked();
}

void Certifier::MaybePruneLocked() {
  if (!options_.auto_prune || options_.epoch_interval == 0) return;
  if (events_since_prune_ < options_.epoch_interval) return;
  if (unpruned_sealed_.empty()) {
    events_since_prune_ = 0;
    return;
  }
  SchedulePruneLocked();
}

bool Certifier::CanPrune(const std::vector<NodeId>& subtree) const {
  // In-edges whose source lies inside the subtree are removed together
  // with it, so only edges crossing the boundary from outside pin the
  // subtree down.  This is sound because PruneLocked only runs while the
  // engine is certifiable: every maintained graph is acyclic, so the
  // subtree carries no internal cycle whose evidence removal could lose,
  // and with a zero external in-degree no future event (which may not
  // reference sealed nodes) can ever route a cycle through the subtree.
  const std::unordered_set<NodeId> inside(subtree.begin(), subtree.end());
  for (NodeId n : subtree) {
    // No external in-edge in any front-level or quotient structure.
    if (engine_.HasIncomingEdges(n, inside)) return false;
    const Node& node = cs_.node(n);
    if (node.IsTransaction()) {
      // Intra-block edges are always internal (the block's children are in
      // the subtree whenever the block is), so a clean graph suffices.
      if (!engine_.IntraGraphClean(n)) return false;
      const ScheduleShard& sh = shard(node.owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      if (sh.weak_input.HasIncomingFromOutside(n, inside) ||
          sh.strong_input.HasIncomingFromOutside(n, inside)) {
        return false;
      }
    }
    if (!node.IsRoot()) {
      // Closure in-edges could later manufacture derived in-edges by
      // transitivity without any event naming `n`; require that none
      // cross the boundary.
      {
        const ScheduleShard& sh = shard(cs_.HostScheduleOf(n));
        std::lock_guard<std::mutex> lock(sh.mu);
        if (sh.weak_output.HasIncomingFromOutside(n, inside)) return false;
      }
      const NodeId parent = node.parent;
      const ScheduleShard& sh = shard(cs_.node(parent).owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      auto check = [&](const auto& map) {
        auto it = map.find(parent);
        return it != map.end() && it->second.HasIncomingFromOutside(n, inside);
      };
      if (check(sh.weak_intra) || check(sh.strong_intra)) return false;
    }
  }
  return true;
}

void Certifier::RemoveSubtree(const std::vector<NodeId>& subtree) {
  for (NodeId n : subtree) {
    engine_.RemoveNode(n);
    const Node& node = cs_.node(n);
    if (node.IsTransaction()) {
      engine_.RemoveIntraGraphOf(n);
      ScheduleShard& sh = shard(node.owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.weak_input.RemoveNode(n);
      sh.strong_input.RemoveNode(n);
      sh.weak_intra.erase(n);
      sh.strong_intra.erase(n);
    }
    if (!node.IsRoot()) {
      {
        ScheduleShard& sh = shard(cs_.HostScheduleOf(n));
        std::lock_guard<std::mutex> lock(sh.mu);
        sh.weak_output.RemoveNode(n);
      }
      const NodeId parent = node.parent;
      ScheduleShard& sh = shard(cs_.node(parent).owner_schedule);
      std::lock_guard<std::mutex> lock(sh.mu);
      if (auto it = sh.weak_intra.find(parent); it != sh.weak_intra.end()) {
        it->second.RemoveNode(n);
      }
      if (auto it = sh.strong_intra.find(parent); it != sh.strong_intra.end()) {
        it->second.RemoveNode(n);
      }
    }
  }
}

size_t Certifier::PruneLocked() {
  events_since_prune_ = 0;
  if (mode_ == Mode::kStatic) {
    // No derived per-node state exists to free; mark the sealed window
    // pruned so live_nodes reports the same O(window) envelope as a
    // dynamic session (the append-only cs_ is excluded either way).
    size_t removed = 0;
    for (NodeId root : unpruned_sealed_) {
      MarkPruned(root);
      ++removed;
      for (NodeId d : cs_.Descendants(root)) {
        MarkPruned(d);
        ++removed;
      }
      ++pruned_root_count_;
    }
    unpruned_sealed_.clear();
    if (removed > 0) ++prune_passes_;
    return removed;
  }
  // Once failed, keep everything: the failure evidence (a cycle in some
  // maintained graph) must survive rebuilds, and pruning is only a memory
  // optimization for live sessions anyway.
  if (!engine_.certifiable()) return 0;
  size_t removed = 0;
  bool progress = true;
  // Removing one subtree can zero another's in-degrees, so iterate to a
  // fixpoint.  The worklist holds only sealed-but-unpruned roots (swap-
  // removed once pruned), so a pass costs O(live window), not O(every
  // root ever sealed) — the property the long-session soak asserts.
  while (progress) {
    progress = false;
    for (size_t idx = 0; idx < unpruned_sealed_.size();) {
      const NodeId root = unpruned_sealed_[idx];
      std::vector<NodeId> subtree = {root};
      for (NodeId d : cs_.Descendants(root)) subtree.push_back(d);
      if (!CanPrune(subtree)) {
        ++idx;
        continue;
      }
      RemoveSubtree(subtree);
      for (NodeId n : subtree) MarkPruned(n);
      ++pruned_root_count_;
      removed += subtree.size();
      unpruned_sealed_[idx] = unpruned_sealed_.back();
      unpruned_sealed_.pop_back();
      progress = true;  // the swapped-in root is re-examined at idx.
    }
  }
  if (removed > 0) ++prune_passes_;
  return removed;
}

size_t Certifier::Prune() {
  std::lock_guard<std::mutex> lock(mu_);
  return PruneLocked();
}

void Certifier::FallbackLocked() {
  fallback_wanted_ = false;
  if (mode_ != Mode::kStatic) return;
  // Rebuild full dynamic state by replaying the accumulated system, the
  // exact discipline of a durability restore (online/state_io.cc): replay
  // the SaveTrace event order — every derived structure is a monotone
  // function of the facts, so order is irrelevant — then re-seal in the
  // original seal order, then prune.  The stream counters and watermark
  // describe the original stream, not the replay, so they are preserved.
  auto trace = workload::SaveTrace(cs_);
  if (!trace.ok()) return;  // unserializable system: stay static.
  auto events = workload::ParseTraceEvents(*trace);
  if (!events.ok()) return;
  const std::vector<NodeId> sealed = sealed_roots_;
  const uint64_t accepted = events_accepted_;
  const uint64_t rejected = events_rejected_;
  const uint64_t watermark = commit_watermark_;

  mode_ = Mode::kDynamic;
  cs_ = CompositeSystem();
  shards_.clear();
  invokes_.clear();
  schedule_levels_.clear();
  order_ = 0;
  roots_.clear();
  node_flags_.clear();
  sealed_node_count_ = pruned_node_count_ = pruned_root_count_ = 0;
  sealed_roots_.clear();
  unpruned_sealed_.clear();
  commit_watermark_ = 0;
  engine_.Reset(&cs_, {}, 0, options_.forgetting);
  for (const TraceEvent& event : *events) {
    (void)IngestLocked(event);  // replay of accepted history: cannot fail.
  }
  for (NodeId root : sealed) {
    TraceEvent commit;
    commit.kind = TraceEventKind::kCommit;
    commit.parent = root.index();
    (void)IngestLocked(commit);
  }
  PruneLocked();
  events_accepted_ = accepted;
  events_rejected_ = rejected;
  commit_watermark_ = watermark;
  analysis_cached_at_ = ~uint64_t{0};
  ++static_fallback_count_;
}

void Certifier::RefreshAnalysisLocked() const {
  if (analysis_cached_at_ == events_accepted_) return;
  analysis_cached_at_ = events_accepted_;
  ++static_analysis_count_;
  staticcheck::AnalyzerOptions opts;
  opts.explain = false;  // verdict only; no per-scheduler rows needed.
  const staticcheck::StaticAnalysis analysis =
      staticcheck::AnalyzeConfiguration(cs_, opts);
  analysis_exact_ = false;
  analysis_certifiable_ = true;
  analysis_failure_.reset();
  if (analysis.well_formed &&
      analysis.verdict == staticcheck::SafetyVerdict::kSafe) {
    analysis_exact_ = true;
  } else if (analysis.well_formed &&
             analysis.verdict == staticcheck::SafetyVerdict::kUnsafe) {
    analysis_exact_ = true;
    analysis_certifiable_ = false;
    if (analysis.witness) {
      OnlineFailure failure;
      failure.step = OnlineFailure::Step::kConflictConsistency;
      failure.witness = analysis.witness->nodes;
      failure.description = analysis.witness->description;
      analysis_failure_ = std::move(failure);
    }
  }
  if (mode_ == Mode::kParanoid) {
    // The dynamic answer stays authoritative; an exact analyzer verdict
    // that disagrees is a bug in one of the two and is counted (once per
    // refresh — the cache keys on the accepted-event count).
    if (analysis_exact_ && analysis_certifiable_ != engine_.certifiable()) {
      ++paranoid_mismatch_count_;
    }
    return;
  }
  if (analysis_exact_) return;
  // NEEDS_DYNAMIC, or a prefix still violating the completeness rules of
  // Defs 3-4.  Answer with batch CheckCompC (validation off, as always
  // for prefixes).  Only a well-formed system proves the *configuration*
  // defeats static reasoning; that asks for the one-time dynamic
  // fallback — an incomplete prefix is transient and does not.
  if (analysis.well_formed) fallback_wanted_ = true;
  ReductionOptions ropts;
  ropts.validate = false;
  ropts.keep_fronts = false;
  ropts.forgetting = options_.forgetting;
  auto result = CheckCompC(cs_, ropts);
  if (!result.ok()) {
    analysis_certifiable_ = false;
    OnlineFailure failure;
    failure.description = StrCat("batch check failed: ",
                                 result.status().message());
    analysis_failure_ = std::move(failure);
    return;
  }
  analysis_certifiable_ = result->correct;
  if (!result->correct && result->failure) {
    analysis_failure_ = FailureFromReduction(*result->failure);
  }
}

CertifierVerdict Certifier::Verdict() const {
  std::lock_guard<std::mutex> lock(mu_);
  CertifierVerdict verdict;
  verdict.order = order_;
  if (mode_ == Mode::kStatic) {
    RefreshAnalysisLocked();
    verdict.certifiable = analysis_certifiable_;
    verdict.failure = analysis_failure_;
    verdict.static_decided = true;
    return verdict;
  }
  verdict.certifiable = engine_.certifiable();
  verdict.failure = engine_.failure();
  if (mode_ == Mode::kParanoid) RefreshAnalysisLocked();
  return verdict;
}

bool Certifier::Certifiable() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kStatic) {
    RefreshAnalysisLocked();
    return analysis_certifiable_;
  }
  if (mode_ == Mode::kParanoid) RefreshAnalysisLocked();
  return engine_.certifiable();
}

std::vector<NodeId> Certifier::SerialWitness() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kStatic) {
    // No maintained topological order exists; derive a witness from the
    // batch procedure on demand (this is a diagnostic path, not the hot
    // path).
    ReductionOptions ropts;
    ropts.validate = false;
    ropts.keep_fronts = false;
    ropts.forgetting = options_.forgetting;
    auto result = CheckCompC(cs_, ropts);
    if (!result.ok() || !result->correct) return {};
    std::vector<NodeId> out;
    for (NodeId r : result->serial_order) {
      if (!IsPruned(r)) out.push_back(r);
    }
    return out;
  }
  if (!engine_.certifiable()) return {};
  std::vector<NodeId> roots;
  for (NodeId r : roots_) {
    if (!IsPruned(r)) roots.push_back(r);
  }
  std::stable_sort(roots.begin(), roots.end(), [&](NodeId x, NodeId y) {
    return engine_.TopOrderKey(x) < engine_.TopOrderKey(y);
  });
  return roots;
}

CertifierStats Certifier::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CertifierStats stats;
  stats.events_accepted = events_accepted_;
  stats.events_rejected = events_rejected_;
  stats.rebuilds = rebuilds_;
  stats.prune_passes = prune_passes_;
  stats.pruned_nodes = pruned_node_count_;
  stats.sealed_roots = sealed_roots_.size();
  stats.commit_watermark = commit_watermark_;
  stats.live_nodes = cs_.NodeCount() - pruned_node_count_;
  stats.observed_pairs = engine_.ObservedPairCount();
  stats.cc_edges = engine_.CcEdgeCount();
  stats.calc_edges = engine_.CalcEdgeCount();
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> shard_lock(sh->mu);
    stats.closure_pairs += sh->weak_output.PairCount() +
                           sh->weak_input.PairCount() +
                           sh->strong_input.PairCount();
    for (const auto& [p, c] : sh->weak_intra) stats.closure_pairs += c.PairCount();
    for (const auto& [p, c] : sh->strong_intra) {
      stats.closure_pairs += c.PairCount();
    }
  }
  stats.static_mode = mode_ == Mode::kStatic;
  stats.static_analyses = static_analysis_count_;
  stats.static_fallbacks = static_fallback_count_;
  stats.paranoid_mismatches = paranoid_mismatch_count_;
  return stats;
}

}  // namespace comptx::online
