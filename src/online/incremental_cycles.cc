#include "online/incremental_cycles.h"

#include <algorithm>

namespace comptx::online {

IncrementalCycleGraph::Vertex& IncrementalCycleGraph::Ensure(NodeId id) {
  auto [it, inserted] = vertices_.try_emplace(id);
  if (inserted) it->second.ord = next_ord_++;
  return it->second;
}

void IncrementalCycleGraph::EnsureNode(NodeId id) { Ensure(id); }

bool IncrementalCycleGraph::HasEdge(NodeId a, NodeId b) const {
  auto it = vertices_.find(a);
  return it != vertices_.end() && it->second.out.count(b) > 0;
}

size_t IncrementalCycleGraph::InDegree(NodeId id) const {
  auto it = vertices_.find(id);
  return it == vertices_.end() ? 0 : it->second.in.size();
}

bool IncrementalCycleGraph::HasInEdgeFromOutside(
    NodeId id, const std::unordered_set<NodeId>& inside) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) return false;
  for (NodeId pred : it->second.in) {
    if (inside.count(pred) == 0) return true;
  }
  return false;
}

uint64_t IncrementalCycleGraph::OrderKey(NodeId id) const {
  auto it = vertices_.find(id);
  return it == vertices_.end() ? next_ord_ : it->second.ord;
}

void IncrementalCycleGraph::RemoveNode(NodeId id) {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) return;
  for (NodeId succ : it->second.out) {
    vertices_.at(succ).in.erase(id);
    --edge_count_;
  }
  for (NodeId pred : it->second.in) {
    vertices_.at(pred).out.erase(id);
    --edge_count_;
  }
  vertices_.erase(it);
}

bool IncrementalCycleGraph::AddEdge(NodeId a, NodeId b) {
  Vertex& va = Ensure(a);
  if (va.out.count(b) > 0) return !cycle_;
  if (a == b) {
    va.out.insert(b);
    va.in.insert(a);
    ++edge_count_;
    if (!cycle_) {
      cycle_ = true;
      witness_ = {a};
    }
    return false;
  }
  Vertex& vb = Ensure(b);
  va.out.insert(b);
  vb.in.insert(a);
  ++edge_count_;
  if (cycle_) return false;
  if (va.ord < vb.ord) return true;  // order already consistent: O(1).
  if (!Reorder(a, b)) {
    cycle_ = true;
    return false;
  }
  return true;
}

bool IncrementalCycleGraph::AddEdges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  for (const auto& [a, b] : edges) AddEdge(a, b);
  return !cycle_;
}

bool IncrementalCycleGraph::Reorder(NodeId a, NodeId b) {
  const uint64_t lb = vertices_.at(b).ord;
  const uint64_t ub = vertices_.at(a).ord;
  const uint64_t stamp = ++visit_stamp_;

  // Forward DFS from b over vertices with ord <= ub.  Reaching a means the
  // new edge a -> b closed a cycle; the DFS parents give the b ~> a path.
  forward_.clear();
  stack_.clear();
  stack_.push_back(b);
  vertices_.at(b).fwd_stamp = stamp;
  while (!stack_.empty()) {
    NodeId u = stack_.back();
    stack_.pop_back();
    forward_.push_back(u);
    if (u == a) {
      // Reconstruct b ~> a; with the closing edge a -> b this is a cycle.
      witness_.clear();
      for (NodeId w = a; w != b; w = vertices_.at(w).parent) {
        witness_.push_back(w);
      }
      witness_.push_back(b);
      std::reverse(witness_.begin(), witness_.end());
      return false;
    }
    for (NodeId w : vertices_.at(u).out) {
      Vertex& vw = vertices_.at(w);
      if (vw.ord > ub) continue;
      if (vw.fwd_stamp != stamp) {
        vw.fwd_stamp = stamp;
        vw.parent = u;
        stack_.push_back(w);
      }
    }
  }

  // Backward DFS from a over vertices with ord >= lb.  Disjoint from the
  // forward set (overlap would have been a cycle caught above).
  backward_.clear();
  stack_.push_back(a);
  vertices_.at(a).bwd_stamp = stamp;
  while (!stack_.empty()) {
    NodeId u = stack_.back();
    stack_.pop_back();
    backward_.push_back(u);
    for (NodeId w : vertices_.at(u).in) {
      Vertex& vw = vertices_.at(w);
      if (vw.ord < lb) continue;
      if (vw.bwd_stamp != stamp) {
        vw.bwd_stamp = stamp;
        stack_.push_back(w);
      }
    }
  }

  // Reassign: the affected vertices keep their relative order within each
  // set, but every backward (≼ a) vertex now sorts before every forward
  // (≽ b) vertex, reusing the same pool of order keys.
  auto by_ord = [this](NodeId x, NodeId y) {
    return vertices_.at(x).ord < vertices_.at(y).ord;
  };
  std::sort(backward_.begin(), backward_.end(), by_ord);
  std::sort(forward_.begin(), forward_.end(), by_ord);

  pool_.clear();
  for (NodeId x : backward_) pool_.push_back(vertices_.at(x).ord);
  for (NodeId x : forward_) pool_.push_back(vertices_.at(x).ord);
  std::sort(pool_.begin(), pool_.end());

  size_t slot = 0;
  for (NodeId x : backward_) vertices_.at(x).ord = pool_[slot++];
  for (NodeId x : forward_) vertices_.at(x).ord = pool_[slot++];
  return true;
}

}  // namespace comptx::online
