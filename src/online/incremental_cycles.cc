#include "online/incremental_cycles.h"

#include <algorithm>

namespace comptx::online {

IncrementalCycleGraph::Vertex& IncrementalCycleGraph::Ensure(NodeId id) {
  auto [it, inserted] = vertices_.try_emplace(id);
  if (inserted) it->second.ord = next_ord_++;
  return it->second;
}

void IncrementalCycleGraph::EnsureNode(NodeId id) { Ensure(id); }

bool IncrementalCycleGraph::HasEdge(NodeId a, NodeId b) const {
  auto it = vertices_.find(a);
  return it != vertices_.end() && it->second.out.count(b) > 0;
}

size_t IncrementalCycleGraph::InDegree(NodeId id) const {
  auto it = vertices_.find(id);
  return it == vertices_.end() ? 0 : it->second.in.size();
}

bool IncrementalCycleGraph::HasInEdgeFromOutside(
    NodeId id, const std::unordered_set<NodeId>& inside) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) return false;
  for (NodeId pred : it->second.in) {
    if (inside.count(pred) == 0) return true;
  }
  return false;
}

uint64_t IncrementalCycleGraph::OrderKey(NodeId id) const {
  auto it = vertices_.find(id);
  return it == vertices_.end() ? next_ord_ : it->second.ord;
}

void IncrementalCycleGraph::RemoveNode(NodeId id) {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) return;
  for (NodeId succ : it->second.out) {
    vertices_.at(succ).in.erase(id);
    --edge_count_;
  }
  for (NodeId pred : it->second.in) {
    vertices_.at(pred).out.erase(id);
    --edge_count_;
  }
  vertices_.erase(it);
}

bool IncrementalCycleGraph::AddEdge(NodeId a, NodeId b) {
  Vertex& va = Ensure(a);
  if (va.out.count(b) > 0) return !cycle_;
  if (a == b) {
    va.out.insert(b);
    va.in.insert(a);
    ++edge_count_;
    if (!cycle_) {
      cycle_ = true;
      witness_ = {a};
    }
    return false;
  }
  Vertex& vb = Ensure(b);
  va.out.insert(b);
  vb.in.insert(a);
  ++edge_count_;
  if (cycle_) return false;
  if (va.ord < vb.ord) return true;  // order already consistent: O(1).
  if (!Reorder(a, b)) {
    cycle_ = true;
    return false;
  }
  return true;
}

bool IncrementalCycleGraph::Reorder(NodeId a, NodeId b) {
  const uint64_t lb = vertices_.at(b).ord;
  const uint64_t ub = vertices_.at(a).ord;

  // Forward DFS from b over vertices with ord <= ub.  Reaching a means the
  // new edge a -> b closed a cycle; the DFS parents give the b ~> a path.
  std::vector<NodeId> forward;
  std::unordered_map<NodeId, NodeId> parent;
  std::unordered_set<NodeId> seen_fwd;
  std::vector<NodeId> stack = {b};
  seen_fwd.insert(b);
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    forward.push_back(u);
    if (u == a) {
      // Reconstruct b ~> a; with the closing edge a -> b this is a cycle.
      witness_.clear();
      for (NodeId w = a; w != b; w = parent.at(w)) witness_.push_back(w);
      witness_.push_back(b);
      std::reverse(witness_.begin(), witness_.end());
      return false;
    }
    for (NodeId w : vertices_.at(u).out) {
      if (vertices_.at(w).ord > ub) continue;
      if (seen_fwd.insert(w).second) {
        parent.emplace(w, u);
        stack.push_back(w);
      }
    }
  }

  // Backward DFS from a over vertices with ord >= lb.  Disjoint from the
  // forward set (overlap would have been a cycle caught above).
  std::vector<NodeId> backward;
  std::unordered_set<NodeId> seen_bwd;
  stack.push_back(a);
  seen_bwd.insert(a);
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    backward.push_back(u);
    for (NodeId w : vertices_.at(u).in) {
      if (vertices_.at(w).ord < lb) continue;
      if (seen_bwd.insert(w).second) stack.push_back(w);
    }
  }

  // Reassign: the affected vertices keep their relative order within each
  // set, but every backward (≼ a) vertex now sorts before every forward
  // (≽ b) vertex, reusing the same pool of order keys.
  auto by_ord = [this](NodeId x, NodeId y) {
    return vertices_.at(x).ord < vertices_.at(y).ord;
  };
  std::sort(backward.begin(), backward.end(), by_ord);
  std::sort(forward.begin(), forward.end(), by_ord);

  std::vector<uint64_t> pool;
  pool.reserve(backward.size() + forward.size());
  for (NodeId x : backward) pool.push_back(vertices_.at(x).ord);
  for (NodeId x : forward) pool.push_back(vertices_.at(x).ord);
  std::sort(pool.begin(), pool.end());

  size_t slot = 0;
  for (NodeId x : backward) vertices_.at(x).ord = pool[slot++];
  for (NodeId x : forward) vertices_.at(x).ord = pool[slot++];
  return true;
}

}  // namespace comptx::online
