#ifndef COMPTX_ONLINE_STATE_IO_H_
#define COMPTX_ONLINE_STATE_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "online/certifier.h"
#include "util/status_or.h"

namespace comptx::online {

/// A serializable image of a Certifier session, the unit the durability
/// layer snapshots to disk (DESIGN.md §11.3).  It is *not* a dump of the
/// engine's derived structures: it captures exactly the ingested facts —
/// the accumulated composite system as a trace, plus which roots were
/// sealed — and relies on the certifier's replay-equivalence property
/// ("all derived state is a monotone function of the ingested facts") to
/// rebuild everything else.  That keeps the format independent of every
/// engine internal and makes restores verifiable against the batch
/// oracle.
struct CertifierState {
  std::string trace;               // SaveTrace() of the accumulated system
  std::vector<uint32_t> sealed;    // sealed root indices, in seal order
  uint64_t accepted = 0;           // stream counters at capture time
  uint64_t rejected = 0;
  bool certifiable = true;         // verdict at capture time (restore check)
};

/// Captures `certifier`'s state.  The caller must hold the session's
/// single-writer role (no concurrent Ingest), the same contract as
/// system().
StatusOr<CertifierState> CaptureCertifierState(const Certifier& certifier);

/// Rebuilds a certifier from a captured state: replays the trace events,
/// re-seals the recorded roots, prunes (when `options.auto_prune`), and
/// restores the stream counters.  Fails with kInternal when the replay
/// rejects an event or the rebuilt verdict disagrees with the recorded
/// one — either means the state image is corrupt or the replay-
/// equivalence property was broken, and a recovering server must not
/// serve such a session silently.
StatusOr<std::unique_ptr<Certifier>> RestoreCertifierState(
    const CertifierState& state, const CertifierOptions& options);

}  // namespace comptx::online

#endif  // COMPTX_ONLINE_STATE_IO_H_
