#include "online/online_front.h"

#include <algorithm>

#include "core/observed_order.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::online {

// ---- PairSet --------------------------------------------------------------

bool PairSet::Add(NodeId a, NodeId b) {
  if (!fwd_[a].insert(b).second) return false;
  rev_[b].insert(a);
  ++pair_count_;
  return true;
}

bool PairSet::Contains(NodeId a, NodeId b) const {
  auto it = fwd_.find(a);
  return it != fwd_.end() && it->second.count(b) > 0;
}

void PairSet::RemoveNode(NodeId id) {
  auto fit = fwd_.find(id);
  if (fit != fwd_.end()) {
    for (NodeId b : fit->second) {
      rev_[b].erase(id);
      --pair_count_;
    }
    fwd_.erase(fit);
  }
  auto rit = rev_.find(id);
  if (rit != rev_.end()) {
    for (NodeId a : rit->second) {
      fwd_[a].erase(id);
      --pair_count_;
    }
    rev_.erase(rit);
  }
}

// ---- IncrementalClosure ---------------------------------------------------

void IncrementalClosure::Add(NodeId a, NodeId b,
                             std::vector<std::pair<NodeId, NodeId>>& new_pairs) {
  {
    auto it = succ_.find(a);
    if (it != succ_.end() && it->second.count(b) > 0) {
      // (a, b) already closed: any path using the new edge factors through
      // existing closed pairs, so nothing new can appear.
      return;
    }
  }
  std::vector<NodeId> sources = {a};
  if (auto it = pred_.find(a); it != pred_.end()) {
    sources.insert(sources.end(), it->second.begin(), it->second.end());
  }
  std::vector<NodeId> targets = {b};
  if (auto it = succ_.find(b); it != succ_.end()) {
    targets.insert(targets.end(), it->second.begin(), it->second.end());
  }
  for (NodeId x : sources) {
    auto& out = succ_[x];
    for (NodeId y : targets) {
      if (out.insert(y).second) {
        pred_[y].insert(x);
        ++pair_count_;
        new_pairs.emplace_back(x, y);
      }
    }
  }
}

bool IncrementalClosure::Contains(NodeId a, NodeId b) const {
  auto it = succ_.find(a);
  return it != succ_.end() && it->second.count(b) > 0;
}

void IncrementalClosure::RemoveNode(NodeId id) {
  auto sit = succ_.find(id);
  if (sit != succ_.end()) {
    for (NodeId y : sit->second) {
      pred_[y].erase(id);
      --pair_count_;
    }
    succ_.erase(sit);
  }
  auto pit = pred_.find(id);
  if (pit != pred_.end()) {
    for (NodeId x : pit->second) {
      succ_[x].erase(id);
      --pair_count_;
    }
    pred_.erase(pit);
  }
}

// ---- OnlineFrontEngine ----------------------------------------------------

void OnlineFrontEngine::Reset(const CompositeSystem* cs,
                              std::vector<uint32_t> schedule_levels,
                              uint32_t order, bool forgetting) {
  cs_ = cs;
  schedule_levels_ = std::move(schedule_levels);
  order_ = order;
  forgetting_ = forgetting;
  level_.assign(order_ + 1, LevelState{});
  step_.assign(order_ + 1, StepState{});
  strong_of_.clear();
  failure_.reset();
  // A mid-batch Reset (schedule levels shifted) invalidates the deferred
  // ops' routing; drop them — the caller re-feeds its closures, which
  // defer afresh against the new levels.
  if (pending_) pending_->clear();
  for (uint32_t v = 0; v < cs_->NodeCount(); ++v) {
    if (cs_->node(NodeId(v)).IsRoot()) {
      if (pending_) {
        pending_->push_back(PendingOp{PendingOp::Kind::kEnsureTop, 0, NodeId(),
                                      NodeId(v), NodeId()});
      } else {
        level_[order_].cc.EnsureNode(NodeId(v));
      }
    }
  }
}

void OnlineFrontEngine::BeginBatch(MonotonicArena* arena) {
  pending_.emplace(ArenaAllocator<PendingOp>(arena));
}

void OnlineFrontEngine::FlushBatch() {
  if (!pending_) return;
  // Detach before applying so the *Now bodies (IntraEdgeNow in
  // particular, reached from kCalc routing) don't re-defer.
  auto ops = std::move(*pending_);
  pending_.reset();
  for (const PendingOp& op : ops) {
    switch (op.kind) {
      case PendingOp::Kind::kEnsureTop:
        level_[order_].cc.EnsureNode(op.a);
        break;
      case PendingOp::Kind::kCc:
        CcEdgeNow(op.idx, op.a, op.b);
        break;
      case PendingOp::Kind::kCalc:
        CalcEdgeNow(op.idx, op.a, op.b);
        break;
      case PendingOp::Kind::kIntra:
        IntraEdgeNow(op.idx, op.p, op.a, op.b);
        break;
    }
  }
}

uint32_t OnlineFrontEngine::SpanBegin(NodeId x) const {
  const Node& n = cs_->node(x);
  if (n.IsLeaf()) return 0;
  return schedule_levels_[n.owner_schedule.index()];
}

uint32_t OnlineFrontEngine::SpanEnd(NodeId x) const {
  const Node& n = cs_->node(x);
  if (n.IsRoot()) return order_;
  return schedule_levels_[cs_->HostScheduleOf(x).index()] - 1;
}

NodeId OnlineFrontEngine::Rep(NodeId x, uint32_t i) const {
  const Node& n = cs_->node(x);
  if (n.IsRoot()) return x;
  if (schedule_levels_[cs_->HostScheduleOf(x).index()] == i) return n.parent;
  return x;
}

std::vector<NodeId> OnlineFrontEngine::FrontMembersOfSubtree(
    NodeId t, uint32_t j) const {
  std::vector<NodeId> out;
  if (j > SpanEnd(t)) return out;
  if (InFront(t, j)) {
    out.push_back(t);
    return out;
  }
  for (NodeId d : cs_->Descendants(t)) {
    if (InFront(d, j)) out.push_back(d);
  }
  return out;
}

bool OnlineFrontEngine::BindingObserved(NodeId a, NodeId b) const {
  ScheduleId ha = cs_->HostScheduleOf(a);
  ScheduleId hb = cs_->HostScheduleOf(b);
  if (ha.valid() && ha == hb) {
    return cs_->EffectiveConflict(ha, a, b);
  }
  return true;  // cross-schedule pairs are observed-related by construction.
}

void OnlineFrontEngine::Fail(uint32_t level, OnlineFailure::Step step,
                             const std::vector<NodeId>& witness,
                             const std::string& what) {
  if (failure_) return;
  OnlineFailure f;
  f.level = level;
  f.step = step;
  f.witness = witness;
  std::string cycle;
  for (NodeId n : witness) {
    if (!cycle.empty()) cycle += " -> ";
    cycle += cs_->node(n).name;
  }
  f.description = StrCat(what, " [", cycle, "]");
  failure_ = std::move(f);
}

void OnlineFrontEngine::CcEdge(uint32_t j, NodeId a, NodeId b) {
  if (pending_) {
    pending_->push_back(PendingOp{PendingOp::Kind::kCc, j, NodeId(), a, b});
    return;
  }
  CcEdgeNow(j, a, b);
}

void OnlineFrontEngine::CcEdgeNow(uint32_t j, NodeId a, NodeId b) {
  IncrementalCycleGraph& cc = level_[j].cc;
  if (!cc.AddEdge(a, b) && !failure_) {
    Fail(j, OnlineFailure::Step::kConflictConsistency, cc.cycle_witness(),
         StrCat("front level ", j, " is not conflict consistent"));
  }
}

void OnlineFrontEngine::CalcEdge(uint32_t i, NodeId a, NodeId b) {
  if (i < 1 || i > order_) return;
  if (pending_) {
    // Routing inputs (Rep, schedule levels) are stable until the next
    // Reset, and a Reset discards the pending list — so routing at flush
    // time is identical to routing here.
    pending_->push_back(PendingOp{PendingOp::Kind::kCalc, i, NodeId(), a, b});
    return;
  }
  CalcEdgeNow(i, a, b);
}

void OnlineFrontEngine::CalcEdgeNow(uint32_t i, NodeId a, NodeId b) {
  NodeId ra = Rep(a, i);
  NodeId rb = Rep(b, i);
  const bool grouped = (ra != a) || (rb != b);
  if (ra == rb && grouped) {
    // Both endpoints collapse into one level-i transaction: the constraint
    // is internal to that block (Def 14 intra test).
    IntraEdgeNow(i, ra, a, b);
    return;
  }
  IncrementalCycleGraph& q = step_[i].quotient;
  if (!q.AddEdge(ra, rb) && !failure_) {
    Fail(i, OnlineFailure::Step::kCalculation, q.cycle_witness(),
         StrCat("no calculation at level ", i,
                ": block cycle prevents isolating the level ", i,
                " transactions"));
  }
}

void OnlineFrontEngine::IntraEdge(uint32_t i, NodeId p, NodeId a, NodeId b) {
  if (i < 1 || i > order_) return;
  if (pending_) {
    pending_->push_back(PendingOp{PendingOp::Kind::kIntra, i, p, a, b});
    return;
  }
  IntraEdgeNow(i, p, a, b);
}

void OnlineFrontEngine::IntraEdgeNow(uint32_t i, NodeId p, NodeId a, NodeId b) {
  IncrementalCycleGraph& g = step_[i].intra[p];
  if (!g.AddEdge(a, b) && !failure_) {
    Fail(i, OnlineFailure::Step::kCalculation, g.cycle_witness(),
         StrCat("no calculation for transaction ", cs_->node(p).name,
                ": the observed order contradicts its intra-transaction ",
                "order"));
  }
}

void OnlineFrontEngine::AddObserved(uint32_t j, NodeId a, NodeId b) {
  if (j > order_) return;
  if (!level_[j].observed.Add(a, b)) return;
  CcEdge(j, a, b);
  if (j + 1 > order_) return;
  // Calculation rule 2 at step j+1: the pair binds iff it conflicts.
  if (BindingObserved(a, b)) CalcEdge(j + 1, a, b);
  // Pull-up (Def 10 points 2-4) to front j+1, sharing the exact per-pair
  // logic with the batch reducer.
  if (auto image = PullUpObservedPair(*cs_, a, b, Rep(a, j + 1), Rep(b, j + 1),
                                      forgetting_)) {
    AddObserved(j + 1, image->first, image->second);
  }
}

void OnlineFrontEngine::OnNodeAdded(NodeId x) {
  const Node& n = cs_->node(x);
  if (n.IsRoot()) {
    level_[order_].cc.EnsureNode(x);
    return;
  }
  // Retroactive pull-down: existing strong constraints on any ancestor now
  // also constrain x (x joined that ancestor's subtree).
  const uint32_t x_begin = SpanBegin(x);
  const uint32_t x_end = SpanEnd(x);
  for (NodeId anc = n.parent;; anc = cs_->node(anc).parent) {
    auto it = strong_of_.find(anc);
    if (it != strong_of_.end()) {
      for (const auto& [other, is_source] : it->second) {
        const uint32_t hi = std::min(x_end, SpanEnd(other));
        for (uint32_t j = x_begin; j <= hi; ++j) {
          for (NodeId y : FrontMembersOfSubtree(other, j)) {
            if (is_source) {
              CcEdge(j, x, y);
              CalcEdge(j + 1, x, y);
            } else {
              CcEdge(j, y, x);
              CalcEdge(j + 1, y, x);
            }
          }
        }
      }
    }
    if (cs_->node(anc).IsRoot()) break;
  }
}

void OnlineFrontEngine::OnConflict(NodeId a, NodeId b, bool weak_out_ab,
                                   bool weak_out_ba) {
  const ScheduleId s = cs_->HostScheduleOf(a);
  // A pair the spec proves commuting behaves like an undeclared conflict:
  // it binds nothing and its observed pairs stay forgettable.  (Semantic
  // events arriving after the conflict are handled by a certifier
  // Rebuild, not here.)
  if (cs_->SemanticallyCommutes(a, b)) return;
  const uint32_t level = schedule_levels_[s.index()];
  const uint32_t lo = std::max(SpanBegin(a), SpanBegin(b));
  const uint32_t hi = std::min(SpanEnd(a), SpanEnd(b));
  for (uint32_t j = lo; j <= hi; ++j) {
    // Calculation rule 3: conflicting pairs ordered by the schedule's
    // closed weak output order.
    if (weak_out_ab) CalcEdge(j + 1, a, b);
    if (weak_out_ba) CalcEdge(j + 1, b, a);
    // The conflict turns existing observed pairs binding (calculation
    // rule 2) and un-forgets their pull-up (Def 10 rule 3).
    PairSet& observed = level_[j].observed;
    for (auto [x, y] : {std::pair(a, b), std::pair(b, a)}) {
      if (!observed.Contains(x, y)) continue;
      CalcEdge(j + 1, x, y);
      if (j + 1 <= order_) {
        if (auto image = PullUpObservedPair(*cs_, x, y, Rep(x, j + 1),
                                            Rep(y, j + 1), forgetting_)) {
          AddObserved(j + 1, image->first, image->second);
        }
      }
    }
  }
  // Serialization orders (Def 10.2): the parents become observed-ordered.
  NodeId pa = cs_->node(a).parent;
  NodeId pb = cs_->node(b).parent;
  if (pa != pb) {
    if (weak_out_ab) AddObserved(level, pa, pb);
    if (weak_out_ba) AddObserved(level, pb, pa);
  }
}

void OnlineFrontEngine::OnClosedWeakOutput(ScheduleId s, NodeId a, NodeId b) {
  const uint32_t level = schedule_levels_[s.index()];
  const uint32_t lo = std::max(SpanBegin(a), SpanBegin(b));
  const uint32_t hi = std::min(SpanEnd(a), SpanEnd(b));
  const bool leafy = cs_->node(a).IsLeaf() || cs_->node(b).IsLeaf();
  const bool con = cs_->EffectiveConflict(s, a, b);
  for (uint32_t j = lo; j <= hi; ++j) {
    // Leaf atomicity rule (Def 10 point 1).
    if (leafy) AddObserved(j, a, b);
    // Calculation rule 3 for an already-declared conflict.
    if (con) CalcEdge(j + 1, a, b);
  }
  if (con) {
    NodeId pa = cs_->node(a).parent;
    NodeId pb = cs_->node(b).parent;
    if (pa != pb) AddObserved(level, pa, pb);
  }
}

void OnlineFrontEngine::OnClosedWeakInput(NodeId t1, NodeId t2) {
  const uint32_t lo = std::max(SpanBegin(t1), SpanBegin(t2));
  const uint32_t hi = std::min(SpanEnd(t1), SpanEnd(t2));
  for (uint32_t j = lo; j <= hi; ++j) CcEdge(j, t1, t2);
}

void OnlineFrontEngine::OnClosedStrongInput(NodeId t1, NodeId t2) {
  StrongPair(t1, t2);
}

void OnlineFrontEngine::OnClosedWeakIntra(NodeId p, NodeId a, NodeId b) {
  const uint32_t lo = std::max(SpanBegin(a), SpanBegin(b));
  const uint32_t hi = std::min(SpanEnd(a), SpanEnd(b));
  for (uint32_t j = lo; j <= hi; ++j) CcEdge(j, a, b);
  // Def 14: the intra test of p includes its closed weak intra order.
  IntraEdge(schedule_levels_[cs_->node(p).owner_schedule.index()], p, a, b);
}

void OnlineFrontEngine::OnClosedStrongIntra(NodeId a, NodeId b) {
  StrongPair(a, b);
}

void OnlineFrontEngine::StrongPair(NodeId u, NodeId v) {
  strong_of_[u].emplace_back(v, true);
  strong_of_[v].emplace_back(u, false);
  // Pull the constraint down onto every front (Def 16 / front strong
  // orders): all front pairs across the two disjoint subtrees, which are
  // both CC edges and calculation rule 1 edges at the next step.
  const uint32_t hi = std::min(SpanEnd(u), SpanEnd(v));
  for (uint32_t j = 0; j <= hi; ++j) {
    const std::vector<NodeId> in_u = FrontMembersOfSubtree(u, j);
    if (in_u.empty()) continue;
    const std::vector<NodeId> in_v = FrontMembersOfSubtree(v, j);
    for (NodeId x : in_u) {
      for (NodeId y : in_v) {
        CcEdge(j, x, y);
        CalcEdge(j + 1, x, y);
      }
    }
  }
}

uint64_t OnlineFrontEngine::TopOrderKey(NodeId root) const {
  return level_[order_].cc.OrderKey(root);
}

bool OnlineFrontEngine::HasIncomingEdges(
    NodeId n, const std::unordered_set<NodeId>& inside) const {
  for (const LevelState& l : level_) {
    if (l.cc.HasInEdgeFromOutside(n, inside)) return true;
  }
  for (const StepState& s : step_) {
    if (s.quotient.HasInEdgeFromOutside(n, inside)) return true;
  }
  return false;
}

void OnlineFrontEngine::RemoveNode(NodeId n) {
  for (LevelState& l : level_) {
    l.observed.RemoveNode(n);
    l.cc.RemoveNode(n);
  }
  for (StepState& s : step_) s.quotient.RemoveNode(n);
  auto it = strong_of_.find(n);
  if (it != strong_of_.end()) {
    for (const auto& [other, is_source] : it->second) {
      auto oit = strong_of_.find(other);
      if (oit == strong_of_.end()) continue;
      auto& peers = oit->second;
      peers.erase(std::remove_if(peers.begin(), peers.end(),
                                 [&](const auto& e) { return e.first == n; }),
                  peers.end());
    }
    strong_of_.erase(it);
  }
}

bool OnlineFrontEngine::IntraGraphClean(NodeId p) const {
  const uint32_t i = schedule_levels_[cs_->node(p).owner_schedule.index()];
  if (i > order_) return true;
  auto it = step_[i].intra.find(p);
  return it == step_[i].intra.end() || !it->second.has_cycle();
}

void OnlineFrontEngine::RemoveIntraGraphOf(NodeId p) {
  const uint32_t i = schedule_levels_[cs_->node(p).owner_schedule.index()];
  if (i > order_) return;
  step_[i].intra.erase(p);
}

size_t OnlineFrontEngine::ObservedPairCount() const {
  size_t n = 0;
  for (const LevelState& l : level_) n += l.observed.PairCount();
  return n;
}

size_t OnlineFrontEngine::CcEdgeCount() const {
  size_t n = 0;
  for (const LevelState& l : level_) n += l.cc.EdgeCount();
  return n;
}

size_t OnlineFrontEngine::CalcEdgeCount() const {
  size_t n = 0;
  for (const StepState& s : step_) {
    n += s.quotient.EdgeCount();
    for (const auto& [p, g] : s.intra) n += g.EdgeCount();
  }
  return n;
}

}  // namespace comptx::online
