#include "online/state_io.h"

#include <utility>

#include "util/status.h"
#include "workload/trace.h"

namespace comptx::online {

StatusOr<CertifierState> CaptureCertifierState(const Certifier& certifier) {
  CertifierState state;
  COMPTX_ASSIGN_OR_RETURN(state.trace, workload::SaveTrace(certifier.system()));
  for (const NodeId root : certifier.SealedRoots()) {
    state.sealed.push_back(root.index());
  }
  const CertifierStats stats = certifier.Stats();
  state.accepted = stats.events_accepted;
  state.rejected = stats.events_rejected;
  state.certifiable = certifier.Certifiable();
  return state;
}

StatusOr<std::unique_ptr<Certifier>> RestoreCertifierState(
    const CertifierState& state, const CertifierOptions& options) {
  COMPTX_ASSIGN_OR_RETURN(auto events, workload::ParseTraceEvents(state.trace));
  auto certifier = std::make_unique<Certifier>(options);
  // SaveTrace uses creation-order indices, so replaying its events through
  // Ingest reproduces the identical id assignment; every event must be
  // accepted (the trace is the accepted history, seals come below).
  for (size_t i = 0; i < events.size(); ++i) {
    const Status status = certifier->Ingest(events[i]);
    if (!status.ok()) {
      return Status::Internal("state replay rejected event " +
                              std::to_string(i) + ": " + status.ToString());
    }
  }
  for (const uint32_t root : state.sealed) {
    const Status status = certifier->Commit(NodeId(root));
    if (!status.ok()) {
      return Status::Internal("state replay cannot re-seal root " +
                              std::to_string(root) + ": " + status.ToString());
    }
  }
  if (options.auto_prune) certifier->Prune();
  // Commit() above routed through Ingest and bumped the accepted counter;
  // overwrite both counters last so the restored session reports the
  // original stream's totals.
  certifier->RestoreCounters(state.accepted, state.rejected);
  if (certifier->Certifiable() != state.certifiable) {
    return Status::Internal(
        "restored verdict disagrees with captured verdict (state image "
        "corrupt or replay-equivalence broken)");
  }
  return certifier;
}

}  // namespace comptx::online
