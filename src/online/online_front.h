#ifndef COMPTX_ONLINE_ONLINE_FRONT_H_
#define COMPTX_ONLINE_ONLINE_FRONT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/composite_system.h"
#include "online/incremental_cycles.h"
#include "util/arena.h"

namespace comptx::online {

/// A prunable set of ordered NodeId pairs with forward and reverse
/// adjacency.  Functionally a subset of core Relation, but supports
/// RemoveNode (core Relation is append-only) so the certifier can GC the
/// observed orders of committed, fully reduced roots.
class PairSet {
 public:
  /// Adds (a, b); returns true if new.
  bool Add(NodeId a, NodeId b);
  bool Contains(NodeId a, NodeId b) const;
  size_t PairCount() const { return pair_count_; }

  /// True iff some pair (x, id) exists.
  bool HasIncoming(NodeId id) const {
    auto it = rev_.find(id);
    return it != rev_.end() && !it->second.empty();
  }

  /// Drops every pair with `id` as an endpoint.
  void RemoveNode(NodeId id);

 private:
  std::unordered_map<NodeId, std::unordered_set<NodeId>> fwd_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> rev_;
  size_t pair_count_ = 0;
};

/// An incrementally maintained transitive closure of a growing relation.
/// Mirrors core ClosureWithin exactly (in particular, a node is closed to
/// itself only when it lies on a cycle), but each generating-edge insertion
/// reports just the *newly* closed pairs so downstream structures can be
/// patched instead of recomputed: on Add(a, b) the new pairs are
/// ({a} ∪ pred(a)) × ({b} ∪ succ(b)) minus the pairs already closed.
class IncrementalClosure {
 public:
  /// Adds the generating edge a -> b and appends every newly closed pair
  /// to `new_pairs` (possibly none if (a, b) was already closed).
  void Add(NodeId a, NodeId b,
           std::vector<std::pair<NodeId, NodeId>>& new_pairs);

  bool Contains(NodeId a, NodeId b) const;
  size_t PairCount() const { return pair_count_; }

  bool HasIncoming(NodeId id) const {
    auto it = pred_.find(id);
    return it != pred_.end() && !it->second.empty();
  }

  /// True iff some closed pair (x, id) exists with x outside `inside`.
  bool HasIncomingFromOutside(NodeId id,
                              const std::unordered_set<NodeId>& inside) const {
    auto it = pred_.find(id);
    if (it == pred_.end()) return false;
    for (NodeId pred : it->second) {
      if (inside.count(pred) == 0) return true;
    }
    return false;
  }

  /// Invokes f(a, b) for every closed pair (unspecified order).
  template <typename F>
  void ForEach(F f) const {
    for (const auto& [a, succs] : succ_) {
      for (NodeId b : succs) f(a, b);
    }
  }

  /// Drops every closed pair with `id` as an endpoint.  Only safe for
  /// nodes that will never be referenced again (sealed subtrees).
  void RemoveNode(NodeId id);

 private:
  std::unordered_map<NodeId, std::unordered_set<NodeId>> succ_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> pred_;
  size_t pair_count_ = 0;
};

/// Where an online certification failed, mirroring core ReductionFailure.
struct OnlineFailure {
  enum class Step { kCalculation, kConflictConsistency };
  uint32_t level = 0;
  Step step = Step::kConflictConsistency;
  std::vector<NodeId> witness;
  std::string description;
};

/// Per-level front state of the Def 16 reduction, patched event-by-event.
///
/// For a composite system of order N the engine maintains, for every level
/// j in [0, N]:
///   - the observed order of front j as generating pairs (Def 10, with
///     "forgetting" of commuting same-schedule pairs on pull-up), and
///   - the conflict-consistency graph of front j (observed ∪ weak input ∪
///     strong input, Def 13) as an incremental topological order;
/// and for every reduction step i in [1, N]:
///   - the quotient of the calculation constraint graph by the level-i
///     blocks (Def 14/16 inter-block test), and
///   - one intra-block graph per level-i transaction (Def 14 intra test,
///     seeded with the closed weak intra order).
///
/// Handlers receive *newly derived facts* (new closed pairs from the
/// certifier's incremental closures, new conflicts, new nodes) and patch
/// every affected level: an observed pair at level j cascades its pull-up
/// image to level j+1 via core PullUpObservedPair, so batch and online
/// agree pair-for-pair.  All structures are monotone in the event prefix
/// while schedule levels are stable; the certifier rebuilds the engine
/// whenever a structural event changes levels.
///
/// Failure is sticky for reporting (the first violation is kept) but the
/// structures keep absorbing edges afterwards, so pruning bookkeeping and
/// later rebuilds stay exact.
class OnlineFrontEngine {
 public:
  OnlineFrontEngine() = default;

  /// (Re)initializes for `cs` with the given schedule levels and order.
  /// `cs` must outlive the engine; `forgetting` as in ReductionOptions.
  /// Discards any deferred batch edges (a reset regenerates complete
  /// state from the certifier's retained closures) but stays in batch
  /// mode if one is open, so the replay defers again.
  void Reset(const CompositeSystem* cs, std::vector<uint32_t> schedule_levels,
             uint32_t order, bool forgetting);

  // ---- Edge batching ----------------------------------------------------

  /// Enters batch mode: cycle-graph mutations (CC, quotient and intra
  /// edges, top-level root registration) are recorded into a pending list
  /// allocated from `arena` instead of applied immediately.  The handlers
  /// never read cycle-graph state, so deferral is invisible to them;
  /// routing decisions (level spans, block representatives) are taken at
  /// record time and are stable until the next Reset.  The point: one
  /// Pearce-Kelly maintenance window per APPEND batch instead of per
  /// edge, with all bookkeeping allocation arena-backed.
  ///
  /// `arena` must stay valid (and must not be Reset) until FlushBatch.
  void BeginBatch(MonotonicArena* arena);

  /// Applies the pending edges strictly in record order — identical
  /// semantics, failure witness included, to the unbatched sequence —
  /// and leaves batch mode.  Callers must flush before reading any
  /// verdict, order key, or pruning predicate.
  void FlushBatch();

  bool batching() const { return pending_.has_value(); }

  // ---- Event handlers (called with facts not seen before) ---------------

  /// A node was appended to the forest: registers roots in the top-level
  /// order and retroactively pulls existing strong constraints on its
  /// ancestors down onto it.
  void OnNodeAdded(NodeId x);

  /// CON_S gained the pair {a, b} (operations of one schedule).
  /// `weak_out_ab` / `weak_out_ba` tell whether the closed weak output
  /// order of that schedule contains (a,b) / (b,a) — passed in because the
  /// closures live in the certifier's shards.
  void OnConflict(NodeId a, NodeId b, bool weak_out_ab, bool weak_out_ba);

  /// The closed weak output order of schedule `s` gained (a, b).
  void OnClosedWeakOutput(ScheduleId s, NodeId a, NodeId b);

  /// The closed weak input order of a schedule gained (t1, t2).
  void OnClosedWeakInput(NodeId t1, NodeId t2);

  /// The closed strong input order of a schedule gained (t1, t2).
  void OnClosedStrongInput(NodeId t1, NodeId t2);

  /// The closed weak intra order of transaction `p` gained (a, b).
  void OnClosedWeakIntra(NodeId p, NodeId a, NodeId b);

  /// The closed strong intra order of some transaction gained (a, b).
  void OnClosedStrongIntra(NodeId a, NodeId b);

  // ---- Verdict ----------------------------------------------------------

  bool certifiable() const { return !failure_.has_value(); }
  const std::optional<OnlineFailure>& failure() const { return failure_; }
  uint32_t order() const { return order_; }

  /// Topological position of `root` in the maintained top-level front
  /// order; roots sorted by this key form a serial witness while
  /// certifiable (Theorem 1).
  uint64_t TopOrderKey(NodeId root) const;

  // ---- Pruning support --------------------------------------------------

  /// True iff `n` has an in-edge from outside `inside` in any
  /// conflict-consistency or quotient graph (observed pairs are CC edges,
  /// so they are covered).  `inside` is the sealed subtree being pruned:
  /// its internal edges disappear together with the subtree.
  bool HasIncomingEdges(NodeId n,
                        const std::unordered_set<NodeId>& inside) const;

  /// Removes `n` from every level structure.
  void RemoveNode(NodeId n);

  /// True iff the intra-block graph of group transaction `p` is
  /// cycle-free (vacuously true if absent).
  bool IntraGraphClean(NodeId p) const;

  /// Drops the intra-block graph of `p` and the strong-pair records
  /// keyed at `p`.
  void RemoveIntraGraphOf(NodeId p);

  // ---- Stats ------------------------------------------------------------

  size_t ObservedPairCount() const;
  size_t CcEdgeCount() const;
  size_t CalcEdgeCount() const;

 private:
  struct LevelState {
    PairSet observed;
    IncrementalCycleGraph cc;
  };
  struct StepState {
    IncrementalCycleGraph quotient;
    std::unordered_map<NodeId, IncrementalCycleGraph> intra;
  };

  uint32_t LevelOfSchedule(ScheduleId s) const {
    return schedule_levels_[s.index()];
  }
  /// First front containing x: 0 for leaves, the owner schedule's level
  /// for transactions.
  uint32_t SpanBegin(NodeId x) const;
  /// Last front containing x: `order` for roots, host level - 1 otherwise.
  uint32_t SpanEnd(NodeId x) const;
  bool InFront(NodeId x, uint32_t j) const {
    return SpanBegin(x) <= j && j <= SpanEnd(x);
  }
  /// Representative of front-(i-1) node x in front i: its parent when the
  /// parent is grouped at step i, x itself otherwise.
  NodeId Rep(NodeId x, uint32_t i) const;

  /// Front-j members of subtree(t): t itself if present, else the
  /// descendants whose span contains j.
  std::vector<NodeId> FrontMembersOfSubtree(NodeId t, uint32_t j) const;

  /// Generalized conflict of an observed pair (Def 11): same-host pairs
  /// consult CON_S; all other observed pairs conflict by construction.
  bool BindingObserved(NodeId a, NodeId b) const;

  /// Inserts (a, b) into observed_j and cascades: CC edge at j, binding
  /// calculation edge at step j+1, pull-up image to level j+1.
  void AddObserved(uint32_t j, NodeId a, NodeId b);

  /// Adds a conflict-consistency edge at level j; records failure on cycle.
  /// Deferred while batching.
  void CcEdge(uint32_t j, NodeId a, NodeId b);
  void CcEdgeNow(uint32_t j, NodeId a, NodeId b);

  /// Adds a calculation constraint edge between front-(i-1) members a, b
  /// for step i, routed to the quotient graph (distinct blocks) or the
  /// grouping transaction's intra graph (same block).  Deferred while
  /// batching (the Rep routing inputs are stable between Resets, so
  /// flush-time routing equals record-time routing).
  void CalcEdge(uint32_t i, NodeId a, NodeId b);
  void CalcEdgeNow(uint32_t i, NodeId a, NodeId b);

  /// Adds an edge directly to the intra graph of group transaction p.
  /// Deferred while batching.
  void IntraEdge(uint32_t i, NodeId p, NodeId a, NodeId b);
  void IntraEdgeNow(uint32_t i, NodeId p, NodeId a, NodeId b);

  /// Records a closed strong pair and pulls it down onto every front.
  void StrongPair(NodeId u, NodeId v);

  void Fail(uint32_t level, OnlineFailure::Step step,
            const std::vector<NodeId>& witness, const std::string& what);

  /// One deferred cycle-graph mutation; applied in FIFO order at flush.
  struct PendingOp {
    enum class Kind : uint8_t { kEnsureTop, kCc, kCalc, kIntra };
    Kind kind;
    uint32_t idx;  // level j (kCc) or step i (kCalc / kIntra)
    NodeId p;      // kIntra group transaction
    NodeId a;
    NodeId b;
  };

  const CompositeSystem* cs_ = nullptr;
  std::vector<uint32_t> schedule_levels_;
  uint32_t order_ = 0;
  bool forgetting_ = true;

  std::vector<LevelState> level_;  // [0, order]
  std::vector<StepState> step_;    // index i in [1, order] used
  /// endpoint -> (other endpoint, true iff this endpoint is the source).
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, bool>>> strong_of_;
  std::optional<OnlineFailure> failure_;

  /// Engaged while batching; backed by the caller's per-epoch arena.
  std::optional<std::vector<PendingOp, ArenaAllocator<PendingOp>>> pending_;
};

}  // namespace comptx::online

#endif  // COMPTX_ONLINE_ONLINE_FRONT_H_
