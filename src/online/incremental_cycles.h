#ifndef COMPTX_ONLINE_INCREMENTAL_CYCLES_H_
#define COMPTX_ONLINE_INCREMENTAL_CYCLES_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/ids.h"

namespace comptx::online {

/// Dynamic acyclicity maintenance for a growing constraint digraph, using
/// incremental topological ordering (Pearce & Kelly, "A Dynamic
/// Topological Sort Algorithm for Directed Acyclic Graphs", JEA 2006).
///
/// This replaces repeated full `graph::FindCycle` runs in the online
/// Comp-C certifier: each edge insertion reorders only the affected
/// region between the endpoints, so an insertion that does not invert the
/// current topological order costs O(1) and the amortized cost stays far
/// below re-running a full DFS per event.
///
/// Vertices are identified by NodeId (sparse); unknown endpoints are
/// created on first use and appended at the end of the order.  The
/// structure is *sticky* on failure: the first edge that closes a cycle
/// records a witness and freezes the topological order, but later edges
/// are still recorded so that adjacency (and hence epoch pruning
/// bookkeeping) stays complete.  A failed structure only becomes clean
/// again by rebuilding it from scratch, which is what the certifier does
/// when schedule levels shift.
///
/// Allocation discipline: the Reorder pass marks visited vertices with a
/// monotone stamp stored inline in each Vertex and accumulates its
/// frontier in member scratch vectors, so steady-state edge insertion
/// performs no per-call heap allocation (the scratch keeps its high-water
/// capacity across calls).
class IncrementalCycleGraph {
 public:
  IncrementalCycleGraph() = default;

  /// Ensures `id` is a vertex; new vertices sort after all current ones.
  void EnsureNode(NodeId id);

  /// Adds the edge a -> b (idempotent).  Returns true while the graph is
  /// acyclic; returns false when the graph is in the failed state (either
  /// this edge closed a cycle, or a previous one did).
  bool AddEdge(NodeId a, NodeId b);

  /// Adds every edge of `edges` in order, exactly as the equivalent
  /// AddEdge sequence would (same sticky-failure semantics, same
  /// witness).  Returns the final acyclicity: true iff no inserted edge —
  /// this batch or earlier — closed a cycle.
  bool AddEdges(const std::vector<std::pair<NodeId, NodeId>>& edges);

  bool HasEdge(NodeId a, NodeId b) const;
  bool Contains(NodeId id) const { return vertices_.count(id) > 0; }

  /// True iff some inserted edge closed a cycle.
  bool has_cycle() const { return cycle_; }

  /// When has_cycle(): a node sequence [v0, ..., vk] where each
  /// consecutive pair is an edge and vk -> v0 closes the cycle (the same
  /// contract as graph::FindCycle).  Empty otherwise.
  const std::vector<NodeId>& cycle_witness() const { return witness_; }

  size_t NodeCount() const { return vertices_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  /// Number of in-edges of `id` (0 for unknown vertices).  Used by the
  /// certifier's epoch pruning: a sealed vertex with no in-edges can never
  /// join a future cycle.
  size_t InDegree(NodeId id) const;

  /// True iff `id` has an in-edge whose source is NOT in `inside`.  Epoch
  /// pruning removes whole sealed subtrees at once, so in-edges between
  /// members of the removed set don't pin the subtree down.
  bool HasInEdgeFromOutside(NodeId id,
                            const std::unordered_set<NodeId>& inside) const;

  /// Removes `id` and every incident edge.  Intended for vertices whose
  /// in-degree is 0 (epoch pruning); safe for any vertex, but removing a
  /// vertex with in-edges changes which cycles are detectable afterwards.
  void RemoveNode(NodeId id);

  /// Position of `id` in the maintained topological order; meaningful only
  /// while acyclic.  Unknown vertices sort last.
  uint64_t OrderKey(NodeId id) const;

 private:
  struct Vertex {
    uint64_t ord = 0;
    std::unordered_set<NodeId> out;
    std::unordered_set<NodeId> in;
    // Reorder scratch, inline so visited-set membership is one stamp
    // compare instead of a hash probe (and zero allocation).
    uint64_t fwd_stamp = 0;
    uint64_t bwd_stamp = 0;
    NodeId parent{};
  };

  Vertex& Ensure(NodeId id);

  /// Restores the topological order after inserting a -> b with
  /// ord[b] < ord[a].  Returns false iff a cycle was found (witness_ set).
  bool Reorder(NodeId a, NodeId b);

  std::unordered_map<NodeId, Vertex> vertices_;
  uint64_t next_ord_ = 0;
  size_t edge_count_ = 0;
  bool cycle_ = false;
  std::vector<NodeId> witness_;

  // Reorder scratch, reused across calls (capacity persists).
  uint64_t visit_stamp_ = 0;
  std::vector<NodeId> forward_;
  std::vector<NodeId> backward_;
  std::vector<NodeId> stack_;
  std::vector<uint64_t> pool_;
};

}  // namespace comptx::online

#endif  // COMPTX_ONLINE_INCREMENTAL_CYCLES_H_
