#ifndef COMPTX_ONLINE_CERTIFIER_H_
#define COMPTX_ONLINE_CERTIFIER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/composite_system.h"
#include "online/online_front.h"
#include "util/arena.h"
#include "util/status.h"
#include "workload/trace.h"

namespace comptx::online {

struct CertifierOptions {
  /// Forgetting of commuting same-schedule observed pairs on pull-up
  /// (Def 10 rule 3); mirrors ReductionOptions::forgetting.
  bool forgetting = true;

  /// Attempt epoch pruning after this many accepted events (0 disables the
  /// periodic trigger; Commit() and Prune() still prune).
  uint32_t epoch_interval = 64;

  /// Prune automatically on Commit() and at epoch boundaries.
  bool auto_prune = true;

  /// Static-analysis admission (DESIGN.md §13.4): skip the dynamic
  /// certification machinery entirely and decide verdicts with the PR 4
  /// whole-configuration analyzer.  Ingest then only maintains the
  /// composite system and the seal bookkeeping — per-event cost drops to
  /// the cs_ append — and Verdict() lazily analyzes the current system.
  /// A SAFE or UNSAFE analysis is exact; a NEEDS_DYNAMIC analysis of a
  /// well-formed system flags the session for a one-time irreversible
  /// fallback to the dynamic engine (performed by the next Ingest), with
  /// the interim verdict answered by batch CheckCompC.
  ///
  /// The analyzer verdict is exact only under the paper's semantics
  /// (forgetting enabled), so this flag is ignored when `forgetting` is
  /// false — such sessions always run dynamically.
  bool static_admission = false;

  /// Cross-check mode: run the full dynamic machinery as usual AND the
  /// static analyzer at every (cache-missing) Verdict, counting
  /// disagreements in CertifierStats::paranoid_mismatches.  The dynamic
  /// answer stays authoritative.  Implies nothing about static_admission;
  /// when both are set, paranoid wins (the session runs dynamically).
  bool paranoid = false;
};

/// The answer to "is the execution ingested so far still certifiable?".
/// Matches the boolean verdict of batch CheckCompC on the same event
/// prefix (with validation disabled: prefixes of well-formed executions
/// legitimately violate the completeness rules of Defs 3-4 until their
/// remaining events arrive).  The failure location is best effort: online
/// reports the first violation it encountered in stream order, batch the
/// first in level order.
struct CertifierVerdict {
  bool certifiable = true;
  uint32_t order = 0;
  std::optional<OnlineFailure> failure;
  /// True when the answer came from the static analyzer (or batch
  /// CheckCompC while awaiting fallback) rather than the dynamic engine.
  bool static_decided = false;
};

struct CertifierStats {
  uint64_t events_accepted = 0;
  uint64_t events_rejected = 0;
  uint64_t rebuilds = 0;        // schedule-level changes forcing a replay
  uint64_t prune_passes = 0;    // pruning attempts that removed something
  uint64_t pruned_nodes = 0;
  uint64_t sealed_roots = 0;    // committed roots, pruned or not
  uint64_t commit_watermark = 0;  // highest commit_through applied
  size_t live_nodes = 0;        // nodes not garbage-collected
  size_t observed_pairs = 0;
  size_t cc_edges = 0;
  size_t calc_edges = 0;
  size_t closure_pairs = 0;
  bool static_mode = false;       // currently skipping dynamic certification
  uint64_t static_analyses = 0;   // analyzer runs (static + paranoid)
  uint64_t static_fallbacks = 0;  // one-time static -> dynamic switches
  uint64_t paranoid_mismatches = 0;  // analyzer/engine disagreements
};

/// An online, incremental Comp-C certifier session.
///
/// Feed it the event stream of an executing composite system (the same
/// events a trace file contains: schedule/transaction/operation creation,
/// conflict declarations, weak/strong order edges, root commits) and ask
/// after each event whether the execution so far is still certifiable.
/// The per-event work is a local patch of per-level front state instead of
/// the full level-by-level reduction, so the amortized cost per event is
/// far below re-running batch CheckCompC on every prefix:
///
///   - per-schedule transitive closures are maintained incrementally and
///     emit only newly closed pairs (sharded, one small lock per schedule);
///   - each new fact is routed to the affected front levels, where
///     acyclicity is maintained by incremental topological ordering
///     (Pearce-Kelly) rather than full DFS;
///   - observed-order pairs cascade their pull-up images level by level
///     through core PullUpObservedPair, the exact per-pair rule the batch
///     reducer uses.
///
/// Structural events that change schedule levels (new nesting via `sub`)
/// invalidate the level assignment and trigger a rebuild: the engine is
/// reset and re-fed from the retained closures.  All derived state is a
/// monotone function of the ingested facts, so replay order does not
/// matter and the rebuilt state equals what a fresh session would hold.
///
/// Committed roots are sealed: later events referencing their subtree are
/// rejected, and epoch-based pruning removes a sealed subtree from every
/// structure once nothing points into it anymore (such nodes can never lie
/// on a future violation cycle, so the verdict is unaffected).  The prune
/// pass walks only the sealed-but-unpruned roots, so its cost is bounded
/// by the live window, not the session's history (DESIGN.md §13.1).
///
/// Thread safety (audited for the certification service, PR 5): a
/// Certifier has *no* static or global mutable state — every structure
/// hangs off the instance — so distinct instances never interfere and may
/// be driven from distinct threads freely (the service runs one instance
/// per session, each drained by one worker at a time).  Within one
/// instance, Ingest/IngestBatch/Commit/Prune and the verdict readers
/// (Verdict/Certifiable/SerialWitness/Stats) serialize on the session
/// lock `mu_`; the per-schedule shard locks additionally protect closure
/// state so concurrent readers see consistent shards while an ingest is
/// in flight.  Two caveats define the supported contract, enforced by
/// ServiceStress/CertifierConcurrency tests:
///   * concurrent *writers* are safe but pointless — events interleave in
///     an unspecified order, and a stream's meaning depends on its order,
///     so keep one ingesting thread per instance (readers are free);
///   * system() returns a reference read without the lock; do not call it
///     while another thread may be ingesting.
class Certifier {
 public:
  explicit Certifier(const CertifierOptions& options = {});

  Certifier(const Certifier&) = delete;
  Certifier& operator=(const Certifier&) = delete;

  /// Applies one event to the session.  Rejected events (malformed,
  /// unknown references, events referencing a sealed subtree, recursion-
  /// introducing `sub` events) leave the session unchanged.
  Status Ingest(const workload::TraceEvent& event);

  /// Applies `events` in order under one lock acquisition, with the
  /// engine's cycle-graph edges deferred into an arena-backed batch and
  /// flushed once, and at most one pruning pass at the end.  Each event
  /// is accepted or rejected exactly as the equivalent Ingest sequence
  /// would decide (the handlers never read cycle-graph state, so edge
  /// deferral cannot change an accept/reject outcome).  Returns the
  /// number of rejected events; per-event statuses go to `statuses` when
  /// non-null (resized to events.size()).
  size_t IngestBatch(const std::vector<workload::TraceEvent>& events,
                     std::vector<Status>* statuses = nullptr);

  /// Current verdict; failure is sticky while schedule levels are stable.
  CertifierVerdict Verdict() const;
  bool Certifiable() const;

  /// Seals `root` (a committed root transaction): subsequent events that
  /// reference any node of its subtree are rejected, making the subtree
  /// eligible for pruning.  Idempotent.
  Status Commit(NodeId root);

  /// Runs a pruning pass now; returns the number of nodes removed.
  size_t Prune();

  /// Sealed roots in seal order, including already-pruned ones.  The
  /// durability snapshot persists these so a restore can re-seal
  /// (online/state_io.h); sealing order matters because re-sealing
  /// replays commits through Ingest.
  std::vector<NodeId> SealedRoots() const;

  /// Overwrites the stream counters.  Recovery-only: a restored session
  /// must report the original stream's accepted/rejected totals, not the
  /// replay's (the replay ingests only the accepted history plus
  /// synthesized commit events).
  void RestoreCounters(uint64_t accepted, uint64_t rejected);

  /// While certifiable: live (unpruned) roots in a serializable order,
  /// read off the maintained topological order of the top-level front
  /// (Theorem 1).  Empty when not certifiable.  Static-admission
  /// sessions maintain no topological order; they derive the witness
  /// from batch CheckCompC on demand (a diagnostic path, not hot).
  std::vector<NodeId> SerialWitness() const;

  CertifierStats Stats() const;

  /// The composite system accumulated so far (includes sealed subtrees:
  /// the system itself is append-only, only derived state is pruned).
  const CompositeSystem& system() const { return cs_; }

 private:
  /// Per-schedule shard: the incrementally maintained transitive closures
  /// of that schedule's orders, plus the intra-transaction closures of the
  /// transactions it owns.  `mu` guards all of them.
  struct ScheduleShard {
    mutable std::mutex mu;
    IncrementalClosure weak_output;
    IncrementalClosure weak_input;
    IncrementalClosure strong_input;
    std::unordered_map<NodeId, IncrementalClosure> weak_intra;
    std::unordered_map<NodeId, IncrementalClosure> strong_intra;
  };

  /// How verdicts are produced.  kStatic sessions maintain only cs_ and
  /// the seal bookkeeping; a NEEDS_DYNAMIC analysis of a well-formed
  /// system downgrades them (once, irreversibly) to kDynamic via
  /// FallbackLocked.  kParanoid is kDynamic plus an analyzer cross-check
  /// at Verdict time.
  enum class Mode : uint8_t { kDynamic, kStatic, kParanoid };

  bool DynamicActive() const { return mode_ != Mode::kStatic; }

  Status IngestLocked(const workload::TraceEvent& event);
  Status CheckNotSealed(NodeId id) const;

  /// Seals `root` and its descendants; returns true if it was not
  /// already sealed.  Prune scheduling is the caller's business.
  bool SealRootLocked(NodeId root);

  /// Recomputes schedule levels from the invocation adjacency; returns
  /// true if any level (or the order) changed.
  bool RecomputeLevels();

  /// True iff adding the invocation edge from -> to would close a cycle.
  bool WouldCreateRecursion(ScheduleId from, ScheduleId to) const;

  /// Resets the engine for the current levels and replays all closures.
  void Rebuild();

  /// Requests a prune: immediate outside a batch, deferred to the batch
  /// epilogue inside one (pruning reads engine state that batching
  /// defers, and one pass per batch is the point of the epoch design).
  void SchedulePruneLocked();
  void MaybePruneLocked();
  size_t PruneLocked();
  bool CanPrune(const std::vector<NodeId>& subtree) const;
  void RemoveSubtree(const std::vector<NodeId>& subtree);

  /// One-time static -> dynamic switch: rebuilds the full dynamic state
  /// by replaying the accumulated system through a fresh self (the
  /// state_io restore discipline: SaveTrace order, then re-seal, then
  /// prune).  Stream counters and the commit watermark survive.
  void FallbackLocked();

  /// Lazily (re)runs the static analyzer against the current system;
  /// cached by events_accepted_.  Used by kStatic verdicts and kParanoid
  /// cross-checks.  Must be called with mu_ held.
  void RefreshAnalysisLocked() const;

  // Seal/prune bit accessors (node_flags_ is indexed by NodeId::index()).
  bool IsSealed(NodeId id) const;
  bool IsPruned(NodeId id) const;
  void MarkSealed(NodeId id);
  void MarkPruned(NodeId id);

  ScheduleShard& shard(ScheduleId s) { return *shards_[s.index()]; }
  const ScheduleShard& shard(ScheduleId s) const { return *shards_[s.index()]; }

  const CertifierOptions options_;
  Mode mode_ = Mode::kDynamic;

  mutable std::mutex mu_;  // session lock: cs_, engine_, levels, seals.
  CompositeSystem cs_;
  OnlineFrontEngine engine_;
  std::vector<std::unique_ptr<ScheduleShard>> shards_;

  /// Schedule invocation adjacency (edge = host schedule invokes the
  /// subtransaction's schedule), kept for the recursion pre-check and the
  /// cheap level recomputation.
  std::vector<std::unordered_set<uint32_t>> invokes_;
  std::vector<uint32_t> schedule_levels_;
  uint32_t order_ = 0;

  /// Root transactions in creation order.  cs_.Roots() scans every node;
  /// this keeps SerialWitness and commit-watermark sealing O(roots) and
  /// O(window) respectively.
  std::vector<NodeId> roots_;

  /// Per-node seal/prune bits (bit 0 = sealed, bit 1 = pruned), replacing
  /// the former unordered_sets: O(1) lookups with 1 byte/node instead of
  /// hash nodes, which matters at 10M-event scale.
  std::vector<uint8_t> node_flags_;
  size_t sealed_node_count_ = 0;
  size_t pruned_node_count_ = 0;
  size_t pruned_root_count_ = 0;

  std::vector<NodeId> sealed_roots_;  // seal order, pruned or not

  /// Sealed roots not yet pruned — the prune pass's entire worklist
  /// (swap-removed when pruned), which is what makes PruneLocked
  /// O(window) instead of O(all roots ever sealed).
  std::vector<NodeId> unpruned_sealed_;

  /// Highest kCommitThrough watermark applied (count of roots in
  /// creation order known committed).
  uint64_t commit_watermark_ = 0;

  /// Per-epoch scratch: backs the engine's deferred-edge buffers during
  /// IngestBatch; Reset after each flush+prune.
  MonotonicArena arena_;
  bool in_batch_ = false;
  bool prune_pending_ = false;

  /// True once any conflict or order event has been accepted.  A semantic
  /// event (commute/clash/tag) arriving later is retroactive — it can
  /// erase conflicts whose consequences the engine already derived — so
  /// it forces a Rebuild.  Well-behaved producers ship the spec and tags
  /// before the relational stream and never pay this.
  bool saw_relational_event_ = false;

  uint64_t events_accepted_ = 0;
  uint64_t events_rejected_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t prune_passes_ = 0;
  uint32_t events_since_prune_ = 0;
  uint64_t static_fallback_count_ = 0;

  // Static-analysis cache and cross-check state; mutated by const verdict
  // readers under mu_, hence mutable.
  mutable uint64_t analysis_cached_at_ = ~uint64_t{0};
  mutable bool analysis_certifiable_ = true;
  mutable bool analysis_exact_ = false;  // SAFE/UNSAFE on well-formed input
  mutable std::optional<OnlineFailure> analysis_failure_;
  mutable bool fallback_wanted_ = false;
  mutable uint64_t static_analysis_count_ = 0;
  mutable uint64_t paranoid_mismatch_count_ = 0;
};

}  // namespace comptx::online

#endif  // COMPTX_ONLINE_CERTIFIER_H_
