#ifndef COMPTX_ONLINE_CERTIFIER_H_
#define COMPTX_ONLINE_CERTIFIER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/composite_system.h"
#include "online/online_front.h"
#include "util/status.h"
#include "workload/trace.h"

namespace comptx::online {

struct CertifierOptions {
  /// Forgetting of commuting same-schedule observed pairs on pull-up
  /// (Def 10 rule 3); mirrors ReductionOptions::forgetting.
  bool forgetting = true;

  /// Attempt epoch pruning after this many accepted events (0 disables the
  /// periodic trigger; Commit() and Prune() still prune).
  uint32_t epoch_interval = 64;

  /// Prune automatically on Commit() and at epoch boundaries.
  bool auto_prune = true;
};

/// The answer to "is the execution ingested so far still certifiable?".
/// Matches the boolean verdict of batch CheckCompC on the same event
/// prefix (with validation disabled: prefixes of well-formed executions
/// legitimately violate the completeness rules of Defs 3-4 until their
/// remaining events arrive).  The failure location is best effort: online
/// reports the first violation it encountered in stream order, batch the
/// first in level order.
struct CertifierVerdict {
  bool certifiable = true;
  uint32_t order = 0;
  std::optional<OnlineFailure> failure;
};

struct CertifierStats {
  uint64_t events_accepted = 0;
  uint64_t events_rejected = 0;
  uint64_t rebuilds = 0;        // schedule-level changes forcing a replay
  uint64_t prune_passes = 0;    // pruning attempts that removed something
  uint64_t pruned_nodes = 0;
  size_t live_nodes = 0;        // nodes not garbage-collected
  size_t observed_pairs = 0;
  size_t cc_edges = 0;
  size_t calc_edges = 0;
  size_t closure_pairs = 0;
};

/// An online, incremental Comp-C certifier session.
///
/// Feed it the event stream of an executing composite system (the same
/// events a trace file contains: schedule/transaction/operation creation,
/// conflict declarations, weak/strong order edges, root commits) and ask
/// after each event whether the execution so far is still certifiable.
/// The per-event work is a local patch of per-level front state instead of
/// the full level-by-level reduction, so the amortized cost per event is
/// far below re-running batch CheckCompC on every prefix:
///
///   - per-schedule transitive closures are maintained incrementally and
///     emit only newly closed pairs (sharded, one small lock per schedule);
///   - each new fact is routed to the affected front levels, where
///     acyclicity is maintained by incremental topological ordering
///     (Pearce-Kelly) rather than full DFS;
///   - observed-order pairs cascade their pull-up images level by level
///     through core PullUpObservedPair, the exact per-pair rule the batch
///     reducer uses.
///
/// Structural events that change schedule levels (new nesting via `sub`)
/// invalidate the level assignment and trigger a rebuild: the engine is
/// reset and re-fed from the retained closures.  All derived state is a
/// monotone function of the ingested facts, so replay order does not
/// matter and the rebuilt state equals what a fresh session would hold.
///
/// Committed roots are sealed: later events referencing their subtree are
/// rejected, and epoch-based pruning removes a sealed subtree from every
/// structure once nothing points into it anymore (such nodes can never lie
/// on a future violation cycle, so the verdict is unaffected).
///
/// Thread safety (audited for the certification service, PR 5): a
/// Certifier has *no* static or global mutable state — every structure
/// hangs off the instance — so distinct instances never interfere and may
/// be driven from distinct threads freely (the service runs one instance
/// per session, each drained by one worker at a time).  Within one
/// instance, Ingest/Commit/Prune and the verdict readers
/// (Verdict/Certifiable/SerialWitness/Stats) serialize on the session
/// lock `mu_`; the per-schedule shard locks additionally protect closure
/// state so concurrent readers see consistent shards while an ingest is
/// in flight.  Two caveats define the supported contract, enforced by
/// ServiceStress/CertifierConcurrency tests:
///   * concurrent *writers* are safe but pointless — events interleave in
///     an unspecified order, and a stream's meaning depends on its order,
///     so keep one ingesting thread per instance (readers are free);
///   * system() returns a reference read without the lock; do not call it
///     while another thread may be ingesting.
class Certifier {
 public:
  explicit Certifier(const CertifierOptions& options = {});

  Certifier(const Certifier&) = delete;
  Certifier& operator=(const Certifier&) = delete;

  /// Applies one event to the session.  Rejected events (malformed,
  /// unknown references, events referencing a sealed subtree, recursion-
  /// introducing `sub` events) leave the session unchanged.
  Status Ingest(const workload::TraceEvent& event);

  /// Current verdict; failure is sticky while schedule levels are stable.
  CertifierVerdict Verdict() const;
  bool Certifiable() const;

  /// Seals `root` (a committed root transaction): subsequent events that
  /// reference any node of its subtree are rejected, making the subtree
  /// eligible for pruning.  Idempotent.
  Status Commit(NodeId root);

  /// Runs a pruning pass now; returns the number of nodes removed.
  size_t Prune();

  /// Sealed roots in seal order, including already-pruned ones.  The
  /// durability snapshot persists these so a restore can re-seal
  /// (online/state_io.h); sealing order matters because re-sealing
  /// replays commits through Ingest.
  std::vector<NodeId> SealedRoots() const;

  /// Overwrites the stream counters.  Recovery-only: a restored session
  /// must report the original stream's accepted/rejected totals, not the
  /// replay's (the replay ingests only the accepted history plus
  /// synthesized commit events).
  void RestoreCounters(uint64_t accepted, uint64_t rejected);

  /// While certifiable: live (unpruned) roots in a serializable order,
  /// read off the maintained topological order of the top-level front
  /// (Theorem 1).  Empty when not certifiable.
  std::vector<NodeId> SerialWitness() const;

  CertifierStats Stats() const;

  /// The composite system accumulated so far (includes sealed subtrees:
  /// the system itself is append-only, only derived state is pruned).
  const CompositeSystem& system() const { return cs_; }

 private:
  /// Per-schedule shard: the incrementally maintained transitive closures
  /// of that schedule's orders, plus the intra-transaction closures of the
  /// transactions it owns.  `mu` guards all of them.
  struct ScheduleShard {
    mutable std::mutex mu;
    IncrementalClosure weak_output;
    IncrementalClosure weak_input;
    IncrementalClosure strong_input;
    std::unordered_map<NodeId, IncrementalClosure> weak_intra;
    std::unordered_map<NodeId, IncrementalClosure> strong_intra;
  };

  Status IngestLocked(const workload::TraceEvent& event);
  Status CheckNotSealed(NodeId id) const;

  /// Recomputes schedule levels from the invocation adjacency; returns
  /// true if any level (or the order) changed.
  bool RecomputeLevels();

  /// True iff adding the invocation edge from -> to would close a cycle.
  bool WouldCreateRecursion(ScheduleId from, ScheduleId to) const;

  /// Resets the engine for the current levels and replays all closures.
  void Rebuild();

  void MaybePruneLocked();
  size_t PruneLocked();
  bool CanPrune(const std::vector<NodeId>& subtree) const;
  void RemoveSubtree(const std::vector<NodeId>& subtree);

  ScheduleShard& shard(ScheduleId s) { return *shards_[s.index()]; }
  const ScheduleShard& shard(ScheduleId s) const { return *shards_[s.index()]; }

  const CertifierOptions options_;

  mutable std::mutex mu_;  // session lock: cs_, engine_, levels, seals.
  CompositeSystem cs_;
  OnlineFrontEngine engine_;
  std::vector<std::unique_ptr<ScheduleShard>> shards_;

  /// Schedule invocation adjacency (edge = host schedule invokes the
  /// subtransaction's schedule), kept for the recursion pre-check and the
  /// cheap level recomputation.
  std::vector<std::unordered_set<uint32_t>> invokes_;
  std::vector<uint32_t> schedule_levels_;
  uint32_t order_ = 0;

  std::unordered_set<NodeId> sealed_nodes_;
  std::vector<NodeId> sealed_roots_;
  std::unordered_set<NodeId> pruned_roots_;
  std::unordered_set<NodeId> pruned_nodes_;

  uint64_t events_accepted_ = 0;
  uint64_t events_rejected_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t prune_passes_ = 0;
  uint32_t events_since_prune_ = 0;
};

}  // namespace comptx::online

#endif  // COMPTX_ONLINE_CERTIFIER_H_
