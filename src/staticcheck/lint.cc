#include "staticcheck/lint.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "core/validate.h"
#include "testing/witness.h"
#include "util/string_util.h"

namespace comptx::staticcheck {

using workload::TraceEvent;
using workload::TraceEventKind;

namespace {

/// Shared replay state for the event linter.
class EventLinter {
 public:
  explicit EventLinter(std::vector<Diagnostic>& out,
                       const CommutativitySpec* preload = nullptr)
      : out_(out) {
    if (preload != nullptr) cs_.AttachSpec(*preload);
  }

  /// Lints and (when well formed) applies one event.  Ill-formed events
  /// are reported and skipped so the scan continues.
  void Consume(const TraceEvent& e, std::string location, uint32_t line) {
    location_ = std::move(location);
    line_ = line;
    if (!CheckReferences(e)) return;
    if (e.kind == TraceEventKind::kConflict && !CheckConflict(e)) return;
    Status applied = workload::ApplyTraceEvent(cs_, e);
    if (!applied.ok()) {
      // References were fine, so this is a semantic rejection: direct
      // self-invocation (CTX001) or a malformed pair/record (CTX050).
      const bool recursion = e.kind == TraceEventKind::kSub &&
                             cs_.node(NodeId(e.parent)).owner_schedule ==
                                 ScheduleId(e.schedule);
      Report(recursion ? DiagCode::kRecursion : DiagCode::kMalformedSpec,
             DiagSeverity::kError, applied.message(),
             recursion ? "schedule a subtransaction on a different scheduler "
                         "(Def 4.6 forbids recursion)"
                       : "fix the record");
      has_errors_ = true;
    }
  }

  bool has_errors() const { return has_errors_; }
  CompositeSystem TakeSystem() { return std::move(cs_); }
  const CompositeSystem& system() const { return cs_; }

 private:
  void Report(DiagCode code, DiagSeverity severity, std::string message,
              std::string fix) {
    out_.push_back({severity, code, location_, line_, std::move(message),
                    std::move(fix)});
  }

  bool CheckScheduleRef(uint32_t ref, const char* role) {
    if (ref < cs_.ScheduleCount()) return true;
    Report(DiagCode::kDanglingScheduleRef, DiagSeverity::kError,
           StrCat(role, " references schedule ", ref, " but only ",
                  cs_.ScheduleCount(), " schedule(s) are declared"),
           "declare the schedule before referencing it");
    has_errors_ = true;
    return false;
  }

  bool CheckNodeRef(uint32_t ref, const char* role) {
    if (ref < cs_.NodeCount()) return true;
    Report(DiagCode::kDanglingNodeRef, DiagSeverity::kError,
           StrCat(role, " references node ", ref, " but only ",
                  cs_.NodeCount(), " node(s) exist"),
           "create the node before referencing it");
    has_errors_ = true;
    return false;
  }

  /// Referential integrity of every index field used by `e`'s kind.
  bool CheckReferences(const TraceEvent& e) {
    switch (e.kind) {
      case TraceEventKind::kSchedule:
        return true;
      case TraceEventKind::kRoot:
        return CheckScheduleRef(e.schedule, "root");
      case TraceEventKind::kSub:
        return CheckNodeRef(e.parent, "sub parent") &
               CheckScheduleRef(e.schedule, "sub");
      case TraceEventKind::kLeaf:
        return CheckNodeRef(e.parent, "leaf parent");
      case TraceEventKind::kConflict:
      case TraceEventKind::kWeakOutput:
      case TraceEventKind::kStrongOutput:
        return CheckNodeRef(e.a, "pair") & CheckNodeRef(e.b, "pair");
      case TraceEventKind::kWeakInput:
      case TraceEventKind::kStrongInput:
        return CheckScheduleRef(e.schedule, "input order") &
               CheckNodeRef(e.a, "input order") &
               CheckNodeRef(e.b, "input order");
      case TraceEventKind::kIntraWeak:
      case TraceEventKind::kIntraStrong:
        return CheckNodeRef(e.parent, "intra order") &
               CheckNodeRef(e.a, "intra order") &
               CheckNodeRef(e.b, "intra order");
      case TraceEventKind::kCommit:
        return CheckNodeRef(e.parent, "commit");
      case TraceEventKind::kCommitThrough:
        // The watermark is a count of roots, not a node index; range
        // checking it against the live root count is the certifier's job
        // (it rejects watermarks past the roots created so far).
        return true;
      case TraceEventKind::kAdtDecl:
        return CheckAdtDecl(e);
      case TraceEventKind::kAdtOp:
        return CheckAdtOp(e);
      case TraceEventKind::kCommute:
      case TraceEventKind::kClash:
        return CheckSpecEntry(e);
      case TraceEventKind::kTag:
        return CheckNodeRef(e.parent, "tag") & CheckTag(e);
    }
    return true;
  }

  // Spec-event lint.  Checking before ApplyTraceEvent keeps the codes
  // specific: the apply path would fold every rejection into CTX050.

  bool CheckAdtDecl(const TraceEvent& e) {
    const CommutativitySpec* spec = cs_.spec();
    if (spec != nullptr && spec->FindAdt(e.name) != kInvalidIndex) {
      Report(DiagCode::kSpecDuplicateDecl, DiagSeverity::kError,
             StrCat("ADT '", e.name, "' is declared more than once"),
             "remove the duplicate declaration");
      has_errors_ = true;
      return false;
    }
    return true;
  }

  bool CheckAdtOp(const TraceEvent& e) {
    const CommutativitySpec* spec = cs_.spec();
    const size_t adts = spec != nullptr ? spec->AdtCount() : 0;
    if (e.a >= adts) {
      Report(DiagCode::kSpecUnknownClass, DiagSeverity::kError,
             StrCat("adtop references ADT ", e.a, " but only ", adts,
                    " ADT(s) are declared"),
             "declare the ADT before its operation classes");
      has_errors_ = true;
      return false;
    }
    if (spec->FindClass(e.a, e.name) != kInvalidIndex) {
      Report(DiagCode::kSpecDuplicateDecl, DiagSeverity::kError,
             StrCat("operation class '", spec->adt(e.a).name, ".", e.name,
                    "' is declared more than once"),
             "remove the duplicate declaration");
      has_errors_ = true;
      return false;
    }
    return true;
  }

  bool CheckSpecEntry(const TraceEvent& e) {
    const CommutativitySpec* spec = cs_.spec();
    const size_t classes = spec != nullptr ? spec->ClassCount() : 0;
    const char* kind =
        e.kind == TraceEventKind::kCommute ? "commute" : "clash";
    if (e.a >= classes || e.b >= classes) {
      Report(DiagCode::kSpecUnknownClass, DiagSeverity::kError,
             StrCat(kind, " entry references class ",
                    e.a >= classes ? e.a : e.b, " but only ", classes,
                    " class(es) are declared"),
             "declare the operation class before using it in the table");
      has_errors_ = true;
      return false;
    }
    const CommuteEntry desired = e.kind == TraceEventKind::kCommute
                                     ? CommuteEntry::kCommutes
                                     : CommuteEntry::kConflicts;
    const CommuteEntry existing = spec->Lookup(e.a, e.b);
    if (existing != CommuteEntry::kUnspecified && existing != desired) {
      Report(DiagCode::kSpecContradictoryEntry, DiagSeverity::kError,
             StrCat("pair ", spec->ClassLabel(e.a), " x ",
                    spec->ClassLabel(e.b),
                    " is declared both commuting and clashing"),
             "keep exactly one of the two entries");
      has_errors_ = true;
      return false;
    }
    return true;
  }

  bool CheckTag(const TraceEvent& e) {
    const CommutativitySpec* spec = cs_.spec();
    const size_t classes = spec != nullptr ? spec->ClassCount() : 0;
    if (e.a >= classes) {
      Report(DiagCode::kSpecTagMismatch, DiagSeverity::kError,
             StrCat("tag references operation class ", e.a, " but only ",
                    classes, " class(es) are declared"),
             "declare the class (or pass --spec) before tagging");
      has_errors_ = true;
      return false;
    }
    if (e.b == kInvalidIndex) {
      Report(DiagCode::kSpecTagMismatch, DiagSeverity::kError,
             StrCat("tag instance ", e.b, " is the reserved invalid index"),
             "use a smaller instance number");
      has_errors_ = true;
      return false;
    }
    return true;
  }

  /// Conflict-specific lint: self-conflicts, cross-schedule pairs, and
  /// duplicate declarations (all references already known valid).
  bool CheckConflict(const TraceEvent& e) {
    if (e.a == e.b) {
      Report(DiagCode::kSelfConflict, DiagSeverity::kError,
             StrCat("operation ", e.a, " is declared to conflict with "
                    "itself"),
             "remove the reflexive conflict (CON is irreflexive)");
      has_errors_ = true;
      return false;
    }
    ScheduleId ha = cs_.HostScheduleOf(NodeId(e.a));
    ScheduleId hb = cs_.HostScheduleOf(NodeId(e.b));
    if (!ha.valid() || ha != hb) {
      Report(DiagCode::kCrossScheduleConflict, DiagSeverity::kError,
             StrCat("conflict between nodes ", e.a, " and ", e.b,
                    " that are not operations of one common schedule"),
             "conflicts are declared per schedule (CON_S); drop the pair or "
             "fix the topology");
      has_errors_ = true;
      return false;
    }
    const std::pair<uint32_t, uint32_t> key{std::min(e.a, e.b),
                                            std::max(e.a, e.b)};
    if (!seen_conflicts_.insert(key).second) {
      Report(DiagCode::kDuplicateConflict, DiagSeverity::kWarning,
             StrCat("conflict between nodes ", e.a, " and ", e.b,
                    " is declared more than once"),
             "remove the duplicate declaration");
      // Re-applying is harmless (the pair set is idempotent); continue.
    }
    return true;
  }

  std::vector<Diagnostic>& out_;
  CompositeSystem cs_;
  std::set<std::pair<uint32_t, uint32_t>> seen_conflicts_;
  std::string location_;
  uint32_t line_ = 0;
  bool has_errors_ = false;
};

/// Structural advisories on a cleanly replayed system.
void LintStructure(const CompositeSystem& cs, std::vector<Diagnostic>& out) {
  if (cs.Roots().empty()) {
    out.push_back({DiagSeverity::kWarning, DiagCode::kEmptySystem, "system", 0,
                   "system has no root transactions: every verdict is "
                   "vacuously SAFE",
                   "add at least one root transaction"});
    return;
  }
  for (size_t si = 0; si < cs.ScheduleCount(); ++si) {
    const Schedule& s = cs.schedule(ScheduleId(static_cast<uint32_t>(si)));
    if (s.transactions.empty()) {
      out.push_back({DiagSeverity::kWarning, DiagCode::kOrphanSchedule,
                     StrCat("schedule ", s.name), 0,
                     StrCat("schedule ", s.name,
                            " executes no transactions"),
                     "remove the schedule or give it a transaction"});
      continue;
    }
    size_t pulled_up_cross = 0;
    for (const auto& [a, b] : cs.CrossRootConflicts(s.id)) {
      if (!cs.node(a).IsRoot() && !cs.node(b).IsRoot()) ++pulled_up_cross;
    }
    if (cs.RootsServed(s.id) > 1 && pulled_up_cross > 0) {
      out.push_back(
          {DiagSeverity::kNote, DiagCode::kForgottenOrderHazard,
           StrCat("schedule ", s.name), 0,
           StrCat("schedule ", s.name, " serves several execution trees and "
                  "has ", pulled_up_cross, " pulled-up cross-root conflict "
                  "pair(s); pull-up can forget orders it exports (Fig 4)"),
           "no action needed; the dynamic reduction decides such systems"});
    }
  }
}

/// Table-level advisories on a commutativity spec: empty ADTs (CTX106),
/// same-ADT pairs left unspecified (CTX104 — the table must be total
/// within an ADT), and vacuous all-commuting tables (CTX105).
void LintSpecTable(const CommutativitySpec& spec,
                   std::vector<Diagnostic>& out) {
  for (uint32_t a = 0; a < spec.AdtCount(); ++a) {
    const AdtDecl& adt = spec.adt(a);
    if (adt.op_classes.empty()) {
      out.push_back({DiagSeverity::kWarning, DiagCode::kSpecEmptyAdt,
                     StrCat("adt ", adt.name), 0,
                     StrCat("ADT ", adt.name,
                            " declares no operation classes"),
                     "declare at least one adtop or drop the ADT"});
      continue;
    }
    for (size_t i = 0; i < adt.op_classes.size(); ++i) {
      for (size_t j = i; j < adt.op_classes.size(); ++j) {
        const uint32_t c1 = adt.op_classes[i];
        const uint32_t c2 = adt.op_classes[j];
        if (spec.Lookup(c1, c2) == CommuteEntry::kUnspecified) {
          out.push_back(
              {DiagSeverity::kError, DiagCode::kSpecIncompleteTable,
               StrCat("adt ", adt.name), 0,
               StrCat("pair ", spec.ClassLabel(c1), " x ",
                      spec.ClassLabel(c2), " is left unspecified; the "
                      "commutativity table must be total within an ADT"),
               "declare the pair commute or clash"});
        }
      }
    }
  }
  if (spec.ClassCount() > 0 &&
      spec.CountEntries(CommuteEntry::kConflicts) == 0 &&
      spec.CountEntries(CommuteEntry::kCommutes) > 0) {
    out.push_back(
        {DiagSeverity::kWarning, DiagCode::kSpecAllCommute, "spec", 0,
         "every declared pair commutes: the spec erases all conflicts "
         "between tagged operations (vacuous table)",
         "declare at least one clashing pair or drop the spec"});
  }
}

/// CTX108: two same-schedule operations tagged with a clashing class
/// pair on one instance must carry a CON_S bit.  The spec can only
/// *erase* declared conflicts (mask-only), so a missing bit means the
/// bit-level model silently under-approximates the declared semantics.
void LintSemanticConflicts(const CompositeSystem& cs,
                           std::vector<Diagnostic>& out) {
  const CommutativitySpec& spec = *cs.spec();
  std::vector<std::vector<NodeId>> tagged(cs.ScheduleCount());
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const NodeId id(v);
    if (cs.node(id).sem_class == kInvalidIndex) continue;
    const ScheduleId host = cs.HostScheduleOf(id);
    if (host.valid()) tagged[host.index()].push_back(id);
  }
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& schedule = cs.schedule(ScheduleId(s));
    const std::vector<NodeId>& ops = tagged[s];
    for (size_t i = 0; i < ops.size(); ++i) {
      for (size_t j = i + 1; j < ops.size(); ++j) {
        const Node& a = cs.node(ops[i]);
        const Node& b = cs.node(ops[j]);
        if (a.sem_instance != b.sem_instance) continue;
        if (spec.Lookup(a.sem_class, b.sem_class) !=
            CommuteEntry::kConflicts) {
          continue;
        }
        if (schedule.conflicts.Contains(ops[i], ops[j])) continue;
        out.push_back(
            {DiagSeverity::kWarning, DiagCode::kSpecUndeclaredSemConflict,
             StrCat("schedule ", schedule.name), 0,
             StrCat("operations ", a.name, " and ", b.name,
                    " clash semantically (", spec.ClassLabel(a.sem_class),
                    " x ", spec.ClassLabel(b.sem_class),
                    " on one instance) but carry no CON_S bit"),
             "declare the conflict; the spec only erases declared bits"});
      }
    }
  }
}

LintResult FinishLint(EventLinter& linter, const LintOptions& options,
                      std::vector<Diagnostic> diags) {
  LintResult result;
  result.diagnostics = std::move(diags);
  if (linter.has_errors()) return result;
  result.buildable = true;
  if (options.structure) {
    LintStructure(linter.system(), result.diagnostics);
    if (linter.system().HasSpec()) {
      LintSpecTable(*linter.system().spec(), result.diagnostics);
      LintSemanticConflicts(linter.system(), result.diagnostics);
    }
  }
  if (options.model_rules) {
    for (Diagnostic& d : CollectModelDiagnostics(linter.system())) {
      result.diagnostics.push_back(std::move(d));
    }
  }
  result.system = linter.TakeSystem();
  return result;
}

}  // namespace

LintResult LintTraceEvents(const std::vector<TraceEvent>& events,
                           const LintOptions& options) {
  std::vector<Diagnostic> diags;
  EventLinter linter(diags, options.spec);
  for (size_t i = 0; i < events.size(); ++i) {
    linter.Consume(events[i], StrCat("event ", i + 1), 0);
  }
  return FinishLint(linter, options, std::move(diags));
}

LintResult LintTraceText(const std::string& text, const LintOptions& options) {
  // Mirror ParseTraceEvents' framing so diagnostics carry real line
  // numbers, but keep scanning past bad records.
  std::vector<Diagnostic> diags;
  EventLinter linter(diags, options.spec);
  std::istringstream in(text);
  std::string line;
  uint32_t line_number = 0;
  bool saw_header = false;
  bool saw_end = false;
  bool parse_errors = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != "comptx-trace v1") {
        diags.push_back({DiagSeverity::kError, DiagCode::kMalformedSpec,
                         "trace", line_number,
                         "missing comptx-trace v1 header",
                         "start the file with 'comptx-trace v1'"});
        return {std::move(diags), false, std::nullopt};
      }
      saw_header = true;
      continue;
    }
    if (saw_end) break;
    if (line == "end" || StartsWith(line, "end ")) {
      saw_end = true;
      continue;
    }
    // Parse this single record through the canonical trace parser.
    auto events = workload::ParseTraceEvents(
        StrCat("comptx-trace v1\n", line, "\nend\n"));
    if (!events.ok()) {
      diags.push_back({DiagSeverity::kError, DiagCode::kMalformedSpec,
                       "trace", line_number, events.status().message(),
                       "fix the record syntax"});
      parse_errors = true;
      continue;
    }
    // Location = the record kind; FormatDiagnostic already shows the line.
    linter.Consume((*events)[0], line.substr(0, line.find(' ')), line_number);
  }
  if (!saw_header) {
    diags.push_back({DiagSeverity::kError, DiagCode::kMalformedSpec, "trace",
                     line_number, "missing comptx-trace v1 header",
                     "start the file with 'comptx-trace v1'"});
    return {std::move(diags), false, std::nullopt};
  }
  if (!saw_end) {
    diags.push_back({DiagSeverity::kError, DiagCode::kMalformedSpec, "trace",
                     line_number, "trace missing 'end' record",
                     "terminate the file with 'end'"});
    parse_errors = true;
  }
  if (parse_errors) {
    LintResult result;
    result.diagnostics = std::move(diags);
    return result;
  }
  return FinishLint(linter, options, std::move(diags));
}

LintResult LintWitnessJson(const std::string& json,
                           const LintOptions& options) {
  auto record = testing::ParseWitnessJson(json);
  if (!record.ok()) {
    LintResult result;
    result.diagnostics.push_back(
        {DiagSeverity::kError, DiagCode::kMalformedSpec, "witness", 0,
         record.status().message(), "fix the JSON document"});
    return result;
  }
  LintResult result = LintTraceEvents(record->events, options);
  if (!result.buildable) return result;
  const CompositeSystem& cs = *result.system;

  // "commuting" declarations: "a b" pairs asserting the operations
  // commute.  They must reference real operations, must not be reflexive,
  // and must not contradict a declared conflict.
  for (size_t i = 0; i < record->commuting.size(); ++i) {
    const std::string location = StrCat("commuting[", i, "]");
    std::istringstream fields(record->commuting[i]);
    uint32_t a = 0;
    uint32_t b = 0;
    if (!(fields >> a >> b)) {
      result.diagnostics.push_back(
          {DiagSeverity::kError, DiagCode::kMalformedSpec, location, 0,
           StrCat("commuting entry '", record->commuting[i],
                  "' is not a pair of node indices"),
           "use the form \"<a> <b>\""});
      continue;
    }
    if (a >= cs.NodeCount() || b >= cs.NodeCount()) {
      result.diagnostics.push_back(
          {DiagSeverity::kError, DiagCode::kDanglingNodeRef, location, 0,
           StrCat("commuting pair (", a, ", ", b, ") references a node "
                  "beyond the ", cs.NodeCount(), " in the trace"),
           "fix the node indices"});
      continue;
    }
    if (a == b) {
      result.diagnostics.push_back(
          {DiagSeverity::kWarning, DiagCode::kSelfCommute, location, 0,
           StrCat("operation ", a, " is declared to commute with itself "
                  "(vacuous)"),
           "remove the reflexive entry"});
      continue;
    }
    ScheduleId host = cs.HostScheduleOf(NodeId(a));
    if (host.valid() &&
        cs.schedule(host).conflicts.Contains(NodeId(a), NodeId(b))) {
      result.diagnostics.push_back(
          {DiagSeverity::kError, DiagCode::kCommuteContradictsConflict,
           location, 0,
           StrCat("operations ", a, " and ", b, " are declared commuting "
                  "but CON_S declares them conflicting"),
           "drop either the commuting entry or the conflict"});
    }
  }
  return result;
}

std::vector<Diagnostic> LintWorkloadSpec(const workload::WorkloadSpec& spec) {
  std::vector<Diagnostic> diags;
  auto check_prob = [&](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      diags.push_back({DiagSeverity::kError, DiagCode::kProbabilityOutOfRange,
                       StrCat("spec.", name), 0,
                       StrCat(name, " = ", p, " is outside [0, 1]"),
                       "clamp the probability into [0, 1]"});
    }
  };
  check_prob(spec.topology.leaf_fraction, "leaf_fraction");
  check_prob(spec.execution.conflict_prob, "conflict_prob");
  check_prob(spec.execution.disorder_prob, "disorder_prob");
  check_prob(spec.execution.intra_weak_prob, "intra_weak_prob");
  check_prob(spec.execution.intra_strong_prob, "intra_strong_prob");

  auto check_size = [&](uint32_t v, const char* name) {
    if (v == 0) {
      diags.push_back({DiagSeverity::kWarning, DiagCode::kDegenerateWorkload,
                       StrCat("spec.", name), 0,
                       StrCat(name, " = 0 generates an empty workload"),
                       "use a positive size"});
    }
  };
  check_size(spec.topology.depth, "depth");
  check_size(spec.topology.branches, "branches");
  check_size(spec.topology.roots, "roots");
  check_size(spec.topology.fanout, "fanout");
  if (spec.execution.adt != workload::AdtMix::kNone &&
      spec.execution.adt_instances == 0) {
    diags.push_back({DiagSeverity::kWarning, DiagCode::kDegenerateWorkload,
                     "spec.adt_instances", 0,
                     "adt_instances = 0 is clamped to one instance (every "
                     "tagged pair then shares it)",
                     "use a positive instance count"});
  }

  if (spec.execution.order_preserving_outputs &&
      spec.execution.disorder_prob > 0.0) {
    diags.push_back(
        {DiagSeverity::kError, DiagCode::kIncompatibleSpec, "spec.execution",
         0,
         "order_preserving_outputs is incompatible with disorder_prob > 0 "
         "(a flip would order a pair both ways)",
         "set disorder_prob to 0 or disable order_preserving_outputs"});
  }
  return diags;
}

SpecLintResult LintSpecText(const std::string& text) {
  SpecLintResult result;
  CommutativitySpec spec;
  std::istringstream in(text);
  std::string line;
  uint32_t line_number = 0;
  bool saw_header = false;
  bool saw_end = false;
  bool apply_errors = false;
  auto report = [&](DiagCode code, DiagSeverity severity, std::string message,
                    std::string fix) {
    if (severity == DiagSeverity::kError) apply_errors = true;
    result.diagnostics.push_back({severity, code, "spec", line_number,
                                  std::move(message), std::move(fix)});
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != "comptx-spec v1") {
        report(DiagCode::kSpecMalformed, DiagSeverity::kError,
               "missing comptx-spec v1 header",
               "start the file with 'comptx-spec v1'");
        return result;
      }
      saw_header = true;
      continue;
    }
    if (saw_end) break;
    if (line == "end" || StartsWith(line, "end ")) {
      saw_end = true;
      continue;
    }
    auto parsed = workload::ParseTraceEventLine(line);
    if (!parsed.ok()) {
      report(DiagCode::kSpecMalformed, DiagSeverity::kError,
             parsed.status().message(), "fix the record syntax");
      continue;
    }
    const TraceEvent& e = *parsed;
    switch (e.kind) {
      case TraceEventKind::kAdtDecl: {
        if (spec.FindAdt(e.name) != kInvalidIndex) {
          report(DiagCode::kSpecDuplicateDecl, DiagSeverity::kError,
                 StrCat("ADT '", e.name, "' is declared more than once"),
                 "remove the duplicate declaration");
          break;
        }
        Status applied = spec.DeclareAdt(e.name).status();
        if (!applied.ok()) {
          report(DiagCode::kSpecMalformed, DiagSeverity::kError,
                 applied.message(), "fix the declaration");
        }
        break;
      }
      case TraceEventKind::kAdtOp: {
        if (e.a >= spec.AdtCount()) {
          report(DiagCode::kSpecUnknownClass, DiagSeverity::kError,
                 StrCat("adtop references ADT ", e.a, " but only ",
                        spec.AdtCount(), " ADT(s) are declared"),
                 "declare the ADT before its operation classes");
          break;
        }
        if (spec.FindClass(e.a, e.name) != kInvalidIndex) {
          report(DiagCode::kSpecDuplicateDecl, DiagSeverity::kError,
                 StrCat("operation class '", spec.adt(e.a).name, ".", e.name,
                        "' is declared more than once"),
                 "remove the duplicate declaration");
          break;
        }
        Status applied = spec.DeclareOpClass(e.a, e.name).status();
        if (!applied.ok()) {
          report(DiagCode::kSpecMalformed, DiagSeverity::kError,
                 applied.message(), "fix the declaration");
        }
        break;
      }
      case TraceEventKind::kCommute:
      case TraceEventKind::kClash: {
        const char* kind =
            e.kind == TraceEventKind::kCommute ? "commute" : "clash";
        if (e.a >= spec.ClassCount() || e.b >= spec.ClassCount()) {
          report(DiagCode::kSpecUnknownClass, DiagSeverity::kError,
                 StrCat(kind, " entry references class ",
                        e.a >= spec.ClassCount() ? e.a : e.b, " but only ",
                        spec.ClassCount(), " class(es) are declared"),
                 "declare the operation class before using it in the table");
          break;
        }
        const CommuteEntry desired = e.kind == TraceEventKind::kCommute
                                         ? CommuteEntry::kCommutes
                                         : CommuteEntry::kConflicts;
        const CommuteEntry existing = spec.Lookup(e.a, e.b);
        if (existing != CommuteEntry::kUnspecified && existing != desired) {
          report(DiagCode::kSpecContradictoryEntry, DiagSeverity::kError,
                 StrCat("pair ", spec.ClassLabel(e.a), " x ",
                        spec.ClassLabel(e.b),
                        " is declared both commuting and clashing"),
                 "keep exactly one of the two entries");
          break;
        }
        Status applied = spec.SetEntry(e.a, e.b, desired);
        if (!applied.ok()) {
          report(DiagCode::kSpecMalformed, DiagSeverity::kError,
                 applied.message(), "fix the entry");
        }
        break;
      }
      default:
        report(DiagCode::kSpecMalformed, DiagSeverity::kError,
               StrCat("'", workload::TraceEventKindToString(e.kind),
                      "' records are not part of a commutativity spec"),
               "only adt, adtop, commute and clash records are allowed");
    }
  }
  if (!saw_header) {
    report(DiagCode::kSpecMalformed, DiagSeverity::kError,
           "missing comptx-spec v1 header",
           "start the file with 'comptx-spec v1'");
    return result;
  }
  if (!saw_end) {
    report(DiagCode::kSpecMalformed, DiagSeverity::kError,
           "spec missing 'end' record", "terminate the file with 'end'");
  }
  if (apply_errors) return result;
  result.buildable = true;
  LintSpecTable(spec, result.diagnostics);
  result.spec = std::move(spec);
  return result;
}

}  // namespace comptx::staticcheck
