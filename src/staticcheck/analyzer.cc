#include "staticcheck/analyzer.h"

#include <utility>

#include "core/invocation_graph.h"
#include "core/validate.h"
#include "criteria/conflict_consistency.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "util/string_util.h"

namespace comptx::staticcheck {

const char* SafetyVerdictToString(SafetyVerdict verdict) {
  switch (verdict) {
    case SafetyVerdict::kSafe:
      return "SAFE";
    case SafetyVerdict::kUnsafe:
      return "UNSAFE";
    case SafetyVerdict::kNeedsDynamic:
      return "NEEDS_DYNAMIC";
  }
  return "?";
}

const char* ConfigShapeToString(ConfigShape shape) {
  switch (shape) {
    case ConfigShape::kEmpty:
      return "empty";
    case ConfigShape::kStack:
      return "stack";
    case ConfigShape::kFork:
      return "fork";
    case ConfigShape::kJoin:
      return "join";
    case ConfigShape::kFlat:
      return "flat";
    case ConfigShape::kTree:
      return "tree";
    case ConfigShape::kGeneralDag:
      return "general-dag";
  }
  return "?";
}

namespace {

/// One trail line for a cross-root conflict pair: which rule of the
/// commutativity spec decides it, e.g.
///   "t3.inc / t7.inc: counter.inc x counter.inc -> commutes"
std::string SemanticTrailLine(const CompositeSystem& cs, NodeId a, NodeId b) {
  const Node& na = cs.node(a);
  const Node& nb = cs.node(b);
  const CommutativitySpec* spec = cs.spec();
  std::string line = StrCat(na.name, " / ", nb.name, ": ");
  if (na.sem_class == kInvalidIndex || nb.sem_class == kInvalidIndex) {
    return StrCat(line, "untagged operation -> conflicts (no table entry "
                  "applies)");
  }
  const std::string ca = spec->ClassLabel(na.sem_class);
  const std::string cb = spec->ClassLabel(nb.sem_class);
  if (na.sem_instance != nb.sem_instance) {
    return StrCat(line, ca, "#", na.sem_instance, " x ", cb, "#",
                  nb.sem_instance, " -> distinct instances commute");
  }
  const CommuteEntry entry = spec->Lookup(na.sem_class, nb.sem_class);
  return StrCat(line, ca, " x ", cb, " -> table says ",
                CommuteEntryToString(entry));
}

/// True iff the system carries any strong order (output, input, or
/// intra).  Strong pairs are pulled down across subtrees and are the one
/// mechanism that couples different hosts' observed orders at low levels,
/// so the semantic shared-bottom rule refuses to fire in their presence.
bool HasStrongOrders(const CompositeSystem& cs) {
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    const Schedule& sched = cs.schedule(ScheduleId(s));
    if (sched.strong_output.PairCount() > 0) return true;
    if (sched.strong_input.PairCount() > 0) return true;
  }
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    if (cs.node(NodeId(v)).strong_intra.PairCount() > 0) return true;
  }
  return false;
}

/// Fills per-scheduler explanations: sharing, cross-root conflict
/// coverage, local conflict consistency, and the first CC violation
/// witness found (schedule order).
void ExplainSchedules(const CompositeSystem& cs,
                      const InvocationGraphResult& ig,
                      StaticAnalysis& analysis) {
  for (size_t si = 0; si < cs.ScheduleCount(); ++si) {
    const ScheduleId sid(static_cast<uint32_t>(si));
    ScheduleExplanation ex;
    ex.id = sid;
    ex.name = cs.schedule(sid).name;
    ex.level = ig.schedule_level[si];
    const std::vector<ScheduleId> invokers = cs.InvokersOf(sid);
    ex.shared = invokers.size() > 1;
    ex.meet = cs.RootsServed(sid) > 1;
    const std::vector<std::pair<NodeId, NodeId>> cross =
        cs.CrossRootConflicts(sid);
    ex.cross_root_conflicts = cross.size();
    for (const auto& [a, b] : cross) {
      if (!cs.node(a).IsRoot() && !cs.node(b).IsRoot()) {
        ++ex.pulled_up_cross_conflicts;
      }
      if (cs.SemanticallyCommutes(a, b)) ++ex.semantically_covered;
      if (cs.HasSpec()) {
        ex.semantic_trail.push_back(SemanticTrailLine(cs, a, b));
      }
    }
    if (auto violation = criteria::FindScheduleCCViolation(cs, sid)) {
      ex.conflict_consistent = false;
      ex.detail = StrCat("not conflict consistent: ",
                         violation->description);
      if (!analysis.witness.has_value()) {
        analysis.witness = std::move(*violation);
      }
    } else if (ex.meet && ex.pulled_up_cross_conflicts > 0 &&
               ex.semantically_covered == ex.cross_root_conflicts) {
      ex.detail = StrCat("meet schedule; all ", ex.cross_root_conflicts,
                         " cross-root conflict pair(s) semantically commute "
                         "(spec-covered): every exported order is forgotten "
                         "on pull-up");
    } else if (ex.meet && ex.pulled_up_cross_conflicts > 0) {
      ex.detail = StrCat("meet schedule with ", ex.pulled_up_cross_conflicts,
                         " pulled-up cross-root conflict pair(s): pull-up "
                         "can forget orders between them (Fig 4 hazard)");
    } else if (ex.meet) {
      ex.detail = "meet schedule but fully commuting across roots: "
                  "cannot block a pull-up";
    } else {
      ex.detail = "serves one execution tree; locally conflict consistent";
    }
    analysis.schedules.push_back(std::move(ex));
  }
}

}  // namespace

StaticAnalysis AnalyzeConfiguration(const CompositeSystem& cs,
                                    const AnalyzerOptions& options) {
  StaticAnalysis analysis;
  if (!options.assume_valid) {
    analysis.diagnostics = CollectModelDiagnostics(cs);
    if (HasErrors(analysis.diagnostics)) {
      analysis.well_formed = false;
      analysis.verdict = SafetyVerdict::kNeedsDynamic;
      analysis.reason =
          "system violates the model rules of Defs 2-4; fix the error "
          "diagnostics first";
      return analysis;
    }
  }
  analysis.well_formed = true;

  // Validation passed, so the invocation graph is acyclic and buildable.
  auto ig = BuildInvocationGraph(cs);
  if (!ig.ok()) {
    analysis.well_formed = false;
    analysis.verdict = SafetyVerdict::kNeedsDynamic;
    analysis.reason = ig.status().message();
    return analysis;
  }
  analysis.order = ig->order;

  if (cs.Roots().empty()) {
    analysis.shape = ConfigShape::kEmpty;
    analysis.verdict = SafetyVerdict::kSafe;
    analysis.reason = "no root transactions: trivially Comp-C";
    return analysis;
  }

  // Theorems 2-4: on stack / fork / join shapes the per-scheduler
  // criterion decides Comp-C exactly, in both directions.  These run
  // before the explanation scan so a theorem-decided sweep item pays only
  // the criterion, not a second per-scheduler CC pass.
  auto decided = [&](SafetyVerdict verdict) {
    analysis.verdict = verdict;
    if (options.explain) ExplainSchedules(cs, *ig, analysis);
    return analysis;
  };
  if (criteria::IsStackSystem(cs)) {
    analysis.shape = ConfigShape::kStack;
    auto scc = criteria::IsStackConflictConsistent(cs);
    if (scc.ok()) {
      analysis.reason =
          *scc ? "stack configuration, every scheduler conflict consistent "
                 "(Theorem 2)"
               : "stack configuration with a conflict-inconsistent "
                 "scheduler (Theorem 2)";
      return decided(*scc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe);
    }
  } else if (criteria::IsForkSystem(cs)) {
    analysis.shape = ConfigShape::kFork;
    auto fcc = criteria::IsForkConflictConsistent(cs);
    if (fcc.ok()) {
      analysis.reason =
          *fcc ? "fork configuration, top and branch schedulers conflict "
                 "consistent (Theorem 3)"
               : "fork configuration with a conflict-inconsistent "
                 "scheduler (Theorem 3)";
      return decided(*fcc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe);
    }
  } else if (criteria::IsJoinSystem(cs)) {
    analysis.shape = ConfigShape::kJoin;
    auto jcc = criteria::IsJoinConflictConsistent(cs);
    if (jcc.ok()) {
      analysis.reason =
          *jcc ? "join configuration, ghost graph and schedulers "
                 "consistent (Theorem 4)"
               : "join configuration violating join conflict consistency "
                 "(Theorem 4)";
      return decided(*jcc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe);
    }
  }

  ExplainSchedules(cs, *ig, analysis);
  bool all_cc = true;
  for (const ScheduleExplanation& ex : analysis.schedules) {
    all_cc = all_cc && ex.conflict_consistent;
  }

  // Flat configurations (order 1, no invocation edges): a disjoint union
  // of one-level stacks.  No observed order ever crosses schedulers, so
  // Comp-C decomposes into per-scheduler conflict consistency (Theorem 2
  // applied per component).
  if (analysis.order <= 1) {
    analysis.shape = ConfigShape::kFlat;
    analysis.verdict =
        all_cc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe;
    analysis.reason =
        all_cc ? "flat configuration (order 1): every scheduler conflict "
                 "consistent, no cross-scheduler constraints exist"
               : "flat configuration with a conflict-inconsistent "
                 "scheduler";
    return analysis;
  }

  // General configurations.  A locally conflict-inconsistent scheduler is
  // decisive: its serialization∪input cycle is conflict-backed, so
  // forgetting never drops it and its pull-up image reaches the front
  // where the scheduler's transactions meet — the reduction must fail
  // (Def 16 step 6, or Def 14 when the cycle collapses into one block).
  bool shared = false;
  size_t hazards = 0;
  for (const ScheduleExplanation& ex : analysis.schedules) {
    shared = shared || ex.shared;
    if (ex.meet && ex.pulled_up_cross_conflicts > 0) ++hazards;
  }
  analysis.shape = shared ? ConfigShape::kGeneralDag : ConfigShape::kTree;
  if (!all_cc) {
    analysis.verdict = SafetyVerdict::kUnsafe;
    analysis.reason =
        "a scheduler is locally conflict inconsistent; the conflict-backed "
        "cycle survives every pull-up, so no reduction can succeed";
    return analysis;
  }

  // Semantic shared-bottom rule.  With a commutativity spec attached, a
  // configuration the bit-level theorems cannot cover is still provably
  // SAFE when it decomposes into per-root invocation chains over
  // bottom-level meet schedules whose cross-root conflicts all commute
  // semantically:
  //   - no strong orders exist anywhere, so CollectPulledDownPairs never
  //     couples different roots' subtrees;
  //   - every meet schedule sits at level 1 and is fully spec-covered, so
  //     each cross-root order it exports is forgotten on the level-1
  //     pull-up (Def 10.2 with the effective conflict relation) and its
  //     own CC check (serialization ∪ input over T_S, semantic) is
  //     exactly the level-1 front consistency test;
  //   - every other schedule serves one root and forms a chain, so from
  //     level 2 on the fronts are vertex-disjoint unions of per-root
  //     stacks and Theorem 2 applies per root (local CC suffices).
  // all_cc holds here (the UNSAFE branch returned above), so the verdict
  // is SAFE whenever the shape conditions hold.
  if (cs.HasSpec() && !HasStrongOrders(cs)) {
    // Distinct invoked schedules per invoker (inert schedules excluded).
    std::vector<size_t> invokee_count(cs.ScheduleCount(), 0);
    for (uint32_t t = 0; t < cs.ScheduleCount(); ++t) {
      if (cs.schedule(ScheduleId(t)).transactions.empty()) continue;
      for (ScheduleId h : cs.InvokersOf(ScheduleId(t))) {
        ++invokee_count[h.index()];
      }
    }
    bool decomposes = true;
    size_t covered_meets = 0;
    for (const ScheduleExplanation& ex : analysis.schedules) {
      if (cs.schedule(ex.id).transactions.empty()) continue;
      if (ex.meet) {
        if (ex.level != 1 ||
            ex.semantically_covered != ex.cross_root_conflicts) {
          decomposes = false;
          break;
        }
        ++covered_meets;
      } else if (ex.shared || invokee_count[ex.id.index()] > 1) {
        decomposes = false;
        break;
      }
    }
    if (decomposes) {
      analysis.semantic = true;
      analysis.verdict = SafetyVerdict::kSafe;
      analysis.reason = StrCat(
          "semantic shared-bottom decomposition: ", covered_meets,
          " bottom-level meet schedule(s) fully covered by the "
          "commutativity spec, per-root chains conflict consistent "
          "(Theorem 2 per root; cross-root orders all forgotten on "
          "pull-up)");
      return analysis;
    }
  }

  analysis.verdict = SafetyVerdict::kNeedsDynamic;
  analysis.reason = StrCat(
      "no structural theorem covers this ", ConfigShapeToString(analysis.shape),
      " of order ", analysis.order, ": ", hazards,
      " scheduler(s) carry cross-root conflicts whose pulled-up orders only "
      "the level-by-level reduction can check");
  return analysis;
}

std::string FormatStaticAnalysis(const StaticAnalysis& analysis) {
  std::string out =
      StrCat("verdict: ", SafetyVerdictToString(analysis.verdict),
             " (shape ", ConfigShapeToString(analysis.shape), ", order ",
             analysis.order, ")\n  ", analysis.reason, "\n");
  for (const ScheduleExplanation& ex : analysis.schedules) {
    out = StrCat(out, "  schedule ", ex.name, " (level ", ex.level,
                 "): ", ex.detail, "\n");
    for (const std::string& line : ex.semantic_trail) {
      out = StrCat(out, "    ", line, "\n");
    }
  }
  if (analysis.witness.has_value()) {
    out = StrCat(out, "  witness: ", analysis.witness->description, "\n");
  }
  return out;
}

}  // namespace comptx::staticcheck
