#include "staticcheck/analyzer.h"

#include <utility>

#include "core/invocation_graph.h"
#include "core/validate.h"
#include "criteria/conflict_consistency.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "util/string_util.h"

namespace comptx::staticcheck {

const char* SafetyVerdictToString(SafetyVerdict verdict) {
  switch (verdict) {
    case SafetyVerdict::kSafe:
      return "SAFE";
    case SafetyVerdict::kUnsafe:
      return "UNSAFE";
    case SafetyVerdict::kNeedsDynamic:
      return "NEEDS_DYNAMIC";
  }
  return "?";
}

const char* ConfigShapeToString(ConfigShape shape) {
  switch (shape) {
    case ConfigShape::kEmpty:
      return "empty";
    case ConfigShape::kStack:
      return "stack";
    case ConfigShape::kFork:
      return "fork";
    case ConfigShape::kJoin:
      return "join";
    case ConfigShape::kFlat:
      return "flat";
    case ConfigShape::kTree:
      return "tree";
    case ConfigShape::kGeneralDag:
      return "general-dag";
  }
  return "?";
}

namespace {

/// Fills per-scheduler explanations: sharing, cross-root conflict
/// coverage, local conflict consistency, and the first CC violation
/// witness found (schedule order).
void ExplainSchedules(const CompositeSystem& cs,
                      const InvocationGraphResult& ig,
                      StaticAnalysis& analysis) {
  for (size_t si = 0; si < cs.ScheduleCount(); ++si) {
    const ScheduleId sid(static_cast<uint32_t>(si));
    ScheduleExplanation ex;
    ex.id = sid;
    ex.name = cs.schedule(sid).name;
    ex.level = ig.schedule_level[si];
    const std::vector<ScheduleId> invokers = cs.InvokersOf(sid);
    ex.shared = invokers.size() > 1;
    ex.meet = cs.RootsServed(sid) > 1;
    const std::vector<std::pair<NodeId, NodeId>> cross =
        cs.CrossRootConflicts(sid);
    ex.cross_root_conflicts = cross.size();
    for (const auto& [a, b] : cross) {
      if (!cs.node(a).IsRoot() && !cs.node(b).IsRoot()) {
        ++ex.pulled_up_cross_conflicts;
      }
    }
    if (auto violation = criteria::FindScheduleCCViolation(cs, sid)) {
      ex.conflict_consistent = false;
      ex.detail = StrCat("not conflict consistent: ",
                         violation->description);
      if (!analysis.witness.has_value()) {
        analysis.witness = std::move(*violation);
      }
    } else if (ex.meet && ex.pulled_up_cross_conflicts > 0) {
      ex.detail = StrCat("meet schedule with ", ex.pulled_up_cross_conflicts,
                         " pulled-up cross-root conflict pair(s): pull-up "
                         "can forget orders between them (Fig 4 hazard)");
    } else if (ex.meet) {
      ex.detail = "meet schedule but fully commuting across roots: "
                  "cannot block a pull-up";
    } else {
      ex.detail = "serves one execution tree; locally conflict consistent";
    }
    analysis.schedules.push_back(std::move(ex));
  }
}

}  // namespace

StaticAnalysis AnalyzeConfiguration(const CompositeSystem& cs,
                                    const AnalyzerOptions& options) {
  StaticAnalysis analysis;
  if (!options.assume_valid) {
    analysis.diagnostics = CollectModelDiagnostics(cs);
    if (HasErrors(analysis.diagnostics)) {
      analysis.well_formed = false;
      analysis.verdict = SafetyVerdict::kNeedsDynamic;
      analysis.reason =
          "system violates the model rules of Defs 2-4; fix the error "
          "diagnostics first";
      return analysis;
    }
  }
  analysis.well_formed = true;

  // Validation passed, so the invocation graph is acyclic and buildable.
  auto ig = BuildInvocationGraph(cs);
  if (!ig.ok()) {
    analysis.well_formed = false;
    analysis.verdict = SafetyVerdict::kNeedsDynamic;
    analysis.reason = ig.status().message();
    return analysis;
  }
  analysis.order = ig->order;

  if (cs.Roots().empty()) {
    analysis.shape = ConfigShape::kEmpty;
    analysis.verdict = SafetyVerdict::kSafe;
    analysis.reason = "no root transactions: trivially Comp-C";
    return analysis;
  }

  // Theorems 2-4: on stack / fork / join shapes the per-scheduler
  // criterion decides Comp-C exactly, in both directions.  These run
  // before the explanation scan so a theorem-decided sweep item pays only
  // the criterion, not a second per-scheduler CC pass.
  auto decided = [&](SafetyVerdict verdict) {
    analysis.verdict = verdict;
    if (options.explain) ExplainSchedules(cs, *ig, analysis);
    return analysis;
  };
  if (criteria::IsStackSystem(cs)) {
    analysis.shape = ConfigShape::kStack;
    auto scc = criteria::IsStackConflictConsistent(cs);
    if (scc.ok()) {
      analysis.reason =
          *scc ? "stack configuration, every scheduler conflict consistent "
                 "(Theorem 2)"
               : "stack configuration with a conflict-inconsistent "
                 "scheduler (Theorem 2)";
      return decided(*scc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe);
    }
  } else if (criteria::IsForkSystem(cs)) {
    analysis.shape = ConfigShape::kFork;
    auto fcc = criteria::IsForkConflictConsistent(cs);
    if (fcc.ok()) {
      analysis.reason =
          *fcc ? "fork configuration, top and branch schedulers conflict "
                 "consistent (Theorem 3)"
               : "fork configuration with a conflict-inconsistent "
                 "scheduler (Theorem 3)";
      return decided(*fcc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe);
    }
  } else if (criteria::IsJoinSystem(cs)) {
    analysis.shape = ConfigShape::kJoin;
    auto jcc = criteria::IsJoinConflictConsistent(cs);
    if (jcc.ok()) {
      analysis.reason =
          *jcc ? "join configuration, ghost graph and schedulers "
                 "consistent (Theorem 4)"
               : "join configuration violating join conflict consistency "
                 "(Theorem 4)";
      return decided(*jcc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe);
    }
  }

  ExplainSchedules(cs, *ig, analysis);
  bool all_cc = true;
  for (const ScheduleExplanation& ex : analysis.schedules) {
    all_cc = all_cc && ex.conflict_consistent;
  }

  // Flat configurations (order 1, no invocation edges): a disjoint union
  // of one-level stacks.  No observed order ever crosses schedulers, so
  // Comp-C decomposes into per-scheduler conflict consistency (Theorem 2
  // applied per component).
  if (analysis.order <= 1) {
    analysis.shape = ConfigShape::kFlat;
    analysis.verdict =
        all_cc ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe;
    analysis.reason =
        all_cc ? "flat configuration (order 1): every scheduler conflict "
                 "consistent, no cross-scheduler constraints exist"
               : "flat configuration with a conflict-inconsistent "
                 "scheduler";
    return analysis;
  }

  // General configurations.  A locally conflict-inconsistent scheduler is
  // decisive: its serialization∪input cycle is conflict-backed, so
  // forgetting never drops it and its pull-up image reaches the front
  // where the scheduler's transactions meet — the reduction must fail
  // (Def 16 step 6, or Def 14 when the cycle collapses into one block).
  bool shared = false;
  size_t hazards = 0;
  for (const ScheduleExplanation& ex : analysis.schedules) {
    shared = shared || ex.shared;
    if (ex.meet && ex.pulled_up_cross_conflicts > 0) ++hazards;
  }
  analysis.shape = shared ? ConfigShape::kGeneralDag : ConfigShape::kTree;
  if (!all_cc) {
    analysis.verdict = SafetyVerdict::kUnsafe;
    analysis.reason =
        "a scheduler is locally conflict inconsistent; the conflict-backed "
        "cycle survives every pull-up, so no reduction can succeed";
    return analysis;
  }

  analysis.verdict = SafetyVerdict::kNeedsDynamic;
  analysis.reason = StrCat(
      "no structural theorem covers this ", ConfigShapeToString(analysis.shape),
      " of order ", analysis.order, ": ", hazards,
      " scheduler(s) carry cross-root conflicts whose pulled-up orders only "
      "the level-by-level reduction can check");
  return analysis;
}

std::string FormatStaticAnalysis(const StaticAnalysis& analysis) {
  std::string out =
      StrCat("verdict: ", SafetyVerdictToString(analysis.verdict),
             " (shape ", ConfigShapeToString(analysis.shape), ", order ",
             analysis.order, ")\n  ", analysis.reason, "\n");
  for (const ScheduleExplanation& ex : analysis.schedules) {
    out = StrCat(out, "  schedule ", ex.name, " (level ", ex.level,
                 "): ", ex.detail, "\n");
  }
  if (analysis.witness.has_value()) {
    out = StrCat(out, "  witness: ", analysis.witness->description, "\n");
  }
  return out;
}

}  // namespace comptx::staticcheck
