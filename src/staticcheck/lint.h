#ifndef COMPTX_STATICCHECK_LINT_H_
#define COMPTX_STATICCHECK_LINT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/commutativity.h"
#include "core/composite_system.h"
#include "core/diagnostic.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx::staticcheck {

/// Options controlling the trace / witness linters.
struct LintOptions {
  /// After a clean replay, also run the Def 2-4 model checks
  /// (CollectModelDiagnostics) on the built system.
  bool model_rules = true;

  /// After a clean replay, emit structural advisories: empty system
  /// (CTX020), orphan schedulers (CTX021), forgotten-order hazards from
  /// shared schedulers with cross-root conflicts (CTX029), and — when a
  /// commutativity spec is attached — the CTX104-CTX108 table checks.
  bool structure = true;

  /// Pre-built commutativity spec to attach before replaying events (the
  /// `comptx_lint --spec` path).  The trace's tags are then checked
  /// against these classes; in-band adt/adtop declarations extend it.
  /// Not owned; must outlive the lint call.
  const CommutativitySpec* spec = nullptr;
};

/// Result of linting one spec (trace or witness).
struct LintResult {
  /// All findings, in discovery order: event-level first, then
  /// structural, then model-rule diagnostics.
  std::vector<Diagnostic> diagnostics;

  /// True iff every event applied cleanly; `system` is then the replayed
  /// composite system (structural/model diagnostics may still be present).
  bool buildable = false;
  std::optional<CompositeSystem> system;
};

/// Lints a parsed event sequence.  Unlike LoadTrace, this does not stop at
/// the first bad record: each ill-formed event is reported with a stable
/// CTX code and *skipped*, so one pass surfaces every violation.  Event
/// locations are "event N" (1-based); use LintTraceText for line numbers.
LintResult LintTraceEvents(const std::vector<workload::TraceEvent>& events,
                           const LintOptions& options = {});

/// Parses `text` as a "comptx-trace v1" document and lints it.  Parse
/// errors become CTX050 diagnostics; event diagnostics carry the source
/// line number of the offending record.
LintResult LintTraceText(const std::string& text,
                         const LintOptions& options = {});

/// Lints a witness JSON document: parses it (CTX050 on failure), lints the
/// embedded trace, and checks the optional "commuting" declarations
/// ("a b" operation-index pairs) for dangling references (CTX023),
/// self-commutation (CTX028), and contradictions with declared conflicts
/// (CTX027).
LintResult LintWitnessJson(const std::string& json,
                           const LintOptions& options = {});

/// Lints a generator spec: probabilities outside [0, 1] (CTX040),
/// degenerate sizes that generate empty workloads (CTX041), and
/// incompatible flag combinations (CTX042).
std::vector<Diagnostic> LintWorkloadSpec(const workload::WorkloadSpec& spec);

/// Result of linting a standalone commutativity-spec document.
struct SpecLintResult {
  std::vector<Diagnostic> diagnostics;

  /// True iff the document parsed and every declaration applied cleanly;
  /// `spec` then holds the built table.  Table-level findings (an
  /// incomplete table, CTX104) may still be present — the unspecified
  /// pairs conservatively conflict, so the spec stays sound to use.
  bool buildable = false;
  std::optional<CommutativitySpec> spec;
};

/// Parses `text` as a "comptx-spec v1" document — adt / adtop / commute /
/// clash records terminated by "end" — and lints it.  Parse errors and
/// foreign record kinds are CTX100; duplicate declarations CTX101;
/// references to undeclared ADTs or classes CTX102; contradictory table
/// entries CTX103; same-ADT pairs left unspecified CTX104 (error: the
/// table must be total); all-commuting tables CTX105 (warning); ADTs
/// without operation classes CTX106 (warning).
SpecLintResult LintSpecText(const std::string& text);

}  // namespace comptx::staticcheck

#endif  // COMPTX_STATICCHECK_LINT_H_
