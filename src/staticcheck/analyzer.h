#ifndef COMPTX_STATICCHECK_ANALYZER_H_
#define COMPTX_STATICCHECK_ANALYZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/composite_system.h"
#include "core/diagnostic.h"
#include "core/front.h"

namespace comptx::staticcheck {

/// Whole-configuration safety verdict of the static analyzer.
///
///   kSafe         — every execution of this configuration recorded in the
///                   system is Comp-C; the reduction can be skipped.
///   kUnsafe       — the execution is provably not Comp-C; the reduction
///                   can be skipped (a failure witness is attached).
///   kNeedsDynamic — no structural theorem applies; run the reduction.
///
/// SAFE/UNSAFE are *exact* (not conservative) on the shapes they fire
/// for: stack/fork/join configurations via Theorems 2-4, flat order-1
/// configurations (a disjoint union of one-level stacks, Theorem 2 per
/// component), and — for UNSAFE only — any configuration with a locally
/// conflict-inconsistent scheduler, whose serialization∪input cycle is
/// conflict-backed and therefore survives every pull-up into the front
/// where its transactions meet (Def 16 step 6 then fails).
enum class SafetyVerdict : uint8_t {
  kSafe,
  kUnsafe,
  kNeedsDynamic,
};

const char* SafetyVerdictToString(SafetyVerdict verdict);

/// Structural classification of the configuration driving the verdict.
enum class ConfigShape : uint8_t {
  kEmpty,       // no root transactions
  kStack,       // Def 21 (Theorem 2 applies)
  kFork,        // Def 23 (Theorem 3 applies)
  kJoin,        // Def 25 (Theorem 4 applies)
  kFlat,        // order 1, no invocations: disjoint union of 1-level stacks
  kTree,        // every schedule has at most one invoker, but no theorem
  kGeneralDag,  // some schedule is shared between invokers
};

const char* ConfigShapeToString(ConfigShape shape);

/// Why one scheduler does (or does not) admit a static verdict.
struct ScheduleExplanation {
  ScheduleId id;
  std::string name;
  uint32_t level = 0;

  /// More than one distinct schedule invokes this one (the invocation
  /// graph is a DAG, not a forest, at this node).
  bool shared = false;

  /// Executes transactions of more than one execution tree — a "meet"
  /// schedule, the only place cross-root orders are created (Fig 4's
  /// common schedule).
  bool meet = false;

  /// Conflict pairs whose operations belong to different execution trees —
  /// the orders a meet schedule exports across roots.  A meet schedule
  /// with zero cross-root conflicts is "covered": every cross-root pair
  /// commutes, so pull-up forgets all of its cross-root orders (Def 10.3)
  /// and it can never block a pull-up (the Fig 4 case cannot arise from
  /// it).
  size_t cross_root_conflicts = 0;

  /// The cross-root conflict pairs above whose members are both proper
  /// subtransactions, i.e., whose orders actually get pulled up (pairs of
  /// roots are already at the final level).  Nonzero is the Fig 4 hazard.
  size_t pulled_up_cross_conflicts = 0;

  /// Serialization ∪ weak-input order over T_S is acyclic.  Computed on
  /// the *effective* conflicts: an attached commutativity spec erases
  /// bit-level conflicts between commuting operations first.
  bool conflict_consistent = true;

  /// Of `cross_root_conflicts`, how many pairs the attached commutativity
  /// spec proves commuting.  Equal to cross_root_conflicts means the meet
  /// is semantically covered: every order it exports across roots is
  /// forgotten on pull-up.  Zero without a spec.
  size_t semantically_covered = 0;

  /// Explanation trail of the semantic analyzer: one line per cross-root
  /// conflict pair naming the operations, their ADT operation classes,
  /// and the table entry (or instance disjointness) that decides them.
  /// Filled only when the system has a spec and AnalyzerOptions::explain.
  std::vector<std::string> semantic_trail;

  /// One-line human-readable reason.
  std::string detail;
};

/// The full result of the static configuration analysis.
struct StaticAnalysis {
  /// False when CollectModelDiagnostics found errors; `diagnostics` then
  /// holds them and `verdict` is kNeedsDynamic (the theorems assume a
  /// well-formed system).
  bool well_formed = false;
  std::vector<Diagnostic> diagnostics;

  SafetyVerdict verdict = SafetyVerdict::kNeedsDynamic;
  ConfigShape shape = ConfigShape::kGeneralDag;

  /// True when the verdict was decided by the semantic commutativity rule
  /// (shared-bottom decomposition), i.e. the bit-level analyzer alone
  /// would have answered kNeedsDynamic.
  bool semantic = false;

  /// The order N of the composite system (0 when ill-formed).
  uint32_t order = 0;

  /// Whole-configuration explanation of the verdict.
  std::string reason;

  /// Per-scheduler findings, in schedule order.  For every kNeedsDynamic
  /// verdict this names the schedulers (shared, uncovered) that defeat the
  /// structural theorems.
  std::vector<ScheduleExplanation> schedules;

  /// For kUnsafe: the violating cycle, when a per-scheduler one exists
  /// (JCC ghost-graph violations span schedulers and carry no witness).
  std::optional<CycleWitness> witness;
};

/// Options controlling the analysis.
struct AnalyzerOptions {
  /// Skip CollectModelDiagnostics and trust the caller that `cs` is
  /// well formed (e.g., it was just validated by GenerateSystem).
  bool assume_valid = false;

  /// Fill `schedules` (and the UNSAFE witness) even when a structural
  /// theorem already decides the verdict.  The CLI wants the rows; the
  /// sweep fast path turns this off — the per-scheduler CC scan costs
  /// about as much as the theorem criterion itself.  Explanations are
  /// always computed when the verdict needs them (flat and general
  /// shapes).
  bool explain = true;
};

/// Statically analyzes the configuration of `cs`: validates (unless
/// `assume_valid`), classifies the shape, and decides SAFE / UNSAFE /
/// NEEDS_DYNAMIC with per-scheduler explanations.  Pure function of the
/// system; runs no reduction.
///
/// The verdict is exact with respect to `CheckCompC` under the paper's
/// semantics (forgetting enabled).  Callers running the E8 ablation
/// (forgetting disabled) must not use the fast path.
StaticAnalysis AnalyzeConfiguration(const CompositeSystem& cs,
                                    const AnalyzerOptions& options = {});

/// Multi-line human-readable rendering of an analysis (the CLI --verdict
/// output): verdict, shape, order, reason, one line per scheduler.
std::string FormatStaticAnalysis(const StaticAnalysis& analysis);

}  // namespace comptx::staticcheck

#endif  // COMPTX_STATICCHECK_ANALYZER_H_
