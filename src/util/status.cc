#include "util/status.h"

namespace comptx {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace comptx
