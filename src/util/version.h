#ifndef COMPTX_UTIL_VERSION_H_
#define COMPTX_UTIL_VERSION_H_

#include <iostream>
#include <string>

namespace comptx {

/// Library version, bumped when a tool's observable behaviour changes.
/// Every CLI reports it via --version so scripted deployments (and the CI
/// smoke jobs) can pin the binary they started.
inline constexpr const char kComptxVersion[] = "0.5.0";

/// Prints the standard one-line version banner for `tool`.
inline void PrintToolVersion(const char* tool) {
  std::cout << tool << " (comptx) " << kComptxVersion << "\n";
}

}  // namespace comptx

#endif  // COMPTX_UTIL_VERSION_H_
