#include "util/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "util/logging.h"

namespace comptx {

namespace {

/// True while the current thread is executing inside a pool job; nested
/// ParallelFor calls detect this and run inline.
thread_local bool t_inside_pool_job = false;

}  // namespace

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("COMPTX_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t threads) : thread_count_(threads < 1 ? 1 : threads) {
  workers_.reserve(thread_count_ - 1);
  for (size_t w = 0; w + 1 < thread_count_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      // Register under the lock: the caller cannot destroy the job while
      // any registered participant is still inside it.
      if (job != nullptr) job->active.fetch_add(1, std::memory_order_relaxed);
    }
    if (job == nullptr) continue;
    t_inside_pool_job = true;
    // Worker w owns shard w + 1 (shard 0 belongs to the caller); workers
    // beyond the shard count join as pure thieves.
    Participate(*job, worker_index + 1);
    t_inside_pool_job = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->active.fetch_sub(1, std::memory_order_relaxed);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::Participate(Job& job, size_t shard_index) {
  const size_t shard_count = job.shards.size();
  size_t executed = 0;
  // Claiming a handful of indices per lock keeps locking cost negligible
  // while leaving enough of the tail for thieves.
  constexpr size_t kOwnerChunk = 8;
  if (shard_index < shard_count) {
    Shard& own = job.shards[shard_index];
    while (true) {
      size_t begin = 0;
      size_t end = 0;
      {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (own.next < own.end) {
          begin = own.next;
          end = begin + kOwnerChunk < own.end ? begin + kOwnerChunk : own.end;
          own.next = end;
        }
      }
      if (begin == end) break;
      for (size_t i = begin; i < end; ++i) (*job.fn)(i);
      executed += end - begin;
    }
  }
  // Own shard drained: steal the back half of whichever shard has the most
  // work left, until nothing is claimable anywhere.
  while (true) {
    size_t best = shard_count;
    size_t best_remaining = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      if (s == shard_index) continue;
      Shard& victim = job.shards[s];
      std::lock_guard<std::mutex> lock(victim.mutex);
      const size_t remaining = victim.end - victim.next;
      if (remaining > best_remaining) {
        best_remaining = remaining;
        best = s;
      }
    }
    if (best == shard_count) break;
    size_t begin = 0;
    size_t end = 0;
    {
      Shard& victim = job.shards[best];
      std::lock_guard<std::mutex> lock(victim.mutex);
      const size_t remaining = victim.end - victim.next;
      if (remaining > 0) {
        const size_t take = (remaining + 1) / 2;
        begin = victim.end - take;
        end = victim.end;
        victim.end = begin;
      }
    }
    for (size_t i = begin; i < end; ++i) (*job.fn)(i);
    executed += end - begin;
  }
  if (executed > 0 &&
      job.remaining.fetch_sub(executed, std::memory_order_acq_rel) ==
          executed) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || thread_count_ == 1 || t_inside_pool_job) {
    // Serial path: trivially deterministic, and the nested-call case (a
    // worker running a stage that itself fans out) must not wait on the
    // pool it is part of.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  Job job;
  job.fn = &fn;
  const size_t participants =
      thread_count_ < n ? thread_count_ : n;  // no empty shards
  job.shards = std::vector<Shard>(participants);
  job.remaining.store(n, std::memory_order_relaxed);
  const size_t per_shard = n / participants;
  const size_t extra = n % participants;
  size_t next = 0;
  for (size_t s = 0; s < participants; ++s) {
    job.shards[s].next = next;
    next += per_shard + (s < extra ? 1 : 0);
    job.shards[s].end = next;
  }
  COMPTX_CHECK_EQ(next, n);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++epoch_;
  }
  work_cv_.notify_all();

  // The caller is participant 0.
  t_inside_pool_job = true;
  Participate(job, 0);
  t_inside_pool_job = false;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 &&
             job.active.load(std::memory_order_relaxed) == 0;
    });
    job_ = nullptr;
  }
}

namespace {

std::mutex g_global_pool_mutex;
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  return *slot;
}

void ThreadPool::SetGlobalThreads(size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  GlobalPoolSlot() = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

}  // namespace comptx
