#ifndef COMPTX_UTIL_RNG_H_
#define COMPTX_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace comptx {

/// Deterministic 64-bit pseudo-random generator (xoshiro256** seeded through
/// SplitMix64).  All randomized components of the library (workload
/// generators, interleaving drivers, property tests) draw from this type so
/// that every experiment is reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound).  `bound` must be positive.
  /// Uses rejection to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns a reference to a uniformly chosen element; `items` must be
  /// non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    COMPTX_CHECK(!items.empty());
    return items[static_cast<size_t>(UniformInt(items.size()))];
  }

  /// Derives an independent child generator; used to give each generated
  /// entity (transaction, component) its own stream so that changing one
  /// knob does not perturb unrelated draws.
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace comptx

#endif  // COMPTX_UTIL_RNG_H_
