#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace comptx {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  COMPTX_CHECK_GT(n, 0u);
  COMPTX_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace comptx
