#ifndef COMPTX_UTIL_ARENA_H_
#define COMPTX_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace comptx {

/// Monotonic bump allocator for per-epoch scratch (DESIGN.md §13.2): the
/// online certifier allocates its deferred-edge buffers and prune scratch
/// out of one arena and resets it wholesale after each epoch's
/// flush+prune, so steady-state ingest performs zero heap allocation once
/// the arena reaches its high-water size.
///
/// Allocation never constructs or destroys objects — callers place
/// trivially-destructible data only (the certifier stores PODs).  Reset()
/// rewinds every chunk without releasing memory; the chunk list keeps its
/// high-water capacity for the session's lifetime.
///
/// Not thread-safe; the owner serializes access (the certifier uses it
/// under its ingest mutex only).
class MonotonicArena {
 public:
  explicit MonotonicArena(size_t first_chunk_bytes = 4096)
      : first_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two).  Grows by
  /// doubling chunks; a request larger than the next chunk gets a chunk
  /// of its own size, so huge one-off allocations don't balloon the
  /// steady-state footprint.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    while (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const size_t aligned = (chunk.used + align - 1) & ~(align - 1);
      if (aligned + size <= chunk.size) {
        chunk.used = aligned + size;
        return chunk.data.get() + aligned;
      }
      // Exhausted: move on (its bytes stay allocated until Reset).
      ++current_;
    }
    size_t next_size =
        chunks_.empty() ? first_chunk_bytes_ : chunks_.back().size * 2;
    if (next_size < size + align) next_size = size + align;
    chunks_.push_back(Chunk{std::make_unique<uint8_t[]>(next_size),
                            next_size, 0});
    // A fresh chunk's base is new[]-aligned, which satisfies every align
    // this arena is asked for (the certifier stores PODs).
    Chunk& chunk = chunks_.back();
    chunk.used = size;
    return chunk.data.get();
  }

  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk; capacity (and the chunk list) is retained.
  void Reset() {
    for (Chunk& chunk : chunks_) chunk.used = 0;
    current_ = 0;
  }

  /// Releases every chunk (used by tests asserting footprint).
  void Release() {
    chunks_.clear();
    current_ = 0;
  }

  /// Total bytes currently reserved by the arena's chunks.
  size_t CapacityBytes() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

  /// Bytes handed out since the last Reset.
  size_t UsedBytes() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.used;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  const size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // first chunk worth probing for space
};

/// STL-compatible allocator over a MonotonicArena.  deallocate is a no-op
/// (memory is reclaimed by MonotonicArena::Reset), so containers using it
/// must not outlive the next Reset.  Intended for short-lived per-epoch
/// vectors: `std::vector<T, ArenaAllocator<T>> v(ArenaAllocator<T>(&arena))`.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena* arena) : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t count) {
    return static_cast<T*>(arena_->Allocate(count * sizeof(T), alignof(T)));
  }

  void deallocate(T*, size_t) {}  // reclaimed wholesale by Reset()

  MonotonicArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  MonotonicArena* arena_;
};

}  // namespace comptx

#endif  // COMPTX_UTIL_ARENA_H_
