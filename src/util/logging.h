#ifndef COMPTX_UTIL_LOGGING_H_
#define COMPTX_UTIL_LOGGING_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <sstream>
#include <string>

namespace comptx {

/// Log severities, ordered so that a numeric comparison implements the
/// filter: a message is emitted iff its severity >= the process minimum.
enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

namespace internal_logging {

inline const char* SeverityLetter(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarn:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

/// The process-wide minimum severity, parsed once from COMPTX_LOG_LEVEL
/// (debug | info | warn | error, or the numeric values 0-3).  Unset or
/// unrecognized values default to info.
inline LogSeverity MinLogSeverity() {
  static const LogSeverity min_severity = [] {
    const char* level = std::getenv("COMPTX_LOG_LEVEL");
    if (level == nullptr) return LogSeverity::kInfo;
    if (std::strcmp(level, "debug") == 0 || std::strcmp(level, "0") == 0) {
      return LogSeverity::kDebug;
    }
    if (std::strcmp(level, "info") == 0 || std::strcmp(level, "1") == 0) {
      return LogSeverity::kInfo;
    }
    if (std::strcmp(level, "warn") == 0 || std::strcmp(level, "2") == 0) {
      return LogSeverity::kWarn;
    }
    if (std::strcmp(level, "error") == 0 || std::strcmp(level, "3") == 0) {
      return LogSeverity::kError;
    }
    return LogSeverity::kInfo;
  }();
  return min_severity;
}

/// Serializes whole formatted lines across threads.  Every emitter
/// (COMPTX_LOG and the fatal CHECK path) formats its complete line into a
/// private buffer first and performs exactly one locked fwrite, so lines
/// from concurrent threads never tear or interleave mid-line.
inline std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

inline void EmitLogLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

/// Accumulates one log line and emits it atomically on destruction.
/// Instantiated only via COMPTX_LOG, which has already applied the
/// severity filter (a suppressed message never constructs this object, so
/// its streamed arguments are never evaluated).
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
    const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now.time_since_epoch())
                            .count() %
                        1000;
    std::tm tm_buf{};
    localtime_r(&seconds, &tm_buf);
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                  tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << SeverityLetter(severity) << " " << stamp << " " << basename
            << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    EmitLogLine(stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Accumulates a fatal message and aborts the process when destroyed.
/// Used only by the COMPTX_CHECK* macros below; never instantiate
/// directly.  The message is emitted as a single write through the same
/// mutex as COMPTX_LOG, so a dying thread cannot tear concurrent log
/// lines.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  ~FatalLogMessage() {
    stream_ << "\n";
    EmitLogLine(stream_.str());
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lowers a streamed message expression to void so it can sit in the
/// false branch of the COMPTX_CHECK / COMPTX_LOG ternaries.  `&` binds
/// looser than `<<`, so all streamed values reach the message first.
class Voidify {
 public:
  void operator&(LogMessage&) {}
  void operator&(LogMessage&&) {}
  void operator&(FatalLogMessage&) {}
  void operator&(FatalLogMessage&&) {}
};

}  // namespace internal_logging
}  // namespace comptx

/// Writes one timestamped diagnostic line to stderr:
///   COMPTX_LOG(Info) << "accepted " << n << " events";
/// Severities: Debug, Info, Warn, Error.  Messages below the process
/// minimum (COMPTX_LOG_LEVEL, default info) are suppressed without
/// evaluating the streamed operands.  Each message is formatted completely
/// before a single mutex-guarded write, so concurrent writers (the
/// service's worker, acceptor and connection threads) never interleave
/// fragments of different lines.
#define COMPTX_LOG(severity)                                          \
  (::comptx::LogSeverity::k##severity <                               \
   ::comptx::internal_logging::MinLogSeverity())                      \
      ? static_cast<void>(0)                                          \
      : ::comptx::internal_logging::Voidify() &                       \
            ::comptx::internal_logging::LogMessage(                   \
                __FILE__, __LINE__, ::comptx::LogSeverity::k##severity)

/// Dies with a diagnostic if `cond` is false.  Supports streaming extra
/// context: COMPTX_CHECK(p != nullptr) << "while doing X".  Intended for
/// internal invariants ("cannot happen"); input validation must use Status.
#define COMPTX_CHECK(cond)                                    \
  (cond) ? static_cast<void>(0)                               \
         : ::comptx::internal_logging::Voidify() &            \
               ::comptx::internal_logging::FatalLogMessage(   \
                   __FILE__, __LINE__, #cond)

#define COMPTX_CHECK_OP_(a, b, op)                            \
  ((a)op(b)) ? static_cast<void>(0)                           \
             : ::comptx::internal_logging::Voidify() &        \
                   ::comptx::internal_logging::FatalLogMessage( \
                       __FILE__, __LINE__, #a " " #op " " #b)

#define COMPTX_CHECK_EQ(a, b) COMPTX_CHECK_OP_(a, b, ==)
#define COMPTX_CHECK_NE(a, b) COMPTX_CHECK_OP_(a, b, !=)
#define COMPTX_CHECK_LT(a, b) COMPTX_CHECK_OP_(a, b, <)
#define COMPTX_CHECK_LE(a, b) COMPTX_CHECK_OP_(a, b, <=)
#define COMPTX_CHECK_GT(a, b) COMPTX_CHECK_OP_(a, b, >)
#define COMPTX_CHECK_GE(a, b) COMPTX_CHECK_OP_(a, b, >=)

/// Dies if `status_expr` evaluates to a non-OK Status.
#define COMPTX_CHECK_OK(status_expr)                                   \
  do {                                                                 \
    const ::comptx::Status _comptx_check_status = (status_expr);       \
    COMPTX_CHECK(_comptx_check_status.ok())                            \
        << _comptx_check_status.ToString();                           \
  } while (false)

#endif  // COMPTX_UTIL_LOGGING_H_
