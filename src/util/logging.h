#ifndef COMPTX_UTIL_LOGGING_H_
#define COMPTX_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace comptx::internal_logging {

/// Accumulates a fatal message and aborts the process when destroyed.
/// Used only by the COMPTX_CHECK* macros below; never instantiate directly.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lowers a streamed FatalLogMessage expression to void so it can sit in
/// the false branch of the COMPTX_CHECK ternary.  `&` binds looser than
/// `<<`, so all streamed values reach the message first.
class Voidify {
 public:
  void operator&(FatalLogMessage&) {}
  void operator&(FatalLogMessage&&) {}
};

}  // namespace comptx::internal_logging

/// Dies with a diagnostic if `cond` is false.  Supports streaming extra
/// context: COMPTX_CHECK(p != nullptr) << "while doing X".  Intended for
/// internal invariants ("cannot happen"); input validation must use Status.
#define COMPTX_CHECK(cond)                                    \
  (cond) ? static_cast<void>(0)                               \
         : ::comptx::internal_logging::Voidify() &            \
               ::comptx::internal_logging::FatalLogMessage(   \
                   __FILE__, __LINE__, #cond)

#define COMPTX_CHECK_OP_(a, b, op)                            \
  ((a)op(b)) ? static_cast<void>(0)                           \
             : ::comptx::internal_logging::Voidify() &        \
                   ::comptx::internal_logging::FatalLogMessage( \
                       __FILE__, __LINE__, #a " " #op " " #b)

#define COMPTX_CHECK_EQ(a, b) COMPTX_CHECK_OP_(a, b, ==)
#define COMPTX_CHECK_NE(a, b) COMPTX_CHECK_OP_(a, b, !=)
#define COMPTX_CHECK_LT(a, b) COMPTX_CHECK_OP_(a, b, <)
#define COMPTX_CHECK_LE(a, b) COMPTX_CHECK_OP_(a, b, <=)
#define COMPTX_CHECK_GT(a, b) COMPTX_CHECK_OP_(a, b, >)
#define COMPTX_CHECK_GE(a, b) COMPTX_CHECK_OP_(a, b, >=)

/// Dies if `status_expr` evaluates to a non-OK Status.
#define COMPTX_CHECK_OK(status_expr)                                   \
  do {                                                                 \
    const ::comptx::Status _comptx_check_status = (status_expr);       \
    COMPTX_CHECK(_comptx_check_status.ok())                            \
        << _comptx_check_status.ToString();                           \
  } while (false)

#endif  // COMPTX_UTIL_LOGGING_H_
