#ifndef COMPTX_UTIL_THREAD_POOL_H_
#define COMPTX_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace comptx {

/// The number of threads comptx uses by default: the COMPTX_THREADS
/// environment variable when set to a positive integer, otherwise the
/// hardware concurrency (at least 1).  COMPTX_THREADS=1 forces every
/// parallel stage onto the caller's thread (the fully serial path).
size_t DefaultThreadCount();

/// A small work-stealing thread pool for data-parallel loops.
///
/// ParallelFor splits an index range into one shard per participant
/// (workers + the calling thread); each participant drains its own shard
/// front-to-back and, when empty, steals the back half of the largest
/// remaining shard.  Stealing keeps skewed workloads (one expensive
/// schedule among many cheap ones) balanced without any tuning.
///
/// Determinism contract: ParallelFor only guarantees that fn is invoked
/// exactly once per index.  Callers that fold results into an order-
/// sensitive structure must write into per-index slots and merge in index
/// order afterwards (see SystemContext and the reduction shards).
///
/// Nested ParallelFor calls from inside a worker run inline on that
/// worker (no deadlock, no oversubscription).
class ThreadPool {
 public:
  /// Starts `threads - 1` workers (the calling thread is the remaining
  /// participant).  `threads` is clamped to at least 1.
  explicit ThreadPool(size_t threads = DefaultThreadCount());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (workers + caller).
  size_t ThreadCount() const { return thread_count_; }

  /// Runs fn(i) for every i in [0, n), blocking until all invocations have
  /// returned.  fn must not throw.  Safe to call concurrently from
  /// multiple threads (jobs are serialized) and reentrantly from inside a
  /// worker (runs inline).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// The process-wide pool, built lazily with DefaultThreadCount()
  /// threads.  All library-internal parallel stages use this pool.
  static ThreadPool& Global();

  /// Replaces the global pool with one of `threads` threads.  Must not be
  /// called while the global pool is executing a job (benches, CLIs and
  /// tests call it between runs).
  static void SetGlobalThreads(size_t threads);

 private:
  /// One participant's slice of the index range; guarded by its mutex so
  /// owner claims and steals cannot hand out an index twice.
  struct Shard {
    std::mutex mutex;
    size_t next = 0;
    size_t end = 0;
  };

  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    std::vector<Shard> shards;
    std::atomic<size_t> remaining{0};  // indices not yet executed
    std::atomic<size_t> active{0};     // workers currently inside the job
  };

  void WorkerLoop(size_t worker_index);
  /// Drains `job` (own shard first, then steals); decrements
  /// job.remaining per executed index.
  void Participate(Job& job, size_t shard_index);

  size_t thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;                  // guards job_/epoch_/stop_
  std::condition_variable work_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;   // caller waits for remaining == 0
  Job* job_ = nullptr;
  uint64_t epoch_ = 0;
  bool stop_ = false;

  std::mutex submit_mutex_;  // one ParallelFor at a time
};

}  // namespace comptx

#endif  // COMPTX_UTIL_THREAD_POOL_H_
