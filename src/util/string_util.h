#ifndef COMPTX_UTIL_STRING_UTIL_H_
#define COMPTX_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace comptx {

/// Joins the elements of `parts` with `sep` using `operator<<`.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    out << part;
    first = false;
  }
  return out.str();
}

/// Splits `text` on the single character `sep`.  Empty fields are kept;
/// an empty input yields an empty vector.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Returns true iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Streams all arguments into one string (a tiny StrCat).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

}  // namespace comptx

#endif  // COMPTX_UTIL_STRING_UTIL_H_
