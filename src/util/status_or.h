#ifndef COMPTX_UTIL_STATUS_OR_H_
#define COMPTX_UTIL_STATUS_OR_H_

#include <cstddef>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace comptx {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent.  Mirrors `arrow::Result` / `absl::StatusOr`.
///
/// Accessors `value()` / `operator*` die (via COMPTX_CHECK) when called on an
/// errored result; call sites must test `ok()` first or use the
/// COMPTX_ASSIGN_OR_RETURN macro.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from a non-OK status (implicit, so
  /// `return Status::InvalidArgument(...);` works).
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    COMPTX_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // The class invariant ties ok() to value_.has_value(): the value
  // constructor engages both, the status constructor neither, and no
  // mutator breaks the pairing.  The COMPTX_CHECK aborts on violation,
  // which clang-tidy's optional-access analysis cannot see through.
  // NOLINTBEGIN(bugprone-unchecked-optional-access)
  const T& value() const& {
    COMPTX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    COMPTX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    COMPTX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }
  // NOLINTEND(bugprone-unchecked-optional-access)

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace comptx

#define COMPTX_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define COMPTX_STATUS_MACROS_CONCAT_(x, y) \
  COMPTX_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a StatusOr<T>); on error returns the status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define COMPTX_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  COMPTX_ASSIGN_OR_RETURN_IMPL_(                                             \
      COMPTX_STATUS_MACROS_CONCAT_(_comptx_statusor_, __LINE__), lhs, rexpr)

#define COMPTX_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                  \
  if (!statusor.ok()) return statusor.status();             \
  lhs = std::move(statusor).value()

#endif  // COMPTX_UTIL_STATUS_OR_H_
