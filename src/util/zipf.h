#ifndef COMPTX_UTIL_ZIPF_H_
#define COMPTX_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace comptx {

/// Samples from a Zipf distribution over {0, ..., n-1} with skew `theta`
/// (theta = 0 is uniform; typical database benchmarks use theta in
/// [0.5, 0.99]).  Uses a precomputed CDF with binary search, which is exact
/// and fast for the domain sizes used in the benchmarks (n <= ~1e6).
class ZipfGenerator {
 public:
  /// Builds the CDF for `n` items with skew `theta`.  `n` must be positive
  /// and `theta` non-negative.
  ZipfGenerator(uint64_t n, double theta);

  /// Draws one sample in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace comptx

#endif  // COMPTX_UTIL_ZIPF_H_
