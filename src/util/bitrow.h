#ifndef COMPTX_UTIL_BITROW_H_
#define COMPTX_UTIL_BITROW_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace comptx {

/// A windowed bitset over uint32_t ids: the words cover ids in
/// [base_word * 64, (base_word + words.size()) * 64).  The window grows on
/// demand in either direction, so memory is proportional to the id *span*
/// actually used, not to the size of the global id space — important
/// because relation rows are keyed by global node ids while their targets
/// cluster (children of one transaction, operations of one schedule).
///
/// This is the same words-per-row bit layout as graph::TransitiveClosure,
/// with the row rebased so sparse high ids stay cheap.
class BitRow {
 public:
  bool Test(uint32_t id) const {
    const uint32_t w = id >> 6;
    if (w < base_word_ || w - base_word_ >= words_.size()) return false;
    return (words_[w - base_word_] >> (id & 63)) & 1;
  }

  /// Sets the bit for `id`; returns true iff it was previously clear.
  bool TestAndSet(uint32_t id) {
    const uint32_t w = id >> 6;
    if (words_.empty()) {
      base_word_ = w;
      words_.push_back(0);
    } else if (w < base_word_) {
      words_.insert(words_.begin(), base_word_ - w, 0);
      base_word_ = w;
    } else if (w - base_word_ >= words_.size()) {
      words_.resize(w - base_word_ + 1, 0);
    }
    uint64_t& word = words_[w - base_word_];
    const uint64_t mask = uint64_t{1} << (id & 63);
    if (word & mask) return false;
    word |= mask;
    return true;
  }

  /// Invokes `f(uint32_t id)` for every set bit in ascending id order.
  template <typename F>
  void ForEachSet(F f) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      const uint32_t word_base = (base_word_ + static_cast<uint32_t>(w)) << 6;
      while (word != 0) {
        const int bit = std::countr_zero(word);
        f(word_base + static_cast<uint32_t>(bit));
        word &= word - 1;
      }
    }
  }

  bool Empty() const { return words_.empty(); }

 private:
  std::vector<uint64_t> words_;
  uint32_t base_word_ = 0;
};

}  // namespace comptx

#endif  // COMPTX_UTIL_BITROW_H_
