#include "util/string_util.h"

namespace comptx {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace comptx
