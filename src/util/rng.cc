#include "util/rng.h"

namespace comptx {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  COMPTX_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return value % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  COMPTX_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace comptx
