#ifndef COMPTX_UTIL_STATUS_H_
#define COMPTX_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace comptx {

/// Canonical error space for all fallible operations in the library.
///
/// The library does not use C++ exceptions; every operation that can fail
/// returns a `Status` (or a `StatusOr<T>`, see status_or.h) describing the
/// outcome.
enum class StatusCode {
  kOk = 0,
  /// The caller supplied an argument that is malformed independent of the
  /// state of the system (e.g., an unknown node id).
  kInvalidArgument = 1,
  /// The operation was rejected because the object is not in a state
  /// required for it (e.g., reducing an unvalidated composite system).
  kFailedPrecondition = 2,
  /// A referenced entity does not exist.
  kNotFound = 3,
  /// An entity that the operation attempted to create already exists.
  kAlreadyExists = 4,
  /// A value fell outside a required range.
  kOutOfRange = 5,
  /// An invariant that should hold by construction was violated; indicates
  /// a bug in the library rather than in its input.
  kInternal = 6,
  /// The requested feature is not implemented.
  kUnimplemented = 7,
  /// A resource limit (time, iterations, memory budget) was exhausted.
  kResourceExhausted = 8,
};

/// Returns the canonical lowercase name of `code` (e.g., "invalid_argument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled on the status types used
/// by Arrow and RocksDB.  `Status` is cheaply copyable and movable; the OK
/// status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace comptx

/// Propagates a non-OK status to the caller.  Usable only in functions that
/// themselves return `Status` (or a type constructible from it).
#define COMPTX_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::comptx::Status _comptx_status = (expr);          \
    if (!_comptx_status.ok()) return _comptx_status;   \
  } while (false)

#endif  // COMPTX_UTIL_STATUS_H_
