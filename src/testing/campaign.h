#ifndef COMPTX_TESTING_CAMPAIGN_H_
#define COMPTX_TESTING_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "testing/differential.h"
#include "testing/metamorphic.h"
#include "testing/shrink.h"
#include "testing/witness.h"
#include "util/status_or.h"

namespace comptx::testing {

/// Parameters of one fuzz campaign: `traces` random composite executions
/// are generated from `seed` (one derived seed per trace, so any failure
/// is reproducible from the campaign seed alone), pushed through every
/// decider, metamorphically perturbed, and any disagreement is
/// delta-debugged to a minimal witness.
struct CampaignOptions {
  uint64_t seed = 1;
  uint32_t traces = 100;

  DifferentialOptions differential;

  bool run_metamorphic = true;
  MetamorphicOptions metamorphic;

  /// Every k-th trace additionally cross-checks the online verdict after
  /// *every* prefix against the batch checker (quadratic; 0 disables).
  uint32_t prefix_check_every = 16;
  /// Prefix cross-check only on streams up to this many events.
  uint32_t prefix_event_limit = 120;

  ShrinkOptions shrink;

  /// Called (serially, in trace order) for each minimized witness.
  std::function<void(const WitnessRecord&)> on_witness;
};

struct CampaignStats {
  uint32_t traces = 0;
  uint32_t comp_c_count = 0;       // traces the batch reducer accepted
  uint32_t single_meet = 0;        // stack/fork/join shaped traces
  uint32_t prefix_checked = 0;     // traces with the per-prefix cross-check
  uint32_t metamorphic_checked = 0;
  uint32_t static_decided = 0;     // traces the static analyzer decided
  uint64_t total_events = 0;       // events across all generated traces
  uint32_t failing_traces = 0;     // traces with >= 1 disagreement
  uint64_t shrink_predicate_calls = 0;
};

struct CampaignResult {
  CampaignStats stats;
  /// One minimized witness per failing trace (its first disagreement).
  std::vector<WitnessRecord> witnesses;

  bool clean() const { return witnesses.empty(); }
};

/// Runs the campaign: generation and differential checking fan out over
/// the global thread pool (one independent check per trace); the batch
/// verdicts are then re-swept through analysis::SweepCompC with its
/// disagreement hooks as an aggregation cross-check; failures are shrunk
/// serially.  A Status error means the harness itself broke (generator or
/// malformed-input errors), not that a disagreement was found —
/// disagreements are the witnesses in the result.
StatusOr<CampaignResult> RunFuzzCampaign(const CampaignOptions& options);

}  // namespace comptx::testing

#endif  // COMPTX_TESTING_CAMPAIGN_H_
