#include "testing/witness.h"

#include <cctype>
#include <sstream>
#include <utility>

#include "testing/events.h"
#include "util/string_util.h"

namespace comptx::testing {

using workload::TraceEvent;

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

/// Minimal tokenizer for the flat JSON subset FormatWitnessJson emits:
/// one object of string / integer / bool / array-of-string values.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  Status Parse(WitnessRecord& record, bool& saw_trace) {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      std::string key;
      COMPTX_RETURN_IF_ERROR(ParseString(key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      COMPTX_RETURN_IF_ERROR(ParseValue(key, record, saw_trace));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

 private:
  Status ParseValue(const std::string& key, WitnessRecord& record,
                    bool& saw_trace) {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    const char c = text_[pos_];
    if (c == '"') {
      std::string value;
      COMPTX_RETURN_IF_ERROR(ParseString(value));
      if (key == "id") record.id = value;
      else if (key == "check") record.check = value;
      else if (key == "detail") record.detail = value;
      else if (key == "injected") record.injected = value;
      else if (key == "generator") record.generator = value;
      return Status::OK();
    }
    if (c == '[') {
      std::vector<std::string> lines;
      COMPTX_RETURN_IF_ERROR(ParseStringArray(lines));
      if (key == "commuting") {
        record.commuting = std::move(lines);
        return Status::OK();
      }
      if (key != "trace") return Status::OK();
      saw_trace = true;
      record.events.clear();
      for (size_t i = 0; i < lines.size(); ++i) {
        // Reuse the trace parser by wrapping the line in a one-event body.
        auto events = workload::ParseTraceEvents(
            StrCat("comptx-trace v1\n", lines[i], "\nend\n"));
        if (!events.ok() || events->size() != 1) {
          return Error(StrCat("trace element ", i + 1, " ('", lines[i],
                              "') is not one trace event"));
        }
        record.events.push_back(std::move((*events)[0]));
      }
      return Status::OK();
    }
    if (c == 't' || c == 'f') {
      const bool value = c == 't';
      const char* word = value ? "true" : "false";
      if (text_.compare(pos_, value ? 4 : 5, word) != 0) {
        return Error("malformed literal");
      }
      pos_ += value ? 4 : 5;
      if (key == "comp_c") record.comp_c = value;
      return Status::OK();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      uint64_t value = 0;
      bool negative = c == '-';
      if (negative) ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
      if (!negative) {
        if (key == "seed") record.seed = value;
        else if (key == "events_initial") record.events_initial = value;
        else if (key == "events_final") record.events_final = value;
      }
      return Status::OK();
    }
    return Error(StrCat("unsupported value for key '", key, "'"));
  }

  Status ParseString(std::string& out) {
    SkipSpace();
    if (!Consume('"')) return Error("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default:
            return Error(StrCat("unsupported escape '\\", e, "'"));
        }
        continue;
      }
      out += c;
    }
    return Error("unterminated string");
  }

  Status ParseStringArray(std::vector<std::string>& out) {
    SkipSpace();
    if (!Consume('[')) return Error("expected '['");
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      std::string element;
      COMPTX_RETURN_IF_ERROR(ParseString(element));
      out.push_back(std::move(element));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrCat("witness JSON, offset ", pos_, ": ", what));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string FormatWitnessJson(const WitnessRecord& record) {
  std::string out = "{\n";
  auto field = [&](const char* key, const std::string& value) {
    out += StrCat("  \"", key, "\": ");
    AppendEscaped(out, value);
    out += ",\n";
  };
  out += "  \"comptx_witness\": 1,\n";
  field("id", record.id);
  out += StrCat("  \"seed\": ", record.seed, ",\n");
  field("check", record.check);
  field("detail", record.detail);
  field("injected", record.injected);
  field("generator", record.generator);
  out += StrCat("  \"comp_c\": ", record.comp_c ? "true" : "false", ",\n");
  out += StrCat("  \"events_initial\": ", record.events_initial, ",\n");
  out += StrCat("  \"events_final\": ", record.events_final, ",\n");
  if (!record.commuting.empty()) {
    out += "  \"commuting\": [\n";
    for (size_t i = 0; i < record.commuting.size(); ++i) {
      out += "    ";
      AppendEscaped(out, record.commuting[i]);
      out += i + 1 < record.commuting.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  out += "  \"trace\": [\n";
  for (size_t i = 0; i < record.events.size(); ++i) {
    out += "    ";
    AppendEscaped(out, workload::FormatTraceEvent(record.events[i]));
    out += i + 1 < record.events.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

StatusOr<WitnessRecord> ParseWitnessJson(const std::string& json) {
  WitnessRecord record;
  bool saw_trace = false;
  JsonScanner scanner(json);
  COMPTX_RETURN_IF_ERROR(scanner.Parse(record, saw_trace));
  if (!saw_trace) {
    return Status::InvalidArgument("witness JSON has no \"trace\" array");
  }
  return record;
}

std::optional<InjectedBug> ParseInjectedBug(const std::string& name) {
  if (name == "none") return InjectedBug::kNone;
  if (name == "flip-oracle") return InjectedBug::kFlipOracle;
  if (name == "flip-online") return InjectedBug::kFlipOnline;
  if (name == "flip-criteria") return InjectedBug::kFlipCriteria;
  if (name == "flip-static") return InjectedBug::kFlipStatic;
  if (name == "flip-commutes") return InjectedBug::kFlipCommutes;
  return std::nullopt;
}

StatusOr<ReplayOutcome> ReplayWitness(const WitnessRecord& record) {
  if (record.events.empty()) {
    return Status::InvalidArgument("witness has an empty trace");
  }
  COMPTX_ASSIGN_OR_RETURN(CompositeSystem cs, BuildSystem(record.events));
  ReplayOutcome outcome;
  DifferentialOptions options;
  COMPTX_ASSIGN_OR_RETURN(outcome.report, CheckConformance(cs, options));
  outcome.verdict_matches = outcome.report.comp_c == record.comp_c;
  if (!outcome.report.agreed()) {
    outcome.message = StrCat("deciders disagree on the stored witness: ",
                             outcome.report.Summary());
  } else if (!outcome.verdict_matches) {
    outcome.message = StrCat(
        "verdict regression: recorded comp_c=", record.comp_c ? "true" : "false",
        ", re-check says ", outcome.report.comp_c ? "true" : "false");
  }
  std::optional<InjectedBug> injected = ParseInjectedBug(record.injected);
  if (!injected.has_value()) {
    return Status::InvalidArgument(
        StrCat("unknown injected bug '", record.injected, "'"));
  }
  if (*injected != InjectedBug::kNone) {
    DifferentialOptions with_bug;
    with_bug.inject = *injected;
    COMPTX_ASSIGN_OR_RETURN(DifferentialReport injected_report,
                            CheckConformance(cs, with_bug));
    outcome.injection_detected = false;
    for (const Disagreement& d : injected_report.disagreements) {
      if (record.check.empty() || d.check == record.check) {
        outcome.injection_detected = true;
        break;
      }
    }
    if (!outcome.injection_detected && outcome.message.empty()) {
      outcome.message =
          StrCat("injected bug '", record.injected,
                 "' is no longer detected as '", record.check, "'");
    }
  }
  return outcome;
}

}  // namespace comptx::testing
