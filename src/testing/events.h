#ifndef COMPTX_TESTING_EVENTS_H_
#define COMPTX_TESTING_EVENTS_H_

#include <vector>

#include "core/composite_system.h"
#include "util/rng.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::testing {

/// The event-list view of a composite execution: the harness's canonical
/// representation.  Every fact of a system — schedules, the forest, every
/// conflict and order edge — is one trace event, so "shrink the input"
/// uniformly means "keep a subset of the events" and "perturb the input"
/// means "permute or extend the events".

/// Serializes `cs` into its construction event sequence (SaveTrace order:
/// schedules, nodes in id order, then edges).  Creation-order indices in
/// the events equal the system's ids, so a round trip through BuildSystem
/// reproduces the system bit-for-bit.
StatusOr<std::vector<workload::TraceEvent>> SystemToEvents(
    const CompositeSystem& cs);

/// Replays `events` into a fresh system.  Fails on the first event the
/// typed mutators reject; the result is not implicitly validated.
StatusOr<CompositeSystem> BuildSystem(
    const std::vector<workload::TraceEvent>& events);

/// Projects `events` onto the subset selected by `keep` (parallel to
/// `events`), closing under dependencies: dropping a creation event drops
/// every event that (transitively) references the dead schedule or node —
/// a dropped transaction takes its whole subtree and all incident edges
/// with it.  Creation-order indices in the surviving events are remapped
/// to the new, denser numbering.
std::vector<workload::TraceEvent> FilterEvents(
    const std::vector<workload::TraceEvent>& events,
    const std::vector<bool>& keep);

/// True iff the event at `index` creates an entity (schedule, root, sub or
/// leaf) as opposed to declaring an edge or a commit.
bool IsCreationEvent(const workload::TraceEvent& event);

}  // namespace comptx::testing

#endif  // COMPTX_TESTING_EVENTS_H_
