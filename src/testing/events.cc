#include "testing/events.h"

#include <utility>

#include "util/string_util.h"

namespace comptx::testing {

using workload::TraceEvent;
using workload::TraceEventKind;

StatusOr<std::vector<TraceEvent>> SystemToEvents(const CompositeSystem& cs) {
  COMPTX_ASSIGN_OR_RETURN(std::string text, workload::SaveTrace(cs));
  return workload::ParseTraceEvents(text);
}

StatusOr<CompositeSystem> BuildSystem(const std::vector<TraceEvent>& events) {
  CompositeSystem cs;
  for (size_t i = 0; i < events.size(); ++i) {
    Status status = workload::ApplyTraceEvent(cs, events[i]);
    if (!status.ok()) {
      return Status::InvalidArgument(
          StrCat("event ", i + 1, " (", workload::FormatTraceEvent(events[i]),
                 "): ", status.message()));
    }
  }
  return cs;
}

bool IsCreationEvent(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kSchedule:
    case TraceEventKind::kRoot:
    case TraceEventKind::kSub:
    case TraceEventKind::kLeaf:
      return true;
    default:
      return false;
  }
}

std::vector<TraceEvent> FilterEvents(const std::vector<TraceEvent>& events,
                                     const std::vector<bool>& keep) {
  // Creation-order maps from old indices to the dense new numbering;
  // kInvalidIndex marks a dropped (or never-created) entity.
  std::vector<uint32_t> sched_map;
  std::vector<uint32_t> node_map;
  std::vector<uint32_t> adt_map;
  std::vector<uint32_t> class_map;
  uint32_t next_sched = 0;
  uint32_t next_node = 0;
  uint32_t next_adt = 0;
  uint32_t next_class = 0;
  auto sched_ok = [&](uint32_t s) {
    return s < sched_map.size() && sched_map[s] != kInvalidIndex;
  };
  auto node_ok = [&](uint32_t v) {
    return v < node_map.size() && node_map[v] != kInvalidIndex;
  };
  auto adt_ok = [&](uint32_t a) {
    return a < adt_map.size() && adt_map[a] != kInvalidIndex;
  };
  auto class_ok = [&](uint32_t c) {
    return c < class_map.size() && class_map[c] != kInvalidIndex;
  };

  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    bool kept = i < keep.size() ? static_cast<bool>(keep[i]) : true;
    TraceEvent r = e;
    switch (e.kind) {
      case TraceEventKind::kSchedule:
        sched_map.push_back(kept ? next_sched : kInvalidIndex);
        if (!kept) continue;
        ++next_sched;
        break;
      case TraceEventKind::kRoot:
        kept = kept && sched_ok(e.schedule);
        node_map.push_back(kept ? next_node : kInvalidIndex);
        if (!kept) continue;
        r.schedule = sched_map[e.schedule];
        ++next_node;
        break;
      case TraceEventKind::kSub:
        kept = kept && sched_ok(e.schedule) && node_ok(e.parent);
        node_map.push_back(kept ? next_node : kInvalidIndex);
        if (!kept) continue;
        r.schedule = sched_map[e.schedule];
        r.parent = node_map[e.parent];
        ++next_node;
        break;
      case TraceEventKind::kLeaf:
        kept = kept && node_ok(e.parent);
        node_map.push_back(kept ? next_node : kInvalidIndex);
        if (!kept) continue;
        r.parent = node_map[e.parent];
        ++next_node;
        break;
      case TraceEventKind::kConflict:
      case TraceEventKind::kWeakOutput:
      case TraceEventKind::kStrongOutput:
        if (!kept || !node_ok(e.a) || !node_ok(e.b)) continue;
        r.a = node_map[e.a];
        r.b = node_map[e.b];
        break;
      case TraceEventKind::kWeakInput:
      case TraceEventKind::kStrongInput:
        if (!kept || !sched_ok(e.schedule) || !node_ok(e.a) || !node_ok(e.b)) {
          continue;
        }
        r.schedule = sched_map[e.schedule];
        r.a = node_map[e.a];
        r.b = node_map[e.b];
        break;
      case TraceEventKind::kIntraWeak:
      case TraceEventKind::kIntraStrong:
        if (!kept || !node_ok(e.parent) || !node_ok(e.a) || !node_ok(e.b)) {
          continue;
        }
        r.parent = node_map[e.parent];
        r.a = node_map[e.a];
        r.b = node_map[e.b];
        break;
      case TraceEventKind::kCommit:
        if (!kept || !node_ok(e.parent)) continue;
        r.parent = node_map[e.parent];
        break;
      case TraceEventKind::kCommitThrough:
        // The watermark counts roots by creation order, which the dense
        // renumbering changes; dropping the record keeps the filtered
        // trace self-consistent (commit markers never affect verdicts).
        continue;
      case TraceEventKind::kAdtDecl:
        adt_map.push_back(kept ? next_adt : kInvalidIndex);
        if (!kept) continue;
        ++next_adt;
        break;
      case TraceEventKind::kAdtOp:
        kept = kept && adt_ok(e.a);
        class_map.push_back(kept ? next_class : kInvalidIndex);
        if (!kept) continue;
        r.a = adt_map[e.a];
        ++next_class;
        break;
      case TraceEventKind::kCommute:
      case TraceEventKind::kClash:
        if (!kept || !class_ok(e.a) || !class_ok(e.b)) continue;
        r.a = class_map[e.a];
        r.b = class_map[e.b];
        break;
      case TraceEventKind::kTag:
        if (!kept || !node_ok(e.parent) || !class_ok(e.a)) continue;
        r.parent = node_map[e.parent];
        r.a = class_map[e.a];
        break;
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace comptx::testing
