#ifndef COMPTX_TESTING_SHRINK_H_
#define COMPTX_TESTING_SHRINK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/composite_system.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::testing {

/// Decides whether a candidate system still exhibits the failure being
/// minimized.  Called on systems rebuilt from shrunk event lists; the
/// predicate must treat malformed/invalid systems as *not* failing (the
/// differential predicates do: CheckConformance turns validation failures
/// into Status errors).
using FailurePredicate = std::function<bool(const CompositeSystem&)>;

struct ShrinkOptions {
  /// Hard cap on predicate invocations (a predicate runs every decider, so
  /// this bounds total shrink cost).
  uint32_t max_predicate_calls = 20000;

  /// Cap on full shrink rounds (each round runs every pass once).
  uint32_t max_rounds = 16;
};

struct ShrinkStats {
  size_t initial_events = 0;
  size_t final_events = 0;
  uint32_t rounds = 0;
  uint32_t predicate_calls = 0;
  uint32_t accepted_steps = 0;
  /// True when the result is 1-minimal at event granularity: no single
  /// event (with its dependency closure) can be dropped without losing the
  /// failure.  False only when a budget cap cut the search short.
  bool one_minimal = false;
};

/// Delta-debugs `events` down to a small failure-preserving core:
///
///   1. root pass — drop whole root transactions (their subtree and every
///      incident edge follow via dependency closure);
///   2. ddmin chunk pass — drop contiguous event chunks of halving sizes;
///   3. pair pass — drop all edge events sharing one endpoint pair at once
///      (a conflict is only droppable together with the output orders
///      Def 3.1 forces on it, and vice versa);
///   4. single-event pass — drop events one at a time until 1-minimal.
///
/// Every candidate is rebuilt, and kept only if it still builds and
/// `still_fails` holds; passes repeat until a fixpoint.  Requires
/// `still_fails` to hold on the input (InvalidArgument otherwise).
StatusOr<std::vector<workload::TraceEvent>> ShrinkEvents(
    std::vector<workload::TraceEvent> events,
    const FailurePredicate& still_fails, const ShrinkOptions& options = {},
    ShrinkStats* stats = nullptr);

}  // namespace comptx::testing

#endif  // COMPTX_TESTING_SHRINK_H_
