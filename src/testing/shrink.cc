#include "testing/shrink.h"

#include <algorithm>
#include <map>
#include <utility>

#include "testing/events.h"

namespace comptx::testing {

using workload::TraceEvent;
using workload::TraceEventKind;

namespace {

class Shrinker {
 public:
  Shrinker(std::vector<TraceEvent> events, const FailurePredicate& fails,
           const ShrinkOptions& options)
      : fails_(fails), options_(options), current_(std::move(events)) {
    stats_.initial_events = current_.size();
  }

  StatusOr<std::vector<TraceEvent>> Run() {
    {
      auto system = BuildSystem(current_);
      ++stats_.predicate_calls;
      if (!system.ok() || !fails_(*system)) {
        return Status::InvalidArgument(
            "shrink input does not exhibit the failure");
      }
    }
    bool changed = true;
    while (changed && stats_.rounds < options_.max_rounds && !Exhausted()) {
      ++stats_.rounds;
      changed = false;
      changed |= RootPass();
      changed |= ChunkPass();
      changed |= PairPass();
      changed |= SingleEventPass();
    }
    // The result is 1-minimal iff a full single-event sweep just ran to
    // completion without dropping anything (the last iteration of the loop
    // above ends with exactly that when changed == false).
    stats_.one_minimal = !changed && !Exhausted();
    stats_.final_events = current_.size();
    return std::move(current_);
  }

  const ShrinkStats& stats() const { return stats_; }

 private:
  bool Exhausted() const {
    return stats_.predicate_calls >= options_.max_predicate_calls;
  }

  /// Filters `current_` through `keep`; adopts the candidate iff it is
  /// strictly smaller, still builds, and still fails.
  bool Try(const std::vector<bool>& keep) {
    if (Exhausted()) return false;
    std::vector<TraceEvent> candidate = FilterEvents(current_, keep);
    if (candidate.size() >= current_.size()) return false;
    // Never shrink to the empty trace: an empty witness cannot be stored
    // or replayed, and "the empty input fails" only happens for verdict-
    // polarity bugs where the 1-event core is the meaningful minimum.
    if (candidate.empty()) return false;
    auto system = BuildSystem(candidate);
    if (!system.ok()) return false;
    ++stats_.predicate_calls;
    if (!fails_(*system)) return false;
    current_ = std::move(candidate);
    ++stats_.accepted_steps;
    return true;
  }

  bool TryDropRange(size_t begin, size_t end) {
    std::vector<bool> keep(current_.size(), true);
    for (size_t i = begin; i < end && i < keep.size(); ++i) keep[i] = false;
    return Try(keep);
  }

  bool TryDropSet(const std::vector<size_t>& indices) {
    std::vector<bool> keep(current_.size(), true);
    for (size_t i : indices) {
      if (i < keep.size()) keep[i] = false;
    }
    return Try(keep);
  }

  /// Drops whole root transactions, largest-index first.  Dropping a root
  /// event takes its entire subtree and every incident edge with it, so
  /// this pass does most of the semantic shrinking.
  bool RootPass() {
    bool changed = false;
    // Descending stream positions: dependency closure only ever removes
    // events *after* the dropped one, so earlier positions stay valid.
    for (size_t i = current_.size(); i-- > 0;) {
      if (i >= current_.size()) i = current_.size() - 1;
      if (current_[i].kind != TraceEventKind::kRoot) continue;
      if (TryDropRange(i, i + 1)) changed = true;
    }
    return changed;
  }

  /// ddmin-style: drop contiguous chunks of halving sizes.
  bool ChunkPass() {
    bool changed = false;
    for (size_t size = (current_.size() + 1) / 2; size >= 2; size /= 2) {
      size_t pos = 0;
      while (pos < current_.size()) {
        if (TryDropRange(pos, pos + size)) {
          changed = true;  // events shifted down; retry the same position
        } else {
          pos += size;
        }
      }
    }
    return changed;
  }

  /// Groups edge events by their (unordered) operation pair and tries to
  /// drop each group whole: Def 3.1 ties a conflict to the output order
  /// covering it, so neither is droppable alone.
  bool PairPass() {
    bool changed = true;
    bool any = false;
    while (changed && !Exhausted()) {
      changed = false;
      std::map<std::pair<uint32_t, uint32_t>, std::vector<size_t>> groups;
      for (size_t i = 0; i < current_.size(); ++i) {
        const TraceEvent& e = current_[i];
        switch (e.kind) {
          case TraceEventKind::kConflict:
          case TraceEventKind::kWeakOutput:
          case TraceEventKind::kStrongOutput:
          case TraceEventKind::kWeakInput:
          case TraceEventKind::kStrongInput:
          case TraceEventKind::kIntraWeak:
          case TraceEventKind::kIntraStrong:
            groups[{std::min(e.a, e.b), std::max(e.a, e.b)}].push_back(i);
            break;
          default:
            break;
        }
      }
      for (const auto& [pair, indices] : groups) {
        if (indices.size() < 2) continue;  // single events: SingleEventPass
        if (TryDropSet(indices)) {
          changed = true;
          any = true;
          break;  // indices are stale after an accepted drop; regroup
        }
      }
    }
    return any;
  }

  /// Drops events one at a time (descending) until a full sweep drops
  /// nothing — 1-minimality at event granularity.
  bool SingleEventPass() {
    bool any = false;
    bool changed = true;
    while (changed && !Exhausted()) {
      changed = false;
      for (size_t i = current_.size(); i-- > 0;) {
        if (i >= current_.size()) i = current_.size() - 1;
        if (TryDropRange(i, i + 1)) {
          changed = true;
          any = true;
        }
      }
    }
    return any;
  }

  const FailurePredicate& fails_;
  const ShrinkOptions options_;
  std::vector<TraceEvent> current_;
  ShrinkStats stats_;
};

}  // namespace

StatusOr<std::vector<TraceEvent>> ShrinkEvents(
    std::vector<TraceEvent> events, const FailurePredicate& still_fails,
    const ShrinkOptions& options, ShrinkStats* stats) {
  Shrinker shrinker(std::move(events), still_fails, options);
  auto result = shrinker.Run();
  if (stats != nullptr) *stats = shrinker.stats();
  return result;
}

}  // namespace comptx::testing
