#ifndef COMPTX_TESTING_WITNESS_H_
#define COMPTX_TESTING_WITNESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::testing {

/// A minimized counterexample, replayable from its JSON form: the shrunk
/// event trace plus everything needed to reproduce the campaign run that
/// found it (seed, generator parameters, injected bug) and the expected
/// verdict for regression checking.
struct WitnessRecord {
  std::string id;          // stable file-name-friendly identifier
  uint64_t seed = 0;       // campaign trace seed that produced it
  std::string check;       // disagreement kind ("batch-vs-oracle", ...)
  std::string detail;      // human-readable diagnosis at discovery time
  std::string injected = "none";  // InjectedBugToString of the campaign run
  std::string generator;   // workload spec summary
  bool comp_c = false;     // batch verdict of the minimized system
  uint64_t events_initial = 0;  // events before shrinking
  uint64_t events_final = 0;    // events after shrinking
  std::vector<workload::TraceEvent> events;  // the minimized trace

  /// Optional commutativity declarations: "<a> <b>" node-index pairs
  /// asserting the two operations commute.  Consumed by the spec linter
  /// (contradiction with declared conflicts is CTX027); absent in records
  /// written before the field existed (the parser ignores unknown keys, so
  /// both directions stay compatible).
  std::vector<std::string> commuting;
};

/// Renders `record` as a pretty-printed JSON document (the corpus file
/// format).  Trace events are stored as one trace line per array element.
std::string FormatWitnessJson(const WitnessRecord& record);

/// Parses a document produced by FormatWitnessJson.  Unknown keys are
/// ignored; missing keys keep their defaults except "trace", which is
/// required.
StatusOr<WitnessRecord> ParseWitnessJson(const std::string& json);

/// Maps an `injected` field back to the enum; nullopt for unknown names.
std::optional<InjectedBug> ParseInjectedBug(const std::string& name);

/// Outcome of re-checking a stored witness.
struct ReplayOutcome {
  /// Conformance report of the un-injected harness on the witness system.
  DifferentialReport report;
  /// True iff the recorded Comp-C verdict still matches.
  bool verdict_matches = false;
  /// For witnesses found under fault injection: true iff re-running with
  /// the same injection still produces a disagreement of the recorded
  /// kind (the harness has not lost its detection power).  Vacuously true
  /// for witnesses recorded without injection.
  bool injection_detected = true;
  std::string message;  // diagnosis when !Passed()

  bool Passed() const {
    return report.agreed() && verdict_matches && injection_detected;
  }
};

/// Rebuilds the witness system and re-checks it: all deciders must agree
/// (with no injection), the recorded verdict must reproduce, and — when
/// the witness was found under fault injection — the injected run must
/// still be caught.  A Status error means the stored trace no longer
/// builds or validates.
StatusOr<ReplayOutcome> ReplayWitness(const WitnessRecord& record);

}  // namespace comptx::testing

#endif  // COMPTX_TESTING_WITNESS_H_
