#include "testing/metamorphic.h"

#include <algorithm>
#include <utility>

#include "core/correctness.h"
#include "online/certifier.h"
#include "testing/events.h"
#include "util/string_util.h"

namespace comptx::testing {

using workload::TraceEvent;
using workload::TraceEventKind;

const char* MetamorphicKindToString(MetamorphicKind kind) {
  switch (kind) {
    case MetamorphicKind::kRename:
      return "rename";
    case MetamorphicKind::kShuffle:
      return "shuffle";
    case MetamorphicKind::kNoOpLeaves:
      return "noop-leaves";
  }
  return "unknown";
}

namespace {

std::vector<TraceEvent> Rename(std::vector<TraceEvent> events, Rng& rng) {
  uint32_t counter = 0;
  for (TraceEvent& e : events) {
    if (!IsCreationEvent(e)) continue;
    // Fresh opaque names; the random tag ensures the new names share no
    // structure with the old ones (and differ across applications).
    e.name = StrCat("x", counter++, "_", rng.UniformInt(1u << 20));
  }
  return events;
}

/// Random dependency-respecting permutation of the events, with all
/// creation-order indices renumbered to the new stream positions.
std::vector<TraceEvent> Shuffle(const std::vector<TraceEvent>& events,
                                Rng& rng) {
  const size_t n = events.size();
  // Creation event index of each schedule / node / ADT / op class (old
  // numbering).
  std::vector<size_t> sched_event;
  std::vector<size_t> node_event;
  std::vector<size_t> adt_event;
  std::vector<size_t> class_event;
  std::vector<std::vector<size_t>> deps(n);
  bool malformed = false;  // forward/out-of-range refs: leave stream as is
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events[i];
    auto dep_sched = [&](uint32_t s) {
      if (s < sched_event.size()) {
        deps[i].push_back(sched_event[s]);
      } else {
        malformed = true;
      }
    };
    auto dep_node = [&](uint32_t v) {
      if (v < node_event.size()) {
        deps[i].push_back(node_event[v]);
      } else {
        malformed = true;
      }
    };
    auto dep_adt = [&](uint32_t a) {
      if (a < adt_event.size()) {
        deps[i].push_back(adt_event[a]);
      } else {
        malformed = true;
      }
    };
    auto dep_class = [&](uint32_t c) {
      if (c < class_event.size()) {
        deps[i].push_back(class_event[c]);
      } else {
        malformed = true;
      }
    };
    switch (e.kind) {
      case TraceEventKind::kSchedule:
        sched_event.push_back(i);
        break;
      case TraceEventKind::kRoot:
        dep_sched(e.schedule);
        node_event.push_back(i);
        break;
      case TraceEventKind::kSub:
        dep_node(e.parent);
        dep_sched(e.schedule);
        node_event.push_back(i);
        break;
      case TraceEventKind::kLeaf:
        dep_node(e.parent);
        node_event.push_back(i);
        break;
      case TraceEventKind::kConflict:
      case TraceEventKind::kWeakOutput:
      case TraceEventKind::kStrongOutput:
        dep_node(e.a);
        dep_node(e.b);
        break;
      case TraceEventKind::kWeakInput:
      case TraceEventKind::kStrongInput:
        dep_sched(e.schedule);
        dep_node(e.a);
        dep_node(e.b);
        break;
      case TraceEventKind::kIntraWeak:
      case TraceEventKind::kIntraStrong:
        dep_node(e.parent);
        dep_node(e.a);
        dep_node(e.b);
        break;
      case TraceEventKind::kCommit:
        dep_node(e.parent);
        break;
      case TraceEventKind::kCommitThrough:
        // The watermark counts roots in stream order, which a shuffle
        // rewrites; there is no renumbering that preserves its meaning,
        // so leave such traces unshuffled.
        malformed = true;
        break;
      case TraceEventKind::kAdtDecl:
        adt_event.push_back(i);
        break;
      case TraceEventKind::kAdtOp:
        dep_adt(e.a);
        class_event.push_back(i);
        break;
      case TraceEventKind::kCommute:
      case TraceEventKind::kClash:
        dep_class(e.a);
        dep_class(e.b);
        break;
      case TraceEventKind::kTag:
        dep_node(e.parent);
        dep_class(e.a);
        break;
    }
  }

  if (malformed) return events;

  // Randomized Kahn: repeatedly emit a uniformly chosen ready event.
  std::vector<uint32_t> indegree(n, 0);
  std::vector<std::vector<size_t>> dependents(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d : deps[i]) {
      dependents[d].push_back(i);
      ++indegree[i];
    }
  }
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const size_t pick = static_cast<size_t>(rng.UniformInt(ready.size()));
    const size_t i = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    order.push_back(i);
    for (size_t j : dependents[i]) {
      if (--indegree[j] == 0) ready.push_back(j);
    }
  }
  if (order.size() != n) return events;  // malformed refs; leave unchanged

  // Re-emit in the new order, renumbering creation indices.
  std::vector<uint32_t> sched_map(sched_event.size(), kInvalidIndex);
  std::vector<uint32_t> node_map(node_event.size(), kInvalidIndex);
  std::vector<uint32_t> adt_map(adt_event.size(), kInvalidIndex);
  std::vector<uint32_t> class_map(class_event.size(), kInvalidIndex);
  // Old creation index of each creation event (inverse of *_event).
  std::vector<uint32_t> sched_of_event(n, kInvalidIndex);
  std::vector<uint32_t> node_of_event(n, kInvalidIndex);
  std::vector<uint32_t> adt_of_event(n, kInvalidIndex);
  std::vector<uint32_t> class_of_event(n, kInvalidIndex);
  for (size_t s = 0; s < sched_event.size(); ++s) {
    sched_of_event[sched_event[s]] = static_cast<uint32_t>(s);
  }
  for (size_t v = 0; v < node_event.size(); ++v) {
    node_of_event[node_event[v]] = static_cast<uint32_t>(v);
  }
  for (size_t a = 0; a < adt_event.size(); ++a) {
    adt_of_event[adt_event[a]] = static_cast<uint32_t>(a);
  }
  for (size_t c = 0; c < class_event.size(); ++c) {
    class_of_event[class_event[c]] = static_cast<uint32_t>(c);
  }
  uint32_t next_sched = 0;
  uint32_t next_node = 0;
  uint32_t next_adt = 0;
  uint32_t next_class = 0;
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (size_t i : order) {
    TraceEvent r = events[i];
    if (sched_of_event[i] != kInvalidIndex) {
      sched_map[sched_of_event[i]] = next_sched++;
    }
    if (node_of_event[i] != kInvalidIndex) {
      node_map[node_of_event[i]] = next_node++;
    }
    if (adt_of_event[i] != kInvalidIndex) {
      adt_map[adt_of_event[i]] = next_adt++;
    }
    if (class_of_event[i] != kInvalidIndex) {
      class_map[class_of_event[i]] = next_class++;
    }
    // The spec kinds index ADTs and classes, not nodes, so they bypass the
    // generic node renumbering below (kTag's b is a literal instance).
    switch (r.kind) {
      case TraceEventKind::kAdtDecl:
        out.push_back(std::move(r));
        continue;
      case TraceEventKind::kAdtOp:
        r.a = adt_map[r.a];
        out.push_back(std::move(r));
        continue;
      case TraceEventKind::kCommute:
      case TraceEventKind::kClash:
        r.a = class_map[r.a];
        r.b = class_map[r.b];
        out.push_back(std::move(r));
        continue;
      case TraceEventKind::kTag:
        r.parent = node_map[r.parent];
        r.a = class_map[r.a];
        out.push_back(std::move(r));
        continue;
      default:
        break;
    }
    switch (r.kind) {
      case TraceEventKind::kRoot:
      case TraceEventKind::kSub:
      case TraceEventKind::kWeakInput:
      case TraceEventKind::kStrongInput:
        r.schedule = sched_map[r.schedule];
        break;
      default:
        break;
    }
    if (r.parent != kInvalidIndex && r.kind != TraceEventKind::kSchedule &&
        r.kind != TraceEventKind::kRoot) {
      r.parent = node_map[r.parent];
    }
    if (r.a != kInvalidIndex) r.a = node_map[r.a];
    if (r.b != kInvalidIndex) r.b = node_map[r.b];
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<TraceEvent> AddNoOpLeaves(std::vector<TraceEvent> events,
                                      Rng& rng, uint32_t count) {
  // Node indices of transactions (roots and subtransactions).  Def 3.3
  // makes a leaf under a strongly-input-ordered transaction *not* a no-op
  // (every operation pair across the strong pair must be strongly
  // output-ordered), so those transactions are excluded.
  std::vector<uint32_t> transactions;
  std::vector<bool> strongly_ordered;  // node index -> endpoint of strong_in
  uint32_t next_node = 0;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kRoot:
      case TraceEventKind::kSub:
        transactions.push_back(next_node++);
        break;
      case TraceEventKind::kLeaf:
        ++next_node;
        break;
      case TraceEventKind::kStrongInput:
        if (std::max(e.a, e.b) >= strongly_ordered.size()) {
          strongly_ordered.resize(std::max(e.a, e.b) + 1, false);
        }
        strongly_ordered[e.a] = true;
        strongly_ordered[e.b] = true;
        break;
      default:
        break;
    }
  }
  std::erase_if(transactions, [&](uint32_t t) {
    return t < strongly_ordered.size() && strongly_ordered[t];
  });
  if (transactions.empty()) return events;
  for (uint32_t k = 0; k < count; ++k) {
    TraceEvent e;
    e.kind = TraceEventKind::kLeaf;
    e.parent = transactions[rng.UniformInt(transactions.size())];
    e.name = StrCat("noop", k, "_", rng.UniformInt(1u << 20));
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace

std::vector<TraceEvent> ApplyMetamorphic(
    MetamorphicKind kind, const std::vector<TraceEvent>& events, Rng& rng,
    uint32_t noop_count) {
  switch (kind) {
    case MetamorphicKind::kRename:
      return Rename(events, rng);
    case MetamorphicKind::kShuffle:
      return Shuffle(events, rng);
    case MetamorphicKind::kNoOpLeaves:
      return AddNoOpLeaves(events, rng, noop_count);
  }
  return events;
}

StatusOr<std::vector<Disagreement>> CheckMetamorphic(
    const CompositeSystem& cs, bool base_comp_c,
    const MetamorphicOptions& options, uint64_t seed) {
  COMPTX_ASSIGN_OR_RETURN(std::vector<TraceEvent> events, SystemToEvents(cs));
  std::vector<Disagreement> out;
  std::vector<MetamorphicKind> kinds;
  if (options.rename) kinds.push_back(MetamorphicKind::kRename);
  if (options.shuffle) kinds.push_back(MetamorphicKind::kShuffle);
  if (options.noop_leaves) kinds.push_back(MetamorphicKind::kNoOpLeaves);
  for (MetamorphicKind kind : kinds) {
    const std::string check =
        StrCat("metamorphic-", MetamorphicKindToString(kind));
    Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (uint64_t(kind) + 1)));
    std::vector<TraceEvent> transformed =
        ApplyMetamorphic(kind, events, rng, options.noop_count);
    auto system = BuildSystem(transformed);
    if (!system.ok()) {
      out.push_back({check, StrCat("transformed stream fails to build: ",
                                   system.status().message())});
      continue;
    }
    Status valid = system->Validate();
    if (!valid.ok()) {
      out.push_back({check, StrCat("transform broke validity: ",
                                   valid.message())});
      continue;
    }
    auto verdict = CheckCompC(*system);
    if (!verdict.ok()) {
      out.push_back({check, StrCat("batch check failed on transformed "
                                   "system: ",
                                   verdict.status().message())});
      continue;
    }
    if (verdict->correct != base_comp_c) {
      out.push_back(
          {check, StrCat("verdict not invariant: base is ",
                         base_comp_c ? "correct" : "incorrect",
                         ", transformed is ",
                         verdict->correct ? "correct" : "incorrect")});
      continue;
    }
    if (kind == MetamorphicKind::kShuffle) {
      // The permuted stream must also certify to the same final verdict
      // online (replay-order independence of the incremental engine).
      online::Certifier certifier;
      bool rejected = false;
      for (const TraceEvent& e : transformed) {
        if (!certifier.Ingest(e).ok()) {
          rejected = true;
          break;
        }
      }
      if (rejected) {
        out.push_back({check, "online certifier rejected an event of the "
                              "permuted stream"});
      } else if (certifier.Certifiable() != base_comp_c) {
        out.push_back(
            {check,
             StrCat("online verdict on permuted stream is ",
                    certifier.Certifiable() ? "correct" : "incorrect",
                    ", base is ", base_comp_c ? "correct" : "incorrect")});
      }
    }
  }
  return out;
}

}  // namespace comptx::testing
