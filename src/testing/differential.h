#ifndef COMPTX_TESTING_DIFFERENTIAL_H_
#define COMPTX_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/composite_system.h"
#include "util/status_or.h"

namespace comptx::testing {

/// Test-only fault injection: flips one decider's verdict so the harness
/// (and its tests) can prove that a real bug in that decider would be
/// detected, shrunk and reported.  Never enabled outside tests/CLI flags.
enum class InjectedBug : uint8_t {
  kNone,
  /// Negate the hierarchical oracle's verdict.
  kFlipOracle,
  /// Negate the online certifier's final verdict.
  kFlipOnline,
  /// Negate the SCC/FCC/JCC verdict on applicable configurations.
  kFlipCriteria,
  /// Negate the static analyzer's SAFE/UNSAFE verdict when it decides.
  kFlipStatic,
  /// Corrupt the semantic conflict layer: keep one conflict pair the
  /// attached spec erases, simulating a decider that consults raw bits
  /// where EffectiveConflict applies.  Only bites on systems with a spec
  /// that masks at least one load-bearing pair.
  kFlipCommutes,
};

const char* InjectedBugToString(InjectedBug bug);

struct DifferentialOptions {
  /// Cross-check the online certifier's final verdict against batch.
  bool check_online = true;

  /// Cross-check the hierarchical-demand oracle (soundness everywhere,
  /// exact agreement on single-meet configurations).
  bool check_oracle = true;

  /// Cross-check SCC/FCC/JCC against Comp-C on stack/fork/join shapes
  /// (Theorems 2-4).
  bool check_criteria = true;

  /// Cross-check the static configuration analyzer: whenever it decides
  /// (SAFE or UNSAFE — exact verdicts, never conservative), the verdict
  /// must match the batch reduction.
  bool check_static = true;

  /// Cross-check the semantic conflict layer on spec-carrying systems:
  /// materialize the spec's erasure into raw conflict bits (drop every
  /// declared pair the spec proves commuting), detach the spec, and
  /// re-run the batch reduction.  EffectiveConflict is definitionally
  /// this masking, so the verdicts must be identical.
  bool check_semantics = true;

  /// Verify the serial witness of an accepted execution (Theorem 1 "if"):
  /// the serial front it induces must be serial and level-N-contain the
  /// final front.
  bool check_witness = true;

  /// When > 0 and the event stream has at most this many events, also
  /// cross-check the online verdict after *every* prefix against
  /// BatchPrefixVerdicts (quadratic in the stream length; keep small).
  uint32_t prefix_event_limit = 0;

  InjectedBug inject = InjectedBug::kNone;
};

/// One detected disagreement between two deciders (or a broken internal
/// invariant of one of them).  `check` is a stable machine-readable kind
/// ("batch-vs-online", "batch-vs-oracle", "batch-vs-scc", ...); `detail`
/// is the human-readable diagnosis.
struct Disagreement {
  std::string check;
  std::string detail;
};

/// Outcome of one differential conformance run over a single system.
struct DifferentialReport {
  /// The batch reduction's verdict — the reference all others are held to.
  bool comp_c = false;
  uint32_t order = 0;
  std::vector<Disagreement> disagreements;

  bool agreed() const { return disagreements.empty(); }
  /// "check: detail; check: detail" (empty when agreed).
  std::string Summary() const;
};

/// Runs every enabled decider on `cs` and reports any disagreement:
///
///   * batch RunReduction/CheckCompC (the reference verdict),
///   * the serial-front witness check of Theorem 1,
///   * the online Certifier fed the system's event stream (final verdict,
///     optionally every prefix verdict),
///   * the hierarchical-demand oracle (criteria/oracle.h),
///   * the SCC/FCC/JCC criteria on their configurations (Theorems 2-4).
///
/// A Status error means malformed input (validation failure); verdict
/// disagreements are reported through the result, never as errors.
StatusOr<DifferentialReport> CheckConformance(
    const CompositeSystem& cs, const DifferentialOptions& options = {});

}  // namespace comptx::testing

#endif  // COMPTX_TESTING_DIFFERENTIAL_H_
