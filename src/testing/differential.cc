#include "testing/differential.h"

#include <algorithm>

#include "analysis/sweep.h"
#include "core/correctness.h"
#include "core/serial_front.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/oracle.h"
#include "criteria/scc.h"
#include "online/certifier.h"
#include "staticcheck/analyzer.h"
#include "testing/events.h"
#include "util/string_util.h"
#include "workload/trace.h"

namespace comptx::testing {

const char* InjectedBugToString(InjectedBug bug) {
  switch (bug) {
    case InjectedBug::kNone:
      return "none";
    case InjectedBug::kFlipOracle:
      return "flip-oracle";
    case InjectedBug::kFlipOnline:
      return "flip-online";
    case InjectedBug::kFlipCriteria:
      return "flip-criteria";
    case InjectedBug::kFlipStatic:
      return "flip-static";
    case InjectedBug::kFlipCommutes:
      return "flip-commutes";
  }
  return "unknown";
}

std::string DifferentialReport::Summary() const {
  std::string out;
  for (const Disagreement& d : disagreements) {
    if (!out.empty()) out += "; ";
    out += StrCat(d.check, ": ", d.detail);
  }
  return out;
}

namespace {

const char* Verdict(bool b) { return b ? "correct" : "incorrect"; }

/// Theorem 1 "if" direction on the accepted execution: the witness must be
/// a permutation of the roots whose serial front level-N-contains the
/// reduced one.
void CheckSerialWitness(const CompositeSystem& cs, const CompCResult& batch,
                        DifferentialReport& report) {
  auto add = [&](std::string detail) {
    report.disagreements.push_back(
        {"batch-vs-serial-front", std::move(detail)});
  };
  std::vector<NodeId> roots = cs.Roots();
  std::vector<NodeId> witness = batch.serial_order;
  std::sort(roots.begin(), roots.end());
  std::sort(witness.begin(), witness.end());
  if (roots != witness) {
    add("serial witness is not a permutation of the roots");
    return;
  }
  const Front& final_front = batch.reduction.FinalFront();
  Front serial = MakeSerialFront(final_front, batch.serial_order);
  if (!IsSerialFront(serial)) {
    add("witness-induced front is not serial (Def 17)");
  } else if (!LevelContains(serial, final_front)) {
    add("serial front does not level-N-contain the final front (Def 19)");
  }
}

void CheckOnline(const CompositeSystem& cs, const CompCResult& batch,
                 const DifferentialOptions& options,
                 DifferentialReport& report) {
  auto events = SystemToEvents(cs);
  if (!events.ok()) {
    report.disagreements.push_back(
        {"online-ingest",
         StrCat("trace serialization failed: ", events.status().message())});
    return;
  }
  // One Certifier per trace is the supported granularity, not a missed
  // reuse: a certifier is a single-execution session (its composite
  // system is append-only, so feeding it a second trace would certify the
  // union).  Long-lived multi-trace serving reuses contexts one level up
  // instead — service::SessionManager keeps one session per execution and
  // reuses the server's queues, workers and metrics across all of them.
  online::Certifier certifier;
  std::vector<bool> online_verdicts;
  online_verdicts.reserve(events->size());
  for (size_t i = 0; i < events->size(); ++i) {
    Status status = certifier.Ingest((*events)[i]);
    if (!status.ok()) {
      report.disagreements.push_back(
          {"online-ingest",
           StrCat("event ", i + 1, " (",
                  workload::FormatTraceEvent((*events)[i]),
                  ") of a valid system rejected: ", status.message())});
      return;
    }
    online_verdicts.push_back(certifier.Certifiable());
  }
  bool final_verdict = certifier.Certifiable();
  if (options.inject == InjectedBug::kFlipOnline) {
    final_verdict = !final_verdict;
    if (!online_verdicts.empty()) {
      online_verdicts.back() = final_verdict;
    }
  }
  if (final_verdict != batch.correct) {
    report.disagreements.push_back(
        {"batch-vs-online",
         StrCat("batch says ", Verdict(batch.correct), ", online says ",
                Verdict(final_verdict))});
    return;
  }
  if (options.prefix_event_limit == 0 ||
      events->size() > options.prefix_event_limit) {
    return;
  }
  ReductionOptions reduction;
  reduction.keep_fronts = false;
  auto prefix = analysis::BatchPrefixVerdicts(*events, reduction);
  if (!prefix.ok()) {
    report.disagreements.push_back(
        {"batch-prefix",
         StrCat("batch prefix checker failed on accepted events: ",
                prefix.status().message())});
    return;
  }
  for (size_t i = 0; i < events->size(); ++i) {
    if ((*prefix)[i] != online_verdicts[i]) {
      report.disagreements.push_back(
          {"batch-vs-online-prefix",
           StrCat("prefix ", i + 1, " (",
                  workload::FormatTraceEvent((*events)[i]), "): batch says ",
                  Verdict((*prefix)[i]), ", online says ",
                  Verdict(online_verdicts[i]))});
      return;
    }
  }
}

Status CheckOracle(const CompositeSystem& cs, const CompCResult& batch,
                   const DifferentialOptions& options, bool single_meet,
                   DifferentialReport& report) {
  COMPTX_ASSIGN_OR_RETURN(bool oracle,
                          criteria::HierarchicalSerializabilityOracle(cs));
  if (options.inject == InjectedBug::kFlipOracle) oracle = !oracle;
  if (batch.correct && !oracle) {
    report.disagreements.push_back(
        {"batch-vs-oracle",
         "Comp-C accepted but the oracle finds no serial forest execution "
         "(soundness violation)"});
  } else if (single_meet && oracle != batch.correct) {
    report.disagreements.push_back(
        {"batch-vs-oracle",
         StrCat("single-meet configuration: batch says ",
                Verdict(batch.correct), ", oracle says ", Verdict(oracle))});
  }
  return Status::OK();
}

Status CheckCriteria(const CompositeSystem& cs, const CompCResult& batch,
                     const DifferentialOptions& options, bool is_stack,
                     bool is_fork, bool is_join, DifferentialReport& report) {
  const bool flip = options.inject == InjectedBug::kFlipCriteria;
  auto compare = [&](const char* check, const char* theorem,
                     bool verdict) {
    if (flip) verdict = !verdict;
    if (verdict != batch.correct) {
      report.disagreements.push_back(
          {check, StrCat(theorem, " violated: batch says ",
                         Verdict(batch.correct), ", criterion says ",
                         Verdict(verdict))});
    }
  };
  if (is_stack) {
    COMPTX_ASSIGN_OR_RETURN(bool scc, criteria::IsStackConflictConsistent(cs));
    compare("batch-vs-scc", "Theorem 2 (SCC = Comp-C on stacks)", scc);
  }
  if (is_fork) {
    COMPTX_ASSIGN_OR_RETURN(bool fcc, criteria::IsForkConflictConsistent(cs));
    compare("batch-vs-fcc", "Theorem 3 (FCC = Comp-C on forks)", fcc);
  }
  if (is_join) {
    COMPTX_ASSIGN_OR_RETURN(bool jcc, criteria::IsJoinConflictConsistent(cs));
    compare("batch-vs-jcc", "Theorem 4 (JCC = Comp-C on joins)", jcc);
  }
  return Status::OK();
}

/// The static analyzer's SAFE/UNSAFE verdicts claim exactness; hold them
/// to the batch reduction whenever the analyzer decides.
void CheckStatic(const CompositeSystem& cs, const CompCResult& batch,
                 const DifferentialOptions& options,
                 DifferentialReport& report) {
  staticcheck::AnalyzerOptions analyzer_options;
  analyzer_options.assume_valid = true;  // CheckConformance validated.
  analyzer_options.explain = false;      // only the verdict is compared
  staticcheck::StaticAnalysis analysis =
      staticcheck::AnalyzeConfiguration(cs, analyzer_options);
  if (analysis.verdict == staticcheck::SafetyVerdict::kNeedsDynamic) return;
  bool static_safe = analysis.verdict == staticcheck::SafetyVerdict::kSafe;
  if (options.inject == InjectedBug::kFlipStatic) {
    static_safe = !static_safe;
  }
  if (static_safe != batch.correct) {
    report.disagreements.push_back(
        {"batch-vs-static",
         StrCat("static analyzer (shape ",
                staticcheck::ConfigShapeToString(analysis.shape),
                ") says ", Verdict(static_safe), ", batch says ",
                Verdict(batch.correct), "; reason: ", analysis.reason)});
  }
}

/// The semantic conflict layer is a pure mask: EffectiveConflict(s, a, b)
/// is the declared bit minus spec-proven commutation.  So a clone whose
/// raw bits ARE the masked set — every erased pair's conflict event
/// dropped, no spec attached — must reduce to the identical verdict.  A
/// mismatch means some decision path consulted raw bits where the mask
/// applies (or applied the mask twice).  kFlipCommutes keeps the first
/// erased pair in the clone, modeling exactly that bug.
void CheckSemanticMask(const CompositeSystem& cs, const CompCResult& batch,
                       const DifferentialOptions& options,
                       DifferentialReport& report) {
  if (!cs.HasSpec()) return;
  auto events = SystemToEvents(cs);
  if (!events.ok()) {
    report.disagreements.push_back(
        {"batch-vs-semantic",
         StrCat("trace serialization failed: ", events.status().message())});
    return;
  }
  const bool flip = options.inject == InjectedBug::kFlipCommutes;
  bool flipped = false;
  size_t erased = 0;
  std::vector<workload::TraceEvent> masked;
  masked.reserve(events->size());
  for (const workload::TraceEvent& e : *events) {
    switch (e.kind) {
      case workload::TraceEventKind::kAdtDecl:
      case workload::TraceEventKind::kAdtOp:
      case workload::TraceEventKind::kCommute:
      case workload::TraceEventKind::kClash:
      case workload::TraceEventKind::kTag:
        // The clone carries no spec; its raw bits are the effective set.
        continue;
      case workload::TraceEventKind::kConflict:
        if (cs.SemanticallyCommutes(NodeId(e.a), NodeId(e.b))) {
          if (flip && !flipped) {
            flipped = true;  // re-materialize one pair the spec erases
            break;
          }
          ++erased;
          continue;
        }
        break;
      default:
        break;
    }
    masked.push_back(e);
  }
  auto clone = BuildSystem(masked);
  if (!clone.ok()) {
    report.disagreements.push_back(
        {"batch-vs-semantic",
         StrCat("masked clone rebuild failed: ", clone.status().message())});
    return;
  }
  ReductionOptions ropts;
  ropts.validate = false;  // mask-only: the clone's bits are a subset
  ropts.keep_fronts = false;
  auto masked_batch = CheckCompC(*clone, ropts);
  if (!masked_batch.ok()) {
    report.disagreements.push_back(
        {"batch-vs-semantic", StrCat("masked clone reduction failed: ",
                                     masked_batch.status().message())});
    return;
  }
  if (masked_batch->correct != batch.correct) {
    report.disagreements.push_back(
        {"batch-vs-semantic",
         StrCat("spec-attached batch says ", Verdict(batch.correct),
                ", materialized mask (", erased,
                " conflict pair(s) erased) says ",
                Verdict(masked_batch->correct))});
  }
}

}  // namespace

StatusOr<DifferentialReport> CheckConformance(
    const CompositeSystem& cs, const DifferentialOptions& options) {
  COMPTX_RETURN_IF_ERROR(cs.Validate());
  ReductionOptions reduction;
  reduction.validate = false;
  // The serial-front check needs the final front, which is always kept on
  // success; intermediate fronts are not needed.
  reduction.keep_fronts = false;
  COMPTX_ASSIGN_OR_RETURN(CompCResult batch, CheckCompC(cs, reduction));

  DifferentialReport report;
  report.comp_c = batch.correct;
  report.order = batch.order;

  if (!batch.correct && !batch.failure.has_value()) {
    report.disagreements.push_back(
        {"batch", "rejected without a failure diagnosis"});
  }
  if (options.check_witness && batch.correct) {
    CheckSerialWitness(cs, batch, report);
  }
  if (options.check_online) {
    CheckOnline(cs, batch, options, report);
  }
  const bool is_stack = criteria::IsStackSystem(cs);
  const bool is_fork = criteria::IsForkSystem(cs);
  const bool is_join = criteria::IsJoinSystem(cs);
  if (options.check_oracle) {
    COMPTX_RETURN_IF_ERROR(CheckOracle(cs, batch, options,
                                       is_stack || is_fork || is_join,
                                       report));
  }
  if (options.check_criteria) {
    COMPTX_RETURN_IF_ERROR(CheckCriteria(cs, batch, options, is_stack,
                                         is_fork, is_join, report));
  }
  if (options.check_static) {
    CheckStatic(cs, batch, options, report);
  }
  if (options.check_semantics) {
    CheckSemanticMask(cs, batch, options, report);
  }
  return report;
}

}  // namespace comptx::testing
