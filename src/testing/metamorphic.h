#ifndef COMPTX_TESTING_METAMORPHIC_H_
#define COMPTX_TESTING_METAMORPHIC_H_

#include <cstdint>
#include <vector>

#include "core/composite_system.h"
#include "testing/differential.h"
#include "util/rng.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::testing {

/// Verdict-preserving input transformations.  Comp-C is a semantic
/// property of the facts a trace carries, so each of these must leave
/// every decider's verdict unchanged; a flip is a bug in whichever decider
/// depended on names, ids or stream order.
enum class MetamorphicKind : uint8_t {
  /// Replace every schedule/node name by a fresh opaque one.
  kRename,
  /// Re-emit the events in a random dependency-respecting order and
  /// renumber all creation-order indices accordingly.  Exercises both id
  /// permutation (batch) and stream-order independence (online).
  kShuffle,
  /// Append operations that commute with everything: fresh leaves with no
  /// conflicts and no order edges.
  kNoOpLeaves,
};

const char* MetamorphicKindToString(MetamorphicKind kind);

struct MetamorphicOptions {
  bool rename = true;
  bool shuffle = true;
  bool noop_leaves = true;
  /// Leaves appended by kNoOpLeaves.
  uint32_t noop_count = 2;
};

/// Applies one transform to `events` (deterministic given `rng`'s state).
/// The result builds a valid system whenever `events` does.
std::vector<workload::TraceEvent> ApplyMetamorphic(
    MetamorphicKind kind, const std::vector<workload::TraceEvent>& events,
    Rng& rng, uint32_t noop_count = 2);

/// Runs every enabled transform on the event stream of `cs` (whose batch
/// verdict is `base_comp_c`) and checks invariance of the batch verdict
/// and — for kShuffle — of the online certifier's final verdict on the
/// permuted stream.  Each violation is reported as a Disagreement with
/// check "metamorphic-<kind>".  `seed` makes the run reproducible.
StatusOr<std::vector<Disagreement>> CheckMetamorphic(
    const CompositeSystem& cs, bool base_comp_c,
    const MetamorphicOptions& options, uint64_t seed);

}  // namespace comptx::testing

#endif  // COMPTX_TESTING_METAMORPHIC_H_
