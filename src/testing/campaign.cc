#include "testing/campaign.h"

#include <utility>

#include "analysis/sweep.h"
#include "core/correctness.h"
#include "core/diagnostic.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "staticcheck/lint.h"
#include "testing/events.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/workload_spec.h"

namespace comptx::testing {

using workload::TraceEvent;

namespace {

/// One campaign trace: its derived seed, generated spec and outcome.
struct TraceCase {
  uint64_t seed = 0;
  workload::WorkloadSpec spec;
  std::string generator;  // spec rendered for witness records
  CompositeSystem system;
  std::vector<Disagreement> disagreements;
  bool comp_c = false;
  bool single_meet = false;
  bool prefix_checked = false;
  bool metamorphic_checked = false;
  size_t events = 0;
  Status error;  // harness-level failure (generator bug etc.)
};

uint64_t DeriveSeed(uint64_t campaign_seed, uint32_t index) {
  // SplitMix64 over (seed, index) so neighbouring campaigns do not share
  // trace streams.
  uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

workload::WorkloadSpec RandomSpec(Rng& rng) {
  workload::WorkloadSpec spec;
  const workload::TopologyKind kinds[] = {
      workload::TopologyKind::kStack, workload::TopologyKind::kFork,
      workload::TopologyKind::kJoin, workload::TopologyKind::kLayeredDag};
  spec.topology.kind = kinds[rng.UniformInt(4)];
  spec.topology.depth = 2 + static_cast<uint32_t>(rng.UniformInt(3));
  spec.topology.branches = 1 + static_cast<uint32_t>(rng.UniformInt(3));
  spec.topology.roots = 2 + static_cast<uint32_t>(rng.UniformInt(4));
  spec.topology.fanout = 1 + static_cast<uint32_t>(rng.UniformInt(3));
  spec.topology.leaf_fraction = 0.4 * rng.UniformDouble();
  spec.execution.conflict_prob = 0.1 + 0.4 * rng.UniformDouble();
  spec.execution.disorder_prob = 0.6 * rng.UniformDouble();
  spec.execution.intra_weak_prob = 0.4 * rng.UniformDouble();
  spec.execution.intra_strong_prob = 0.5 * spec.execution.intra_weak_prob;
  // A third of the stream carries a commutativity spec, so the semantic
  // layer (EffectiveConflict in every decider, the semantic-mask check,
  // the semantic static rule) is fuzzed alongside the bit-level paths.
  if (rng.UniformInt(3) == 0) {
    const workload::AdtMix mixes[] = {
        workload::AdtMix::kCounter, workload::AdtMix::kSet,
        workload::AdtMix::kQueue, workload::AdtMix::kEscrow,
        workload::AdtMix::kMixed};
    spec.execution.adt = mixes[rng.UniformInt(5)];
    spec.execution.adt_instances =
        1 + static_cast<uint32_t>(rng.UniformInt(4));
  }
  return spec;
}

/// The predicate a witness is shrunk against: the candidate must still
/// produce a disagreement of the same kind, through the same checks that
/// found it.
FailurePredicate MakePredicate(const CampaignOptions& options,
                               const std::string& check,
                               uint64_t trace_seed,
                               const DifferentialOptions& differential) {
  const bool metamorphic = check.rfind("metamorphic-", 0) == 0;
  if (metamorphic) {
    MetamorphicOptions meta = options.metamorphic;
    meta.rename = check == "metamorphic-rename";
    meta.shuffle = check == "metamorphic-shuffle";
    meta.noop_leaves = check == "metamorphic-noop-leaves";
    return [check, meta, trace_seed](const CompositeSystem& cs) {
      if (!cs.Validate().ok()) return false;
      auto base = CheckCompC(cs);
      if (!base.ok()) return false;
      auto report = CheckMetamorphic(cs, base->correct, meta, trace_seed);
      if (!report.ok()) return false;
      for (const Disagreement& d : *report) {
        if (d.check == check) return true;
      }
      return false;
    };
  }
  return [check, differential](const CompositeSystem& cs) {
    auto report = CheckConformance(cs, differential);
    if (!report.ok()) return false;
    for (const Disagreement& d : report->disagreements) {
      if (d.check == check) return true;
    }
    return false;
  };
}

}  // namespace

StatusOr<CampaignResult> RunFuzzCampaign(const CampaignOptions& options) {
  const uint32_t n = options.traces;
  std::vector<TraceCase> cases(n);

  // Phase 1+2 (parallel): generate each trace and run every differential
  // and metamorphic check on it.  Each case is independent.
  analysis::ParallelMap<int>(n, [&](size_t i) {
    TraceCase& tc = cases[i];
    tc.seed = DeriveSeed(options.seed, static_cast<uint32_t>(i));
    Rng rng(tc.seed);
    tc.spec = RandomSpec(rng);
    tc.generator = workload::DescribeWorkloadSpec(tc.spec);
    // Pre-lint the generated spec: an error diagnostic here means the
    // spec generator itself produced garbage — a harness bug, not a
    // finding.
    for (const Diagnostic& d : staticcheck::LintWorkloadSpec(tc.spec)) {
      if (d.severity == DiagSeverity::kError) {
        tc.error = Status::Internal(
            StrCat("generated spec fails lint: ", FormatDiagnostic(d)));
        return 0;
      }
    }
    auto system = workload::GenerateSystem(tc.spec, tc.seed);
    if (!system.ok()) {
      tc.error = system.status();
      return 0;
    }
    tc.system = *std::move(system);

    DifferentialOptions differential = options.differential;
    if (options.prefix_check_every != 0 &&
        i % options.prefix_check_every == 0) {
      differential.prefix_event_limit = options.prefix_event_limit;
      tc.prefix_checked = true;
    }
    auto report = CheckConformance(tc.system, differential);
    if (!report.ok()) {
      tc.error = report.status();
      return 0;
    }
    tc.comp_c = report->comp_c;
    tc.disagreements = report->disagreements;
    tc.single_meet = criteria::IsStackSystem(tc.system) ||
                     criteria::IsForkSystem(tc.system) ||
                     criteria::IsJoinSystem(tc.system);
    auto events = SystemToEvents(tc.system);
    tc.events = events.ok() ? events->size() : 0;
    if (events.ok()) {
      // Pre-lint the serialized trace (event-level and structural checks;
      // the model rules already ran inside CheckConformance).  Error or
      // internal-error diagnostics on a generated trace are harness bugs.
      staticcheck::LintOptions lint_options;
      lint_options.model_rules = false;
      staticcheck::LintResult lint =
          staticcheck::LintTraceEvents(*events, lint_options);
      for (const Diagnostic& d : lint.diagnostics) {
        if (d.severity == DiagSeverity::kError ||
            d.code == DiagCode::kInternalError) {
          tc.error = Status::Internal(
              StrCat("generated trace fails lint: ", FormatDiagnostic(d)));
          return 0;
        }
      }
    }

    if (options.run_metamorphic) {
      auto meta = CheckMetamorphic(tc.system, tc.comp_c, options.metamorphic,
                                   tc.seed);
      if (!meta.ok()) {
        tc.error = meta.status();
        return 0;
      }
      tc.metamorphic_checked = true;
      for (Disagreement& d : *meta) {
        tc.disagreements.push_back(std::move(d));
      }
    }
    return 0;
  });

  CampaignResult result;
  result.stats.traces = n;
  for (const TraceCase& tc : cases) {
    if (!tc.error.ok()) {
      return Status::Internal(
          StrCat("campaign trace seed ", tc.seed, " (", tc.generator,
                 "): ", tc.error.message()));
    }
    result.stats.comp_c_count += tc.comp_c ? 1 : 0;
    result.stats.single_meet += tc.single_meet ? 1 : 0;
    result.stats.prefix_checked += tc.prefix_checked ? 1 : 0;
    result.stats.metamorphic_checked += tc.metamorphic_checked ? 1 : 0;
    result.stats.total_events += tc.events;
    result.stats.failing_traces += tc.disagreements.empty() ? 0 : 1;
  }

  // Phase 3: re-sweep all batch verdicts through the pool-backed sweep
  // driver with its disagreement hooks — an independent aggregation
  // cross-check (catches sweeps mixing up systems or verdicts).
  {
    std::vector<const CompositeSystem*> systems;
    std::vector<bool> expected;
    systems.reserve(n);
    expected.reserve(n);
    for (const TraceCase& tc : cases) {
      systems.push_back(&tc.system);
      expected.push_back(tc.comp_c);
    }
    analysis::SweepHooks hooks;
    std::vector<std::pair<size_t, std::string>> sweep_disagreements;
    hooks.on_verdict = [&](size_t, const analysis::SweepVerdict& verdict) {
      result.stats.static_decided += verdict.static_fast_path ? 1 : 0;
    };
    hooks.on_disagreement = [&](size_t i, const std::string& description) {
      sweep_disagreements.emplace_back(i, description);
    };
    // Paranoid fast path: the static analyzer decides what it can, the
    // reduction re-checks every static verdict, and any disagreement —
    // static-vs-dynamic or sweep-vs-batch — lands in the witness pipeline.
    analysis::SweepOptions sweep;
    sweep.reduction.keep_fronts = false;
    sweep.static_fast_path = true;
    sweep.paranoid = true;
    analysis::SweepCompC(systems, sweep, hooks, expected);
    for (auto& [index, description] : sweep_disagreements) {
      TraceCase& tc = cases[index];
      if (tc.disagreements.empty()) ++result.stats.failing_traces;
      tc.disagreements.push_back({"sweep-vs-batch", description});
    }
  }

  // Phase 4 (serial): delta-debug each failing trace's first disagreement
  // to a minimal witness.
  for (uint32_t i = 0; i < n; ++i) {
    TraceCase& tc = cases[i];
    if (tc.disagreements.empty()) continue;
    const Disagreement& first = tc.disagreements.front();

    WitnessRecord record;
    record.seed = tc.seed;
    record.check = first.check;
    record.detail = first.detail;
    record.injected = InjectedBugToString(options.differential.inject);
    record.generator = tc.generator;
    record.id = StrCat(first.check, "-seed", tc.seed);

    auto events = SystemToEvents(tc.system);
    if (!events.ok()) {
      return Status::Internal(StrCat("witness serialization failed: ",
                                     events.status().message()));
    }
    record.events_initial = events->size();

    DifferentialOptions shrink_differential = options.differential;
    if (tc.prefix_checked) {
      shrink_differential.prefix_event_limit = options.prefix_event_limit;
    }
    FailurePredicate predicate = MakePredicate(options, first.check, tc.seed,
                                               shrink_differential);
    ShrinkStats shrink_stats;
    auto shrunk = ShrinkEvents(*std::move(events), predicate, options.shrink,
                               &shrink_stats);
    result.stats.shrink_predicate_calls += shrink_stats.predicate_calls;
    if (shrunk.ok()) {
      record.events = *std::move(shrunk);
      record.events_final = record.events.size();
      if (auto minimized = BuildSystem(record.events); minimized.ok()) {
        if (auto verdict = CheckCompC(*minimized); verdict.ok()) {
          record.comp_c = verdict->correct;
        }
      }
    } else {
      // The failure did not reproduce on the rebuilt events (flaky or
      // aggregation-level): keep the unshrunk trace as the witness.
      record.events = *SystemToEvents(tc.system);
      record.events_final = record.events.size();
      record.comp_c = tc.comp_c;
      record.detail += " [shrink failed: ";
      record.detail += shrunk.status().message();
      record.detail += "]";
    }
    if (options.on_witness) options.on_witness(record);
    result.witnesses.push_back(std::move(record));
  }
  return result;
}

}  // namespace comptx::testing
