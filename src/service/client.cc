#include "service/client.h"

#include "util/string_util.h"

namespace comptx::service {

StatusOr<ServiceClient> ServiceClient::Dial(const Endpoint& endpoint,
                                            WireProtocol protocol) {
  auto socket = Connect(endpoint);
  if (!socket.ok()) return socket.status();
  return ServiceClient(std::move(*socket), protocol);
}

StatusOr<Response> ServiceClient::RoundTrip(const Request& request) {
  const std::string frame = EncodeRequestFrame(protocol_, request);
  Status sent = WriteWireBytes(socket_.fd(), frame);
  if (!sent.ok()) return sent;
  auto reply = ReadWireFrame(socket_.fd(), parser_);
  if (!reply.ok()) return reply.status();
  auto response = DecodeResponseFrame(*reply);
  if (!response.ok()) return response.status();
  if (!response->ok) {
    return Status::FailedPrecondition(
        StrCat(response->error_code, ": ", response->error_message));
  }
  return response;
}

SessionVerdict ServiceClient::VerdictFrom(const Response& response) {
  SessionVerdict verdict;
  verdict.session = response.FieldInt("session");
  verdict.certifiable = response.FieldInt("certifiable") == 1;
  verdict.order = static_cast<uint32_t>(response.FieldInt("order"));
  verdict.events_accepted = response.FieldInt("accepted");
  verdict.events_rejected = response.FieldInt("rejected");
  verdict.failure = response.body;
  return verdict;
}

StatusOr<uint64_t> ServiceClient::Open(const std::string& options) {
  Request request;
  request.kind = CommandKind::kOpen;
  request.options = options;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.FieldInt("session");
}

StatusOr<uint64_t> ServiceClient::Append(
    uint64_t session, const std::vector<workload::TraceEvent>& events) {
  Request request;
  request.kind = CommandKind::kAppend;
  request.session = session;
  request.events = events;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.FieldInt("queued");
}

StatusOr<SessionVerdict> ServiceClient::Query(uint64_t session) {
  Request request;
  request.kind = CommandKind::kQuery;
  request.session = session;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return VerdictFrom(response);
}

StatusOr<SessionVerdict> ServiceClient::Close(uint64_t session) {
  Request request;
  request.kind = CommandKind::kClose;
  request.session = session;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return VerdictFrom(response);
}

StatusOr<std::string> ServiceClient::Stats() {
  Request request;
  request.kind = CommandKind::kStats;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.body;
}

Status ServiceClient::Ping() {
  Request request;
  request.kind = CommandKind::kPing;
  return RoundTrip(request).status();
}

Status ServiceClient::Shutdown() {
  Request request;
  request.kind = CommandKind::kShutdown;
  return RoundTrip(request).status();
}

}  // namespace comptx::service
