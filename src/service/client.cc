#include "service/client.h"

#include "util/string_util.h"

namespace comptx::service {

StatusOr<ServiceClient> ServiceClient::Dial(const Endpoint& endpoint,
                                            WireProtocol protocol) {
  auto socket = Connect(endpoint);
  if (!socket.ok()) return socket.status();
  return ServiceClient(std::move(*socket), protocol);
}

StatusOr<Response> ServiceClient::Transport(const Request& request) {
  const std::string frame = EncodeRequestFrame(protocol_, request);
  Status sent = WriteWireBytes(socket_.fd(), frame);
  if (!sent.ok()) return sent;
  auto reply = ReadWireFrame(socket_.fd(), parser_);
  if (!reply.ok()) return reply.status();
  return DecodeResponseFrame(*reply);
}

StatusOr<Response> ServiceClient::RoundTrip(const Request& request) {
  auto response = Transport(request);
  if (!response.ok()) return response.status();
  if (!response->ok) {
    return Status::FailedPrecondition(
        StrCat(response->error_code, ": ", response->error_message));
  }
  return response;
}

StatusOr<Response> ServiceClient::Command(CommandKind kind, uint64_t session,
                                          const std::string& options) {
  Request request;
  request.kind = kind;
  request.session = session;
  request.options = options;
  return Transport(request);
}

SessionVerdict ServiceClient::VerdictFrom(const Response& response) {
  SessionVerdict verdict;
  verdict.session = response.FieldInt("session");
  verdict.certifiable = response.FieldInt("certifiable") == 1;
  verdict.order = static_cast<uint32_t>(response.FieldInt("order"));
  verdict.events_accepted = response.FieldInt("accepted");
  verdict.events_rejected = response.FieldInt("rejected");
  verdict.live_nodes = response.FieldInt("live_nodes");
  verdict.pruned_nodes = response.FieldInt("pruned_nodes");
  verdict.sealed_roots = response.FieldInt("sealed_roots");
  verdict.commit_watermark = response.FieldInt("commit_watermark");
  verdict.static_mode = response.FieldInt("static_mode") == 1;
  verdict.static_fallbacks = response.FieldInt("static_fallbacks");
  verdict.paranoid_mismatches = response.FieldInt("paranoid_mismatches");
  verdict.failure = response.body;
  return verdict;
}

StatusOr<uint64_t> ServiceClient::Open(const std::string& options) {
  Request request;
  request.kind = CommandKind::kOpen;
  request.options = options;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.FieldInt("session");
}

StatusOr<uint64_t> ServiceClient::Append(
    uint64_t session, const std::vector<workload::TraceEvent>& events) {
  Request request;
  request.kind = CommandKind::kAppend;
  request.session = session;
  request.events = events;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.FieldInt("queued");
}

StatusOr<SessionVerdict> ServiceClient::Query(uint64_t session) {
  Request request;
  request.kind = CommandKind::kQuery;
  request.session = session;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return VerdictFrom(response);
}

StatusOr<SessionVerdict> ServiceClient::Close(uint64_t session) {
  Request request;
  request.kind = CommandKind::kClose;
  request.session = session;
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return VerdictFrom(response);
}

StatusOr<std::string> ServiceClient::Stats(bool json) {
  Request request;
  request.kind = CommandKind::kStats;
  if (json) request.options = "json=1";
  COMPTX_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.body;
}

Status ServiceClient::Ping() {
  Request request;
  request.kind = CommandKind::kPing;
  return RoundTrip(request).status();
}

Status ServiceClient::Shutdown() {
  Request request;
  request.kind = CommandKind::kShutdown;
  return RoundTrip(request).status();
}

}  // namespace comptx::service
