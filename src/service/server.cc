#include "service/server.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::service {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// Maps a Status to the wire error code.
const char* ErrorCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kResourceExhausted:
      return "session_limit";
    case StatusCode::kFailedPrecondition:
      // A lifecycle race (APPEND vs CLOSE/eviction), not a malformed
      // request: the client should re-OPEN, not fix its framing.
      return "session_closing";
    case StatusCode::kOutOfRange:
      // STREAM asked for a seq at or below the trimmed prefix: the
      // subscriber must resubscribe from its durable cursor.
      return "gap";
    case StatusCode::kInternal:
      return "internal";
    default:
      return "bad_request";
  }
}

Response StatusResponse(const Status& status) {
  return ErrorResponse(ErrorCode(status), status.message());
}

void AppendVerdictFields(const SessionVerdict& verdict, Response& response) {
  response.fields.emplace_back("session", StrCat(verdict.session));
  response.fields.emplace_back("certifiable",
                               verdict.certifiable ? "1" : "0");
  response.fields.emplace_back("order", StrCat(verdict.order));
  response.fields.emplace_back("accepted", StrCat(verdict.events_accepted));
  response.fields.emplace_back("rejected", StrCat(verdict.events_rejected));
  // Window observability (new fields append after the existing ones, so
  // v1 clients that read positionally keep working).
  response.fields.emplace_back("live_nodes", StrCat(verdict.live_nodes));
  response.fields.emplace_back("pruned_nodes", StrCat(verdict.pruned_nodes));
  response.fields.emplace_back("sealed_roots", StrCat(verdict.sealed_roots));
  response.fields.emplace_back("commit_watermark",
                               StrCat(verdict.commit_watermark));
  if (verdict.static_mode || verdict.static_fallbacks > 0) {
    response.fields.emplace_back("static_mode",
                                 verdict.static_mode ? "1" : "0");
    response.fields.emplace_back("static_fallbacks",
                                 StrCat(verdict.static_fallbacks));
  }
  if (verdict.paranoid_mismatches > 0) {
    response.fields.emplace_back("paranoid_mismatches",
                                 StrCat(verdict.paranoid_mismatches));
  }
  // The failure diagnosis contains spaces, so it travels in the body.
  if (!verdict.failure.empty()) response.body = verdict.failure;
}

/// The ORDER_STREAM commands carry "key=value ..." options like OPEN.
struct StreamOptions {
  uint64_t from = 1;
  uint64_t max = 512;
  uint64_t wait_ms = 0;
  uint64_t ack = 0;
  uint64_t sub = 0;
};

StatusOr<StreamOptions> ParseStreamOptions(const std::string& text) {
  StreamOptions options;
  for (const std::string& token : StrSplit(text, ' ')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("stream option '", token, "' is not key=value"));
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument(
          StrCat(key, "=", value, " is not an unsigned integer"));
    }
    uint64_t parsed = 0;
    for (const char c : value) {
      if (parsed > (~0ull - (c - '0')) / 10) {
        return Status::InvalidArgument(StrCat(key, "=", value, " overflows"));
      }
      parsed = parsed * 10 + (c - '0');
    }
    if (key == "from") {
      options.from = parsed;
    } else if (key == "max") {
      options.max = parsed;
    } else if (key == "wait_ms") {
      options.wait_ms = parsed;
    } else if (key == "ack") {
      options.ack = parsed;
    } else if (key == "sub") {
      options.sub = parsed;
    } else {
      // No silent defaulting: the family is versionless, so a typoed key
      // must fail loudly rather than quietly fetch from seq 1.
      return Status::InvalidArgument(StrCat("unknown stream option '", key,
                                            "'"));
    }
  }
  return options;
}

}  // namespace

namespace {

/// Ctor helper: starts the durability manager (or returns null when
/// disabled), parking any failure in `init_status` for InitStatus().
std::unique_ptr<durability::Manager> StartDurability(
    const durability::Options& options, durability::Counters* counters,
    Status* init_status) {
  if (!options.enabled()) return nullptr;
  auto manager = durability::Manager::Start(options, counters);
  if (!manager.ok()) {
    *init_status = manager.status();
    return nullptr;
  }
  return std::move(manager).value();
}

}  // namespace

CertificationServer::CertificationServer(const ServerOptions& options)
    : options_(options),
      durability_(StartDurability(options.durability, &metrics_.durability,
                                  &init_status_)),
      sessions_(options.max_sessions, &metrics_, durability_.get()),
      pool_(std::make_unique<ThreadPool>(std::max<size_t>(1, options.workers))) {
  // Recover before anything serves or ticks: the table must hold every
  // crashed-but-live session before the first OPEN can reuse an id and
  // before the eviction sweep can observe a half-built table.
  if (durability_ != nullptr && init_status_.ok()) {
    auto recovered = sessions_.RecoverAll(options_.session,
                                          options_.durability.verify_recovery);
    if (!recovered.ok()) {
      init_status_ = recovered.status();
      COMPTX_LOG(Error) << "recovery failed: " << init_status_;
    } else if (*recovered > 0) {
      COMPTX_LOG(Info) << "recovered " << *recovered
                       << " session(s) from " << options_.durability.dir;
    }
  }
  const size_t workers = std::max<size_t>(1, options_.workers);
  pool_host_ = std::thread([this, workers] {
    pool_->ParallelFor(workers, [this](size_t) { WorkerLoop(); });
  });
  if (options_.idle_timeout_ms > 0 || options_.stats_interval_ms > 0) {
    ticker_ = std::thread([this] { TickerLoop(); });
  }
}

CertificationServer::~CertificationServer() { Shutdown(); }

void CertificationServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Session> session;
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      run_cv_.wait(lock,
                   [this] { return stop_workers_ || !run_queue_.empty(); });
      if (run_queue_.empty()) return;  // stop_workers_ and nothing left
      session = std::move(run_queue_.front());
      run_queue_.pop_front();
    }
    if (session->ProcessBatch(options_.batch_size)) {
      ScheduleSession(std::move(session));
    }
  }
}

void CertificationServer::ScheduleSession(std::shared_ptr<Session> session) {
  std::unique_lock<std::mutex> lock(run_mu_);
  run_queue_.push_back(std::move(session));
  run_cv_.notify_one();
}

void CertificationServer::TickerLoop() {
  const auto tick = std::chrono::milliseconds(
      std::max<uint64_t>(10, std::min(options_.idle_timeout_ms > 0
                                          ? options_.idle_timeout_ms
                                          : options_.stats_interval_ms,
                                      options_.stats_interval_ms > 0
                                          ? options_.stats_interval_ms
                                          : options_.idle_timeout_ms)));
  auto last_stats = Clock::now();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(ticker_mu_);
      ticker_cv_.wait_for(lock, tick, [this] { return stop_ticker_; });
      if (stop_ticker_) return;
    }
    if (options_.idle_timeout_ms > 0) EvictIdleNow();
    if (options_.stats_interval_ms > 0 &&
        MicrosSince(last_stats) / 1000 >= options_.stats_interval_ms) {
      last_stats = Clock::now();
      COMPTX_LOG(Info) << "stats " << metrics_.RenderLine();
    }
  }
}

size_t CertificationServer::EvictIdleNow() {
  if (options_.idle_timeout_ms == 0) return 0;
  const auto cutoff =
      Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  // EvictIdle marks each session closing (Session::CloseIfIdle) in the
  // same critical section as the idle check, so no BeginClose is needed
  // here and no producer can slip an acknowledged APPEND into a session
  // between the check and the removal.
  const std::vector<std::shared_ptr<Session>> evicted =
      sessions_.EvictIdle(cutoff);
  for (const std::shared_ptr<Session>& session : evicted) {
    // Persist-then-evict: CloseIfIdle only fires on a drained session
    // (empty queue, no worker attached) and marked it closing in the same
    // critical section, so the certifier is quiescent here and no new
    // event can sneak in between the snapshot and the EVICT marker.
    const Status persisted = session->PersistEvicted();
    if (!persisted.ok()) {
      COMPTX_LOG(Warn) << "persisting evicted session " << session->id()
                       << " failed: " << persisted;
    }
    session->RetireCertifierStats();
    COMPTX_LOG(Debug) << "evicted idle session " << session->id();
  }
  return evicted.size();
}

Response CertificationServer::Handle(const Request& request) {
  // SUBSCRIBE/STREAM are deliberately *not* in the mutating set: a
  // long-poll STREAM parked in FetchStream would hold the in-flight count
  // and stall Shutdown's drain; instead BeginClose wakes the poll (the
  // subscriber sees a clean empty reply and reconnects elsewhere).
  const bool mutating = request.kind == CommandKind::kOpen ||
                        request.kind == CommandKind::kAppend ||
                        request.kind == CommandKind::kQuery ||
                        request.kind == CommandKind::kClose ||
                        request.kind == CommandKind::kAttach ||
                        request.kind == CommandKind::kDetach ||
                        request.kind == CommandKind::kPrepare ||
                        request.kind == CommandKind::kDecide;
  if (!mutating) return Dispatch(request);
  // The draining check and the in-flight count share state_mu_ with
  // Shutdown's flag flip: a request either observes shutting_down_ and is
  // refused, or is counted in-flight before the flag is set — in which
  // case Shutdown waits for it below, so its session/events are part of
  // the drain snapshot and never stranded behind it.
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    if (shutting_down_.load(std::memory_order_relaxed)) {
      return ErrorResponse("shutting_down", "server is draining");
    }
    ++inflight_requests_;
  }
  Response response = Dispatch(request);
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    if (--inflight_requests_ == 0) shutdown_cv_.notify_all();
  }
  return response;
}

Response CertificationServer::Dispatch(const Request& request) {
  switch (request.kind) {
    case CommandKind::kOpen:
      return HandleOpen(request);
    case CommandKind::kAppend:
      return HandleAppend(request);
    case CommandKind::kQuery:
      return HandleQueryOrClose(request, /*close=*/false);
    case CommandKind::kClose:
      return HandleQueryOrClose(request, /*close=*/true);
    case CommandKind::kStats:
      return HandleStats(request);
    case CommandKind::kSubscribe:
      return HandleSubscribe(request);
    case CommandKind::kStream:
      return HandleStream(request);
    case CommandKind::kAttach:
    case CommandKind::kDetach:
    case CommandKind::kPrepare:
    case CommandKind::kDecide: {
      if (distributed_handler_) return distributed_handler_(request);
      return ErrorResponse("unsupported",
                           "no distributed controller attached");
    }
    case CommandKind::kPing: {
      Response response = OkResponse();
      response.fields.emplace_back("pong", "1");
      return response;
    }
    case CommandKind::kShutdown: {
      RequestShutdown();
      return OkResponse();
    }
  }
  return ErrorResponse("bad_request", "unknown command");
}

Response CertificationServer::HandleOpen(const Request& request) {
  auto options = ParseSessionOptions(request.options, options_.session);
  if (!options.ok()) {
    metrics_.protocol_errors.Increment();
    return StatusResponse(options.status());
  }
  auto session = options->resume != 0
                     ? sessions_.Resume(options->resume, *options,
                                        options_.session)
                     : sessions_.Open(*options, request.options);
  if (!session.ok()) return StatusResponse(session.status());
  Response response = OkResponse();
  response.fields.emplace_back("session", StrCat((*session)->id()));
  if (options->resume != 0) {
    // The resuming client learns where the durable stream ends, so it can
    // continue from there without re-sending covered events.
    const SessionVerdict verdict = (*session)->Verdict();
    response.fields.emplace_back(
        "resumed_events",
        StrCat(verdict.events_accepted + verdict.events_rejected));
  }
  return response;
}

Response CertificationServer::HandleAppend(const Request& request) {
  const auto start = Clock::now();
  auto session = sessions_.Find(request.session);
  if (!session.ok()) return StatusResponse(session.status());
  const size_t count = request.events.size();
  Status status = (*session)->Enqueue(
      request.events, [this, &session] { ScheduleSession(*session); });
  if (!status.ok()) return StatusResponse(status);
  metrics_.append_batches.Increment();
  metrics_.append_latency.Record(MicrosSince(start));
  Response response = OkResponse();
  response.fields.emplace_back("queued", StrCat(count));
  return response;
}

Response CertificationServer::HandleQueryOrClose(const Request& request,
                                                 bool close) {
  const auto start = Clock::now();
  StatusOr<std::shared_ptr<Session>> session =
      close ? sessions_.Remove(request.session)
            : sessions_.Find(request.session);
  if (!session.ok()) return StatusResponse(session.status());
  if (close) (*session)->BeginClose();
  (*session)->WaitDrained();
  const SessionVerdict verdict = (*session)->Verdict();
  if (close) {
    // Drained and closing: no worker is attached, so retiring the
    // live-node gauge cannot race a publication.
    (*session)->RetireCertifierStats();
    // CLOSE was acked with the final verdict; the durable state has no
    // further consumer.  The CLOSE marker makes a crash between here and
    // the unlink unambiguous for recovery.
    const Status discarded = (*session)->DiscardDurableState();
    if (!discarded.ok()) {
      COMPTX_LOG(Warn) << "discarding durable state of session "
                       << verdict.session << " failed: " << discarded;
    }
  }
  metrics_.verdict_queries.Increment();
  metrics_.verdict_latency.Record(MicrosSince(start));
  Response response = OkResponse();
  AppendVerdictFields(verdict, response);
  return response;
}

Response CertificationServer::HandleStats(const Request& request) {
  bool json = false;
  for (const std::string& token : StrSplit(request.options, ' ')) {
    if (token.empty()) continue;
    if (token == "json=1") {
      json = true;
    } else if (token == "json=0") {
      json = false;
    } else {
      metrics_.protocol_errors.Increment();
      return ErrorResponse("bad_request",
                           StrCat("unknown STATS option '", token, "'"));
    }
  }
  Response response = OkResponse();
  response.body = json ? metrics_.RenderJson() : metrics_.RenderText();
  return response;
}

Response CertificationServer::HandleSubscribe(const Request& request) {
  auto session = sessions_.Find(request.session);
  if (!session.ok()) return StatusResponse(session.status());
  auto options = ParseStreamOptions(request.options);
  if (!options.ok()) {
    metrics_.protocol_errors.Increment();
    return StatusResponse(options.status());
  }
  // The handshake is a zero-event fetch: it validates the cursor against
  // the trimmed prefix (OutOfRange → "gap") and reports where the stream
  // currently stands, without blocking or consuming anything.
  auto result = (*session)->FetchStream(options->sub, options->from,
                                        /*max=*/0, /*wait_ms=*/0,
                                        /*ack=*/0);
  if (!result.ok()) return StatusResponse(result.status());
  if (options->from > result->watermark + 1) {
    // The subscriber believes the publisher holds events it never
    // accepted (e.g. the publisher recovered from a truncated WAL).
    // That is a configuration fault, not a transient gap.
    return ErrorResponse(
        "bad_request",
        StrCat("from=", options->from, " is past watermark ",
               result->watermark, "+1"));
  }
  Response response = OkResponse();
  response.fields.emplace_back("watermark", StrCat(result->watermark));
  response.fields.emplace_back("trimmed", StrCat(result->trimmed));
  return response;
}

Response CertificationServer::HandleStream(const Request& request) {
  auto session = sessions_.Find(request.session);
  if (!session.ok()) return StatusResponse(session.status());
  auto options = ParseStreamOptions(request.options);
  if (!options.ok()) {
    metrics_.protocol_errors.Increment();
    return StatusResponse(options.status());
  }
  auto result = (*session)->FetchStream(options->sub, options->from,
                                        options->max, options->wait_ms,
                                        options->ack);
  if (!result.ok()) return StatusResponse(result.status());
  metrics_.stream_fetches.Increment();
  metrics_.stream_events_published.Add(result->events.size());
  Response response = OkResponse();
  response.fields.emplace_back("from", StrCat(result->from));
  response.fields.emplace_back("count", StrCat(result->events.size()));
  response.fields.emplace_back("watermark", StrCat(result->watermark));
  response.fields.emplace_back("trimmed", StrCat(result->trimmed));
  std::string body;
  for (const workload::TraceEvent& event : result->events) {
    if (!body.empty()) body += '\n';
    body += workload::FormatTraceEvent(event);
  }
  response.body = std::move(body);
  return response;
}

void CertificationServer::SetDistributedHandler(DistributedHandler handler) {
  distributed_handler_ = std::move(handler);
}

StatusOr<std::shared_ptr<Session>> CertificationServer::FindSession(
    uint64_t id) const {
  return sessions_.Find(id);
}

Status CertificationServer::IngestRemote(
    uint64_t session, std::vector<workload::TraceEvent> events, uint64_t edge,
    uint64_t cursor_seq, const std::string& mapping) {
  COMPTX_ASSIGN_OR_RETURN(std::shared_ptr<Session> found,
                          sessions_.Find(session));
  const size_t count = events.size();
  COMPTX_RETURN_IF_ERROR(found->EnqueueIngested(
      std::move(events), edge, cursor_seq, mapping,
      [this, &found] { ScheduleSession(found); }));
  metrics_.remote_batches.Increment();
  metrics_.remote_events_ingested.Add(count);
  return Status::OK();
}

StatusOr<uint64_t> CertificationServer::Open(const std::string& options) {
  Request request;
  request.kind = CommandKind::kOpen;
  request.options = options;
  const Response response = Handle(request);
  if (!response.ok) {
    return Status::Internal(
        StrCat(response.error_code, ": ", response.error_message));
  }
  return response.FieldInt("session");
}

Status CertificationServer::Append(uint64_t session,
                                   std::vector<workload::TraceEvent> events) {
  Request request;
  request.kind = CommandKind::kAppend;
  request.session = session;
  request.events = std::move(events);
  const Response response = Handle(request);
  if (!response.ok) {
    return Status::Internal(
        StrCat(response.error_code, ": ", response.error_message));
  }
  return Status::OK();
}

StatusOr<SessionVerdict> CertificationServer::Query(uint64_t session) {
  Request request;
  request.kind = CommandKind::kQuery;
  request.session = session;
  const Response response = Handle(request);
  if (!response.ok) {
    return Status::Internal(
        StrCat(response.error_code, ": ", response.error_message));
  }
  SessionVerdict verdict;
  verdict.session = response.FieldInt("session");
  verdict.certifiable = response.FieldInt("certifiable") == 1;
  verdict.order = static_cast<uint32_t>(response.FieldInt("order"));
  verdict.events_accepted = response.FieldInt("accepted");
  verdict.events_rejected = response.FieldInt("rejected");
  verdict.failure = response.body;
  return verdict;
}

StatusOr<SessionVerdict> CertificationServer::Close(uint64_t session) {
  Request request;
  request.kind = CommandKind::kClose;
  request.session = session;
  const Response response = Handle(request);
  if (!response.ok) {
    return Status::Internal(
        StrCat(response.error_code, ": ", response.error_message));
  }
  SessionVerdict verdict;
  verdict.session = response.FieldInt("session");
  verdict.certifiable = response.FieldInt("certifiable") == 1;
  verdict.order = static_cast<uint32_t>(response.FieldInt("order"));
  verdict.events_accepted = response.FieldInt("accepted");
  verdict.events_rejected = response.FieldInt("rejected");
  verdict.failure = response.body;
  return verdict;
}

// ---- network front end ----------------------------------------------

Status CertificationServer::Listen(Endpoint& endpoint) {
  auto listener = service::Listen(endpoint);
  if (!listener.ok()) return listener.status();
  EventLoopOptions loop;
  loop.io_threads = std::max<size_t>(1, options_.io_threads);
  loop.handler_threads =
      options_.handler_threads > 0
          ? options_.handler_threads
          : std::max<size_t>(4, options_.workers);
  event_loop_ = std::make_unique<EventLoop>(
      loop, [this](const Request& request) { return Handle(request); },
      &metrics_);
  COMPTX_RETURN_IF_ERROR(event_loop_->Start(std::move(*listener)));
  COMPTX_LOG(Info) << "listening on " << endpoint.ToString() << " ("
                   << loop.io_threads << " io + " << loop.handler_threads
                   << " handler threads)";
  return Status::OK();
}

// ---- shutdown --------------------------------------------------------

bool CertificationServer::ShuttingDown() const {
  return shutting_down_.load(std::memory_order_relaxed);
}

void CertificationServer::RequestShutdown() {
  std::unique_lock<std::mutex> lock(state_mu_);
  shutting_down_.store(true, std::memory_order_relaxed);
  shutdown_cv_.notify_all();
}

void CertificationServer::WaitShutdown() {
  std::unique_lock<std::mutex> lock(state_mu_);
  shutdown_cv_.wait(lock, [this] { return ShuttingDown(); });
}

void CertificationServer::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    shutting_down_.store(true, std::memory_order_relaxed);
    shutdown_cv_.notify_all();
    if (shutdown_started_) {
      shutdown_cv_.wait(lock, [this] { return shutdown_complete_; });
      return;
    }
    shutdown_started_ = true;
    // Wait out mutating requests that passed Handle's draining check
    // before the flag flipped.  The workers are still running, so an
    // in-flight APPEND blocked on backpressure (its prefix is already
    // scheduled) and a QUERY parked in WaitDrained both finish; once the
    // count hits zero no new session or event can appear behind the
    // snapshot below.
    shutdown_cv_.wait(lock, [this] { return inflight_requests_ == 0; });
  }

  // 1. Drain every session through the still-running workers.  BeginClose
  //    fails producers blocked in backpressure, so no new events can land
  //    after the drain barrier passes.  With durability, each drained
  //    session is snapshotted (no lifecycle marker: a restart rebuilds it
  //    as live, so a graceful shutdown is indistinguishable from a crash
  //    to clients — just faster to recover).
  for (const std::shared_ptr<Session>& session : sessions_.All()) {
    session->BeginClose();
    session->WaitDrained();
    const Status persisted = session->PersistShutdown();
    if (!persisted.ok()) {
      COMPTX_LOG(Warn) << "persisting session " << session->id()
                       << " at shutdown failed: " << persisted;
    }
  }

  // 2. Stop the ticker.
  {
    std::unique_lock<std::mutex> lock(ticker_mu_);
    stop_ticker_ = true;
    ticker_cv_.notify_all();
  }
  if (ticker_.joinable()) ticker_.join();

  // 3. Stop the workers (their run queue is empty after the drain).
  {
    std::unique_lock<std::mutex> lock(run_mu_);
    stop_workers_ = true;
    run_cv_.notify_all();
  }
  if (pool_host_.joinable()) pool_host_.join();

  // 4. Tear down the network.  EventLoop::Stop is graceful: it stops
  //    accepting and reading, lets the handler pool answer every request
  //    already decoded (in particular the SHUTDOWN OK that triggered this
  //    teardown), flushes buffered responses with a bounded deadline, and
  //    only then closes the descriptors.  Requests refused during the
  //    drain above got shutting_down errors through the same path.
  if (event_loop_ != nullptr) event_loop_->Stop();

  {
    std::unique_lock<std::mutex> lock(state_mu_);
    shutdown_complete_ = true;
    shutdown_cv_.notify_all();
  }
  COMPTX_LOG(Info) << "shut down cleanly; " << metrics_.RenderLine();
}

}  // namespace comptx::service
