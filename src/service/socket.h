#ifndef COMPTX_SERVICE_SOCKET_H_
#define COMPTX_SERVICE_SOCKET_H_

#include <atomic>
#include <string>
#include <utility>

#include "util/status_or.h"

namespace comptx::service {

/// Owns a POSIX socket descriptor.  Move-only; Close() is idempotent and
/// thread-safe (the descriptor is swapped out atomically, so a concurrent
/// Close from the server's shutdown path and the owner's destructor close
/// it exactly once).  To stop another thread blocked in read()/accept()
/// on this socket, call ShutdownReadWrite() first, join that thread, and
/// only then Close() — close()ing an fd another thread is still reading
/// races with the kernel's descriptor reuse.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_.load(std::memory_order_relaxed); }
  bool valid() const { return fd() >= 0; }

  void Close();

  /// Half-closes both directions without releasing the descriptor:
  /// blocked read()s return 0 (EOF) and blocked accept()s fail, waking
  /// their threads so the caller can join them before Close().
  void ShutdownReadWrite();

 private:
  std::atomic<int> fd_{-1};
};

/// Where a server listens / a client connects.  TCP when `unix_path` is
/// empty (host defaults to 127.0.0.1, port 0 asks the kernel for an
/// ephemeral port), a Unix stream socket otherwise.
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string unix_path;

  std::string ToString() const;
};

/// Binds and listens.  On TCP with port 0 the chosen port is written back
/// into `endpoint.port`.  An existing socket file at a Unix path is
/// unlinked first (stale files from a killed server).
StatusOr<Socket> Listen(Endpoint& endpoint);

/// Accepts one connection; NotFound once the listen socket was closed.
StatusOr<Socket> Accept(const Socket& listener);

/// Connects to `endpoint`.
StatusOr<Socket> Connect(const Endpoint& endpoint);

/// Switches `fd` to non-blocking mode (the event loop's sockets; blocking
/// clients never call this).
Status SetNonBlocking(int fd);

/// Disables Nagle on a connected TCP socket (no-op for Unix sockets).
/// The protocol is request/response with small frames; batching them
/// behind a delayed ACK only adds latency.
void SetNoDelay(int fd);

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_SOCKET_H_
