#include "service/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace comptx::service {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrCat(what, ": ", std::strerror(errno)));
}

}  // namespace

void Socket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void Socket::ShutdownReadWrite() {
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

std::string Endpoint::ToString() const {
  if (!unix_path.empty()) return StrCat("unix:", unix_path);
  return StrCat(host, ":", port);
}

StatusOr<Socket> Listen(Endpoint& endpoint) {
  if (!endpoint.unix_path.empty()) {
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid()) return Errno("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument(
          StrCat("unix path too long: ", endpoint.unix_path));
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(endpoint.unix_path.c_str());
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return Errno("bind");
    }
    if (::listen(sock.fd(), SOMAXCONN) < 0) return Errno("listen");
    return sock;
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  const int enable = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrCat("bad host '", endpoint.host, "'"));
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(sock.fd(), SOMAXCONN) < 0) return Errno("listen");
  if (endpoint.port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      return Errno("getsockname");
    }
    endpoint.port = ntohs(bound.sin_port);
  }
  return sock;
}

StatusOr<Socket> Accept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EBADF / EINVAL: the listener was closed out from under us, the
    // server's signal to stop accepting.
    return Status::NotFound(StrCat("accept: ", std::strerror(errno)));
  }
}

StatusOr<Socket> Connect(const Endpoint& endpoint) {
  if (!endpoint.unix_path.empty()) {
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid()) return Errno("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument(
          StrCat("unix path too long: ", endpoint.unix_path));
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      return Errno("connect");
    }
    return sock;
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrCat("bad host '", endpoint.host, "'"));
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("connect");
  }
  SetNoDelay(sock.fd());
  return sock;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  const int enable = 1;
  // Fails harmlessly with ENOTSUP/EOPNOTSUPP on Unix sockets.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

}  // namespace comptx::service
