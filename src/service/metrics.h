#ifndef COMPTX_SERVICE_METRICS_H_
#define COMPTX_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "durability/wal.h"

namespace comptx::service {

/// A counter sharded over cache-line-sized stripes so that concurrent
/// recorders (I/O threads, handlers, workers) do not bounce one cache
/// line.  Add() picks a stripe from the calling thread's identity;
/// Value() sums the stripes (an instantaneous, monotone-consistent
/// snapshot: every completed Add is visible, concurrent ones may or may
/// not be).
class StripedCounter {
 public:
  /// Power of two, so the stripe pick is a mask, not a division.
  static constexpr size_t kStripes = 16;
  static_assert((kStripes & (kStripes - 1)) == 0);

  void Add(uint64_t delta);
  void Increment() { Add(1); }
  uint64_t Value() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// An HDR-style log-linear latency histogram over microseconds.
///
/// Values are bucketed by magnitude (one major bucket per power of two)
/// with kSubBuckets linear sub-buckets inside each major, bounding the
/// relative quantile error by 1/kSubBuckets (6.25%) — the classic
/// HdrHistogram trade: fixed memory, lock-free recording, and quantiles
/// accurate to the precision latency numbers are ever quoted at.
/// Recording is a single relaxed fetch_add; quantile extraction scans the
/// ~1k buckets.  Values above ~2^40 us (12 days) saturate the top bucket.
///
/// Like StripedCounter, the buckets (and sum/min/max) are sharded over
/// per-thread stripes: on many cores the recorders of one hot histogram
/// otherwise serialize on its cache lines.  Snap() merges the stripes.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBits = 4;                  // 16 sub-buckets
  static constexpr size_t kSubBuckets = 1u << kSubBits;  // per major
  static constexpr size_t kMajors = 40;
  static constexpr size_t kBucketCount = kSubBuckets * (kMajors + 1);
  static constexpr size_t kStripes = 8;
  static_assert((kStripes & (kStripes - 1)) == 0);

  void Record(uint64_t micros);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;

    /// The value at quantile q in [0, 1] (upper bound of the bucket
    /// holding the q-th sample).
    uint64_t ValueAt(double q) const;

    /// "count=12 mean=3.4 p50=3 p95=9 p99=12 max=15" (microseconds).
    std::string Summary() const;

    /// Adds `other`'s samples into this snapshot and recomputes the
    /// derived fields.  Bucket counts merge exactly, so the quantiles of
    /// the union are as accurate as any single snapshot's — this is how
    /// comptx_load --processes aggregates its children's histograms.
    void Merge(const Snapshot& other);

    /// One-line "count min max mean idx:n idx:n ..." rendering (nonzero
    /// buckets only) and its inverse — the --processes pipe format.
    std::string SerializeText() const;
    static std::optional<Snapshot> ParseText(const std::string& text);

   private:
    friend class LatencyHistogram;
    std::array<uint64_t, kBucketCount> buckets{};
  };

  /// Consistent-enough snapshot for monitoring: buckets are read with
  /// relaxed loads, so samples recorded concurrently may be missed.
  Snapshot Snap() const;

  /// Maps a value to its bucket index / a bucket index to the largest
  /// value it holds (exposed for tests).
  static size_t BucketFor(uint64_t micros);
  static uint64_t BucketUpperBound(size_t bucket);

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kBucketCount> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~0ull};
    std::atomic<uint64_t> max{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// Everything the service exports: lock-striped counters, gauges and the
/// two first-class latency histograms (append round-trip and verdict
/// query).  One instance per server; recorders touch disjoint stripes,
/// the STATS command and the periodic log line read snapshots.
class ServiceMetrics {
 public:
  ServiceMetrics() : start_(std::chrono::steady_clock::now()) {}

  // --- counters -----------------------------------------------------
  StripedCounter sessions_opened;
  StripedCounter sessions_closed;
  StripedCounter sessions_evicted;
  // Invariant once all queues drain:
  //   events_enqueued == events_processed + events_rejected.
  StripedCounter events_enqueued;   // accepted into a session queue
  StripedCounter events_processed;  // successfully ingested by a worker
  StripedCounter events_rejected;   // certifier rejected during ingest
  StripedCounter append_batches;
  StripedCounter verdict_queries;
  StripedCounter backpressure_waits;  // producer blocked on a full queue
  StripedCounter protocol_errors;
  StripedCounter connections_accepted;

  // Distributed topology (DESIGN.md §15): the ORDER_STREAM publisher
  // side (stream_*), the upstream-edge consumer side (remote_*), and the
  // cross-node commit protocol (prepares/decides).
  StripedCounter stream_fetches;           // STREAM requests served
  StripedCounter stream_events_published;  // events shipped in replies
  StripedCounter remote_batches;           // upstream batches applied
  StripedCounter remote_events_ingested;   // remapped events forwarded
  StripedCounter remote_events_deduped;    // creation events already known
  StripedCounter remote_remap_drops;       // events the shadow rejected
  StripedCounter edge_resubscribes;        // cursor resets after reconnect
  StripedCounter prepares;                 // PREPARE commands handled
  StripedCounter decides;                  // DECIDE commands handled

  // Certifier memory behavior (online::CertifierStats), aggregated over
  // live sessions: each session publishes deltas at the end of a worker
  // batch (while it is still the certifier's one writer) and retires its
  // contribution when it closes or is evicted, so long-session epoch
  // pruning is observable from the wire (STATS body, DESIGN.md §6).
  StripedCounter certifier_prune_passes;
  StripedCounter certifier_pruned_nodes;

  // --- durability ---------------------------------------------------
  // Written by the durability layer (WAL writers, snapshotter, recovery),
  // which takes a pointer to this block so it never depends on the
  // service layer.  All zero when the server runs without --data-dir.
  durability::Counters durability;

  // --- gauges -------------------------------------------------------
  std::atomic<int64_t> active_sessions{0};
  std::atomic<int64_t> active_connections{0};
  std::atomic<int64_t> queue_depth{0};  // events enqueued, not yet ingested
  // Live serialization-graph nodes across all live sessions' certifiers
  // (grows with ingest, shrinks with epoch pruning and session close).
  std::atomic<int64_t> certifier_live_nodes{0};

  // --- histograms (microseconds) ------------------------------------
  LatencyHistogram append_latency;
  LatencyHistogram verdict_latency;

  double UptimeSeconds() const;

  /// Events processed per second of uptime.
  double EventsPerSecond() const;

  /// Multi-line "key value" rendering, the body of the STATS response and
  /// of the periodic server log line (single-line variant).
  std::string RenderText() const;
  std::string RenderLine() const;

  /// One JSON object with the same keys as RenderText (histograms as
  /// nested objects) — the `STATS json=1` body, so the topology launcher
  /// and CI scrape counters without parsing the text format.
  std::string RenderJson() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_METRICS_H_
