#ifndef COMPTX_SERVICE_SESSION_MANAGER_H_
#define COMPTX_SERVICE_SESSION_MANAGER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "durability/manager.h"
#include "online/certifier.h"
#include "service/metrics.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::service {

/// Per-session knobs, settable per OPEN via key=value options.
struct SessionOptions {
  online::CertifierOptions certifier;

  /// Bounded event queue: producers (connection handlers) block once this
  /// many events are waiting, which is the service's backpressure — a
  /// client streaming faster than the workers certify is slowed to the
  /// certification rate instead of growing the heap.
  size_t queue_capacity = 4096;

  /// Non-zero: this OPEN resumes the evicted (or shut-down-while-evicted)
  /// session with that id from the durability directory instead of
  /// creating a new session.  Requires the server to run with a data dir.
  uint64_t resume = 0;

  /// Stream (ORDER_STREAM publisher) session: every accepted non-commit
  /// event is appended to an in-memory stream log with a 1-based
  /// monotonic sequence number that downstream subscribers fetch via
  /// STREAM.  The session's WAL doubles as the replication log — it is
  /// exempted from snapshots and compaction so a restart replays the full
  /// history and reproduces the exact sequence numbering (resubscribe-
  /// from-LSN).  Sessions that ATTACH upstream edges must also run in
  /// this mode, so their merged WAL stays a complete, ordered trace.
  bool stream = false;
};

/// Parses "key=value ..." OPEN options (forgetting, epoch_interval,
/// auto_prune, static_admission, paranoid, queue_capacity, resume,
/// stream) over `defaults`.
StatusOr<SessionOptions> ParseSessionOptions(const std::string& text,
                                             const SessionOptions& defaults);

/// Verdict + lifetime counters returned by QUERY / CLOSE.
struct SessionVerdict {
  uint64_t session = 0;
  bool certifiable = false;
  uint32_t order = 0;
  uint64_t events_accepted = 0;
  uint64_t events_rejected = 0;
  // Window observability (DESIGN.md §13): how much state the session
  // actually holds vs. how much of its history is sealed and reclaimed.
  uint64_t live_nodes = 0;
  uint64_t pruned_nodes = 0;
  uint64_t sealed_roots = 0;
  uint64_t commit_watermark = 0;
  bool static_mode = false;
  uint64_t static_fallbacks = 0;
  uint64_t paranoid_mismatches = 0;
  std::string failure;  // empty while certifiable
};

/// One STREAM fetch's result: events carry stream sequence numbers
/// `from`, `from+1`, ... contiguously; `watermark` is the highest stream
/// seq the session currently holds, `trimmed` the highest seq no longer
/// fetchable from memory (acked by every subscriber and released).
struct StreamFetchResult {
  uint64_t from = 0;
  std::vector<workload::TraceEvent> events;
  uint64_t watermark = 0;
  uint64_t trimmed = 0;
};

/// One certification session: an online::Certifier behind a bounded event
/// queue.
///
/// Concurrency protocol: any number of producers call Enqueue; exactly
/// one worker at a time drains the queue (the `scheduled_` flag hands a
/// session to at most one worker; the session manager's run queue never
/// holds a session twice).  Verdict readers use WaitDrained as a barrier:
/// it returns once every event enqueued before the call has been ingested,
/// so a QUERY observes all of the client's prior APPENDs.
class Session {
 public:
  /// Fresh session; `log` is null when durability is disabled.
  Session(uint64_t id, const SessionOptions& options, ServiceMetrics* metrics,
          std::shared_ptr<durability::SessionLog> log = nullptr);

  /// Recovered/resumed session: adopts a certifier rebuilt from disk.
  Session(uint64_t id, const SessionOptions& options, ServiceMetrics* metrics,
          std::shared_ptr<durability::SessionLog> log,
          std::unique_ptr<online::Certifier> certifier);

  uint64_t id() const { return id_; }

  /// Enqueues `events`, blocking while the queue is full (backpressure).
  /// `schedule` hands the session to the worker run queue; it is invoked
  /// (at most once per idle->scheduled transition, with `scheduled_`
  /// already flipped) whenever the session holds events but no worker —
  /// in particular for the already-pushed prefix *before* blocking for
  /// space, so a batch larger than the queue capacity cannot deadlock an
  /// idle session.  Fails once the session is closing.
  Status Enqueue(std::vector<workload::TraceEvent> events,
                 const std::function<void()>& schedule);

  /// Enqueue variant for the distributed ingest path: after logging the
  /// batch's APPEND record(s) it appends one kStreamCursor record (edge /
  /// cursor_seq / opaque mapping delta) under the same append_mu_ hold,
  /// so WAL order stays events-then-cursor and a crash between the two
  /// refetches the batch instead of losing it.  `events` may be empty
  /// (a fully deduplicated batch still advances the durable cursor).
  Status EnqueueIngested(std::vector<workload::TraceEvent> events,
                         uint64_t edge, uint64_t cursor_seq,
                         const std::string& mapping,
                         const std::function<void()>& schedule);

  /// Worker side: ingests up to `max_events` queued events.  Returns true
  /// when events remain (the worker re-schedules the session), false when
  /// the queue drained (the session left the run queue).
  bool ProcessBatch(size_t max_events);

  /// Blocks until the queue is empty and no worker is mid-batch.
  void WaitDrained();

  /// Marks the session closing: new Enqueues fail, blocked producers wake
  /// up and fail.  Queued events still drain (graceful).
  void BeginClose();

  /// Current verdict; meaningful after WaitDrained.
  SessionVerdict Verdict() const;

  size_t QueueDepth() const;

  /// Eviction: atomically checks idleness (empty queue, no worker
  /// attached, no activity since `cutoff`) and, if idle, marks the
  /// session closing in the same critical section.  Because the check
  /// and the close are one step under the session lock, a producer that
  /// already passed the table lookup either enqueued first (the session
  /// is no longer idle and survives) or enqueues after (and fails with
  /// FailedPrecondition) — an acknowledged APPEND can never land in an
  /// evicted session.
  bool CloseIfIdle(std::chrono::steady_clock::time_point cutoff);

  /// Durability lifecycle, all no-ops without a log and all requiring a
  /// drained session (empty queue, no worker attached) — the callers
  /// guarantee that via CloseIfIdle / BeginClose+WaitDrained:
  ///   PersistEvicted   - snapshot + durable EVICT marker; files stay for
  ///                      a later resume=<id> OPEN.
  ///   PersistShutdown  - snapshot + fsync; the session recovers as live.
  ///   DiscardDurableState - durable CLOSE marker, then delete the files.
  Status PersistEvicted();
  Status PersistShutdown();
  Status DiscardDurableState();

  /// Publishes the certifier's live-node / epoch-pruning stats into the
  /// service metrics as deltas since the last publication.  The caller
  /// must be the certifier's sole writer — the attached worker (end of
  /// ProcessBatch) or the restore path before the session is published.
  void PublishCertifierStats();

  /// Removes this session's live-node contribution from the gauge.
  /// Called once after the session drained (CLOSE or eviction); the
  /// cumulative prune counters stay.
  void RetireCertifierStats();

  // ---- ORDER_STREAM publisher side (stream=1 sessions) ---------------

  bool stream_enabled() const { return stream_enabled_; }

  /// Long-poll fetch of the accepted-event stream: returns events with
  /// seqs in [from, from+max), blocking up to `wait_ms` for the first one
  /// (the poll doubles as the subscriber's heartbeat — an empty reply
  /// after the wait proves liveness).  `sub`/`ack` (both optional, 0 to
  /// skip) record that subscriber `sub` has durably applied through seq
  /// `ack`; the in-memory log trims to the minimum ack over subscribers.
  /// Fails FailedPrecondition on a non-stream session and OutOfRange when
  /// `from` is at or below the trimmed prefix (the subscriber must
  /// resubscribe from its durable cursor — which can never be below the
  /// trim point, because trims only follow acks).
  StatusOr<StreamFetchResult> FetchStream(uint64_t sub, uint64_t from,
                                          uint64_t max, uint64_t wait_ms,
                                          uint64_t ack);

  /// Highest stream seq currently held (0 on a fresh/non-stream session).
  uint64_t StreamWatermark() const;

  /// Recovery: installs the replayed accepted-event history as the stream
  /// log (seqs 1..events.size()).  Called before the session is published.
  void AdoptStreamLog(std::vector<workload::TraceEvent> events);

 private:
  /// Hands the session to the run queue via `schedule` when it holds
  /// events but no worker.  Caller holds mu_.
  void ScheduleLocked(const std::function<void()>& schedule);

  /// Shared body of Enqueue / EnqueueIngested; `cursor` null for plain
  /// appends.
  struct StreamCursorRecord {
    uint64_t edge;
    uint64_t cursor_seq;
    const std::string* mapping;
  };
  Status EnqueueInternal(std::vector<workload::TraceEvent> events,
                         const StreamCursorRecord* cursor,
                         const std::function<void()>& schedule);

  const uint64_t id_;
  const size_t queue_capacity_;
  const bool stream_enabled_;
  ServiceMetrics* const metrics_;
  std::unique_ptr<online::Certifier> certifier_;
  std::shared_ptr<durability::SessionLog> log_;

  /// Serializes whole Enqueue calls (and DiscardDurableState) so the WAL
  /// record order equals the queue order — the property recovery replay
  /// depends on.  Without it two producers' batches could interleave
  /// mid-batch across a backpressure wait while their WAL records stay
  /// whole.  Ordering: append_mu_ is taken strictly before mu_ and never
  /// by the drain worker, so it adds no cycle to the lock graph.
  std::mutex append_mu_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // producers wait for queue room
  std::condition_variable drain_cv_;  // barriers wait for empty + idle
  std::deque<workload::TraceEvent> queue_;
  bool scheduled_ = false;  // in the run queue or being processed
  bool closing_ = false;
  std::chrono::steady_clock::time_point last_activity_;

  /// Last stats published to the service metrics.  Touched only by the
  /// certifier's sole writer (see PublishCertifierStats), so no lock.
  online::CertifierStats published_stats_{};

  /// Stream log state, under its own lock so long-polling subscribers
  /// never contend with producers on mu_.  closing_stream_ mirrors
  /// closing_ (set in BeginClose/CloseIfIdle) to wake parked fetches.
  mutable std::mutex stream_mu_;
  std::condition_variable stream_cv_;
  std::vector<workload::TraceEvent> stream_log_;  // seqs base+1..base+size
  uint64_t stream_base_ = 0;                      // trimmed prefix length
  std::unordered_map<uint64_t, uint64_t> stream_acks_;  // sub -> acked seq
  bool closing_stream_ = false;
};

/// Owns the session table: admission control (max_sessions), id
/// assignment, lookup, close and idle eviction.  The worker run queue
/// lives in the server, not here — the manager is purely the registry.
///
/// The table is sharded: session ids mask into kShardCount
/// independently-locked maps, id assignment and the admission count are
/// atomics, so the per-APPEND lookup from many handler threads contends
/// per shard instead of on one table mutex.
class SessionManager {
 public:
  /// Power of two, so the shard pick is a mask.
  static constexpr size_t kShardCount = 16;
  static_assert((kShardCount & (kShardCount - 1)) == 0);

  /// `durability` may be null (no --data-dir); the manager never owns it.
  SessionManager(size_t max_sessions, ServiceMetrics* metrics,
                 durability::Manager* durability);

  /// Admission control: fails with ResourceExhausted at max_sessions.
  /// `options_text` is the raw OPEN options string, persisted in the
  /// session's OPEN record so recovery rebuilds with the same knobs.
  StatusOr<std::shared_ptr<Session>> Open(const SessionOptions& options,
                                          const std::string& options_text);

  /// Re-opens session `resume_id` from the durability directory: rebuilds
  /// the certifier from its snapshot + WAL suffix, re-registers it under
  /// its original id, and appends a durable RESUME marker.  Fails with
  /// NotFound when nothing durable exists (or the session was closed),
  /// AlreadyExists when the id is currently live, InvalidArgument without
  /// durability.  Only `queue_capacity` from `request` is honored; the
  /// certifier knobs come from the stored OPEN options parsed over
  /// `defaults` — the same layering the original OPEN used — because
  /// changing them mid-stream would change the session's meaning.
  StatusOr<std::shared_ptr<Session>> Resume(uint64_t resume_id,
                                            const SessionOptions& request,
                                            const SessionOptions& defaults);

  /// Startup recovery: scans the durability directory and classifies
  /// every session by its last lifecycle marker — CLOSE: delete files;
  /// EVICT: leave on disk (resumable); otherwise rebuild into the table
  /// as live.  With `verify`, every rebuilt session is cross-checked
  /// against the batch oracle (durability::VerifyRecovery) and any
  /// mismatch fails the whole recovery.  Returns the number of sessions
  /// rebuilt into memory.
  StatusOr<size_t> RecoverAll(const SessionOptions& defaults, bool verify);

  StatusOr<std::shared_ptr<Session>> Find(uint64_t id) const;

  /// Removes the session from the table (the shared_ptr keeps it alive
  /// for in-flight workers).  NotFound when absent.
  StatusOr<std::shared_ptr<Session>> Remove(uint64_t id);

  /// Sessions idle since `cutoff`, atomically marked closing
  /// (Session::CloseIfIdle) and removed from the table.
  std::vector<std::shared_ptr<Session>> EvictIdle(
      std::chrono::steady_clock::time_point cutoff);

  /// Every live session (shutdown drains them all).
  std::vector<std::shared_ptr<Session>> All() const;

  size_t Count() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions;
  };

  Shard& ShardFor(uint64_t id) const {
    return shards_[id & (kShardCount - 1)];
  }

  /// Builds a Session from its on-disk state and registers it.  Caller
  /// holds the id's shard lock and has reserved an admission slot.
  /// `resume` selects the RESUME marker (vs. plain startup recovery) and
  /// is reflected in the metrics it bumps.
  StatusOr<std::shared_ptr<Session>> RestoreLocked(
      const durability::SessionDurableState& state,
      const SessionOptions& options, bool resume, bool verify);

  /// Raises next_id_ to at least `floor` (monotone CAS).
  void BumpNextId(uint64_t floor);

  /// Admission control: reserves a slot against max_sessions_, failing
  /// with ResourceExhausted when full.  Paired with count_ decrements on
  /// failure paths and in Remove/EvictIdle.
  Status ReserveSlot();

  const size_t max_sessions_;
  ServiceMetrics* const metrics_;
  durability::Manager* const durability_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> count_{0};
  mutable std::array<Shard, kShardCount> shards_;
};

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_SESSION_MANAGER_H_
