#ifndef COMPTX_SERVICE_SESSION_MANAGER_H_
#define COMPTX_SERVICE_SESSION_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "online/certifier.h"
#include "service/metrics.h"
#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::service {

/// Per-session knobs, settable per OPEN via key=value options.
struct SessionOptions {
  online::CertifierOptions certifier;

  /// Bounded event queue: producers (connection handlers) block once this
  /// many events are waiting, which is the service's backpressure — a
  /// client streaming faster than the workers certify is slowed to the
  /// certification rate instead of growing the heap.
  size_t queue_capacity = 4096;
};

/// Parses "key=value ..." OPEN options (forgetting, epoch_interval,
/// auto_prune, queue_capacity) over `defaults`.
StatusOr<SessionOptions> ParseSessionOptions(const std::string& text,
                                             const SessionOptions& defaults);

/// Verdict + lifetime counters returned by QUERY / CLOSE.
struct SessionVerdict {
  uint64_t session = 0;
  bool certifiable = false;
  uint32_t order = 0;
  uint64_t events_accepted = 0;
  uint64_t events_rejected = 0;
  std::string failure;  // empty while certifiable
};

/// One certification session: an online::Certifier behind a bounded event
/// queue.
///
/// Concurrency protocol: any number of producers call Enqueue; exactly
/// one worker at a time drains the queue (the `scheduled_` flag hands a
/// session to at most one worker; the session manager's run queue never
/// holds a session twice).  Verdict readers use WaitDrained as a barrier:
/// it returns once every event enqueued before the call has been ingested,
/// so a QUERY observes all of the client's prior APPENDs.
class Session {
 public:
  Session(uint64_t id, const SessionOptions& options, ServiceMetrics* metrics);

  uint64_t id() const { return id_; }

  /// Enqueues `events`, blocking while the queue is full (backpressure).
  /// `schedule` hands the session to the worker run queue; it is invoked
  /// (at most once per idle->scheduled transition, with `scheduled_`
  /// already flipped) whenever the session holds events but no worker —
  /// in particular for the already-pushed prefix *before* blocking for
  /// space, so a batch larger than the queue capacity cannot deadlock an
  /// idle session.  Fails once the session is closing.
  Status Enqueue(std::vector<workload::TraceEvent> events,
                 const std::function<void()>& schedule);

  /// Worker side: ingests up to `max_events` queued events.  Returns true
  /// when events remain (the worker re-schedules the session), false when
  /// the queue drained (the session left the run queue).
  bool ProcessBatch(size_t max_events);

  /// Blocks until the queue is empty and no worker is mid-batch.
  void WaitDrained();

  /// Marks the session closing: new Enqueues fail, blocked producers wake
  /// up and fail.  Queued events still drain (graceful).
  void BeginClose();

  /// Current verdict; meaningful after WaitDrained.
  SessionVerdict Verdict() const;

  size_t QueueDepth() const;

  /// Eviction: atomically checks idleness (empty queue, no worker
  /// attached, no activity since `cutoff`) and, if idle, marks the
  /// session closing in the same critical section.  Because the check
  /// and the close are one step under the session lock, a producer that
  /// already passed the table lookup either enqueued first (the session
  /// is no longer idle and survives) or enqueues after (and fails with
  /// FailedPrecondition) — an acknowledged APPEND can never land in an
  /// evicted session.
  bool CloseIfIdle(std::chrono::steady_clock::time_point cutoff);

 private:
  /// Hands the session to the run queue via `schedule` when it holds
  /// events but no worker.  Caller holds mu_.
  void ScheduleLocked(const std::function<void()>& schedule);

  const uint64_t id_;
  const size_t queue_capacity_;
  ServiceMetrics* const metrics_;
  online::Certifier certifier_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // producers wait for queue room
  std::condition_variable drain_cv_;  // barriers wait for empty + idle
  std::deque<workload::TraceEvent> queue_;
  bool scheduled_ = false;  // in the run queue or being processed
  bool closing_ = false;
  std::chrono::steady_clock::time_point last_activity_;
};

/// Owns the session table: admission control (max_sessions), id
/// assignment, lookup, close and idle eviction.  The worker run queue
/// lives in the server, not here — the manager is purely the registry.
class SessionManager {
 public:
  SessionManager(size_t max_sessions, ServiceMetrics* metrics);

  /// Admission control: fails with ResourceExhausted at max_sessions.
  StatusOr<std::shared_ptr<Session>> Open(const SessionOptions& options);

  StatusOr<std::shared_ptr<Session>> Find(uint64_t id) const;

  /// Removes the session from the table (the shared_ptr keeps it alive
  /// for in-flight workers).  NotFound when absent.
  StatusOr<std::shared_ptr<Session>> Remove(uint64_t id);

  /// Sessions idle since `cutoff`, atomically marked closing
  /// (Session::CloseIfIdle) and removed from the table.
  std::vector<std::shared_ptr<Session>> EvictIdle(
      std::chrono::steady_clock::time_point cutoff);

  /// Every live session (shutdown drains them all).
  std::vector<std::shared_ptr<Session>> All() const;

  size_t Count() const;

 private:
  const size_t max_sessions_;
  ServiceMetrics* const metrics_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_SESSION_MANAGER_H_
