#ifndef COMPTX_SERVICE_SERVER_H_
#define COMPTX_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/event_loop.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/session_manager.h"
#include "service/socket.h"
#include "util/thread_pool.h"

namespace comptx::service {

/// Server-wide knobs (per-session knobs live in SessionOptions).
struct ServerOptions {
  /// Certification workers.  Each drains one session at a time, so this
  /// bounds how many sessions certify concurrently.
  size_t workers = DefaultThreadCount();

  /// epoll I/O threads for the network front end (event_loop.h).  Only
  /// meaningful once Listen() is called; in-process use spawns none.
  size_t io_threads = 2;

  /// Request-handler threads behind the I/O threads (0 = auto: the
  /// larger of 4 and `workers`).  Handle() blocks on backpressure, drain
  /// barriers and fsync, so handlers are sized independently of the I/O
  /// threads that must never block.
  size_t handler_threads = 0;

  /// Admission control: OPEN fails once this many sessions are live.
  size_t max_sessions = 1024;

  /// Defaults for OPEN (overridable per session via key=value options).
  SessionOptions session;

  /// Events a worker ingests per run-queue slice.  Small enough to keep
  /// many sessions advancing fairly, large enough to amortize the queue
  /// hand-off.
  size_t batch_size = 256;

  /// Evict sessions with no traffic for this long (0 disables).  Without
  /// durability an evicted id answers not_found afterwards, exactly like
  /// a closed session; with durability the session is persisted first and
  /// an OPEN with resume=<id> restores it from disk.
  uint64_t idle_timeout_ms = 0;

  /// Log one metrics line at this interval (0 disables).
  uint64_t stats_interval_ms = 0;

  /// Per-session WAL + snapshots + crash recovery (DESIGN.md §11); off
  /// while `durability.dir` is empty.
  durability::Options durability;
};

/// The multi-session certification server.
///
/// Layering: Handle() is the complete service — the wire front end
/// (Listen + Start) just moves frames between sockets and Handle, and the
/// in-process tests, the stress suite and bench_service call Handle
/// directly.  Inside, an OPEN admits a session (SessionManager), APPEND
/// enqueues events into the session's bounded queue and hands the session
/// to the run queue, and the worker pool (util/thread_pool hosting
/// `workers` resident loops) drains scheduled sessions batch by batch
/// through their online certifiers.  QUERY/CLOSE are drain barriers: they
/// wait for the session's queue to empty, then read the verdict.
///
/// Shutdown() is graceful: new work is refused, every live session drains
/// through the still-running workers, then the workers, ticker and
/// network threads stop.  Safe to call from any thread (the SHUTDOWN
/// command triggers it from a connection handler) and idempotent.
class CertificationServer {
 public:
  explicit CertificationServer(const ServerOptions& options = {});
  ~CertificationServer();

  CertificationServer(const CertificationServer&) = delete;
  CertificationServer& operator=(const CertificationServer&) = delete;

  // ---- in-process API ----------------------------------------------
  Response Handle(const Request& request);

  /// Typed conveniences over Handle (used by tests and the bench).
  StatusOr<uint64_t> Open(const std::string& options = "");
  Status Append(uint64_t session, std::vector<workload::TraceEvent> events);
  StatusOr<SessionVerdict> Query(uint64_t session);
  StatusOr<SessionVerdict> Close(uint64_t session);

  ServiceMetrics& metrics() { return metrics_; }
  const ServerOptions& options() const { return options_; }
  size_t SessionCount() const { return sessions_.Count(); }

  // ---- distributed extension (DESIGN.md §15) -----------------------
  /// Handler for the ATTACH/DETACH/PREPARE/DECIDE command family.  The
  /// server serves the *publisher* side of ORDER_STREAM
  /// (SUBSCRIBE/STREAM) natively; the consumer/commit side lives in
  /// src/distributed, which links against this library — so comptx_serve
  /// and the distributed tests inject the controller here instead of the
  /// server depending upward.  Set before serving (not thread-safe
  /// against concurrent Handle); while unset the four commands answer
  /// `unsupported`.
  using DistributedHandler = std::function<Response(const Request&)>;
  void SetDistributedHandler(DistributedHandler handler);

  /// Distributed-layer access: resolves a live session by id.
  StatusOr<std::shared_ptr<Session>> FindSession(uint64_t id) const;

  /// Hands a remotely ingested (already remapped) batch to `session`:
  /// Session::EnqueueIngested logs the events and edge cursor in one WAL
  /// hold, then the session joins the run queue.  `events` may be empty —
  /// a fully deduplicated batch still advances the durable cursor.
  Status IngestRemote(uint64_t session,
                      std::vector<workload::TraceEvent> events, uint64_t edge,
                      uint64_t cursor_seq, const std::string& mapping);

  /// Durability/recovery outcome of construction.  Non-OK when the data
  /// dir could not be set up, a session failed to rebuild, or (with
  /// verify_recovery) a recovered verdict diverged from the batch oracle.
  /// The daemon refuses to serve in that case; tests assert on it.
  const Status& InitStatus() const { return init_status_; }

  /// Runs one idle-eviction sweep now (the ticker calls this
  /// periodically; tests call it directly).  Returns evicted sessions.
  size_t EvictIdleNow();

  // ---- network front end -------------------------------------------
  /// Binds and starts the acceptor; endpoint.port carries the bound port
  /// back for port 0.  Call at most once, before Shutdown.
  Status Listen(Endpoint& endpoint);

  /// Marks the server as draining (new OPEN/APPEND/QUERY/CLOSE are
  /// refused) and wakes WaitShutdown.  The SHUTDOWN command calls this —
  /// not Shutdown() directly, which would join the very connection thread
  /// handling the command.
  void RequestShutdown();

  /// Graceful drain + full teardown; returns once everything stopped.
  /// Idempotent; concurrent callers block until the teardown finishes.
  void Shutdown();

  /// Blocks until a shutdown was requested (the daemon's main thread
  /// parks here, then runs Shutdown()).
  void WaitShutdown();

  bool ShuttingDown() const;

 private:
  void WorkerLoop();
  void TickerLoop();
  void ScheduleSession(std::shared_ptr<Session> session);

  /// The command switch behind Handle (which wraps mutating commands in
  /// the draining check + in-flight count).
  Response Dispatch(const Request& request);

  Response HandleOpen(const Request& request);
  Response HandleAppend(const Request& request);
  Response HandleQueryOrClose(const Request& request, bool close);
  Response HandleStats(const Request& request);
  Response HandleSubscribe(const Request& request);
  Response HandleStream(const Request& request);

  const ServerOptions options_;
  ServiceMetrics metrics_;
  DistributedHandler distributed_handler_;
  // Declared before sessions_: the session manager holds a raw pointer
  // into the durability manager, so construction/destruction order
  // matters.  init_status_ collects durability setup + recovery failures
  // (a constructor cannot return a Status).
  Status init_status_;
  std::unique_ptr<durability::Manager> durability_;
  SessionManager sessions_;

  // Run queue: sessions with pending events, each present at most once
  // (Session::scheduled_).  Workers block here when the service is idle.
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  std::deque<std::shared_ptr<Session>> run_queue_;
  bool stop_workers_ = false;

  // The worker pool: a util/thread_pool whose ParallelFor hosts one
  // resident WorkerLoop per worker; pool_host_ is the caller thread that
  // parks inside ParallelFor until shutdown.
  std::unique_ptr<ThreadPool> pool_;
  std::thread pool_host_;

  std::thread ticker_;  // idle eviction + periodic stats line
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool stop_ticker_ = false;

  // Network front end: the epoll event loop (event_loop.h).  Null until
  // Listen(); in-process servers never create one.
  std::unique_ptr<EventLoop> event_loop_;

  mutable std::mutex state_mu_;
  std::condition_variable shutdown_cv_;
  std::atomic<bool> shutting_down_{false};
  bool shutdown_started_ = false;
  bool shutdown_complete_ = false;
  // Mutating requests (OPEN/APPEND/QUERY/CLOSE) currently inside
  // Dispatch.  Incremented under state_mu_ only while !shutting_down_;
  // Shutdown waits for zero before snapshotting the session table, so a
  // request that passed the draining check cannot land work behind the
  // drain.
  size_t inflight_requests_ = 0;
};

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_SERVER_H_
