#include "service/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <thread>

#include "util/string_util.h"

namespace comptx::service {

namespace {

/// Stable per-thread stripe choice; hashing the thread id spreads
/// consecutive ids across stripes.  Callers mask down to their own
/// power-of-two stripe count.
size_t ThreadStripe() {
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe;
}

}  // namespace

void StripedCounter::Add(uint64_t delta) {
  stripes_[ThreadStripe() & (kStripes - 1)].value.fetch_add(
      delta, std::memory_order_relaxed);
}

uint64_t StripedCounter::Value() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

size_t LatencyHistogram::BucketFor(uint64_t micros) {
  if (micros < kSubBuckets) return static_cast<size_t>(micros);
  // major = index of the highest set bit; sub = the kSubBits bits below it.
  size_t major = 63 - static_cast<size_t>(std::countl_zero(micros));
  if (major > kMajors + kSubBits - 1) major = kMajors + kSubBits - 1;
  const size_t sub =
      static_cast<size_t>(micros >> (major - kSubBits)) & (kSubBuckets - 1);
  return (major - kSubBits + 1) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const size_t major = bucket / kSubBuckets + kSubBits - 1;
  const size_t sub = bucket % kSubBuckets;
  const uint64_t base = 1ull << major;
  const uint64_t width = 1ull << (major - kSubBits);
  return base + (sub + 1) * width - 1;
}

void LatencyHistogram::Record(uint64_t micros) {
  Stripe& stripe = stripes_[ThreadStripe() & (kStripes - 1)];
  stripe.buckets[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = stripe.min.load(std::memory_order_relaxed);
  while (micros < seen && !stripe.min.compare_exchange_weak(
                              seen, micros, std::memory_order_relaxed)) {
  }
  seen = stripe.max.load(std::memory_order_relaxed);
  while (micros > seen && !stripe.max.compare_exchange_weak(
                              seen, micros, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::Snapshot::ValueAt(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target sample (1-based), then the first bucket whose
  // cumulative count reaches it.
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      uint64_t value = BucketUpperBound(i);
      return value > max ? max : value;
    }
  }
  return max;
}

std::string LatencyHistogram::Snapshot::Summary() const {
  return StrCat("count=", count, " mean=", mean, " p50=", p50, " p95=", p95,
                " p99=", p99, " max=", max);
}

void LatencyHistogram::Snapshot::Merge(const Snapshot& other) {
  if (other.count == 0) return;
  const double total_sum = mean * static_cast<double>(count) +
                           other.mean * static_cast<double>(other.count);
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  for (size_t i = 0; i < kBucketCount; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  mean = total_sum / static_cast<double>(count);
  p50 = ValueAt(0.50);
  p95 = ValueAt(0.95);
  p99 = ValueAt(0.99);
}

std::string LatencyHistogram::Snapshot::SerializeText() const {
  std::string out = StrCat(count, " ", min, " ", max, " ", mean);
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] != 0) out = StrCat(out, " ", i, ":", buckets[i]);
  }
  return out;
}

std::optional<LatencyHistogram::Snapshot>
LatencyHistogram::Snapshot::ParseText(const std::string& text) {
  Snapshot snap;
  std::istringstream in(text);
  if (!(in >> snap.count >> snap.min >> snap.max >> snap.mean)) {
    return std::nullopt;
  }
  std::string entry;
  while (in >> entry) {
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) return std::nullopt;
    char* end = nullptr;
    const size_t index = std::strtoul(entry.c_str(), &end, 10);
    if (end != entry.c_str() + colon || index >= kBucketCount) {
      return std::nullopt;
    }
    snap.buckets[index] = std::strtoull(entry.c_str() + colon + 1, &end, 10);
    if (*end != '\0') return std::nullopt;
  }
  snap.p50 = snap.ValueAt(0.50);
  snap.p95 = snap.ValueAt(0.95);
  snap.p99 = snap.ValueAt(0.99);
  return snap;
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  uint64_t sum = 0;
  uint64_t min = ~0ull;
  for (const Stripe& stripe : stripes_) {
    for (size_t i = 0; i < kBucketCount; ++i) {
      const uint64_t n = stripe.buckets[i].load(std::memory_order_relaxed);
      snap.buckets[i] += n;
      snap.count += n;
    }
    sum += stripe.sum.load(std::memory_order_relaxed);
    min = std::min(min, stripe.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, stripe.max.load(std::memory_order_relaxed));
  }
  if (snap.count == 0) return snap;
  snap.min = min;
  snap.mean = static_cast<double>(sum) / static_cast<double>(snap.count);
  snap.p50 = snap.ValueAt(0.50);
  snap.p95 = snap.ValueAt(0.95);
  snap.p99 = snap.ValueAt(0.99);
  return snap;
}

double ServiceMetrics::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double ServiceMetrics::EventsPerSecond() const {
  const double seconds = UptimeSeconds();
  if (seconds <= 0) return 0;
  return static_cast<double>(events_processed.Value()) / seconds;
}

std::string ServiceMetrics::RenderText() const {
  const LatencyHistogram::Snapshot append = append_latency.Snap();
  const LatencyHistogram::Snapshot verdict = verdict_latency.Snap();
  std::string out;
  const auto line = [&out](const char* key, const auto& value) {
    out += StrCat(key, " ", value, "\n");
  };
  line("uptime_seconds", UptimeSeconds());
  line("active_sessions", active_sessions.load(std::memory_order_relaxed));
  line("active_connections",
       active_connections.load(std::memory_order_relaxed));
  line("connections_accepted", connections_accepted.Value());
  line("queue_depth", queue_depth.load(std::memory_order_relaxed));
  line("sessions_opened", sessions_opened.Value());
  line("sessions_closed", sessions_closed.Value());
  line("sessions_evicted", sessions_evicted.Value());
  line("events_enqueued", events_enqueued.Value());
  line("events_processed", events_processed.Value());
  line("events_rejected", events_rejected.Value());
  line("events_per_second", EventsPerSecond());
  line("append_batches", append_batches.Value());
  line("verdict_queries", verdict_queries.Value());
  line("backpressure_waits", backpressure_waits.Value());
  line("protocol_errors", protocol_errors.Value());
  line("certifier_live_nodes",
       certifier_live_nodes.load(std::memory_order_relaxed));
  line("certifier_prune_passes", certifier_prune_passes.Value());
  line("certifier_pruned_nodes", certifier_pruned_nodes.Value());
  line("stream_fetches", stream_fetches.Value());
  line("stream_events_published", stream_events_published.Value());
  line("remote_batches", remote_batches.Value());
  line("remote_events_ingested", remote_events_ingested.Value());
  line("remote_events_deduped", remote_events_deduped.Value());
  line("remote_remap_drops", remote_remap_drops.Value());
  line("edge_resubscribes", edge_resubscribes.Value());
  line("prepares", prepares.Value());
  line("decides", decides.Value());
  const auto counter = [](const std::atomic<uint64_t>& value) {
    return value.load(std::memory_order_relaxed);
  };
  line("wal_appends", counter(durability.wal_appends));
  line("wal_append_events", counter(durability.wal_append_events));
  line("wal_bytes", counter(durability.wal_bytes));
  line("fsyncs", counter(durability.fsyncs));
  line("snapshots_written", counter(durability.snapshots_written));
  line("sessions_recovered", counter(durability.sessions_recovered));
  line("records_truncated", counter(durability.records_truncated));
  line("recovered_events", counter(durability.recovered_events));
  line("recovery_mismatches", counter(durability.recovery_mismatches));
  line("append_latency_us", append.Summary());
  line("verdict_latency_us", verdict.Summary());
  return out;
}

std::string ServiceMetrics::RenderJson() const {
  const LatencyHistogram::Snapshot append = append_latency.Snap();
  const LatencyHistogram::Snapshot verdict = verdict_latency.Snap();
  std::ostringstream out;
  bool first = true;
  const auto field = [&](const char* key, const auto& value) {
    out << (first ? "" : ", ") << "\"" << key << "\": " << value;
    first = false;
  };
  const auto histogram = [&](const char* key,
                             const LatencyHistogram::Snapshot& snap) {
    out << (first ? "" : ", ") << "\"" << key << "\": {\"count\": "
        << snap.count << ", \"min\": " << snap.min << ", \"max\": " << snap.max
        << ", \"mean\": " << snap.mean << ", \"p50\": " << snap.p50
        << ", \"p95\": " << snap.p95 << ", \"p99\": " << snap.p99 << "}";
    first = false;
  };
  const auto counter = [](const std::atomic<uint64_t>& value) {
    return value.load(std::memory_order_relaxed);
  };
  out << "{";
  field("uptime_seconds", UptimeSeconds());
  field("active_sessions", active_sessions.load(std::memory_order_relaxed));
  field("active_connections",
        active_connections.load(std::memory_order_relaxed));
  field("connections_accepted", connections_accepted.Value());
  field("queue_depth", queue_depth.load(std::memory_order_relaxed));
  field("sessions_opened", sessions_opened.Value());
  field("sessions_closed", sessions_closed.Value());
  field("sessions_evicted", sessions_evicted.Value());
  field("events_enqueued", events_enqueued.Value());
  field("events_processed", events_processed.Value());
  field("events_rejected", events_rejected.Value());
  field("events_per_second", EventsPerSecond());
  field("append_batches", append_batches.Value());
  field("verdict_queries", verdict_queries.Value());
  field("backpressure_waits", backpressure_waits.Value());
  field("protocol_errors", protocol_errors.Value());
  field("certifier_live_nodes",
        certifier_live_nodes.load(std::memory_order_relaxed));
  field("certifier_prune_passes", certifier_prune_passes.Value());
  field("certifier_pruned_nodes", certifier_pruned_nodes.Value());
  field("stream_fetches", stream_fetches.Value());
  field("stream_events_published", stream_events_published.Value());
  field("remote_batches", remote_batches.Value());
  field("remote_events_ingested", remote_events_ingested.Value());
  field("remote_events_deduped", remote_events_deduped.Value());
  field("remote_remap_drops", remote_remap_drops.Value());
  field("edge_resubscribes", edge_resubscribes.Value());
  field("prepares", prepares.Value());
  field("decides", decides.Value());
  field("wal_appends", counter(durability.wal_appends));
  field("wal_append_events", counter(durability.wal_append_events));
  field("wal_bytes", counter(durability.wal_bytes));
  field("fsyncs", counter(durability.fsyncs));
  field("snapshots_written", counter(durability.snapshots_written));
  field("sessions_recovered", counter(durability.sessions_recovered));
  field("records_truncated", counter(durability.records_truncated));
  field("recovered_events", counter(durability.recovered_events));
  field("recovery_mismatches", counter(durability.recovery_mismatches));
  histogram("append_latency_us", append);
  histogram("verdict_latency_us", verdict);
  out << "}";
  return out.str();
}

std::string ServiceMetrics::RenderLine() const {
  const LatencyHistogram::Snapshot append = append_latency.Snap();
  const LatencyHistogram::Snapshot verdict = verdict_latency.Snap();
  return StrCat(
      "sessions=", active_sessions.load(std::memory_order_relaxed),
      " depth=", queue_depth.load(std::memory_order_relaxed),
      " enq=", events_enqueued.Value(), " proc=", events_processed.Value(),
      " rej=", events_rejected.Value(), " evict=", sessions_evicted.Value(),
      " conns=", active_connections.load(std::memory_order_relaxed),
      " live_nodes=", certifier_live_nodes.load(std::memory_order_relaxed),
      " eps=", EventsPerSecond(), " append_p99us=", append.p99,
      " verdict_p99us=", verdict.p99);
}

}  // namespace comptx::service
