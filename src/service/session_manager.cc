#include "service/session_manager.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::service {

namespace {

const char* StepName(online::OnlineFailure::Step step) {
  switch (step) {
    case online::OnlineFailure::Step::kCalculation:
      return "calculation";
    case online::OnlineFailure::Step::kConflictConsistency:
      return "conflict consistency";
  }
  return "?";
}

StatusOr<uint64_t> ParseUint(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || errno != 0 || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(
        StrCat("option ", key, " needs a non-negative integer, got '", value,
               "'"));
  }
  return static_cast<uint64_t>(parsed);
}

StatusOr<bool> ParseBool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  return Status::InvalidArgument(
      StrCat("option ", key, " needs 0/1/true/false, got '", value, "'"));
}

}  // namespace

StatusOr<SessionOptions> ParseSessionOptions(const std::string& text,
                                             const SessionOptions& defaults) {
  SessionOptions options = defaults;
  for (const std::string& token : StrSplit(text, ' ')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("OPEN option '", token, "' is not key=value"));
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "forgetting") {
      COMPTX_ASSIGN_OR_RETURN(options.certifier.forgetting,
                              ParseBool(key, value));
    } else if (key == "auto_prune") {
      COMPTX_ASSIGN_OR_RETURN(options.certifier.auto_prune,
                              ParseBool(key, value));
    } else if (key == "epoch_interval") {
      COMPTX_ASSIGN_OR_RETURN(uint64_t parsed, ParseUint(key, value));
      options.certifier.epoch_interval = static_cast<uint32_t>(parsed);
    } else if (key == "queue_capacity") {
      COMPTX_ASSIGN_OR_RETURN(uint64_t parsed, ParseUint(key, value));
      if (parsed == 0) {
        return Status::InvalidArgument("queue_capacity must be positive");
      }
      options.queue_capacity = static_cast<size_t>(parsed);
    } else if (key == "static_admission") {
      COMPTX_ASSIGN_OR_RETURN(options.certifier.static_admission,
                              ParseBool(key, value));
    } else if (key == "paranoid") {
      COMPTX_ASSIGN_OR_RETURN(options.certifier.paranoid,
                              ParseBool(key, value));
    } else if (key == "resume") {
      COMPTX_ASSIGN_OR_RETURN(options.resume, ParseUint(key, value));
      if (options.resume == 0) {
        return Status::InvalidArgument("resume needs a session id");
      }
    } else if (key == "stream") {
      COMPTX_ASSIGN_OR_RETURN(options.stream, ParseBool(key, value));
    } else {
      return Status::InvalidArgument(StrCat("unknown OPEN option '", key, "'"));
    }
  }
  return options;
}

Session::Session(uint64_t id, const SessionOptions& options,
                 ServiceMetrics* metrics,
                 std::shared_ptr<durability::SessionLog> log)
    : Session(id, options, metrics, std::move(log),
              std::make_unique<online::Certifier>(options.certifier)) {}

Session::Session(uint64_t id, const SessionOptions& options,
                 ServiceMetrics* metrics,
                 std::shared_ptr<durability::SessionLog> log,
                 std::unique_ptr<online::Certifier> certifier)
    : id_(id),
      queue_capacity_(options.queue_capacity),
      stream_enabled_(options.stream),
      metrics_(metrics),
      certifier_(std::move(certifier)),
      log_(std::move(log)),
      last_activity_(std::chrono::steady_clock::now()) {
  // A stream session's WAL is its subscribers' resync source: exempt it
  // from snapshot+compaction so the full history survives on disk.
  if (stream_enabled_ && log_ != nullptr) log_->SetSnapshotExempt();
}

void Session::ScheduleLocked(const std::function<void()>& schedule) {
  if (scheduled_ || queue_.empty()) return;
  scheduled_ = true;
  // Invoked under mu_: the run queue's run_mu_ is a leaf lock (workers
  // release it before calling ProcessBatch), so mu_ -> run_mu_ is the
  // only nesting order and cannot deadlock.
  schedule();
}

Status Session::Enqueue(std::vector<workload::TraceEvent> events,
                        const std::function<void()>& schedule) {
  return EnqueueInternal(std::move(events), nullptr, schedule);
}

Status Session::EnqueueIngested(std::vector<workload::TraceEvent> events,
                                uint64_t edge, uint64_t cursor_seq,
                                const std::string& mapping,
                                const std::function<void()>& schedule) {
  const StreamCursorRecord cursor{edge, cursor_seq, &mapping};
  return EnqueueInternal(std::move(events), &cursor, schedule);
}

Status Session::EnqueueInternal(std::vector<workload::TraceEvent> events,
                                const StreamCursorRecord* cursor,
                                const std::function<void()>& schedule) {
  // Whole-batch serialization: holding append_mu_ across the entire call
  // (including backpressure waits) keeps WAL record order identical to
  // queue order, so recovery replay reproduces the ingest stream.  The
  // drain worker never takes append_mu_, so producers blocked here do not
  // stall the drain that frees their space.
  std::lock_guard<std::mutex> append_lock(append_mu_);
  if (log_ != nullptr) {
    {
      // Log-then-push, but never log into a closing session: after CLOSE
      // the WAL gains its CLOSE marker and the files are removed, so a
      // late append must fail before touching the writer.
      std::unique_lock<std::mutex> lock(mu_);
      if (closing_) {
        return Status::FailedPrecondition(
            StrCat("session ", id_, " is closing"));
      }
    }
    // Events are durable (after SyncForAck below) *before* the client
    // sees the ack.  A crash between here and the ack over-persists the
    // batch — harmless: recovery replays it once and a resuming client
    // continues from the recovered event count.
    COMPTX_RETURN_IF_ERROR(log_->LogAppend(events));
    if (cursor != nullptr) {
      // Events first, cursor second: a crash in between re-fetches the
      // batch from the upstream (deduplicated on arrival) — the reverse
      // order would durably skip events that never landed.
      COMPTX_RETURN_IF_ERROR(log_->LogStreamCursor(
          cursor->edge, cursor->cursor_seq, *cursor->mapping));
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  last_activity_ = std::chrono::steady_clock::now();
  for (workload::TraceEvent& event : events) {
    while (queue_.size() >= queue_capacity_ && !closing_) {
      // Hand the already-pushed prefix to a worker before blocking for
      // space: a batch larger than the queue capacity would otherwise
      // fill an idle (never-scheduled) session and wait forever for a
      // drain that no worker was asked to perform.
      ScheduleLocked(schedule);
      metrics_->backpressure_waits.Increment();
      space_cv_.wait(lock);
    }
    if (closing_) {
      return Status::FailedPrecondition(
          StrCat("session ", id_, " is closing"));
    }
    queue_.push_back(std::move(event));
    metrics_->events_enqueued.Increment();
    metrics_->queue_depth.fetch_add(1, std::memory_order_relaxed);
  }
  ScheduleLocked(schedule);
  last_activity_ = std::chrono::steady_clock::now();
  lock.unlock();
  // The group-commit ack barrier (fsync under the `always` policy).  Done
  // outside mu_ so the drain worker and other producers keep moving, but
  // inside append_mu_ — the ordering guarantee costs nothing extra here
  // because concurrent ackers still share one fsync via the writer.
  if (log_ != nullptr) COMPTX_RETURN_IF_ERROR(log_->SyncForAck());
  return Status::OK();
}

bool Session::ProcessBatch(size_t max_events) {
  std::vector<workload::TraceEvent> batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t take = std::min(max_events, queue_.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }

  // Ingest outside the session lock: the scheduled_ flag guarantees this
  // is the only worker draining, so stream order is preserved, and
  // producers keep enqueueing (into the freed capacity) concurrently.
  // The whole drain goes through IngestBatch — one certifier lock hold,
  // one Pearce-Kelly maintenance window, one prune pass per batch.
  std::vector<Status> statuses;
  const uint64_t rejected =
      certifier_->IngestBatch(batch, stream_enabled_ ? &statuses : nullptr);
  if (stream_enabled_) {
    // Publish the accepted subsequence to the stream log.  Commits are
    // excluded: commit decisions flow *down* the topology via PREPARE/
    // DECIDE, never up, so the stream carries exactly the pulled-up
    // observed orders and effective-conflict structure.
    std::lock_guard<std::mutex> stream_lock(stream_mu_);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!statuses[i].ok()) continue;
      if (batch[i].kind == workload::TraceEventKind::kCommit ||
          batch[i].kind == workload::TraceEventKind::kCommitThrough) {
        continue;
      }
      stream_log_.push_back(batch[i]);
    }
    stream_cv_.notify_all();
  }
  // events_processed counts only successful ingests, so the invariant
  // events_enqueued == events_processed + events_rejected holds once
  // every queue drains.
  metrics_->events_processed.Add(batch.size() - rejected);
  if (rejected > 0) metrics_->events_rejected.Add(rejected);
  metrics_->queue_depth.fetch_sub(static_cast<int64_t>(batch.size()),
                                  std::memory_order_relaxed);

  if (log_ != nullptr && !batch.empty()) {
    log_->OnIngested(batch.size());
    if (log_->SnapshotDue()) {
      // Snapshotting here is safe: the scheduled_ flag makes this worker
      // the certifier's only writer, so the capture sees a quiescent
      // image covering exactly the ingested prefix.  Failure is logged,
      // not fatal — the WAL alone still recovers the session.
      const Status snapshot = log_->WriteSnapshot(*certifier_);
      if (!snapshot.ok()) {
        COMPTX_LOG(Warn) << "snapshot of session " << id_
                         << " failed: " << snapshot;
      }
    }
  }

  // Still the certifier's sole writer here (the scheduled_ flag is not
  // released until below), so the stat publication cannot race another
  // publisher.
  PublishCertifierStats();

  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.notify_all();
  if (queue_.empty()) {
    scheduled_ = false;
    drain_cv_.notify_all();
    return false;
  }
  return true;
}

void Session::PublishCertifierStats() {
  const online::CertifierStats stats = certifier_->Stats();
  metrics_->certifier_live_nodes.fetch_add(
      static_cast<int64_t>(stats.live_nodes) -
          static_cast<int64_t>(published_stats_.live_nodes),
      std::memory_order_relaxed);
  metrics_->certifier_prune_passes.Add(stats.prune_passes -
                                       published_stats_.prune_passes);
  metrics_->certifier_pruned_nodes.Add(stats.pruned_nodes -
                                       published_stats_.pruned_nodes);
  published_stats_ = stats;
}

void Session::RetireCertifierStats() {
  metrics_->certifier_live_nodes.fetch_sub(
      static_cast<int64_t>(published_stats_.live_nodes),
      std::memory_order_relaxed);
  published_stats_.live_nodes = 0;
}

void Session::WaitDrained() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !scheduled_; });
  last_activity_ = std::chrono::steady_clock::now();
}

void Session::BeginClose() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    closing_ = true;
    space_cv_.notify_all();
  }
  std::lock_guard<std::mutex> stream_lock(stream_mu_);
  closing_stream_ = true;
  stream_cv_.notify_all();
}

Status Session::PersistEvicted() {
  if (log_ == nullptr) return Status::OK();
  return log_->PersistEvicted(*certifier_);
}

Status Session::PersistShutdown() {
  if (log_ == nullptr) return Status::OK();
  return log_->PersistShutdown(*certifier_);
}

Status Session::DiscardDurableState() {
  if (log_ == nullptr) return Status::OK();
  // Serializes with any producer still inside Enqueue: once we hold
  // append_mu_ the producer either finished logging (its events drained
  // before our caller's WaitDrained returned, or they sit in the WAL the
  // CLOSE marker now supersedes) or it has not logged yet and will see
  // closing_ first.
  std::lock_guard<std::mutex> append_lock(append_mu_);
  return log_->MarkClosedAndRemove();
}

SessionVerdict Session::Verdict() const {
  const online::CertifierVerdict verdict = certifier_->Verdict();
  const online::CertifierStats stats = certifier_->Stats();
  SessionVerdict out;
  out.session = id_;
  out.certifiable = verdict.certifiable;
  out.order = verdict.order;
  out.events_accepted = stats.events_accepted;
  out.events_rejected = stats.events_rejected;
  out.live_nodes = stats.live_nodes;
  out.pruned_nodes = stats.pruned_nodes;
  out.sealed_roots = stats.sealed_roots;
  out.commit_watermark = stats.commit_watermark;
  out.static_mode = stats.static_mode;
  out.static_fallbacks = stats.static_fallbacks;
  out.paranoid_mismatches = stats.paranoid_mismatches;
  if (!verdict.certifiable && verdict.failure.has_value()) {
    out.failure = StrCat("level ", verdict.failure->level, " ",
                         StepName(verdict.failure->step), ": ",
                         verdict.failure->description);
  }
  return out;
}

size_t Session::QueueDepth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

bool Session::CloseIfIdle(std::chrono::steady_clock::time_point cutoff) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!queue_.empty() || scheduled_ || closing_ || last_activity_ >= cutoff) {
    return false;
  }
  // Checking idleness and flipping closing_ under one hold of mu_ means a
  // producer that already looked the session up either beat us (the
  // queue is non-empty and we bail) or sees closing_ and fails — never
  // an acknowledged enqueue into an evicted session.
  closing_ = true;
  space_cv_.notify_all();
  lock.unlock();
  std::lock_guard<std::mutex> stream_lock(stream_mu_);
  closing_stream_ = true;
  stream_cv_.notify_all();
  return true;
}

StatusOr<StreamFetchResult> Session::FetchStream(uint64_t sub, uint64_t from,
                                                 uint64_t max,
                                                 uint64_t wait_ms,
                                                 uint64_t ack) {
  if (!stream_enabled_) {
    return Status::FailedPrecondition(
        StrCat("session ", id_, " is not a stream session (open stream=1)"));
  }
  if (from == 0) {
    return Status::InvalidArgument("stream seqs are 1-based; from=0");
  }
  std::unique_lock<std::mutex> lock(stream_mu_);
  if (sub != 0) {
    uint64_t& acked = stream_acks_[sub];
    acked = std::max(acked, ack);
    // Trim through the minimum ack: every subscriber has durably applied
    // that prefix, so the WAL alone covers any future resubscribe below
    // it (which, by the ack invariant, never happens).
    uint64_t min_ack = ~0ull;
    for (const auto& [s, a] : stream_acks_) min_ack = std::min(min_ack, a);
    if (min_ack != ~0ull && min_ack > stream_base_) {
      const uint64_t watermark = stream_base_ + stream_log_.size();
      const uint64_t trim_to = std::min(min_ack, watermark);
      stream_log_.erase(stream_log_.begin(),
                        stream_log_.begin() + (trim_to - stream_base_));
      stream_base_ = trim_to;
    }
  }
  if (from <= stream_base_) {
    return Status::OutOfRange(
        StrCat("stream trimmed through ", stream_base_, "; cannot fetch ",
               from, " (resubscribe from the durable cursor)"));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  while (stream_base_ + stream_log_.size() < from && !closing_stream_) {
    if (wait_ms == 0 ||
        stream_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  StreamFetchResult result;
  result.from = from;
  result.trimmed = stream_base_;
  result.watermark = stream_base_ + stream_log_.size();
  const uint64_t start = from - stream_base_ - 1;  // index into the log
  for (uint64_t i = start; i < stream_log_.size() && result.events.size() < max;
       ++i) {
    result.events.push_back(stream_log_[i]);
  }
  return result;
}

uint64_t Session::StreamWatermark() const {
  std::lock_guard<std::mutex> lock(stream_mu_);
  return stream_base_ + stream_log_.size();
}

void Session::AdoptStreamLog(std::vector<workload::TraceEvent> events) {
  std::lock_guard<std::mutex> lock(stream_mu_);
  stream_base_ = 0;
  stream_log_ = std::move(events);
}

SessionManager::SessionManager(size_t max_sessions, ServiceMetrics* metrics,
                               durability::Manager* durability)
    : max_sessions_(max_sessions),
      metrics_(metrics),
      durability_(durability) {}

void SessionManager::BumpNextId(uint64_t floor) {
  uint64_t seen = next_id_.load(std::memory_order_relaxed);
  while (seen < floor && !next_id_.compare_exchange_weak(
                             seen, floor, std::memory_order_relaxed)) {
  }
}

Status SessionManager::ReserveSlot() {
  // Optimistic reserve-then-check: the transient overshoot is invisible
  // (Count() sums the shard maps, not this counter) and the rollback
  // keeps the reservation exact.
  if (count_.fetch_add(1, std::memory_order_relaxed) >= max_sessions_) {
    count_.fetch_sub(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrCat("session limit of ", max_sessions_, " reached"));
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<Session>> SessionManager::Open(
    const SessionOptions& options, const std::string& options_text) {
  COMPTX_RETURN_IF_ERROR(ReserveSlot());
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock(shard.mu);
  std::shared_ptr<durability::SessionLog> log;
  if (durability_ != nullptr) {
    // One file creation + fsync per session lifetime; done under the
    // shard lock so the WAL file and the table entry appear together
    // from this thread's perspective (ids are never reused, so a file
    // without an entry can only mean a failed CreateLog below).
    auto created = durability_->CreateLog(id, options_text);
    if (!created.ok()) {
      count_.fetch_sub(1, std::memory_order_relaxed);
      return created.status();
    }
    log = std::move(*created);
  }
  auto session = std::make_shared<Session>(id, options, metrics_, std::move(log));
  shard.sessions.emplace(id, session);
  metrics_->sessions_opened.Increment();
  metrics_->active_sessions.fetch_add(1, std::memory_order_relaxed);
  return session;
}

StatusOr<std::shared_ptr<Session>> SessionManager::RestoreLocked(
    const durability::SessionDurableState& state, const SessionOptions& options,
    bool resume, bool verify) {
  std::vector<workload::TraceEvent> accepted_stream;
  COMPTX_ASSIGN_OR_RETURN(
      auto certifier,
      durability::RebuildCertifier(state, options.certifier,
                                   options.stream ? &accepted_stream
                                                  : nullptr));
  if (verify) {
    const Status verdict = durability::VerifyRecovery(*certifier, state.event_seq);
    if (!verdict.ok()) {
      metrics_->durability.recovery_mismatches.fetch_add(
          1, std::memory_order_relaxed);
      return Status::Internal(StrCat("session ", state.id, ": ",
                                     verdict.message()));
    }
  }
  COMPTX_ASSIGN_OR_RETURN(auto log, durability_->AdoptLog(state, resume));
  auto session = std::make_shared<Session>(state.id, options, metrics_,
                                           std::move(log), std::move(certifier));
  if (options.stream) {
    // Stream sessions never snapshot, so the replayed history is complete
    // and the rebuilt log reproduces the pre-crash sequence numbers —
    // subscribers resume from their durable cursors without a gap.
    session->AdoptStreamLog(std::move(accepted_stream));
  }
  ShardFor(state.id).sessions.emplace(state.id, session);
  BumpNextId(state.id + 1);

  // Recovered events re-enter the pipeline counters on all three sides at
  // once, so the invariant enqueued == processed + rejected holds across
  // a restart (and across a same-process evict/resume cycle, where the
  // events are counted again — counters are cumulative, not a census).
  const SessionVerdict verdict = session->Verdict();
  metrics_->events_enqueued.Add(verdict.events_accepted +
                                verdict.events_rejected);
  metrics_->events_processed.Add(verdict.events_accepted);
  metrics_->events_rejected.Add(verdict.events_rejected);
  metrics_->active_sessions.fetch_add(1, std::memory_order_relaxed);
  metrics_->durability.sessions_recovered.fetch_add(1,
                                                    std::memory_order_relaxed);
  metrics_->durability.recovered_events.fetch_add(
      verdict.events_accepted + verdict.events_rejected,
      std::memory_order_relaxed);
  // Safe pre-publication: no worker is attached to a session that is not
  // yet visible to the run queue.
  session->PublishCertifierStats();
  return session;
}

StatusOr<std::shared_ptr<Session>> SessionManager::Resume(
    uint64_t resume_id, const SessionOptions& request,
    const SessionOptions& defaults) {
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "resume requires a durability directory (--data-dir)");
  }
  COMPTX_RETURN_IF_ERROR(ReserveSlot());
  Shard& shard = ShardFor(resume_id);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto restored = [&]() -> StatusOr<std::shared_ptr<Session>> {
    if (shard.sessions.count(resume_id) > 0) {
      return Status::AlreadyExists(
          StrCat("session ", resume_id, " is already open"));
    }
    auto state = durability_->ReadState(resume_id);
    if (!state.ok()) return state.status();
    if (state->closed || state->Empty()) {
      return Status::NotFound(StrCat("session ", resume_id,
                                     " was closed; nothing to resume"));
    }
    // The certifier configuration is part of the stream's meaning, so it
    // comes from the stored OPEN options; only the queue knob follows the
    // resuming client's request.
    COMPTX_ASSIGN_OR_RETURN(SessionOptions options,
                            ParseSessionOptions(state->options, defaults));
    options.queue_capacity = request.queue_capacity;
    return RestoreLocked(*state, options, /*resume=*/true,
                         durability_->options().verify_recovery);
  }();
  if (!restored.ok()) count_.fetch_sub(1, std::memory_order_relaxed);
  return restored;
}

StatusOr<size_t> SessionManager::RecoverAll(const SessionOptions& defaults,
                                            bool verify) {
  if (durability_ == nullptr) return 0;
  // Startup only (before the server serves), so per-id shard locking is
  // about satisfying RestoreLocked's contract, not about races.
  size_t recovered = 0;
  for (const uint64_t id : durability_->ListSessionIds()) {
    COMPTX_ASSIGN_OR_RETURN(durability::SessionDurableState state,
                            durability_->ReadState(id));
    if (state.closed || state.Empty()) {
      // CLOSE was acked (or nothing durable ever landed): finish the
      // interrupted unlink.
      COMPTX_RETURN_IF_ERROR(durability_->RemoveFiles(id));
      continue;
    }
    // Never reassign an id that still names on-disk state.
    BumpNextId(id + 1);
    if (state.evicted) continue;  // stays on disk until a resume=<id> OPEN
    COMPTX_ASSIGN_OR_RETURN(SessionOptions options,
                            ParseSessionOptions(state.options, defaults));
    COMPTX_RETURN_IF_ERROR(ReserveSlot());
    std::unique_lock<std::mutex> lock(ShardFor(id).mu);
    const auto restored =
        RestoreLocked(state, options, /*resume=*/false, verify);
    if (!restored.ok()) {
      count_.fetch_sub(1, std::memory_order_relaxed);
      return restored.status();
    }
    ++recovered;
  }
  return recovered;
}

StatusOr<std::shared_ptr<Session>> SessionManager::Find(uint64_t id) const {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    return Status::NotFound(StrCat("no session ", id));
  }
  return it->second;
}

StatusOr<std::shared_ptr<Session>> SessionManager::Remove(uint64_t id) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    return Status::NotFound(StrCat("no session ", id));
  }
  std::shared_ptr<Session> session = std::move(it->second);
  shard.sessions.erase(it);
  count_.fetch_sub(1, std::memory_order_relaxed);
  metrics_->sessions_closed.Increment();
  metrics_->active_sessions.fetch_sub(1, std::memory_order_relaxed);
  return session;
}

std::vector<std::shared_ptr<Session>> SessionManager::EvictIdle(
    std::chrono::steady_clock::time_point cutoff) {
  std::vector<std::shared_ptr<Session>> evicted;
  for (Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
      if (it->second->CloseIfIdle(cutoff)) {
        evicted.push_back(it->second);
        it = shard.sessions.erase(it);
        count_.fetch_sub(1, std::memory_order_relaxed);
        metrics_->sessions_evicted.Increment();
        metrics_->active_sessions.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

std::vector<std::shared_ptr<Session>> SessionManager::All() const {
  std::vector<std::shared_ptr<Session>> all;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    for (const auto& [id, session] : shard.sessions) all.push_back(session);
  }
  return all;
}

size_t SessionManager::Count() const {
  // Sum the shard maps (not count_, whose optimistic reservations
  // transiently overshoot).
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    total += shard.sessions.size();
  }
  return total;
}

}  // namespace comptx::service
