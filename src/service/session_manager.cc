#include "service/session_manager.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/string_util.h"

namespace comptx::service {

namespace {

const char* StepName(online::OnlineFailure::Step step) {
  switch (step) {
    case online::OnlineFailure::Step::kCalculation:
      return "calculation";
    case online::OnlineFailure::Step::kConflictConsistency:
      return "conflict consistency";
  }
  return "?";
}

StatusOr<uint64_t> ParseUint(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || errno != 0 || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(
        StrCat("option ", key, " needs a non-negative integer, got '", value,
               "'"));
  }
  return static_cast<uint64_t>(parsed);
}

StatusOr<bool> ParseBool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  return Status::InvalidArgument(
      StrCat("option ", key, " needs 0/1/true/false, got '", value, "'"));
}

}  // namespace

StatusOr<SessionOptions> ParseSessionOptions(const std::string& text,
                                             const SessionOptions& defaults) {
  SessionOptions options = defaults;
  for (const std::string& token : StrSplit(text, ' ')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("OPEN option '", token, "' is not key=value"));
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "forgetting") {
      COMPTX_ASSIGN_OR_RETURN(options.certifier.forgetting,
                              ParseBool(key, value));
    } else if (key == "auto_prune") {
      COMPTX_ASSIGN_OR_RETURN(options.certifier.auto_prune,
                              ParseBool(key, value));
    } else if (key == "epoch_interval") {
      COMPTX_ASSIGN_OR_RETURN(uint64_t parsed, ParseUint(key, value));
      options.certifier.epoch_interval = static_cast<uint32_t>(parsed);
    } else if (key == "queue_capacity") {
      COMPTX_ASSIGN_OR_RETURN(uint64_t parsed, ParseUint(key, value));
      if (parsed == 0) {
        return Status::InvalidArgument("queue_capacity must be positive");
      }
      options.queue_capacity = static_cast<size_t>(parsed);
    } else {
      return Status::InvalidArgument(StrCat("unknown OPEN option '", key, "'"));
    }
  }
  return options;
}

Session::Session(uint64_t id, const SessionOptions& options,
                 ServiceMetrics* metrics)
    : id_(id),
      queue_capacity_(options.queue_capacity),
      metrics_(metrics),
      certifier_(options.certifier),
      last_activity_(std::chrono::steady_clock::now()) {}

void Session::ScheduleLocked(const std::function<void()>& schedule) {
  if (scheduled_ || queue_.empty()) return;
  scheduled_ = true;
  // Invoked under mu_: the run queue's run_mu_ is a leaf lock (workers
  // release it before calling ProcessBatch), so mu_ -> run_mu_ is the
  // only nesting order and cannot deadlock.
  schedule();
}

Status Session::Enqueue(std::vector<workload::TraceEvent> events,
                        const std::function<void()>& schedule) {
  std::unique_lock<std::mutex> lock(mu_);
  last_activity_ = std::chrono::steady_clock::now();
  for (workload::TraceEvent& event : events) {
    while (queue_.size() >= queue_capacity_ && !closing_) {
      // Hand the already-pushed prefix to a worker before blocking for
      // space: a batch larger than the queue capacity would otherwise
      // fill an idle (never-scheduled) session and wait forever for a
      // drain that no worker was asked to perform.
      ScheduleLocked(schedule);
      metrics_->backpressure_waits.Increment();
      space_cv_.wait(lock);
    }
    if (closing_) {
      return Status::FailedPrecondition(
          StrCat("session ", id_, " is closing"));
    }
    queue_.push_back(std::move(event));
    metrics_->events_enqueued.Increment();
    metrics_->queue_depth.fetch_add(1, std::memory_order_relaxed);
  }
  ScheduleLocked(schedule);
  last_activity_ = std::chrono::steady_clock::now();
  return Status::OK();
}

bool Session::ProcessBatch(size_t max_events) {
  std::vector<workload::TraceEvent> batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t take = std::min(max_events, queue_.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }

  // Ingest outside the session lock: the scheduled_ flag guarantees this
  // is the only worker draining, so stream order is preserved, and
  // producers keep enqueueing (into the freed capacity) concurrently.
  uint64_t rejected = 0;
  for (const workload::TraceEvent& event : batch) {
    if (!certifier_.Ingest(event).ok()) ++rejected;
  }
  // events_processed counts only successful ingests, so the invariant
  // events_enqueued == events_processed + events_rejected holds once
  // every queue drains.
  metrics_->events_processed.Add(batch.size() - rejected);
  if (rejected > 0) metrics_->events_rejected.Add(rejected);
  metrics_->queue_depth.fetch_sub(static_cast<int64_t>(batch.size()),
                                  std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.notify_all();
  if (queue_.empty()) {
    scheduled_ = false;
    drain_cv_.notify_all();
    return false;
  }
  return true;
}

void Session::WaitDrained() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !scheduled_; });
  last_activity_ = std::chrono::steady_clock::now();
}

void Session::BeginClose() {
  std::unique_lock<std::mutex> lock(mu_);
  closing_ = true;
  space_cv_.notify_all();
}

SessionVerdict Session::Verdict() const {
  const online::CertifierVerdict verdict = certifier_.Verdict();
  const online::CertifierStats stats = certifier_.Stats();
  SessionVerdict out;
  out.session = id_;
  out.certifiable = verdict.certifiable;
  out.order = verdict.order;
  out.events_accepted = stats.events_accepted;
  out.events_rejected = stats.events_rejected;
  if (!verdict.certifiable && verdict.failure.has_value()) {
    out.failure = StrCat("level ", verdict.failure->level, " ",
                         StepName(verdict.failure->step), ": ",
                         verdict.failure->description);
  }
  return out;
}

size_t Session::QueueDepth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

bool Session::CloseIfIdle(std::chrono::steady_clock::time_point cutoff) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!queue_.empty() || scheduled_ || closing_ || last_activity_ >= cutoff) {
    return false;
  }
  // Checking idleness and flipping closing_ under one hold of mu_ means a
  // producer that already looked the session up either beat us (the
  // queue is non-empty and we bail) or sees closing_ and fails — never
  // an acknowledged enqueue into an evicted session.
  closing_ = true;
  space_cv_.notify_all();
  return true;
}

SessionManager::SessionManager(size_t max_sessions, ServiceMetrics* metrics)
    : max_sessions_(max_sessions), metrics_(metrics) {}

StatusOr<std::shared_ptr<Session>> SessionManager::Open(
    const SessionOptions& options) {
  std::unique_lock<std::mutex> lock(mu_);
  if (sessions_.size() >= max_sessions_) {
    return Status::ResourceExhausted(
        StrCat("session limit of ", max_sessions_, " reached"));
  }
  const uint64_t id = next_id_++;
  auto session = std::make_shared<Session>(id, options, metrics_);
  sessions_.emplace(id, session);
  metrics_->sessions_opened.Increment();
  metrics_->active_sessions.fetch_add(1, std::memory_order_relaxed);
  return session;
}

StatusOr<std::shared_ptr<Session>> SessionManager::Find(uint64_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound(StrCat("no session ", id));
  }
  return it->second;
}

StatusOr<std::shared_ptr<Session>> SessionManager::Remove(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound(StrCat("no session ", id));
  }
  std::shared_ptr<Session> session = std::move(it->second);
  sessions_.erase(it);
  metrics_->sessions_closed.Increment();
  metrics_->active_sessions.fetch_sub(1, std::memory_order_relaxed);
  return session;
}

std::vector<std::shared_ptr<Session>> SessionManager::EvictIdle(
    std::chrono::steady_clock::time_point cutoff) {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> evicted;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->CloseIfIdle(cutoff)) {
      evicted.push_back(it->second);
      it = sessions_.erase(it);
      metrics_->sessions_evicted.Increment();
      metrics_->active_sessions.fetch_sub(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  return evicted;
}

std::vector<std::shared_ptr<Session>> SessionManager::All() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> all;
  all.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) all.push_back(session);
  return all;
}

size_t SessionManager::Count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace comptx::service
